//! Differential property test for condition-level partitioning (Figure 5):
//! for any trigger population and token stream, the multiset of firings
//! must be identical whether a signature probe runs unpartitioned,
//! statically partitioned into 2/4/8 `SigPartition` tasks, or adaptively
//! partitioned with fan-out transitions forced mid-stream. Partition
//! assignment hashes stable expression ids, so the union over partitions
//! must be exactly the unpartitioned candidate set — this harness catches
//! double-visited entries (duplicate firings) and dropped entries (lost
//! firings) alike.
//!
//! Deterministic: the proptest runner is seeded with a pinned 32-byte
//! seed, so every run explores the same cases. `PARTITION_CASES` bounds
//! the case count (CI keeps it small; the `--ignored` variant runs more).

use proptest::prelude::*;
use proptest::test_runner::{Config as PtConfig, RngAlgorithm, TestRng, TestRunner};
use std::sync::Arc;
use tman_common::{Tuple, UpdateDescriptor, Value};
use triggerman::{Config, Partitioning, TriggerMan};

const SEED: [u8; 32] = *b"tman-partition-equiv-seed-0001!!";
const STATIC_FANOUTS: [usize; 3] = [2, 4, 8];
/// The fan-out forced onto the adaptive engine before token `j` — every
/// step is an engage (1 → n), widen, narrow, or disengage (n → 1)
/// transition, so the stream crosses every controller transition kind.
const FORCED_FANOUTS: [usize; 4] = [1, 2, 4, 8];

#[derive(Debug, Clone)]
struct Cond(String);

fn arb_cond() -> impl Strategy<Value = Cond> {
    let sym = 0u32..6;
    let price = 0i64..100;
    prop_oneof![
        sym.clone().prop_map(|s| Cond(format!("q.sym = 'S{s}'"))),
        price.clone().prop_map(|p| Cond(format!("q.price > {p}"))),
        (price.clone(), 1i64..30)
            .prop_map(|(p, w)| Cond(format!("q.price > {p} and q.price <= {}", p + w))),
        (sym.clone(), price.clone())
            .prop_map(|(s, p)| Cond(format!("q.sym = 'S{s}' and q.price >= {p}"))),
        (sym.clone(), sym.clone())
            .prop_map(|(a, b)| Cond(format!("q.sym = 'S{a}' or q.sym = 'S{b}'"))),
        (0i64..50).prop_map(|v| Cond(format!("q.vol = {v}"))),
        (sym, 0i64..50).prop_map(|(s, v)| Cond(format!("q.sym <> 'S{s}' and q.vol = {v}"))),
    ]
}

fn arb_token() -> impl Strategy<Value = (u32, i64, i64)> {
    (0u32..8, 0i64..110, 0i64..55)
}

/// One engine plus its firing tap.
struct Harness {
    label: String,
    tman: Arc<TriggerMan>,
    rx: crossbeam::channel::Receiver<triggerman::EventNotification>,
    src: tman_common::DataSourceId,
}

impl Harness {
    fn new(label: &str, cfg: Config, conds: &[Cond]) -> Harness {
        let tman = TriggerMan::open_memory(cfg).unwrap();
        tman.execute_command("define data source q (sym varchar(12), price float, vol int)")
            .unwrap();
        let rx = tman.events().subscribe_all();
        for (i, c) in conds.iter().enumerate() {
            tman.execute_command(&format!(
                "create trigger p{i} from q when {} do raise event T{i}(q.sym)",
                c.0
            ))
            .unwrap();
        }
        let src = tman.source("q").unwrap().id;
        Harness {
            label: label.to_string(),
            tman,
            rx,
            src,
        }
    }

    /// Push one token, drain, and return the sorted multiset of events.
    fn fire(&self, tok: &UpdateDescriptor) -> Vec<String> {
        let mut tok = tok.clone();
        tok.data_src = self.src;
        self.tman.push_token(tok).unwrap();
        self.tman.run_until_quiescent().unwrap();
        assert!(
            self.tman.last_error().is_none(),
            "[{}] {:?}",
            self.label,
            self.tman.last_error()
        );
        let mut fired: Vec<String> = self.rx.try_iter().map(|n| n.event).collect();
        fired.sort();
        fired
    }
}

fn static_cfg(parts: usize) -> Config {
    Config {
        condition_partitions: parts,
        partition_min: 1,
        ..Config::default()
    }
}

/// Adaptive with telemetry off: no controller instance runs, so the test
/// owns the published per-signature fan-out and can force transitions.
fn adaptive_cfg() -> Config {
    Config {
        partitioning: Partitioning::Adaptive,
        telemetry: false,
        partition_min: 1,
        ..Config::default()
    }
}

fn cases(default: u32) -> u32 {
    std::env::var("PARTITION_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn run_equivalence(num_cases: u32) {
    let config = PtConfig {
        cases: num_cases,
        failure_persistence: None,
        ..PtConfig::default()
    };
    let mut runner =
        TestRunner::new_with_rng(config, TestRng::from_seed(RngAlgorithm::ChaCha, &SEED));
    let strategy = (
        proptest::collection::vec(arb_cond(), 1..24),
        proptest::collection::vec(arb_token(), 1..24),
    );
    let result = runner.run(&strategy, |(conds, toks)| {
        let reference = Harness::new("unpartitioned", static_cfg(1), &conds);
        let mut partitioned: Vec<Harness> = STATIC_FANOUTS
            .iter()
            .map(|&p| Harness::new(&format!("static p={p}"), static_cfg(p), &conds))
            .collect();
        partitioned.push(Harness::new("adaptive", adaptive_cfg(), &conds));

        for (j, (s, p, v)) in toks.iter().enumerate() {
            // Force an adaptive fan-out transition before every token.
            let forced = FORCED_FANOUTS[j % FORCED_FANOUTS.len()];
            let adaptive = partitioned.last().unwrap();
            for sig in adaptive.tman.predicate_index().all_signatures() {
                sig.partition_activity().set_fanout(forced);
            }

            let tuple = Tuple::new(vec![
                Value::str(format!("S{s}")),
                Value::Float(*p as f64),
                Value::Int(*v),
            ]);
            let tok = UpdateDescriptor::insert(reference.src, tuple);
            let expected = reference.fire(&tok);
            for h in &partitioned {
                let fired = h.fire(&tok);
                prop_assert_eq!(
                    &fired,
                    &expected,
                    "{} diverged from unpartitioned on token {} {:?}",
                    h.label,
                    j,
                    (s, p, v)
                );
            }
        }
        Ok(())
    });
    if let Err(e) = result {
        panic!("partition equivalence failed: {e}");
    }
}

#[test]
fn partitioned_firing_multisets_match_unpartitioned() {
    run_equivalence(cases(64));
}

#[test]
#[ignore = "long equivalence sweep; run with --ignored"]
fn partitioned_firing_multisets_match_unpartitioned_long() {
    run_equivalence(cases(64).max(256));
}
