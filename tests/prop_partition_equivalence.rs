//! Differential property test for condition-level partitioning (Figure 5):
//! for any trigger population and token stream, the multiset of firings
//! must be identical whether a signature probe runs unpartitioned,
//! statically partitioned into 2/4/8 `SigPartition` tasks, or adaptively
//! partitioned with fan-out transitions forced mid-stream. Partition
//! assignment hashes stable expression ids, so the union over partitions
//! must be exactly the unpartitioned candidate set — this harness catches
//! double-visited entries (duplicate firings) and dropped entries (lost
//! firings) alike.
//!
//! Deterministic: the proptest runner is seeded with a pinned 32-byte
//! seed, so every run explores the same cases. `PARTITION_CASES` bounds
//! the case count (CI keeps it small; the `--ignored` variant runs more).

mod oracle_common;

use oracle_common::{
    adaptive_cfg, arb_cond, arb_token, env_cases, q_tuple, seeded_runner, static_cfg, Harness,
};
use proptest::prelude::*;
use tman_common::UpdateDescriptor;

const SEED: [u8; 32] = *b"tman-partition-equiv-seed-0001!!";
const STATIC_FANOUTS: [usize; 3] = [2, 4, 8];
/// The fan-out forced onto the adaptive engine before token `j` — every
/// step is an engage (1 → n), widen, narrow, or disengage (n → 1)
/// transition, so the stream crosses every controller transition kind.
const FORCED_FANOUTS: [usize; 4] = [1, 2, 4, 8];

fn run_equivalence(num_cases: u32) {
    let mut runner = seeded_runner(&SEED, num_cases);
    let strategy = (
        proptest::collection::vec(arb_cond(), 1..24),
        proptest::collection::vec(arb_token(), 1..24),
    );
    let result = runner.run(&strategy, |(conds, toks)| {
        let reference = Harness::new("unpartitioned", static_cfg(1), &conds);
        let mut partitioned: Vec<Harness> = STATIC_FANOUTS
            .iter()
            .map(|&p| Harness::new(&format!("static p={p}"), static_cfg(p), &conds))
            .collect();
        partitioned.push(Harness::new("adaptive", adaptive_cfg(), &conds));

        for (j, (s, p, v)) in toks.iter().enumerate() {
            // Force an adaptive fan-out transition before every token.
            let forced = FORCED_FANOUTS[j % FORCED_FANOUTS.len()];
            let adaptive = partitioned.last().unwrap();
            for sig in adaptive.tman.predicate_index().all_signatures() {
                sig.partition_activity().set_fanout(forced);
            }

            let tok = UpdateDescriptor::insert(reference.src, q_tuple(*s, *p, *v));
            let expected = reference.fire(&tok);
            for h in &partitioned {
                let fired = h.fire(&tok);
                prop_assert_eq!(
                    &fired,
                    &expected,
                    "{} diverged from unpartitioned on token {} {:?}",
                    h.label,
                    j,
                    (s, p, v)
                );
            }
        }
        Ok(())
    });
    if let Err(e) = result {
        panic!("partition equivalence failed: {e}");
    }
}

#[test]
fn partitioned_firing_multisets_match_unpartitioned() {
    run_equivalence(env_cases("PARTITION_CASES", 64));
}

#[test]
#[ignore = "long equivalence sweep; run with --ignored"]
fn partitioned_firing_multisets_match_unpartitioned_long() {
    run_equivalence(env_cases("PARTITION_CASES", 64).max(256));
}
