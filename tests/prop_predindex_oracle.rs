//! Differential test oracle for the predicate index.
//!
//! A naive reference implementation — a flat `Vec` of
//! `(trigger, event, predicate)` evaluated in full against every token —
//! is driven through the same randomized trigger create/drop and token
//! streams as the real `PredicateIndex`, and the two must produce
//! identical match sets:
//!
//! * under the organization each class happens to be in,
//! * with every class **forced** into each of the §5.2 organizations
//!   (mem list, denormalized list, mem index, db table, db indexed), and
//! * across governor transitions (promotion, demotion, budget spill,
//!   refill) driven by deliberately extreme policies.
//!
//! The suite runs on a fixed RNG seed (`SEED`) so CI is deterministic;
//! shrinking still works because the cases run under a regular proptest
//! `TestRunner`.

mod oracle_common;

use oracle_common::{env_cases, seeded_runner};
use proptest::prelude::*;
use proptest::test_runner::{TestCaseError, TestError};
use std::sync::Arc;
use tman_common::{
    DataSourceId, DataType, EventKind, ExprId, NodeId, Result, Schema, TriggerId, Tuple,
    UpdateDescriptor, Value,
};
use tman_expr::cnf::{remap_var, to_cnf, Cnf};
use tman_expr::scalar::Env;
use tman_expr::signature::IndexPlan;
use tman_expr::BindCtx;
use tman_lang::parse_expression;
use tman_predindex::{GovernorPolicy, IndexConfig, OrgKind, PredicateIndex, SignatureRuntime};
use tman_sql::Database;

const SRC: DataSourceId = DataSourceId(7);
/// Pinned so the CI run is reproducible; change deliberately, not casually.
const SEED: [u8; 32] = *b"tman-predindex-oracle-seed-0001!";

fn schema() -> Schema {
    Schema::from_pairs(&[
        ("sym", DataType::Varchar(12)),
        ("price", DataType::Float),
        ("vol", DataType::Int),
    ])
}

/// The reference: every predicate of every live trigger, evaluated in
/// full for every token. No organizations, no indexes, no sharing.
#[derive(Default)]
struct Oracle {
    preds: Vec<(TriggerId, EventKind, Cnf)>,
}

impl Oracle {
    fn add(&mut self, id: TriggerId, event: EventKind, pred: Cnf) {
        self.preds.push((id, event, pred));
    }

    fn remove(&mut self, id: TriggerId) {
        self.preds.retain(|(t, _, _)| *t != id);
    }

    fn matches(&self, token: &UpdateDescriptor) -> Result<Vec<u64>> {
        let tuple = token.probe_tuple();
        let bind = Some(tuple);
        let env = Env {
            tuples: std::slice::from_ref(&bind),
            consts: &[],
        };
        let mut out = Vec::new();
        for (id, event, pred) in &self.preds {
            if token.data_src == SRC && event.accepts(token.op) && pred.matches(&env)? {
                out.push(id.raw());
            }
        }
        out.sort_unstable();
        Ok(out)
    }
}

/// One randomized trigger: condition text + event kind.
#[derive(Debug, Clone)]
struct TriggerDef {
    cond: String,
    event: EventKind,
}

fn arb_event() -> impl Strategy<Value = EventKind> {
    prop_oneof![
        3 => Just(EventKind::Insert),
        1 => Just(EventKind::Delete),
        1 => Just(EventKind::Update(vec![])),
        1 => Just(EventKind::InsertOrUpdate),
    ]
}

fn arb_trigger() -> impl Strategy<Value = TriggerDef> {
    let sym = 0u32..5;
    let price = 0i64..100;
    let cond = prop_oneof![
        // Equality signatures (shared classes: few distinct shapes).
        sym.clone().prop_map(|s| format!("q.sym = 'S{s}'")),
        (0i64..40).prop_map(|v| format!("q.vol = {v}")),
        // Range signatures.
        price.clone().prop_map(|p| format!("q.price > {p}")),
        (price.clone(), 1i64..30)
            .prop_map(|(p, w)| format!("q.price >= {p} and q.price < {}", p + w)),
        // Composite: indexable equality + residual.
        (sym.clone(), price.clone())
            .prop_map(|(s, p)| format!("q.sym = 'S{s}' and q.price >= {p}")),
        // OR: no indexable part (IndexPlan::None, list organizations only).
        (sym.clone(), sym).prop_map(|(a, b)| format!("q.sym = 'S{a}' or q.sym = 'S{b}'")),
        // Negation.
        price.prop_map(|p| format!("not (q.price <= {p})")),
    ];
    (cond, arb_event()).prop_map(|(cond, event)| TriggerDef { cond, event })
}

/// (sym, price, vol-or-null, op selector)
fn arb_token() -> impl Strategy<Value = (u32, i64, Option<i64>, u8)> {
    (
        0u32..6,
        0i64..110,
        proptest::option::weighted(0.9, 0i64..45),
        0u8..4,
    )
}

fn mk_token(s: u32, p: i64, v: Option<i64>, op: u8) -> UpdateDescriptor {
    let tuple = Tuple::new(vec![
        Value::str(format!("S{s}")),
        Value::Float(p as f64),
        v.map(Value::Int).unwrap_or(Value::Null),
    ]);
    match op {
        0 | 1 => UpdateDescriptor::insert(SRC, tuple),
        2 => UpdateDescriptor::delete(SRC, tuple),
        _ => {
            let old = Tuple::new(vec![
                Value::str(format!("S{}", (s + 1) % 6)),
                Value::Float((p + 1) as f64),
                Value::Int(-1),
            ]);
            UpdateDescriptor::update(SRC, old, tuple)
        }
    }
}

/// Register a trigger in the index and the oracle.
fn add_both(ix: &PredicateIndex, oracle: &mut Oracle, def: &TriggerDef, tid: u64) {
    let schema = schema();
    let ctx = BindCtx::new(vec![("q".into(), &schema)]);
    let cnf = to_cnf(&ctx.pred(&parse_expression(&def.cond).unwrap()).unwrap()).unwrap();
    let canon = remap_var(&cnf, 0, 0, "q");
    oracle.add(TriggerId(tid), def.event.clone(), canon.clone());
    let (sig, consts) =
        tman_expr::signature::analyze_selection(&canon, SRC, def.event.clone(), vec![]);
    ix.add_predicate(
        SRC,
        &schema,
        sig,
        consts,
        ExprId(tid),
        TriggerId(tid),
        NodeId(0),
    )
    .unwrap();
}

fn index_matches(ix: &PredicateIndex, token: &UpdateDescriptor) -> Vec<u64> {
    let mut ids: Vec<u64> = ix
        .match_token_vec(token)
        .unwrap()
        .into_iter()
        .map(|m| m.trigger_id.raw())
        .collect();
    ids.sort_unstable();
    ids
}

fn check_all(
    ix: &PredicateIndex,
    oracle: &Oracle,
    tokens: &[UpdateDescriptor],
    ctxt: &str,
) -> std::result::Result<(), TestCaseError> {
    for tok in tokens {
        let got = index_matches(ix, tok);
        let want = oracle.matches(tok).unwrap();
        prop_assert_eq!(got, want, "{}: token {:?}", ctxt, tok);
    }
    Ok(())
}

/// Force every signature whose plan supports it into `kind`.
fn force_org(sigs: &[Arc<SignatureRuntime>], kind: OrgKind) {
    for rt in sigs {
        if kind == OrgKind::MemIndex && matches!(rt.sig.index_plan, IndexPlan::None) {
            continue; // the governor skips unindexable classes too
        }
        rt.set_org(kind).unwrap();
    }
}

/// The property: index == oracle through create/drop, every forced
/// organization, and a gauntlet of governor transitions.
fn run_case(
    triggers: &[TriggerDef],
    drops: &[proptest::sample::Index],
    tokens: &[(u32, i64, Option<i64>, u8)],
) -> std::result::Result<(), TestCaseError> {
    let db = Arc::new(Database::open_memory(512));
    let cfg = IndexConfig {
        adaptive: true, // organizations move only when this test says so
        ..Default::default()
    };
    let ix = PredicateIndex::with_database(cfg.clone(), db);
    let mut oracle = Oracle::default();
    let tokens: Vec<UpdateDescriptor> = tokens
        .iter()
        .map(|&(s, p, v, op)| mk_token(s, p, v, op))
        .collect();

    for (i, def) in triggers.iter().enumerate() {
        add_both(&ix, &mut oracle, def, i as u64);
    }
    check_all(&ix, &oracle, &tokens, "fresh")?;

    // Drop a random subset of triggers from both sides.
    for d in drops {
        let tid = d.index(triggers.len()) as u64;
        oracle.remove(TriggerId(tid));
        ix.remove_trigger(TriggerId(tid)).unwrap();
    }
    check_all(&ix, &oracle, &tokens, "after drops")?;

    // Every §5.2 organization, forced.
    let sigs = ix.all_signatures();
    for kind in [
        OrgKind::MemList,
        OrgKind::MemListDenorm,
        OrgKind::MemIndex,
        OrgKind::DbTable,
        OrgKind::DbIndexed,
    ] {
        force_org(&sigs, kind);
        check_all(&ix, &oracle, &tokens, kind.as_str())?;
    }
    force_org(&sigs, OrgKind::MemList);

    // Governor gauntlet. Tiny thresholds: everything promotes.
    let mut policy = GovernorPolicy::from_config(&cfg);
    policy.list_to_index = 1;
    policy.index_to_db = 4;
    let report = ix.governor_pass(&policy);
    prop_assert!(report.errors.is_empty(), "promote: {:?}", report.errors);
    check_all(&ix, &oracle, &tokens, "governor promote")?;

    // Budget zero: every memory-resident class spills.
    policy.memory_budget = Some(0);
    policy.min_spill_bytes = 1;
    let report = ix.governor_pass(&policy);
    prop_assert!(report.errors.is_empty(), "spill: {:?}", report.errors);
    check_all(&ix, &oracle, &tokens, "budget spill")?;

    // Huge thresholds, no budget: everything comes home.
    policy.memory_budget = None;
    policy.list_to_index = usize::MAX;
    policy.index_to_db = usize::MAX;
    let report = ix.governor_pass(&policy);
    prop_assert!(report.errors.is_empty(), "refill: {:?}", report.errors);
    check_all(&ix, &oracle, &tokens, "governor demote/refill")?;

    Ok(())
}

#[test]
fn predicate_index_agrees_with_naive_oracle() {
    let mut runner = seeded_runner(&SEED, env_cases("ORACLE_CASES", 256));
    let strategy = (
        proptest::collection::vec(arb_trigger(), 1..32),
        proptest::collection::vec(any::<proptest::sample::Index>(), 0..8),
        proptest::collection::vec(arb_token(), 1..16),
    );
    let result = runner.run(&strategy, |(triggers, drops, tokens)| {
        run_case(&triggers, &drops, &tokens)
    });
    match result {
        Ok(()) => {}
        Err(TestError::Fail(why, (triggers, drops, tokens))) => panic!(
            "oracle divergence: {why}\nshrunken case:\n  triggers: {triggers:#?}\n  \
             drops: {drops:?}\n  tokens: {tokens:?}"
        ),
        Err(e) => panic!("oracle run aborted: {e}"),
    }
}

/// Long-run variant for the scheduled CI job: more cases, bigger scenarios.
#[test]
#[ignore = "long-running oracle sweep; run with --ignored"]
fn predicate_index_oracle_long() {
    let mut runner = seeded_runner(&SEED, 1024);
    let strategy = (
        proptest::collection::vec(arb_trigger(), 1..64),
        proptest::collection::vec(any::<proptest::sample::Index>(), 0..24),
        proptest::collection::vec(arb_token(), 1..32),
    );
    let result = runner.run(&strategy, |(triggers, drops, tokens)| {
        run_case(&triggers, &drops, &tokens)
    });
    if let Err(e) = result {
        panic!("oracle long run failed: {e}");
    }
}
