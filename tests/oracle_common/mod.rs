//! Shared scaffolding for the pinned-seed differential oracles.
//!
//! Every equivalence harness in `tests/` follows the same recipe: build a
//! deterministic proptest runner from a pinned 32-byte seed, generate a
//! trigger population over the canonical `q (sym, price, vol)` source,
//! stand up one engine per configuration under test, push identical token
//! streams through all of them, and compare sorted firing multisets
//! against a reference. This module holds the recipe once so each oracle
//! file carries only what it is actually proving.
//!
//! Not every oracle uses every helper (the predicate-index oracle drives
//! `PredicateIndex` directly and only borrows the runner builders), hence
//! the file-wide `dead_code` allowance.
#![allow(dead_code)]

use proptest::prelude::*;
use proptest::test_runner::{Config as PtConfig, RngAlgorithm, TestRng, TestRunner};
use std::sync::Arc;
use tman_common::{Tuple, UpdateDescriptor, Value};
use triggerman::{Config, Partitioning, TriggerMan};

/// Build a deterministic proptest runner: pinned ChaCha seed, no failure
/// persistence (CI replays by seed, not by regression file).
pub fn seeded_runner(seed: &[u8; 32], cases: u32) -> TestRunner {
    TestRunner::new_with_rng(
        PtConfig {
            cases,
            failure_persistence: None,
            ..PtConfig::default()
        },
        TestRng::from_seed(RngAlgorithm::ChaCha, seed),
    )
}

/// Case-count override from the environment: CI keeps the blocking runs
/// small, the nightly soaks raise them.
pub fn env_cases(var: &str, default: u32) -> u32 {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// One randomized selection condition over the shared `q` source.
#[derive(Debug, Clone)]
pub struct Cond(pub String);

/// The canonical condition mix: equalities (shared classes), ranges,
/// composites with residuals, a two-way disjunction, and a negation —
/// enough shape diversity to populate every organization and the tagged
/// disjunct path.
pub fn arb_cond() -> impl Strategy<Value = Cond> {
    let sym = 0u32..6;
    let price = 0i64..100;
    prop_oneof![
        sym.clone().prop_map(|s| Cond(format!("q.sym = 'S{s}'"))),
        price.clone().prop_map(|p| Cond(format!("q.price > {p}"))),
        (price.clone(), 1i64..30)
            .prop_map(|(p, w)| Cond(format!("q.price > {p} and q.price <= {}", p + w))),
        (sym.clone(), price.clone())
            .prop_map(|(s, p)| Cond(format!("q.sym = 'S{s}' and q.price >= {p}"))),
        (sym.clone(), sym.clone())
            .prop_map(|(a, b)| Cond(format!("q.sym = 'S{a}' or q.sym = 'S{b}'"))),
        (0i64..50).prop_map(|v| Cond(format!("q.vol = {v}"))),
        (sym, 0i64..50).prop_map(|(s, v)| Cond(format!("q.sym <> 'S{s}' and q.vol = {v}"))),
    ]
}

/// `(sym, price, vol)` draws, deliberately wider than the condition
/// constants so streams carry both matching and missing tokens.
pub fn arb_token() -> impl Strategy<Value = (u32, i64, i64)> {
    (0u32..8, 0i64..110, 0i64..55)
}

/// Materialize one `q` row.
pub fn q_tuple(s: u32, p: i64, v: i64) -> Tuple {
    Tuple::new(vec![
        Value::str(format!("S{s}")),
        Value::Float(p as f64),
        Value::Int(v),
    ])
}

/// One engine plus its firing tap.
pub struct Harness {
    pub label: String,
    pub tman: Arc<TriggerMan>,
    pub rx: crossbeam::channel::Receiver<triggerman::EventNotification>,
    pub src: tman_common::DataSourceId,
}

impl Harness {
    /// Open an engine on `cfg`, define the `q` source, and register one
    /// trigger `p{i} … raise event T{i}(q.sym)` per condition.
    pub fn new(label: &str, cfg: Config, conds: &[Cond]) -> Harness {
        Harness::with_actions(label, cfg, conds, |i, c| {
            format!(
                "create trigger p{i} from q when {} do raise event T{i}(q.sym)",
                c.0
            )
        })
    }

    /// [`Harness::new`] with a caller-supplied DDL template, for oracles
    /// whose triggers need windows or bespoke actions.
    pub fn with_actions(
        label: &str,
        cfg: Config,
        conds: &[Cond],
        ddl: impl Fn(usize, &Cond) -> String,
    ) -> Harness {
        let tman = TriggerMan::open_memory(cfg).unwrap();
        tman.execute_command("define data source q (sym varchar(12), price float, vol int)")
            .unwrap();
        let rx = tman.events().subscribe_all();
        for (i, c) in conds.iter().enumerate() {
            tman.execute_command(&ddl(i, c)).unwrap();
        }
        let src = tman.source("q").unwrap().id;
        Harness {
            label: label.to_string(),
            tman,
            rx,
            src,
        }
    }

    /// Push one token, drain, and return the sorted firing multiset.
    pub fn fire(&self, tok: &UpdateDescriptor) -> Vec<String> {
        self.fire_chunk(std::slice::from_ref(tok))
    }

    /// Push a whole chunk before draining — with `drain_batch > 1` the
    /// engine pulls it as one batch — and return the sorted firing
    /// multiset.
    pub fn fire_chunk(&self, toks: &[UpdateDescriptor]) -> Vec<String> {
        for tok in toks {
            let mut tok = tok.clone();
            tok.data_src = self.src;
            self.tman.push_token(tok).unwrap();
        }
        self.tman.run_until_quiescent().unwrap();
        assert!(
            self.tman.last_error().is_none(),
            "[{}] {:?}",
            self.label,
            self.tman.last_error()
        );
        let mut fired: Vec<String> = self.rx.try_iter().map(|n| n.event).collect();
        fired.sort();
        fired
    }
}

/// Unpartitioned probes: batched runs go through the sort-merge
/// `probe_batch` path, the one a lost or double-visited key group would
/// corrupt.
pub fn shard_cfg(shards: usize, batch: usize) -> Config {
    Config {
        shards: Some(shards),
        drain_batch: batch,
        ..Config::default()
    }
}

/// Partitioned probes: every eligible signature fans out as
/// `SigPartition` tasks routed across the shards instead — the placement
/// and steal-scan path.
pub fn partitioned_cfg(shards: usize, batch: usize) -> Config {
    Config {
        condition_partitions: 2,
        partition_min: 1,
        ..shard_cfg(shards, batch)
    }
}

/// Static condition-level partitioning at a fixed fan-out.
pub fn static_cfg(parts: usize) -> Config {
    Config {
        condition_partitions: parts,
        partition_min: 1,
        ..Config::default()
    }
}

/// Adaptive with telemetry off: no controller instance runs, so the test
/// owns the published per-signature fan-out and can force transitions.
pub fn adaptive_cfg() -> Config {
    Config {
        partitioning: Partitioning::Adaptive,
        telemetry: false,
        partition_min: 1,
        ..Config::default()
    }
}

/// Indexed disjunctions off: OR trees stay one entry with the whole
/// disjunction as a residual test — the genuine pre-tagging evaluation
/// strategy, used as the reference side of the disjunction oracle.
pub fn residual_cfg(mut base: Config) -> Config {
    base.index.tagged_disjunctions = false;
    base
}
