//! The predicate index must agree exactly with the naive ECA baseline on
//! randomized workloads — same matches, radically different work profile.

use rand::prelude::*;
use std::sync::Arc;
use tman_baseline::{NaiveEca, QueryBased};
use tman_common::{DataSourceId, EventKind, Schema, Tuple, UpdateDescriptor, Value};
use tman_expr::cnf::{remap_var, to_cnf};
use tman_expr::signature::analyze_selection;
use tman_expr::BindCtx;
use tman_lang::parse_expression;
use tman_predindex::{IndexConfig, PredicateIndex};
use tman_sql::Database;

const SRC: DataSourceId = DataSourceId(1);

fn schema() -> Schema {
    Schema::from_pairs(&[
        ("sym", tman_common::DataType::Varchar(8)),
        ("price", tman_common::DataType::Float),
        ("vol", tman_common::DataType::Int),
    ])
}

/// Random single-source condition generator (mirrors realistic alert
/// shapes: equality, ranges, conjunctions, disjunctions).
fn random_cond(rng: &mut StdRng) -> String {
    let sym = ["AA", "BB", "CC", "DD"][rng.gen_range(0..4)];
    let p = rng.gen_range(0..100);
    let v = rng.gen_range(0..1000);
    match rng.gen_range(0..6) {
        0 => format!("q.sym = '{sym}'"),
        1 => format!("q.price > {p}"),
        2 => format!("q.price > {p} and q.price < {}", p + 20),
        3 => format!("q.sym = '{sym}' and q.vol >= {v}"),
        4 => format!("q.sym = '{sym}' or q.price < {p}"),
        _ => format!("q.vol = {v} and q.price <= {p}"),
    }
}

fn random_token(rng: &mut StdRng) -> UpdateDescriptor {
    let sym = ["AA", "BB", "CC", "DD", "EE"][rng.gen_range(0..5)];
    UpdateDescriptor::insert(
        SRC,
        Tuple::new(vec![
            Value::str(sym),
            Value::Float(rng.gen_range(0.0..120.0)),
            Value::Int(rng.gen_range(0..1100)),
        ]),
    )
}

#[test]
fn predicate_index_agrees_with_naive_eca() {
    let mut rng = StdRng::seed_from_u64(2024);
    let schema = schema();
    let index = PredicateIndex::new(IndexConfig::default());
    let eca = NaiveEca::new();

    for t in 0..400u64 {
        let cond = random_cond(&mut rng);
        // Register with the index.
        let ctx = BindCtx::new(vec![("q".into(), &schema)]);
        let cnf = to_cnf(&ctx.pred(&parse_expression(&cond).unwrap()).unwrap()).unwrap();
        let canon = remap_var(&cnf, 0, 0, "q");
        let (sig, consts) = analyze_selection(&canon, SRC, EventKind::Insert, vec![]);
        index
            .add_predicate(
                SRC,
                &schema,
                sig,
                consts,
                tman_common::ExprId(t),
                tman_common::TriggerId(t),
                tman_common::NodeId(0),
            )
            .unwrap();
        // Register with the baseline.
        eca.add_trigger(
            tman_common::TriggerId(t),
            SRC,
            EventKind::Insert,
            "q",
            &schema,
            &cond,
        )
        .unwrap();
    }
    // Far fewer signatures than triggers (the paper's premise).
    assert!(
        index.num_signatures() <= 8,
        "{} signatures",
        index.num_signatures()
    );

    for i in 0..500 {
        let tok = random_token(&mut rng);
        let mut a: Vec<u64> = index
            .match_token_vec(&tok)
            .unwrap()
            .into_iter()
            .map(|m| m.trigger_id.raw())
            .collect();
        let mut b: Vec<u64> = eca
            .match_token(&tok)
            .unwrap()
            .into_iter()
            .map(|t| t.raw())
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "token {i}: {tok:?}");
    }
    // Work comparison: the ECA baseline evaluated every trigger per token;
    // the index only ran residual tests on candidates.
    assert_eq!(eca.conditions_tested.get(), 400 * 500);
    assert!(
        index.stats().residual_tests.get() < eca.conditions_tested.get() / 2,
        "index did {} residual tests vs {} naive evaluations",
        index.stats().residual_tests.get(),
        eca.conditions_tested.get()
    );
}

#[test]
fn all_org_kinds_agree_with_query_baseline() {
    let mut rng = StdRng::seed_from_u64(99);
    let schema = schema();
    let db = Arc::new(Database::open_memory(1024));
    let qb = QueryBased::new(db.clone());
    qb.register_source(SRC, &schema).unwrap();

    let index = PredicateIndex::with_database(IndexConfig::default(), db);
    for t in 0..150u64 {
        let sym = ["AA", "BB", "CC"][rng.gen_range(0..3)];
        let p = rng.gen_range(0..100);
        let cond_ix = format!("q.sym = '{sym}' and q.price > {p}");
        let cond_qb = format!("sym = '{sym}' and price > {p}");
        let ctx = BindCtx::new(vec![("q".into(), &schema)]);
        let cnf = to_cnf(&ctx.pred(&parse_expression(&cond_ix).unwrap()).unwrap()).unwrap();
        let (sig, consts) =
            analyze_selection(&remap_var(&cnf, 0, 0, "q"), SRC, EventKind::Insert, vec![]);
        index
            .add_predicate(
                SRC,
                &schema,
                sig,
                consts,
                tman_common::ExprId(t),
                tman_common::TriggerId(t),
                tman_common::NodeId(0),
            )
            .unwrap();
        qb.add_trigger(tman_common::TriggerId(t), SRC, EventKind::Insert, &cond_qb)
            .unwrap();
    }

    let sig_rt = index.source(SRC).unwrap().signatures()[0].clone();
    for kind in [
        tman_predindex::OrgKind::MemList,
        tman_predindex::OrgKind::MemIndex,
        tman_predindex::OrgKind::DbTable,
        tman_predindex::OrgKind::DbIndexed,
    ] {
        sig_rt.set_org(kind).unwrap();
        for _ in 0..60 {
            let tok = random_token(&mut rng);
            let mut a: Vec<u64> = index
                .match_token_vec(&tok)
                .unwrap()
                .into_iter()
                .map(|m| m.trigger_id.raw())
                .collect();
            let mut b: Vec<u64> = qb
                .match_token(&tok)
                .unwrap()
                .into_iter()
                .map(|t| t.raw())
                .collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "{kind:?}");
        }
    }
}
