//! Scalability smoke tests: large trigger populations, concurrency under
//! drivers, and the asymptotic shape (work per token must not grow
//! linearly with the number of triggers).

use std::time::Duration;
use tman_common::Value;
use triggerman::{Config, TriggerMan};

#[test]
fn ten_thousand_triggers_constant_probe_work() {
    let tman = TriggerMan::open_memory(Config::default()).unwrap();
    tman.run_sql("create table q (sym varchar(8), price float)")
        .unwrap();
    tman.execute_command("define data source q from table q")
        .unwrap();

    for i in 0..10_000 {
        tman.execute_command(&format!(
            "create trigger s{i} from q when q.sym = 'S{}' and q.price > {} do notify 'x'",
            i % 500,
            (i % 97) * 10
        ))
        .unwrap();
    }
    assert_eq!(tman.predicate_index().num_signatures(), 1);
    assert_eq!(tman.predicate_index().num_entries(), 10_000);

    let rx = tman.subscribe("notify");
    tman.run_sql("insert into q values ('S7', 5000)").unwrap();
    tman.run_until_quiescent().unwrap();
    // 20 triggers watch S7 (i ≡ 7 mod 500); all have thresholds < 5000.
    assert_eq!(rx.try_iter().count(), 20);
    // Residual tests only ran for the S7 equivalence-class candidates —
    // constant in the total trigger population.
    assert!(
        tman.predicate_index().stats().residual_tests.get() <= 20,
        "residual tests = {}",
        tman.predicate_index().stats().residual_tests.get()
    );
}

#[test]
fn driver_pool_under_concurrent_load() {
    let cfg = Config {
        num_cpus: Some(4),
        driver_period: Duration::from_millis(1),
        threshold: Duration::from_millis(10),
        async_actions: true,
        ..Default::default()
    };
    let tman = TriggerMan::open_memory(cfg).unwrap();
    tman.execute_command("define data source feed (k int, v float)")
        .unwrap();
    let src = tman.source("feed").unwrap().id;
    let rx = tman.subscribe("Hit");
    for i in 0..100 {
        tman.execute_command(&format!(
            "create trigger f{i} from feed when feed.k = {} do raise event Hit(feed.k)",
            i % 10
        ))
        .unwrap();
    }
    let pool = tman.start_drivers();
    // Producers push tokens concurrently through the data-source API.
    let producers: Vec<_> = (0..4)
        .map(|p| {
            let tman = tman.clone();
            std::thread::spawn(move || {
                for i in 0..250u32 {
                    let k = ((p * 250 + i) % 10) as i64;
                    tman.push_token(tman_common::UpdateDescriptor::insert(
                        src,
                        tman_common::Tuple::new(vec![Value::Int(k), Value::Float(0.0)]),
                    ))
                    .unwrap();
                }
            })
        })
        .collect();
    for h in producers {
        h.join().unwrap();
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while tman.queue_len() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    // Let in-flight actions finish.
    std::thread::sleep(Duration::from_millis(50));
    pool.stop();
    assert!(tman.last_error().is_none(), "{:?}", tman.last_error());
    assert_eq!(tman.stats().tokens.get(), 1000);
    // 1000 tokens × 10 triggers per key value.
    assert_eq!(rx.try_iter().count(), 10_000);
}

#[test]
fn work_per_token_stays_flat_as_triggers_grow() {
    // The paper's central claim, as a behavioural (not timing) assertion:
    // doubling the trigger population must not double the per-token
    // predicate evaluations when constants are distinct.
    let mut residuals = Vec::new();
    for n in [1_000usize, 2_000, 4_000] {
        let tman = TriggerMan::open_memory(Config::default()).unwrap();
        tman.run_sql("create table z (k int)").unwrap();
        tman.execute_command("define data source z from table z")
            .unwrap();
        for i in 0..n {
            tman.execute_command(&format!(
                "create trigger z{i} from z when z.k = {i} do notify 'x'"
            ))
            .unwrap();
        }
        for k in 0..50 {
            tman.run_sql(&format!("insert into z values ({k})"))
                .unwrap();
        }
        tman.run_until_quiescent().unwrap();
        // Each token matches exactly one trigger; residual work is zero
        // (fully indexable) and probes are one per token per signature.
        assert_eq!(tman.stats().firings.get(), 50);
        residuals.push(tman.predicate_index().stats().probes.get());
    }
    assert_eq!(residuals[0], residuals[1]);
    assert_eq!(residuals[1], residuals[2]);
}

#[test]
fn wide_signature_population() {
    // "perhaps a few hundred or a few thousand [signatures] at most":
    // ensure the per-source signature list handles hundreds gracefully.
    let tman = TriggerMan::open_memory(Config::default()).unwrap();
    tman.run_sql("create table w (a int, b int, c int, d float, e varchar(8))")
        .unwrap();
    tman.execute_command("define data source w from table w")
        .unwrap();
    let cols = ["a", "b", "c"];
    let mut id = 0;
    for c1 in cols {
        for c2 in cols {
            if c1 == c2 {
                continue;
            }
            for op in ["=", ">", "<", ">=", "<="] {
                for op2 in ["=", ">"] {
                    tman.execute_command(&format!(
                        "create trigger w{id} from w when w.{c1} {op} {id} and w.{c2} {op2} {}
                         do notify 'x'",
                        id * 2
                    ))
                    .unwrap();
                    id += 1;
                }
            }
        }
    }
    // 6 column pairs × 5 ops × 2 ops = 60 distinct signatures.
    assert_eq!(tman.predicate_index().num_signatures(), 60);
    let rx = tman.subscribe("notify");
    tman.run_sql("insert into w values (0, 0, 0, 0, 'x')")
        .unwrap();
    tman.run_until_quiescent().unwrap();
    assert!(tman.last_error().is_none(), "{:?}", tman.last_error());
    // Every signature was probed once for the token.
    assert_eq!(tman.predicate_index().stats().signatures_probed.get(), 60);
    let _ = rx.try_iter().count();
}
