//! Differential oracle for windowed thresholds
//! (`when [pred] count >= K within W`).
//!
//! The reference is a naive in-test model: one `VecDeque` of effective
//! timestamps per windowed trigger, mirroring `WindowState` exactly —
//! monotone clamp (`eff = max(ts, last_ts)`), half-open eviction
//! (`<= eff − W`), fire iff at least K events remain after admission.
//! Every engine configuration under test (shard counts 1/2/4/8, drain
//! batches 1/16/256, a partitioned fan-out column that exercises the
//! window fan-out exclusion gate) must produce the model's exact firing
//! multiset on the same token stream, with constant-set organizations
//! forced through all five §5.2 kinds and active-shard width transitions
//! forced mid-stream.
//!
//! Timestamps are explicit (`ingest_unix_ns` is only stamped by the
//! engine when zero) and deliberately include out-of-order steps, so the
//! clamp is load-bearing: a mutant that rewinds on late timestamps
//! diverges immediately.
//!
//! Deterministic: pinned 32-byte seed; `WINDOW_CASES` bounds the case
//! count (CI keeps it small; the `--ignored` variant runs more).
//!
//! ---------------------------------------------------------------------
//! Mutation kill list (design-level, as in the disjunction oracle): each
//! mutant was checked by reasoning against the pinned-seed case stream
//! and the deterministic tests below.
//!
//! * `WindowState::observe`: drop the monotone clamp (admit raw `ts`) —
//!   the generator's negative deltas produce late timestamps that the
//!   mutant lets rewind the window edge; the model clamps, so eviction
//!   sets differ and the multisets diverge.
//! * `WindowState::observe`: evict with `<` instead of `<=` — integer
//!   millisecond deltas collide with integer window widths, so tokens
//!   land exactly on `eff − W` and the half-open boundary decides a
//!   firing; `window_boundary_is_half_open` in `window.rs` pins it too.
//! * `WindowState::observe`: test the threshold *before* admitting the
//!   event — every gate opens one event late and `count >= 1` windows
//!   never fire on their first event; any case with k = 1 diverges.
//! * `TriggerMan::admit_match`: observe the window before claiming the
//!   tag — a disjunctive windowed trigger (the `SymOr` predicate) whose
//!   arms both match one token double-counts that token; the model
//!   counts it once.
//! * `TriggerMan::admit_match`: ignore the observe verdict (fire on every
//!   matching event) — any k >= 2 case diverges on the pre-threshold
//!   prefix.
//! * `TriggerMan::process_token_on`: drop the `is_window_sig` fan-out
//!   exclusion — the partitioned engines route window probes through
//!   `SigPartition` tasks, which run after directly-probed later tokens;
//!   with out-of-order timestamps the observation order shift changes
//!   clamp outcomes and the partitioned column diverges.
//! * `TriggerMan::checkpoint`/`flush_acks`: skip `persist_windows` — the
//!   restart test reopens with an empty ring and the third event cannot
//!   cross its `count >= 3` threshold.
//! * `TriggerMan::recover`: skip the `window_state` hydrate loop — same
//!   lost-fire divergence in the restart test.
//! * `TriggerMan::expire_windows`: stop draining eviction tallies — the
//!   deterministic counter test pins `window_evictions() > 0` after a
//!   stream that ages entries out.
//! ---------------------------------------------------------------------

mod oracle_common;

use oracle_common::{env_cases, partitioned_cfg, q_tuple, seeded_runner, shard_cfg, Cond, Harness};
use proptest::prelude::*;
use std::collections::VecDeque;
use tman_common::{Tuple, UpdateDescriptor, Value};
use tman_expr::IndexPlan;
use tman_predindex::OrgKind;
use triggerman::{Config, TriggerMan};

const SEED: [u8; 32] = *b"tman-window-oracle-seed-000001!!";
/// Active-shard width forced before chunk `j`.
const FORCED_ACTIVE: [usize; 5] = [1, 2, 8, 3, 4];
/// Tokens pushed per drain round; >1 sizes exercise the batched path.
const CHUNK_SIZES: [usize; 5] = [1, 3, 7, 2, 5];
/// Constant-set organization forced onto every signature before chunk `j`.
const FORCED_ORGS: [OrgKind; 5] = [
    OrgKind::MemList,
    OrgKind::MemListDenorm,
    OrgKind::MemIndex,
    OrgKind::DbTable,
    OrgKind::DbIndexed,
];

/// A selection the in-test model can evaluate itself.
#[derive(Debug, Clone)]
enum Pred {
    /// Pure window: `when count >= K within W`, no selection at all.
    Any,
    SymEq(u32),
    PriceGt(i64),
    /// Disjunctive selection: under tagged execution the arms become two
    /// entries sharing a tag, so this also proves claim-before-window
    /// ordering (one observation per matching token, not per arm).
    SymOr(u32, u32),
}

impl Pred {
    fn matches(&self, sym: u32, price: i64) -> bool {
        match *self {
            Pred::Any => true,
            Pred::SymEq(s) => sym == s,
            Pred::PriceGt(p) => price > p,
            Pred::SymOr(a, b) => sym == a || sym == b,
        }
    }
}

/// One windowed trigger: selection + threshold K + width in milliseconds.
#[derive(Debug, Clone)]
struct WindowDef {
    pred: Pred,
    k: u64,
    w_ms: u64,
}

impl WindowDef {
    fn ddl(&self, i: usize) -> String {
        let window = format!("count >= {} within {} ms", self.k, self.w_ms);
        let when = match &self.pred {
            Pred::Any => window,
            Pred::SymEq(s) => format!("q.sym = 'S{s}' {window}"),
            Pred::PriceGt(p) => format!("q.price > {p} {window}"),
            Pred::SymOr(a, b) => format!("q.sym = 'S{a}' or q.sym = 'S{b}' {window}"),
        };
        format!("create trigger w{i} from q when {when} do raise event T{i}(q.sym)")
    }
}

fn arb_window() -> impl Strategy<Value = WindowDef> {
    let pred = prop_oneof![
        1 => Just(Pred::Any),
        3 => (0u32..4).prop_map(Pred::SymEq),
        3 => (0i64..80).prop_map(Pred::PriceGt),
        2 => (0u32..4, 0u32..4).prop_map(|(a, b)| Pred::SymOr(a, b)),
    ];
    (pred, 1u64..=4, 1u64..=30).prop_map(|(pred, k, w_ms)| WindowDef { pred, k, w_ms })
}

/// `(sym, price, delta_ms)`: the delta advances a shared millisecond
/// cursor and may be negative, producing out-of-order explicit stamps.
fn arb_tok() -> impl Strategy<Value = (u32, i64, i64)> {
    (0u32..5, 0i64..100, -5i64..=20)
}

/// The reference: `WindowState`'s documented semantics, reimplemented
/// naively (clamp, half-open eviction, fire iff len >= K after push).
struct ModelWindow {
    k: u64,
    w_ns: u64,
    ring: VecDeque<u64>,
    last_ts: u64,
}

impl ModelWindow {
    fn new(def: &WindowDef) -> ModelWindow {
        ModelWindow {
            k: def.k,
            w_ns: def.w_ms * 1_000_000,
            ring: VecDeque::new(),
            last_ts: 0,
        }
    }

    fn observe(&mut self, ts: u64) -> bool {
        let eff = ts.max(self.last_ts);
        self.last_ts = eff;
        let cutoff = eff.saturating_sub(self.w_ns);
        while self.ring.front().is_some_and(|&t| t <= cutoff) {
            self.ring.pop_front();
        }
        self.ring.push_back(eff);
        self.ring.len() as u64 >= self.k
    }
}

/// Force every signature of one engine into `kind`; unindexable classes
/// skip `MemIndex`, as the governor does.
fn force_org(h: &Harness, kind: OrgKind) {
    for rt in h.tman.predicate_index().all_signatures() {
        if kind == OrgKind::MemIndex && matches!(rt.sig.index_plan, IndexPlan::None) {
            continue;
        }
        rt.set_org(kind).unwrap();
    }
}

fn run_oracle(num_cases: u32) {
    let mut runner = seeded_runner(&SEED, num_cases);
    let strategy = (
        proptest::collection::vec(arb_window(), 1..6),
        proptest::collection::vec(arb_tok(), 1..24),
    );
    let result = runner.run(&strategy, |(defs, toks)| {
        // `Harness::with_actions` takes one Cond per trigger; the DDL
        // template below ignores them and renders from `defs` instead.
        let conds: Vec<Cond> = (0..defs.len()).map(|_| Cond(String::new())).collect();
        let build = |label: &str, cfg: Config| {
            Harness::with_actions(label, cfg, &conds, |i, _| defs[i].ddl(i))
        };
        let mut engines = vec![build("windows s=1 b=1", shard_cfg(1, 1))];
        for (s, b) in [(2usize, 16usize), (4, 256), (8, 1)] {
            engines.push(build(&format!("windows s={s} b={b}"), shard_cfg(s, b)));
        }
        for (s, b) in [(2usize, 16usize), (4, 1)] {
            engines.push(build(
                &format!("windows partitioned s={s} b={b}"),
                partitioned_cfg(s, b),
            ));
        }
        let mut model: Vec<ModelWindow> = defs.iter().map(ModelWindow::new).collect();
        // Explicit millisecond cursor; starts high enough that negative
        // deltas stay positive, and every stamp is nonzero so the engine
        // never re-stamps with the wall clock.
        let mut cursor_ms: i64 = 1_000;
        let mut pos = 0usize;
        let mut chunk_no = 0usize;
        while pos < toks.len() {
            let size = CHUNK_SIZES[chunk_no % CHUNK_SIZES.len()].min(toks.len() - pos);
            let org = FORCED_ORGS[chunk_no % FORCED_ORGS.len()];
            let width = FORCED_ACTIVE[chunk_no % FORCED_ACTIVE.len()];
            for h in &engines {
                force_org(h, org);
                h.tman.set_active_shards(width);
            }
            let mut chunk = Vec::with_capacity(size);
            let mut expected = Vec::new();
            for &(s, p, delta) in &toks[pos..pos + size] {
                cursor_ms += delta;
                let ts_ns = cursor_ms.max(1) as u64 * 1_000_000;
                let mut tok = UpdateDescriptor::insert(engines[0].src, q_tuple(s, p, 0));
                tok.ingest_unix_ns = ts_ns;
                chunk.push(tok);
                for (i, def) in defs.iter().enumerate() {
                    if def.pred.matches(s, p) && model[i].observe(ts_ns) {
                        expected.push(format!("T{i}"));
                    }
                }
            }
            expected.sort();
            for h in &engines {
                let fired = h.fire_chunk(&chunk);
                prop_assert_eq!(
                    &fired,
                    &expected,
                    "{} diverged from the window model on chunk {} ({} tokens, org {:?})",
                    h.label,
                    chunk_no,
                    size,
                    org
                );
            }
            pos += size;
            chunk_no += 1;
        }
        Ok(())
    });
    if let Err(e) = result {
        panic!("window oracle failed: {e}");
    }
}

#[test]
fn windowed_thresholds_match_naive_model() {
    run_oracle(env_cases("WINDOW_CASES", 24));
}

#[test]
#[ignore = "long window oracle sweep; run with --ignored"]
fn windowed_thresholds_match_naive_model_long() {
    run_oracle(env_cases("WINDOW_CASES", 24).max(96));
}

/// The acceptance pin, deterministically: a filtered window fires on every
/// matching event at or above threshold, non-matching events never count,
/// the fires are visible in `tman_window_fires_total`, and aged-out
/// entries drain into `tman_window_evictions_total` at maintenance.
#[test]
fn windowed_threshold_fires_and_counts() {
    let tman = TriggerMan::open_memory(Config::default()).unwrap();
    tman.execute_command("define data source q (sym varchar(12), price float, vol int)")
        .unwrap();
    let rx = tman.subscribe("Burst");
    tman.execute_command(
        "create trigger burst from q when q.sym = 'S0' count >= 3 within 100 ms \
         do raise event Burst(q.sym)",
    )
    .unwrap();
    let src = tman.source("q").unwrap().id;
    let push = |s: &str, ms: u64| {
        let mut tok = UpdateDescriptor::insert(
            src,
            Tuple::new(vec![Value::str(s), Value::Float(1.0), Value::Int(0)]),
        );
        tok.ingest_unix_ns = ms * 1_000_000;
        tman.push_token(tok).unwrap();
    };
    push("S0", 10);
    push("S0", 20);
    push("S1", 30); // filtered out: never enters the window
    push("S0", 40); // third matching event: fires
    push("S0", 50); // still over threshold: fires again
    push("S0", 500); // everything aged out: back to one in-window
    tman.run_until_quiescent().unwrap();
    assert!(tman.last_error().is_none(), "{:?}", tman.last_error());
    assert_eq!(
        rx.try_iter().count(),
        2,
        "fires at and above threshold only"
    );
    assert_eq!(tman.window_fires(), 2);
    assert_eq!(
        tman.window_evictions(),
        4,
        "the four pre-gap entries aged out and drained at maintenance"
    );
}

/// Dropping a windowed trigger discards its window and unblocks Figure-5
/// fan-out for the signature it was pinned to.
#[test]
fn dropped_window_trigger_goes_silent() {
    let tman = TriggerMan::open_memory(Config::default()).unwrap();
    tman.execute_command("define data source q (sym varchar(12), price float, vol int)")
        .unwrap();
    let rx = tman.subscribe("Burst");
    tman.execute_command(
        "create trigger burst from q when q.sym = 'S0' count >= 1 within 1 hours \
         do raise event Burst(q.sym)",
    )
    .unwrap();
    let src = tman.source("q").unwrap().id;
    let push = |ms: u64| {
        let mut tok = UpdateDescriptor::insert(
            src,
            Tuple::new(vec![Value::str("S0"), Value::Float(1.0), Value::Int(0)]),
        );
        tok.ingest_unix_ns = ms * 1_000_000;
        tman.push_token(tok).unwrap();
    };
    push(10);
    tman.run_until_quiescent().unwrap();
    assert_eq!(rx.try_iter().count(), 1);
    tman.execute_command("drop trigger burst").unwrap();
    push(20);
    tman.run_until_quiescent().unwrap();
    assert!(tman.last_error().is_none(), "{:?}", tman.last_error());
    assert_eq!(rx.try_iter().count(), 0, "dropped window stays silent");
}

/// At-least-once restart semantics: window state persisted at checkpoint
/// is hydrated on reopen, so a threshold armed before the restart crosses
/// on the first matching event after it.
#[test]
fn windowed_state_survives_restart() {
    let path = std::env::temp_dir().join(format!("tman_window_restart_{}.db", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut wal = path.as_os_str().to_owned();
    wal.push(".wal");
    let _ = std::fs::remove_file(std::path::PathBuf::from(&wal));

    let push = |tman: &std::sync::Arc<TriggerMan>, ms: u64| {
        let src = tman.source("q").unwrap().id;
        let mut tok = UpdateDescriptor::insert(
            src,
            Tuple::new(vec![Value::str("S0"), Value::Float(1.0), Value::Int(0)]),
        );
        tok.ingest_unix_ns = ms * 1_000_000_000;
        tman.push_token(tok).unwrap();
    };
    {
        let tman = TriggerMan::open_file(&path, Config::default()).unwrap();
        tman.execute_command("define data source q (sym varchar(12), price float, vol int)")
            .unwrap();
        let rx = tman.subscribe("Burst");
        tman.execute_command(
            "create trigger burst from q when q.sym = 'S0' count >= 3 within 1 hours \
             do raise event Burst(q.sym)",
        )
        .unwrap();
        push(&tman, 1);
        push(&tman, 2);
        tman.run_until_quiescent().unwrap();
        assert!(tman.last_error().is_none(), "{:?}", tman.last_error());
        assert_eq!(rx.try_iter().count(), 0, "two of three: gate still closed");
        tman.checkpoint().unwrap();
    }
    {
        let tman = TriggerMan::open_file(&path, Config::default()).unwrap();
        let rx = tman.subscribe("Burst");
        push(&tman, 3);
        tman.run_until_quiescent().unwrap();
        assert!(tman.last_error().is_none(), "{:?}", tman.last_error());
        assert_eq!(
            rx.try_iter().count(),
            1,
            "hydrated ring + one event crosses the persisted threshold"
        );
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(std::path::PathBuf::from(&wal));
}
