//! Crash-recovery differential harness.
//!
//! Each case runs a mixed workload (trigger DDL churn, data-source
//! inserts, token processing, checkpoints) against a file-backed engine
//! whose disk manager carries a seeded [`FaultPlan`] with a hard crash
//! point and a sprinkling of torn/transient write faults. File-backed
//! engines run on write-ahead-logged storage, so the faults land on log
//! appends, group-commit fsyncs, and checkpoint write-back alike, and the
//! reopen exercises recovery-time replay of the committed log tail. When
//! the crash point fires the disk freezes mid-workload; the engine is
//! dropped, thawed, and reopened, and the harness checks the recovery
//! contract:
//!
//! * **No lost tokens** — every update descriptor that was enqueued and
//!   covered by a successful checkpoint before the crash fires either
//!   before the crash or after the restart (at-least-once).
//! * **No double delivery after restart** — each descriptor fires at most
//!   once post-restart; rows at or below the durable queue watermark are
//!   deduplicated at open instead of redelivered.
//! * **Catalogs survive** — phase-A triggers and their
//!   `expression_signature` rows come back intact, and any extra trigger
//!   present after recovery is one the workload actually created.
//! * **Clean restarts are silent** — after draining and checkpointing,
//!   another restart delivers nothing.
//!
//! Every schedule derives from the case number, so a failure replays
//! exactly. `CRASH_CASES` bounds the default run; the `#[ignore]`d sweep
//! covers the full 64 cases (run it with `cargo test -- --ignored`).
//!
//! The **tagged** sweep re-runs the same schedule with every trigger
//! shaped as a two-arm disjunction whose arms BOTH match the trigger's
//! rows (`s.k = i or s.d = 'di'`): under tagged execution each fire is a
//! multi-disjunct fire deduplicated by a per-token tag claim, so the
//! post-restart "delivered at most once" assertion now also proves that
//! the redelivery paths (per-token, batched replay) re-arm claims — a
//! restart must not turn one logical fire into one per disjunct.

use std::collections::BTreeMap;
use tman_common::Value;
use tman_storage::{FaultConfig, FaultPlan};
use triggerman::{Config, QueueMode, TriggerMan};

/// Phase-A triggers r0..r{N-1}; inserts cycle k through 0..N so every
/// token matches exactly one trigger.
const TRIGGERS: usize = 12;
/// Safety valve: give up on a case if the crash point somehow never fires.
const MAX_OPS: u64 = 5_000;

fn tmpfile(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("tman_crash_{tag}_{}.db", std::process::id()))
}

/// Remove a database file and its write-ahead-log sidecar.
fn cleanup(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
    let mut wal = path.as_os_str().to_owned();
    wal.push(".wal");
    let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
}

/// Unique identity of the `serial`-th insert, as observed in a `Fired`
/// event (`values[1]` carries the row's varchar tag).
fn token_id(serial: u64) -> String {
    format!("{:?}", Value::str(format!("t{serial}")))
}

fn drain_fires(
    rx: &crossbeam::channel::Receiver<triggerman::EventNotification>,
    into: &mut BTreeMap<String, usize>,
) {
    for n in rx.try_iter() {
        let id = format!("{:?}", n.values[1]);
        *into.entry(id).or_default() += 1;
    }
}

/// How the sweep's rows and triggers are shaped. The plain family uses
/// one single-equality condition per trigger; the tagged family gives
/// every trigger two selectable disjuncts that both match its rows, so
/// every delivery exercises the tag-claim dedup.
struct Shape {
    table_sql: &'static str,
    trigger_ddl: fn(usize) -> String,
    insert_sql: fn(u64, usize) -> String,
    /// Predicate-index entries each phase-A trigger contributes (one per
    /// selectable disjunct under tagged execution).
    entries_per_trigger: usize,
    tagged: bool,
}

fn plain_trigger(i: usize) -> String {
    format!("create trigger r{i} from s when s.k = {i} do raise event Fired(s.k, s.v)")
}

fn plain_insert(serial: u64, k: usize) -> String {
    format!("insert into s values ({k}, 't{serial}')")
}

const PLAIN: Shape = Shape {
    table_sql: "create table s (k int, v varchar(16))",
    trigger_ddl: plain_trigger,
    insert_sql: plain_insert,
    entries_per_trigger: 1,
    tagged: false,
};

/// Both arms match every row the trigger fires on (`k = i` and
/// `d = 'di'`), and no other trigger's arm matches it, so the schedule's
/// one-trigger-per-token accounting carries over unchanged.
fn tagged_trigger(i: usize) -> String {
    format!(
        "create trigger r{i} from s when s.k = {i} or s.d = 'd{i}' \
         do raise event Fired(s.k, s.v)"
    )
}

fn tagged_insert(serial: u64, k: usize) -> String {
    format!("insert into s values ({k}, 't{serial}', 'd{k}')")
}

const TAGGED: Shape = Shape {
    table_sql: "create table s (k int, v varchar(16), d varchar(8))",
    trigger_ddl: tagged_trigger,
    insert_sql: tagged_insert,
    entries_per_trigger: 2,
    tagged: true,
};

fn crash_case(case: u64) {
    crash_case_cfg(case, Config::default(), "case", &PLAIN);
}

/// Same schedule, drained in 16-token batches across 4 shards: the crash
/// can now land *mid-batch* — after some of a batch's tokens executed and
/// fired but before the single group ack/watermark barrier that covers
/// the whole batch. Recovery must treat every token of the interrupted
/// batch as unacked and redeliver it (at-least-once), while tokens
/// covered by a completed barrier stay deduplicated (no double delivery).
fn crash_case_batched(case: u64) {
    let cfg = Config {
        shards: Some(4),
        drain_batch: 16,
        ..Default::default()
    };
    crash_case_cfg(case, cfg, "batched", &PLAIN);
}

/// The tagged-execution sweep: multi-disjunct triggers, alternating
/// between per-token and sharded/batched drain so the batch-replay path
/// also proves it re-arms tag claims on redelivered tokens.
fn crash_case_tagged(case: u64) {
    let cfg = if case % 2 == 0 {
        Config::default()
    } else {
        Config {
            shards: Some(4),
            drain_batch: 16,
            ..Default::default()
        }
    };
    crash_case_cfg(case, cfg, "tagged", &TAGGED);
}

fn crash_case_cfg(case: u64, base: Config, tag: &str, shape: &Shape) {
    let path = tmpfile(&format!("{tag}{case}"));
    cleanup(&path);
    // Every case pins its own schedule: a distinct RNG seed, a distinct
    // crash point, and mild background write faults.
    let plan = FaultPlan::new(FaultConfig {
        seed: 0xC0FFEE ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        crash_after_writes: Some(3 + (case * 7) % 120),
        torn_per_mille: 25,
        transient_per_mille: 40,
        ..Default::default()
    });
    let cfg = Config {
        queue_mode: QueueMode::Persistent,
        faults: Some(plan.clone()),
        ..base.clone()
    };

    let mut pre: BTreeMap<String, usize> = BTreeMap::new();
    // Serials whose insert succeeded, partitioned by whether a later
    // checkpoint succeeded (durable) or not yet (pending) at crash time.
    let mut durable: Vec<u64> = Vec::new();
    let mut pending: Vec<u64> = Vec::new();
    let mut tmp_attempted: Vec<String> = Vec::new();
    let (oracle_triggers, oracle_signatures) = {
        let tman = TriggerMan::open_file(&path, cfg).unwrap();
        let rx = tman.subscribe("Fired");
        // ----- phase A: reliable disk, all of this is durable ------------
        tman.run_sql(shape.table_sql).unwrap();
        tman.execute_command("define data source s from table s")
            .unwrap();
        for i in 0..TRIGGERS {
            tman.execute_command(&(shape.trigger_ddl)(i)).unwrap();
        }
        tman.checkpoint().unwrap();
        let oracle_triggers = tman.trigger_names();
        let oracle_signatures = format!(
            "{:?}",
            tman.run_sql("select * from expression_signature")
                .unwrap()
                .rows()
        );
        // ----- phase B: armed; failures tolerated, successes tracked -----
        plan.arm();
        let mut serial = 0u64;
        while !plan.crashed() && serial < MAX_OPS {
            let k = serial as usize % TRIGGERS;
            if tman.run_sql(&(shape.insert_sql)(serial, k)).is_ok() {
                pending.push(serial);
            }
            serial += 1;
            if serial % 4 == 0 && tman.checkpoint().is_ok() {
                durable.append(&mut pending);
            }
            if serial % 7 == 0 {
                let _ = tman.run_until_quiescent();
            }
            if serial % 11 == 0 {
                // DDL churn under fire: an ephemeral trigger that shares
                // the phase-A signature comes and (usually) goes.
                let name = format!("tmp{serial}");
                if tman
                    .execute_command(&format!(
                        "create trigger {name} from s when s.k = 999 do notify '{name}'"
                    ))
                    .is_ok()
                {
                    tmp_attempted.push(name.clone());
                    let _ = tman.execute_command(&format!("drop trigger {name}"));
                }
            }
        }
        assert!(plan.crashed(), "case {case}: crash point never fired");
        drain_fires(&rx, &mut pre);
        // The engine is dropped with the disk still frozen — exactly what
        // a process kill looks like to the storage layer.
        (oracle_triggers, oracle_signatures)
    };

    // ----- restart: thaw the disk, reopen without fault injection --------
    plan.reset_crash();
    plan.disarm();
    let cfg_clean = Config {
        queue_mode: QueueMode::Persistent,
        ..base
    };
    {
        let tman = TriggerMan::open_file(&path, cfg_clean.clone()).unwrap();
        let rx = tman.subscribe("Fired");

        // Watermark sanity: acknowledgements never outrun observed fires.
        let wm = tman
            .queue_watermark()
            .expect("persistent queue exposes a watermark");
        let pre_total: usize = pre.values().sum();
        assert!(
            wm >= 0 && wm as usize <= pre_total,
            "case {case}: durable watermark {wm} outran the {pre_total} fires \
             observed before the crash — an ack was recorded for a token that \
             never executed"
        );

        // Catalog recovery. Phase-A triggers must all be back; anything
        // else present must be a tmp trigger the workload really created.
        let survivors = tman.trigger_names();
        let (tmps, rs): (Vec<String>, Vec<String>) =
            survivors.into_iter().partition(|n| n.starts_with("tmp"));
        assert_eq!(
            rs, oracle_triggers,
            "case {case}: phase-A trigger catalog diverged after recovery"
        );
        for t in &tmps {
            assert!(
                tmp_attempted.contains(t),
                "case {case}: phantom trigger {t} appeared after recovery"
            );
        }
        // The tmp triggers are single-equality in both shapes; the phase-A
        // population contributes one entry per selectable disjunct.
        assert_eq!(
            tman.predicate_index().num_entries(),
            TRIGGERS * shape.entries_per_trigger + tmps.len(),
            "case {case}: predicate index out of step with the catalog"
        );
        if tmps.is_empty() {
            // No phase-B DDL survived, so the signature catalog must be
            // byte-identical to the phase-A oracle.
            let sigs = format!(
                "{:?}",
                tman.run_sql("select * from expression_signature")
                    .unwrap()
                    .rows()
            );
            assert_eq!(
                sigs, oracle_signatures,
                "case {case}: expression_signature rows diverged after recovery"
            );
        }

        // Drain everything the queue redelivers.
        tman.run_until_quiescent().unwrap();
        let mut post: BTreeMap<String, usize> = BTreeMap::new();
        drain_fires(&rx, &mut post);
        assert!(
            tman.last_error().is_none(),
            "case {case}: clean replay errored: {:?}",
            tman.last_error()
        );
        assert_eq!(tman.queue_len(), 0, "case {case}: queue not drained");

        // No lost tokens: every checkpoint-covered descriptor fired on at
        // least one side of the crash.
        for &serial in &durable {
            let id = token_id(serial);
            assert!(
                pre.contains_key(&id) || post.contains_key(&id),
                "case {case}: durable token t{serial} was lost"
            );
        }
        // No double delivery after restart. Under the tagged shape every
        // fire is a multi-disjunct fire, so this is also the proof that
        // replayed tokens claim their tags: an unarmed claim set admits
        // both arms and delivers twice.
        for (id, &n) in &post {
            assert!(
                n <= 1,
                "case {case}: token {id} delivered {n} times after restart"
            );
        }
        if shape.tagged {
            let post_total: usize = post.values().sum();
            assert!(
                tman.tag_dedup_hits() as usize >= post_total,
                "case {case}: {post_total} replayed multi-disjunct fires but only \
                 {} tag-dedup hits — a redelivered token ran with inert claims",
                tman.tag_dedup_hits()
            );
        }
        tman.checkpoint().unwrap();
    }

    // ----- a clean restart after a drained checkpoint delivers nothing ---
    {
        let tman = TriggerMan::open_file(&path, cfg_clean).unwrap();
        let rx = tman.subscribe("Fired");
        tman.run_until_quiescent().unwrap();
        assert_eq!(
            rx.try_iter().count(),
            0,
            "case {case}: clean shutdown redelivered tokens"
        );
    }
    cleanup(&path);
}

fn budget() -> u64 {
    std::env::var("CRASH_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6)
}

#[test]
fn crash_sweep_bounded() {
    for case in 0..budget() {
        crash_case(case);
    }
}

#[test]
fn crash_sweep_batched_drain() {
    for case in 0..budget() {
        crash_case_batched(case);
    }
}

#[test]
fn crash_sweep_tagged_disjunctions() {
    for case in 0..budget() {
        crash_case_tagged(case);
    }
}

/// The full pinned-seed sweep. Slow; run with `cargo test -- --ignored`.
#[test]
#[ignore]
fn crash_sweep_full() {
    for case in 0..64 {
        crash_case(case);
        crash_case_batched(case);
        crash_case_tagged(case);
    }
}
