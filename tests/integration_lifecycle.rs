//! End-to-end trigger lifecycle across all crates: language → compilation →
//! signatures → predicate index → networks → actions → events.

use tman_common::Value;
use triggerman::{Config, NetworkKind, TriggerMan};

fn fresh() -> std::sync::Arc<TriggerMan> {
    TriggerMan::open_memory(Config::default()).unwrap()
}

#[test]
fn full_lifecycle_create_fire_disable_drop() {
    let tman = fresh();
    tman.run_sql("create table orders (oid int, amount float, region varchar(8))")
        .unwrap();
    tman.execute_command("define data source orders from table orders")
        .unwrap();
    let rx = tman.subscribe("BigOrder");

    tman.execute_command(
        "create trigger big on insert to orders from orders \
         when orders.amount > 1000 do raise event BigOrder(orders.oid, orders.amount)",
    )
    .unwrap();

    // Fire.
    tman.run_sql("insert into orders values (1, 5000, 'east')")
        .unwrap();
    tman.run_sql("insert into orders values (2, 10, 'west')")
        .unwrap();
    tman.run_until_quiescent().unwrap();
    assert_eq!(rx.try_recv().unwrap().values[0], Value::Int(1));
    assert!(rx.try_recv().is_err());

    // Disable → silent.
    tman.execute_command("disable trigger big").unwrap();
    tman.run_sql("insert into orders values (3, 9999, 'east')")
        .unwrap();
    tman.run_until_quiescent().unwrap();
    assert!(rx.try_recv().is_err());

    // Re-enable → fires again.
    tman.execute_command("enable trigger big").unwrap();
    tman.run_sql("insert into orders values (4, 2000, 'east')")
        .unwrap();
    tman.run_until_quiescent().unwrap();
    assert_eq!(rx.try_recv().unwrap().values[0], Value::Int(4));

    // Drop → gone, index clean.
    tman.execute_command("drop trigger big").unwrap();
    tman.run_sql("insert into orders values (5, 3000, 'east')")
        .unwrap();
    tman.run_until_quiescent().unwrap();
    assert!(rx.try_recv().is_err());
    assert_eq!(tman.predicate_index().num_entries(), 0);
    assert!(tman.last_error().is_none(), "{:?}", tman.last_error());
}

#[test]
fn many_triggers_one_signature_index_scales() {
    let tman = fresh();
    tman.run_sql("create table m (k int, v float)").unwrap();
    tman.execute_command("define data source m from table m")
        .unwrap();
    for i in 0..2000 {
        tman.execute_command(&format!(
            "create trigger t{i} from m when m.k = {i} do notify 'k{i}'"
        ))
        .unwrap();
    }
    assert_eq!(tman.predicate_index().num_signatures(), 1);
    assert_eq!(tman.predicate_index().num_entries(), 2000);
    // The equivalence class should have been promoted off the linear list.
    let sig = &tman
        .predicate_index()
        .source(tman.source("m").unwrap().id)
        .unwrap()
        .signatures()[0];
    assert_eq!(sig.org_kind(), triggerman::OrgKind::MemIndex);

    let rx = tman.subscribe("notify");
    tman.run_sql("insert into m values (777, 1.0)").unwrap();
    tman.run_until_quiescent().unwrap();
    let msgs: Vec<_> = rx.try_iter().collect();
    assert_eq!(msgs.len(), 1);
    assert_eq!(msgs[0].message.as_deref(), Some("k777"));
    // Probe work is constant-ish: one signature probed per token.
    assert_eq!(tman.predicate_index().stats().signatures_probed.get(), 1);
}

#[test]
fn mixed_signatures_and_sql_actions_cooperate() {
    let tman = fresh();
    tman.run_sql("create table inv (item varchar(16), qty int)")
        .unwrap();
    tman.run_sql("create table reorders (item varchar(16), qty int)")
        .unwrap();
    tman.execute_command("define data source inv from table inv")
        .unwrap();
    tman.execute_command("define data source reorders from table reorders")
        .unwrap();

    // Low-stock triggers write into another captured table; a second
    // trigger watches that one (chaining).
    tman.execute_command(
        "create trigger lowstock from inv on update(inv.qty) when inv.qty < 10 \
         do execSQL 'insert into reorders values (:NEW.inv.item, 100)'",
    )
    .unwrap();
    let rx = tman.subscribe("Reordered");
    tman.execute_command(
        "create trigger confirm from reorders on insert to reorders \
         do raise event Reordered(reorders.item)",
    )
    .unwrap();

    tman.run_sql("insert into inv values ('widget', 50)")
        .unwrap();
    tman.run_sql("update inv set qty = 5 where item = 'widget'")
        .unwrap();
    tman.run_until_quiescent().unwrap();
    assert!(tman.last_error().is_none(), "{:?}", tman.last_error());
    assert_eq!(rx.try_recv().unwrap().values, vec![Value::str("widget")]);
    assert_eq!(
        tman.run_sql("select * from reorders").unwrap().rows().len(),
        1
    );
}

#[test]
fn join_trigger_lifecycle_on_every_network() {
    for kind in [
        NetworkKind::ATreat,
        NetworkKind::Treat,
        NetworkKind::Rete,
        NetworkKind::Gator,
    ] {
        let tman = TriggerMan::open_memory(Config {
            network: kind,
            ..Default::default()
        })
        .unwrap();
        tman.run_sql("create table a (x int)").unwrap();
        tman.run_sql("create table b (y int)").unwrap();
        tman.execute_command("define data source a from table a")
            .unwrap();
        tman.execute_command("define data source b from table b")
            .unwrap();
        let rx = tman.subscribe("Pair");
        tman.execute_command(
            "create trigger pair from a, b when a.x = b.y do raise event Pair(a.x)",
        )
        .unwrap();
        // Drain between correlated inserts: trigger processing is
        // asynchronous (§3), and A-TREAT's *virtual* alpha nodes scan live
        // base data — batching correlated updates would let a token see
        // rows inserted after it (double-counting the pair). Stored-memory
        // networks (TREAT/Rete) are insensitive to batching because their
        // memories advance in token order. Documented in DESIGN.md.
        for stmt in [
            "insert into a values (1)",
            "insert into b values (1)",
            "insert into b values (2)",
            "insert into a values (2)",
        ] {
            tman.run_sql(stmt).unwrap();
            tman.run_until_quiescent().unwrap();
        }
        assert!(
            tman.last_error().is_none(),
            "{kind:?}: {:?}",
            tman.last_error()
        );
        assert_eq!(rx.try_iter().count(), 2, "{kind:?}");
        // Deleting breaks future matches.
        tman.run_sql("delete from b where y = 1").unwrap();
        tman.run_sql("insert into a values (1)").unwrap();
        tman.run_until_quiescent().unwrap();
        assert_eq!(rx.try_iter().count(), 0, "{kind:?}");
    }
}

#[test]
fn trigger_set_grouping() {
    let tman = fresh();
    tman.run_sql("create table t (x int)").unwrap();
    tman.execute_command("define data source t from table t")
        .unwrap();
    tman.execute_command("create trigger set batch_a").unwrap();
    tman.execute_command("create trigger set batch_b").unwrap();
    let rx = tman.subscribe("notify");
    tman.execute_command("create trigger a1 in batch_a from t when t.x = 1 do notify 'a1'")
        .unwrap();
    tman.execute_command("create trigger b1 in batch_b from t when t.x = 1 do notify 'b1'")
        .unwrap();
    tman.execute_command("disable trigger set batch_a").unwrap();
    tman.run_sql("insert into t values (1)").unwrap();
    tman.run_until_quiescent().unwrap();
    let msgs: Vec<String> = rx.try_iter().filter_map(|n| n.message).collect();
    assert_eq!(msgs, vec!["b1".to_string()]);
    // Dropping a non-empty set is refused.
    assert!(tman.execute_command("drop trigger set batch_b").is_err());
    tman.execute_command("drop trigger b1").unwrap();
    tman.execute_command("drop trigger set batch_b").unwrap();
}
