//! Differential property test for the sharded, batch-draining engine: for
//! any trigger population and token stream, the multiset of firings must
//! be identical whether the engine runs with 1, 2, 4, or 8 shards and a
//! drain batch of 1, 16, or 256 tokens. The reference is the seed
//! configuration — one shard, one token per drain pass — so the oracle
//! catches every way batching can go wrong (sort-merge probes visiting an
//! entry twice or not at all, replay reordering maintenance against
//! matches, deferred acks dropping work) and every way sharding can
//! (fan-out tasks routed to a deactivated shard, steal scans skipping a
//! slot).
//!
//! Each case also forces active-shard-width transitions *mid-stream* and
//! interleaves trigger create/drop churn at fixed stream positions —
//! applied identically to every engine, so expectations stay comparable
//! while placement and constant-set membership shift under the drain loop.
//!
//! Deterministic: the proptest runner is seeded with a pinned 32-byte
//! seed. `SHARD_CASES` bounds the case count (CI keeps it small; the
//! `--ignored` variant runs more).

mod oracle_common;

use oracle_common::{
    arb_cond, arb_token, env_cases, partitioned_cfg, q_tuple, seeded_runner, shard_cfg, Harness,
};
use proptest::prelude::*;
use tman_common::UpdateDescriptor;

const SEED: [u8; 32] = *b"tman-shard-equivalence-seed-01!!";
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const BATCHES: [usize; 3] = [1, 16, 256];
/// Active-shard width forced before chunk `j` — engage/widen/narrow
/// transitions, including widths the clamp must cut down on small sets.
const FORCED_ACTIVE: [usize; 5] = [1, 2, 8, 3, 4];
/// Tokens pushed per drain round; >1 sizes exercise the batched path.
const CHUNK_SIZES: [usize; 5] = [1, 3, 7, 2, 5];

fn run_equivalence(num_cases: u32) {
    let mut runner = seeded_runner(&SEED, num_cases);
    let strategy = (
        proptest::collection::vec(arb_cond(), 1..16),
        proptest::collection::vec(arb_token(), 1..28),
    );
    let result = runner.run(&strategy, |(conds, toks)| {
        // Index 0 is the reference: one shard, one token per drain pass.
        let mut harnesses = vec![Harness::new("reference s=1 b=1", shard_cfg(1, 1), &conds)];
        for &s in &SHARD_COUNTS {
            for &b in &BATCHES {
                if (s, b) == (1, 1) {
                    continue;
                }
                harnesses.push(Harness::new(
                    &format!("s={s} b={b}"),
                    shard_cfg(s, b),
                    &conds,
                ));
            }
        }
        // A partitioned column: same widths, probes fanned out as tasks.
        for (s, b) in [(2, 16), (4, 256), (8, 1)] {
            harnesses.push(Harness::new(
                &format!("partitioned s={s} b={b}"),
                partitioned_cfg(s, b),
                &conds,
            ));
        }
        let mut names: Vec<String> = (0..conds.len()).map(|i| format!("p{i}")).collect();
        let mut next_churn = 0usize;
        let mut pos = 0usize;
        let mut chunk_no = 0usize;
        while pos < toks.len() {
            let size = CHUNK_SIZES[chunk_no % CHUNK_SIZES.len()].min(toks.len() - pos);
            // Force a width transition on every sharded engine (the set
            // clamps to its own shard count).
            let width = FORCED_ACTIVE[chunk_no % FORCED_ACTIVE.len()];
            for h in &harnesses[1..] {
                h.tman.set_active_shards(width);
            }
            // DDL churn at fixed stream positions, identically everywhere.
            if chunk_no % 3 == 1 {
                let cmd = format!(
                    "create trigger c{next_churn} from q when q.vol >= {} \
                     do raise event C{next_churn}(q.sym)",
                    (next_churn * 7) % 40
                );
                for h in &harnesses {
                    h.tman.execute_command(&cmd).unwrap();
                }
                names.push(format!("c{next_churn}"));
                next_churn += 1;
            } else if chunk_no % 3 == 2 && names.len() > 1 {
                let victim = names.remove(chunk_no % names.len());
                for h in &harnesses {
                    h.tman
                        .execute_command(&format!("drop trigger {victim}"))
                        .unwrap();
                }
            }
            let chunk: Vec<UpdateDescriptor> = toks[pos..pos + size]
                .iter()
                .map(|(s, p, v)| UpdateDescriptor::insert(harnesses[0].src, q_tuple(*s, *p, *v)))
                .collect();
            let expected = harnesses[0].fire_chunk(&chunk);
            for h in &harnesses[1..] {
                let fired = h.fire_chunk(&chunk);
                prop_assert_eq!(
                    &fired,
                    &expected,
                    "{} diverged from reference on chunk {} ({} tokens)",
                    h.label,
                    chunk_no,
                    size
                );
            }
            pos += size;
            chunk_no += 1;
        }
        Ok(())
    });
    if let Err(e) = result {
        panic!("shard/batch equivalence failed: {e}");
    }
}

#[test]
fn sharded_batched_firing_multisets_match_reference() {
    run_equivalence(env_cases("SHARD_CASES", 32));
}

#[test]
#[ignore = "long shard/batch equivalence sweep; run with --ignored"]
fn sharded_batched_firing_multisets_match_reference_long() {
    run_equivalence(env_cases("SHARD_CASES", 32).max(128));
}
