//! Durability: catalogs, constant tables, the persistent update queue and
//! trigger recompilation across restarts.

use tman_common::Value;
use triggerman::{Config, QueueMode, TriggerMan};

fn tmpfile(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("tman_it_{tag}_{}.db", std::process::id()))
}

#[test]
fn full_restart_cycle_with_many_triggers() {
    let path = tmpfile("many");
    let _ = std::fs::remove_file(&path);
    let cfg = Config {
        queue_mode: QueueMode::Persistent,
        ..Default::default()
    };
    {
        let tman = TriggerMan::open_file(&path, cfg.clone()).unwrap();
        tman.run_sql("create table s (k int, v varchar(16))")
            .unwrap();
        tman.execute_command("define data source s from table s")
            .unwrap();
        for i in 0..300 {
            tman.execute_command(&format!(
                "create trigger r{i} from s when s.k = {i} do notify 'r{i}'"
            ))
            .unwrap();
        }
        // Base data + unprocessed updates.
        tman.run_sql("insert into s values (42, 'pending')")
            .unwrap();
        tman.checkpoint().unwrap();
    }
    {
        let tman = TriggerMan::open_file(&path, cfg.clone()).unwrap();
        assert_eq!(tman.trigger_names().len(), 300);
        assert_eq!(tman.predicate_index().num_entries(), 300);
        assert_eq!(tman.predicate_index().num_signatures(), 1);
        let rx = tman.subscribe("notify");
        // The queued token from before the restart processes now.
        tman.run_until_quiescent().unwrap();
        let msgs: Vec<String> = rx.try_iter().filter_map(|n| n.message).collect();
        assert_eq!(msgs, vec!["r42".to_string()]);
        // Base table rows survived too.
        assert_eq!(tman.run_sql("select * from s").unwrap().rows().len(), 1);
        // Drop some triggers, restart again.
        for i in 0..100 {
            tman.execute_command(&format!("drop trigger r{i}")).unwrap();
        }
        tman.checkpoint().unwrap();
    }
    {
        let tman = TriggerMan::open_file(&path, cfg).unwrap();
        assert_eq!(tman.trigger_names().len(), 200);
        let rx = tman.subscribe("notify");
        tman.run_sql("insert into s values (50, 'x')").unwrap();
        tman.run_sql("insert into s values (150, 'y')").unwrap();
        tman.run_until_quiescent().unwrap();
        let mut msgs: Vec<String> = rx.try_iter().filter_map(|n| n.message).collect();
        msgs.sort();
        assert_eq!(msgs, vec!["r150".to_string()]); // r50 was dropped
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn enabled_flags_survive_restart() {
    let path = tmpfile("flags");
    let _ = std::fs::remove_file(&path);
    {
        let tman = TriggerMan::open_file(&path, Config::default()).unwrap();
        tman.run_sql("create table t (x int)").unwrap();
        tman.execute_command("define data source t from table t")
            .unwrap();
        tman.execute_command("create trigger on_t from t when t.x = 1 do notify 'hit'")
            .unwrap();
        tman.execute_command("disable trigger on_t").unwrap();
        tman.checkpoint().unwrap();
    }
    {
        let tman = TriggerMan::open_file(&path, Config::default()).unwrap();
        let rx = tman.subscribe("notify");
        tman.run_sql("insert into t values (1)").unwrap();
        tman.run_until_quiescent().unwrap();
        assert!(rx.try_recv().is_err(), "disabled flag must persist");
        tman.execute_command("enable trigger on_t").unwrap();
        tman.run_sql("insert into t values (1)").unwrap();
        tman.run_until_quiescent().unwrap();
        assert!(rx.try_recv().is_ok());
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn signature_catalog_reflects_organizations() {
    let path = tmpfile("sigcat");
    let _ = std::fs::remove_file(&path);
    {
        let cfg = Config {
            index: tman_predindex::IndexConfig {
                list_to_index: 8,
                ..Default::default()
            },
            ..Default::default()
        };
        let tman = TriggerMan::open_file(&path, cfg).unwrap();
        tman.run_sql("create table t (x int)").unwrap();
        tman.execute_command("define data source t from table t")
            .unwrap();
        for i in 0..50 {
            tman.execute_command(&format!(
                "create trigger g{i} from t when t.x = {i} do notify 'x'"
            ))
            .unwrap();
        }
        tman.checkpoint().unwrap();
        // Catalog rows carry size + organization.
        let rows = tman
            .run_sql("select constantSetSize, constantSetOrganization from expression_signature")
            .unwrap()
            .rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0), &Value::Int(50));
        assert_eq!(rows[0].get(1), &Value::str("mem_index"));
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn join_triggers_reprime_after_restart() {
    let path = tmpfile("joins");
    let _ = std::fs::remove_file(&path);
    let cfg = Config {
        network: triggerman::NetworkKind::Treat,
        ..Default::default()
    };
    {
        let tman = TriggerMan::open_file(&path, cfg.clone()).unwrap();
        tman.run_sql("create table l (x int)").unwrap();
        tman.run_sql("create table r (y int)").unwrap();
        tman.execute_command("define data source l from table l")
            .unwrap();
        tman.execute_command("define data source r from table r")
            .unwrap();
        tman.run_sql("insert into r values (7)").unwrap();
        tman.run_until_quiescent().unwrap();
        tman.execute_command("create trigger lr from l, r when l.x = r.y do raise event LR(l.x)")
            .unwrap();
        tman.checkpoint().unwrap();
    }
    {
        // After restart the TREAT alpha memories must be re-primed from the
        // base table (r still holds 7).
        let tman = TriggerMan::open_file(&path, cfg).unwrap();
        let rx = tman.subscribe("LR");
        tman.run_sql("insert into l values (7)").unwrap();
        tman.run_until_quiescent().unwrap();
        assert!(tman.last_error().is_none(), "{:?}", tman.last_error());
        assert_eq!(rx.try_recv().unwrap().values, vec![Value::Int(7)]);
    }
    let _ = std::fs::remove_file(&path);
}
