//! Concurrency stress for the sharded, batch-draining engine: live driver
//! threads bound to different shards drain batches while other threads
//! churn triggers (create/drop races against in-flight probes and pins),
//! run governor and partition-controller passes, toggle the active-shard
//! width, and async rule actions hop shards as `Task::Action`. The
//! invariants: every token is processed, the sentinel fires exactly once
//! per matching token (no duplicate and no lost firings), no task dies
//! with an error, and the per-shard token counters account for the whole
//! stream.
//!
//! The fast variant keeps CI under a few seconds; the `--ignored` soak
//! runs the same schedule long enough to surface rare interleavings.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use triggerman::{Config, Partitioning, TriggerMan};

fn sharded_stress(tokens: usize, churn_iters: usize) {
    let cfg = Config {
        shards: Some(4),
        drain_batch: 16,
        num_cpus: Some(4),
        partitioning: Partitioning::Adaptive,
        partition_min: 1,
        async_actions: true,
        ..Default::default()
    };
    let tman = TriggerMan::open_memory(cfg).unwrap();
    tman.run_sql("create table emp (name varchar(32), salary float, dept int)")
        .unwrap();
    tman.execute_command("define data source emp from table emp")
        .unwrap();
    let rx = tman.subscribe("Hit");
    tman.execute_command(
        "create trigger sentinel from emp when emp.dept = 777 do raise event Hit(emp.name)",
    )
    .unwrap();
    // Siblings in the sentinel's signature class so partitioned probes and
    // shard routing both see >1 entry.
    for i in 0..16 {
        tman.execute_command(&format!(
            "create trigger seed{i} from emp when emp.dept = {i} do notify 's'"
        ))
        .unwrap();
    }
    let pool = tman.start_drivers();
    let stop = Arc::new(AtomicBool::new(false));

    // DDL churn racing the drivers' probe/pin path.
    let churn = {
        let tman = tman.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            for i in 0..churn_iters {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let name = format!("churn{}", 1000 + i % 8);
                let _ = tman.execute_command(&format!(
                    "create trigger {name} from emp when emp.dept = {} do notify 'c'",
                    100 + i % 8
                ));
                std::thread::yield_now();
                let _ = tman.execute_command(&format!("drop trigger {name}"));
            }
        })
    };
    // Governor + controller passes + active-shard toggling, all racing the
    // drain loop. The controller pass may itself re-steer the width the
    // toggle just set — exactly the race the engine must tolerate.
    let toggle = {
        let tman = tman.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut w = 0usize;
            while !stop.load(Ordering::Relaxed) {
                tman.run_governor();
                let _ = tman.run_partition_pass();
                tman.set_active_shards([1, 4, 2, 3][w % 4]);
                w += 1;
                std::thread::yield_now();
            }
        })
    };

    for i in 0..tokens {
        // Every third token matches the sentinel.
        let dept = if i % 3 == 0 { 777 } else { (i % 8) as i64 };
        tman.run_sql(&format!("insert into emp values ('t{i}', 1, {dept})"))
            .unwrap();
    }
    let expected = tokens.div_ceil(3) as u64;

    // Drivers drain asynchronously; wait (bounded) for quiescence.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while (tman.metrics_snapshot().engine.tokens < tokens as u64 || tman.queue_len() > 0)
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(2));
    }
    stop.store(true, Ordering::Relaxed);
    churn.join().unwrap();
    toggle.join().unwrap();
    drop(pool); // joins driver threads; hanging here would be a deadlock
    tman.run_until_quiescent().unwrap(); // flush any still-queued actions

    assert!(tman.last_error().is_none(), "{:?}", tman.last_error());
    let m = tman.metrics_snapshot();
    assert_eq!(m.engine.tokens, tokens as u64, "tokens processed");
    let per_shard: u64 = m.driver.shards.iter().map(|s| s.tokens).sum();
    assert_eq!(per_shard, tokens as u64, "per-shard counters cover stream");
    assert!(m.driver.shards.iter().all(|s| s.queue_depth == 0));
    let hits = rx.try_iter().count() as u64;
    assert_eq!(hits, expected, "sentinel fires exactly once per match");
    // The engine is still functional after the storm.
    let rx2 = tman.subscribe("Hit");
    tman.run_sql("insert into emp values ('after', 1, 777)")
        .unwrap();
    tman.run_until_quiescent().unwrap();
    assert_eq!(rx2.try_iter().count(), 1);
}

#[test]
fn sharded_drain_survives_churn_governor_and_width_toggles() {
    sharded_stress(200, 50);
}

#[test]
#[ignore = "long sharded concurrency soak; run with --ignored"]
fn sharded_drain_soak() {
    sharded_stress(4000, 800);
}
