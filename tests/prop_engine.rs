//! Randomized end-to-end property test: the full engine (parser →
//! signatures → predicate index → network → actions) agrees with the naive
//! ECA baseline on which triggers fire for which updates.

use proptest::prelude::*;
use std::sync::Arc;
use tman_baseline::NaiveEca;
use tman_common::{EventKind, Tuple, UpdateDescriptor, Value};
use triggerman::{Config, TriggerMan};

#[derive(Debug, Clone)]
struct Cond(String);

fn arb_cond() -> impl Strategy<Value = Cond> {
    let sym = 0u32..6;
    let price = 0i64..100;
    prop_oneof![
        sym.clone().prop_map(|s| Cond(format!("q.sym = 'S{s}'"))),
        price.clone().prop_map(|p| Cond(format!("q.price > {p}"))),
        (price.clone(), 1i64..30)
            .prop_map(|(p, w)| Cond(format!("q.price > {p} and q.price <= {}", p + w))),
        (sym.clone(), price.clone())
            .prop_map(|(s, p)| Cond(format!("q.sym = 'S{s}' and q.price >= {p}"))),
        (sym.clone(), sym.clone())
            .prop_map(|(a, b)| Cond(format!("q.sym = 'S{a}' or q.sym = 'S{b}'"))),
        price
            .clone()
            .prop_map(|p| Cond(format!("not (q.price <= {p})"))),
        (0i64..50).prop_map(|v| Cond(format!("q.vol = {v}"))),
        (sym, 0i64..50).prop_map(|(s, v)| { Cond(format!("q.sym <> 'S{s}' and q.vol = {v}")) }),
    ]
}

fn arb_token() -> impl Strategy<Value = (u32, i64, i64)> {
    (0u32..8, 0i64..110, 0i64..55)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_matches_equal_naive_baseline(
        conds in proptest::collection::vec(arb_cond(), 1..24),
        toks in proptest::collection::vec(arb_token(), 1..24),
    ) {
        let tman = TriggerMan::open_memory(Config::default()).unwrap();
        tman.execute_command("define data source q (sym varchar(12), price float, vol int)")
            .unwrap();
        let src = tman.source("q").unwrap().id;
        let schema = tman.source("q").unwrap().schema.clone();
        let eca = NaiveEca::new();
        let rx = tman.events().subscribe_all();

        for (i, c) in conds.iter().enumerate() {
            tman.execute_command(&format!(
                "create trigger p{i} from q when {} do raise event T{i}(q.sym)",
                c.0
            ))
            .unwrap();
            eca.add_trigger(
                tman_common::TriggerId(i as u64),
                src,
                EventKind::InsertOrUpdate,
                "q",
                &schema,
                &c.0,
            )
            .unwrap();
        }

        for (s, p, v) in &toks {
            let tuple = Tuple::new(vec![
                Value::str(format!("S{s}")),
                Value::Float(*p as f64),
                Value::Int(*v),
            ]);
            let tok = UpdateDescriptor::insert(src, tuple);
            tman.push_token(tok.clone()).unwrap();
            tman.run_until_quiescent().unwrap();
            prop_assert!(tman.last_error().is_none(), "{:?}", tman.last_error());

            let mut engine_fired: Vec<String> =
                rx.try_iter().map(|n| n.event.to_lowercase()).collect();
            engine_fired.sort();
            let mut baseline: Vec<String> = eca
                .match_token(&tok)
                .unwrap()
                .into_iter()
                .map(|t| format!("t{}", t.raw()))
                .collect();
            baseline.sort();
            prop_assert_eq!(engine_fired, baseline, "token {:?}", tok);
        }
        let _ = Arc::strong_count(&tman);
    }
}
