//! Differential oracle for indexed disjunctions (tagged execution).
//!
//! With `IndexConfig::tagged_disjunctions` on, an OR-trigger whose
//! disjuncts are all selectable registers one predicate entry *per
//! disjunct* — across multiple constant sets — with a shared tag; a token
//! that satisfies several disjuncts must still fire the trigger exactly
//! once, deduplicated by per-token tag claims. The reference side of this
//! oracle is the same engine with tagged disjunctions **off**: OR trees
//! stay single residual-scan entries, the genuine pre-tagging evaluation
//! strategy, so any lost firing (a disjunct entry dropped), duplicate
//! firing (a claim missed), or phantom firing (a branch residual
//! mis-built) diverges the multisets.
//!
//! Each case sweeps the tagged engines across shard counts and drain
//! batches (per-token and sort-merge batched probe paths), a partitioned
//! fan-out column, forced constant-set organization transitions
//! mid-stream (mem list → denorm → mem index → db table → db indexed —
//! the governor's §5.2 migrations, forced deterministically), forced
//! active-shard transitions, and OR-trigger create/drop churn (tagged
//! entry cleanup).
//!
//! Deterministic: pinned 32-byte seed; `DISJUNCTION_CASES` bounds the
//! case count (CI keeps it small; the `--ignored` variant runs more).
//!
//! ---------------------------------------------------------------------
//! Mutation kill list (design-level, in the spirit of DESIGN.md's
//! "mutation-tested" notes): each mutant below was checked by reasoning
//! against the pinned-seed case stream, and diverges from the residual
//! reference within the bounded case budget.
//!
//! * `TriggerMan::admit_match`: drop the tag-claim check (always admit) —
//!   any token satisfying two overlapping disjuncts (`q.price > a or
//!   q.price > b` fires both arms for prices above `max(a, b)`) fires the
//!   trigger twice; the multiset gains a duplicate event name.
//! * `TagClaims::claim`: return `true` unconditionally — same double-fire
//!   as above; the deterministic unit test below also pins
//!   `tag_dedup_hits() == 1` and fails on zero.
//! * `decompose_disjunction`: emit only the bare atom instead of the full
//!   CNF with the OR-conjunct replaced — `(a or b) and residual` branch
//!   entries lose the residual conjunct and fire on tokens that fail it;
//!   phantom events vs the reference.
//! * `decompose_disjunction`: skip the last disjunct (off-by-one) —
//!   tokens matching only that arm never fire; lost events.
//! * `register_predicates`: reuse one `ExprId` for every branch — entries
//!   collide in the per-signature maps; single-arm matches lost.
//! * `register_predicates`: fresh tag per *branch* instead of per trigger
//!   — claims no longer dedupe across arms; duplicate firings.
//! * `drop_trigger`: skip the `pred_meta`/`trigger_exprs` cleanup — the
//!   churn phase re-creates triggers while stale metadata maps tags for
//!   dead `ExprId`s; the live-entry gauge (`tman_tagged_entries`) pinned
//!   by the unit test drifts from zero after the drop.
//! * `arm_token`: skip arming (claims stay inert) — inert claim sets
//!   admit every match; duplicates as in the first mutant.
//! ---------------------------------------------------------------------

mod oracle_common;

use oracle_common::{
    arb_token, env_cases, partitioned_cfg, q_tuple, residual_cfg, seeded_runner, shard_cfg, Cond,
    Harness,
};
use proptest::prelude::*;
use tman_common::{Tuple, UpdateDescriptor, Value};
use tman_expr::IndexPlan;
use tman_predindex::OrgKind;
use triggerman::{Config, NetworkKind, TriggerMan};

const SEED: [u8; 32] = *b"tman-disjunction-oracle-seed-1!!";
/// Active-shard width forced before chunk `j`.
const FORCED_ACTIVE: [usize; 5] = [1, 2, 8, 3, 4];
/// Tokens pushed per drain round; >1 sizes exercise the batched path.
const CHUNK_SIZES: [usize; 5] = [1, 3, 7, 2, 5];
/// Constant-set organization forced onto every signature before chunk `j`.
const FORCED_ORGS: [OrgKind; 5] = [
    OrgKind::MemList,
    OrgKind::MemListDenorm,
    OrgKind::MemIndex,
    OrgKind::DbTable,
    OrgKind::DbIndexed,
];

/// One selectable disjunct: a column-vs-constant comparison the
/// decomposer can register as its own entry.
fn sel_atom() -> impl Strategy<Value = String> {
    prop_oneof![
        (0u32..6).prop_map(|s| format!("q.sym = 'S{s}'")),
        (0i64..100).prop_map(|p| format!("q.price > {p}")),
        (0i64..50).prop_map(|v| format!("q.vol = {v}")),
    ]
}

/// OR conditions: mostly decomposable (2–4 selectable arms, optionally an
/// AND residual the branch CNFs must retain), plus a slice that must NOT
/// decompose (a non-selectable arm) so both engines agree on the
/// residual-scan fallback too.
fn arb_or_cond() -> impl Strategy<Value = Cond> {
    let arms = proptest::collection::vec(sel_atom(), 2..=4);
    prop_oneof![
        4 => (arms, proptest::option::weighted(0.4, 0i64..40)).prop_map(|(a, residual)| {
            let or = a.join(" or ");
            Cond(match residual {
                Some(v) => format!("({or}) and q.vol >= {v}"),
                None => or,
            })
        }),
        1 => (0u32..6, 0i64..50)
            .prop_map(|(s, v)| Cond(format!("q.sym <> 'S{s}' or q.vol = {v}"))),
    ]
}

/// Force every signature of one engine into `kind` (the §5.2 migration
/// the governor would perform, applied deterministically). Unindexable
/// classes skip `MemIndex`, as the governor does.
fn force_org(h: &Harness, kind: OrgKind) {
    for rt in h.tman.predicate_index().all_signatures() {
        if kind == OrgKind::MemIndex && matches!(rt.sig.index_plan, IndexPlan::None) {
            continue;
        }
        rt.set_org(kind).unwrap();
    }
}

fn run_oracle(num_cases: u32) {
    let mut runner = seeded_runner(&SEED, num_cases);
    let strategy = (
        proptest::collection::vec(arb_or_cond(), 1..10),
        proptest::collection::vec(arb_token(), 1..24),
    );
    let result = runner.run(&strategy, |(conds, toks)| {
        // Reference: residual scan (tagged off), one shard, one token per
        // drain pass.
        let reference = Harness::new("residual s=1 b=1", residual_cfg(shard_cfg(1, 1)), &conds);
        // Candidates: tagged engines across the shard/batch grid plus a
        // partitioned fan-out column.
        let mut tagged = vec![Harness::new("tagged s=1 b=1", shard_cfg(1, 1), &conds)];
        for (s, b) in [(2usize, 16usize), (4, 256), (8, 1)] {
            tagged.push(Harness::new(
                &format!("tagged s={s} b={b}"),
                shard_cfg(s, b),
                &conds,
            ));
        }
        for (s, b) in [(2usize, 16usize), (4, 1)] {
            tagged.push(Harness::new(
                &format!("tagged partitioned s={s} b={b}"),
                partitioned_cfg(s, b),
                &conds,
            ));
        }
        let mut names: Vec<String> = (0..conds.len()).map(|i| format!("p{i}")).collect();
        let mut next_churn = 0usize;
        let mut pos = 0usize;
        let mut chunk_no = 0usize;
        while pos < toks.len() {
            let size = CHUNK_SIZES[chunk_no % CHUNK_SIZES.len()].min(toks.len() - pos);
            // Force an organization migration everywhere, a width
            // transition on the sharded engines, and OR-trigger churn —
            // identically across reference and candidates.
            let org = FORCED_ORGS[chunk_no % FORCED_ORGS.len()];
            force_org(&reference, org);
            let width = FORCED_ACTIVE[chunk_no % FORCED_ACTIVE.len()];
            for h in &tagged {
                force_org(h, org);
                h.tman.set_active_shards(width);
            }
            if chunk_no % 3 == 1 {
                let cmd = format!(
                    "create trigger c{next_churn} from q \
                     when q.sym = 'S{}' or q.vol = {} \
                     do raise event C{next_churn}(q.sym)",
                    next_churn % 6,
                    (next_churn * 7) % 40
                );
                reference.tman.execute_command(&cmd).unwrap();
                for h in &tagged {
                    h.tman.execute_command(&cmd).unwrap();
                }
                names.push(format!("c{next_churn}"));
                next_churn += 1;
            } else if chunk_no % 3 == 2 && names.len() > 1 {
                let victim = names.remove(chunk_no % names.len());
                let cmd = format!("drop trigger {victim}");
                reference.tman.execute_command(&cmd).unwrap();
                for h in &tagged {
                    h.tman.execute_command(&cmd).unwrap();
                }
            }
            let chunk: Vec<UpdateDescriptor> = toks[pos..pos + size]
                .iter()
                .map(|(s, p, v)| UpdateDescriptor::insert(reference.src, q_tuple(*s, *p, *v)))
                .collect();
            let expected = reference.fire_chunk(&chunk);
            for h in &tagged {
                let fired = h.fire_chunk(&chunk);
                prop_assert_eq!(
                    &fired,
                    &expected,
                    "{} diverged from residual reference on chunk {} ({} tokens, org {:?})",
                    h.label,
                    chunk_no,
                    size,
                    org
                );
            }
            pos += size;
            chunk_no += 1;
        }
        Ok(())
    });
    if let Err(e) = result {
        panic!("disjunction oracle failed: {e}");
    }
}

#[test]
fn tagged_disjunctions_match_residual_reference() {
    run_oracle(env_cases("DISJUNCTION_CASES", 24));
}

#[test]
#[ignore = "long disjunction oracle sweep; run with --ignored"]
fn tagged_disjunctions_match_residual_reference_long() {
    run_oracle(env_cases("DISJUNCTION_CASES", 24).max(96));
}

/// The acceptance pin, deterministically: an OR-trigger entering two
/// constant sets fires exactly once on a token matching both disjuncts,
/// the dedup is observable in `tman_tag_dedup_hits_total`, and dropping
/// the trigger returns the live tagged-entry gauge to zero.
#[test]
fn or_trigger_fires_once_per_token_and_cleans_up() {
    let tman = TriggerMan::open_memory(Config::default()).unwrap();
    tman.execute_command("define data source q (sym varchar(12), price float, vol int)")
        .unwrap();
    let rx = tman.subscribe("Hit");
    tman.execute_command(
        "create trigger both from q when q.sym = 'S0' or q.price > 10 \
         do raise event Hit(q.sym)",
    )
    .unwrap();
    assert_eq!(
        tman.tagged_entries(),
        2,
        "one tagged entry per selectable disjunct"
    );
    let src = tman.source("q").unwrap().id;
    let push = |s: &str, p: f64| {
        tman.push_token(UpdateDescriptor::insert(
            src,
            Tuple::new(vec![Value::str(s), Value::Float(p), Value::Int(0)]),
        ))
        .unwrap();
    };
    // Matches both disjuncts: exactly one fire, one dedup hit.
    push("S0", 50.0);
    tman.run_until_quiescent().unwrap();
    assert!(tman.last_error().is_none(), "{:?}", tman.last_error());
    assert_eq!(rx.try_iter().count(), 1, "multi-disjunct match fired once");
    assert_eq!(tman.tag_dedup_hits(), 1);
    // Matches one disjunct each: one fire each, no new dedup hits.
    push("S0", 5.0);
    push("S9", 50.0);
    // Matches neither: no fire.
    push("S9", 5.0);
    tman.run_until_quiescent().unwrap();
    assert_eq!(rx.try_iter().count(), 2);
    assert_eq!(tman.tag_dedup_hits(), 1);

    tman.execute_command("drop trigger both").unwrap();
    assert_eq!(tman.tagged_entries(), 0, "drop removes tagged entries");
    push("S0", 50.0);
    tman.run_until_quiescent().unwrap();
    assert_eq!(rx.try_iter().count(), 0, "dropped trigger stays silent");
}

/// Multi-variable (join) triggers also decompose per tuple variable; the
/// stored-memory maintenance path must retract an updated row's old image
/// exactly once even when it matched several disjunct entries.
#[test]
fn multi_disjunct_join_trigger_retracts_old_image_once() {
    // TREAT: stored alpha memories, so the synthetic-delete maintenance
    // path (not on-the-fly recomputation) services the update.
    let tman = TriggerMan::open_memory(Config {
        network: NetworkKind::Treat,
        ..Config::default()
    })
    .unwrap();
    tman.run_sql("create table sp (spno int, name varchar(20), grade int)")
        .unwrap();
    tman.execute_command("define data source sp from table sp")
        .unwrap();
    tman.run_sql("create table h (hno int, spno int)").unwrap();
    tman.execute_command("define data source h from table h")
        .unwrap();
    let rx = tman.subscribe("Hit");
    // The sp selection is a decomposable OR; grade 7 satisfies both arms.
    tman.execute_command(
        "create trigger j on insert to h from sp s, h \
         when (s.name = 'Ann' or s.grade > 5) and s.spno = h.spno \
         do raise event Hit(h.hno)",
    )
    .unwrap();
    tman.run_sql("insert into sp values (1, 'Ann', 7)").unwrap();
    tman.run_sql("insert into h values (10, 1)").unwrap();
    tman.run_until_quiescent().unwrap();
    assert!(tman.last_error().is_none(), "{:?}", tman.last_error());
    assert_eq!(rx.try_iter().count(), 1, "double-matching row fired once");
    // Move the row out of the selection: the old image must leave the
    // stored memory (exactly once — a double retraction corrupts it).
    tman.run_sql("update sp set name = 'Bea', grade = 0 where spno = 1")
        .unwrap();
    tman.run_sql("insert into h values (11, 1)").unwrap();
    tman.run_until_quiescent().unwrap();
    assert!(tman.last_error().is_none(), "{:?}", tman.last_error());
    assert_eq!(rx.try_iter().count(), 0, "retracted row must not fire");
    // And back in via a single arm.
    tman.run_sql("update sp set grade = 9 where spno = 1")
        .unwrap();
    tman.run_sql("insert into h values (12, 1)").unwrap();
    tman.run_until_quiescent().unwrap();
    assert!(tman.last_error().is_none(), "{:?}", tman.last_error());
    assert_eq!(rx.try_iter().count(), 1, "re-admitted row fires again");
}

/// `drop_trigger` on a mixed population only removes the dropped
/// trigger's tagged entries (refcounted cleanup, not a blanket clear).
#[test]
fn tagged_entry_accounting_across_churn() {
    let tman = TriggerMan::open_memory(Config::default()).unwrap();
    tman.execute_command("define data source q (sym varchar(12), price float, vol int)")
        .unwrap();
    tman.execute_command(
        "create trigger a from q when q.sym = 'S1' or q.sym = 'S2' or q.vol = 3 \
         do notify 'a'",
    )
    .unwrap();
    tman.execute_command("create trigger b from q when q.price > 1 or q.vol = 9 do notify 'b'")
        .unwrap();
    // Plain triggers contribute no tagged entries.
    tman.execute_command("create trigger c from q when q.vol = 5 do notify 'c'")
        .unwrap();
    assert_eq!(tman.tagged_entries(), 5);
    tman.execute_command("drop trigger a").unwrap();
    assert_eq!(tman.tagged_entries(), 2);
    tman.execute_command("drop trigger b").unwrap();
    assert_eq!(tman.tagged_entries(), 0);
}
