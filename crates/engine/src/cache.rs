//! The trigger cache (§5.1, §5.4).
//!
//! "A data structure called the *trigger cache* is maintained in main
//! memory. This contains complete descriptions of a set of recently
//! accessed triggers ... The pin operation is analogous to the pin
//! operation in a traditional buffer pool; it checks to see if the trigger
//! is in memory, and if it is not, it brings it in from the disk-based
//! trigger catalog."
//!
//! Loading = fetching `trigger_text` from the catalog and recompiling. With
//! the default A-TREAT networks, descriptions are stateless (virtual alpha
//! nodes), so eviction loses no data; stored-memory networks (TREAT/Rete)
//! are re-primed from base tables on reload.
//!
//! Concurrency: pinning happens once per predicate match, which §6 runs
//! from many driver threads at once — so the hit path is a shared read
//! lock plus two relaxed atomics (pin count, LRU timestamp). The write
//! lock is taken only for misses and eviction, which scans for the
//! least-recently-used unpinned slot (misses are already paying a
//! recompilation, so the scan is noise).

use crate::compile::CompiledTrigger;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use tman_common::fxhash::FxHashMap;
use tman_common::stats::CacheStats;
use tman_common::{Result, TriggerId};

struct Slot {
    trigger: Arc<CompiledTrigger>,
    pins: AtomicU32,
    last_used: AtomicU64,
}

/// Buffer-pool-style cache of compiled trigger descriptions.
pub struct TriggerCache {
    capacity: usize,
    map: RwLock<FxHashMap<TriggerId, Arc<Slot>>>,
    tick: AtomicU64,
    stats: CacheStats,
}

/// A pinned trigger; dropping unpins.
pub struct PinnedTrigger {
    slot: Arc<Slot>,
}

impl PinnedTrigger {
    /// The compiled description.
    pub fn get(&self) -> &Arc<CompiledTrigger> {
        &self.slot.trigger
    }
}

impl std::ops::Deref for PinnedTrigger {
    type Target = CompiledTrigger;

    fn deref(&self) -> &CompiledTrigger {
        &self.slot.trigger
    }
}

impl Drop for PinnedTrigger {
    fn drop(&mut self) {
        self.slot.pins.fetch_sub(1, Ordering::Relaxed);
    }
}

impl TriggerCache {
    /// Cache holding at most `capacity` descriptions.
    pub fn new(capacity: usize) -> TriggerCache {
        TriggerCache {
            capacity: capacity.max(1),
            map: RwLock::new(FxHashMap::default()),
            tick: AtomicU64::new(0),
            stats: CacheStats::default(),
        }
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of resident descriptions.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn pin_slot(&self, slot: &Arc<Slot>) -> PinnedTrigger {
        slot.pins.fetch_add(1, Ordering::Relaxed);
        slot.last_used.store(
            self.tick.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
        PinnedTrigger { slot: slot.clone() }
    }

    /// Pin a trigger, loading (compiling) it via `load` on a miss. The
    /// loader runs outside any lock — concurrent pinners of the same
    /// missing trigger may both compile; the first install wins.
    pub fn pin(
        self: &Arc<Self>,
        id: TriggerId,
        load: impl FnOnce() -> Result<Arc<CompiledTrigger>>,
    ) -> Result<PinnedTrigger> {
        self.pin_report(id, load).map(|(p, _)| p)
    }

    /// [`pin`](Self::pin) that also reports whether the pin was a cache hit
    /// (the trace layer tags `CachePin` spans with it).
    pub fn pin_report(
        self: &Arc<Self>,
        id: TriggerId,
        load: impl FnOnce() -> Result<Arc<CompiledTrigger>>,
    ) -> Result<(PinnedTrigger, bool)> {
        self.stats.pins.bump();
        if let Some(slot) = self.map.read().get(&id) {
            self.stats.hits.bump();
            return Ok((self.pin_slot(slot), true));
        }
        self.stats.misses.bump();
        let trigger = load()?;
        let mut map = self.map.write();
        let slot = map
            .entry(id)
            .or_insert_with(|| {
                Arc::new(Slot {
                    trigger,
                    pins: AtomicU32::new(0),
                    last_used: AtomicU64::new(0),
                })
            })
            .clone();
        let pinned = self.pin_slot(&slot);
        Self::evict_over_capacity(&mut map, self.capacity, &self.stats);
        Ok((pinned, false))
    }

    /// Insert without pinning (used at create-trigger time so the fresh
    /// description is warm).
    pub fn insert(self: &Arc<Self>, trigger: Arc<CompiledTrigger>) {
        let id = trigger.id;
        let slot = Arc::new(Slot {
            trigger,
            pins: AtomicU32::new(0),
            last_used: AtomicU64::new(self.tick.fetch_add(1, Ordering::Relaxed) + 1),
        });
        let mut map = self.map.write();
        map.insert(id, slot);
        Self::evict_over_capacity(&mut map, self.capacity, &self.stats);
    }

    /// Look up without loading (tests / stats).
    pub fn peek(&self, id: TriggerId) -> Option<Arc<CompiledTrigger>> {
        self.map.read().get(&id).map(|s| s.trigger.clone())
    }

    /// Drop a trigger from the cache (after `drop trigger`).
    pub fn remove(&self, id: TriggerId) {
        self.map.write().remove(&id);
    }

    /// Evict in a batch down to ~7/8 of capacity: one O(n log n) sweep
    /// amortized over capacity/8 subsequent inserts, so sustained trigger
    /// creation past the cache size doesn't pay a full scan per insert.
    fn evict_over_capacity(
        map: &mut FxHashMap<TriggerId, Arc<Slot>>,
        capacity: usize,
        stats: &CacheStats,
    ) {
        if map.len() <= capacity {
            return;
        }
        let target = capacity - capacity / 8;
        let mut candidates: Vec<(u64, TriggerId)> = map
            .iter()
            .filter(|(_, s)| s.pins.load(Ordering::Relaxed) == 0)
            .map(|(id, s)| (s.last_used.load(Ordering::Relaxed), *id))
            .collect();
        candidates.sort_unstable();
        for (_, id) in candidates {
            if map.len() <= target {
                break;
            }
            map.remove(&id);
            stats.evictions.bump();
        }
        // If everything is pinned we allow temporary overflow.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::CompiledAction;
    use std::sync::atomic::AtomicBool;
    use tman_common::TriggerSetId;
    use tman_expr::cnf::ConditionGraph;
    use tman_network::{Network, NetworkKind};

    fn dummy_trigger(id: u64) -> Arc<CompiledTrigger> {
        let graph = ConditionGraph::build(tman_expr::Cnf::truth(), 1);
        Arc::new(CompiledTrigger {
            id: TriggerId(id),
            name: format!("t{id}"),
            set: TriggerSetId(1),
            text: String::new(),
            vars: Vec::new(),
            event_var: 0,
            event: tman_common::EventKind::InsertOrUpdate,
            update_col_ords: Vec::new(),
            explicit_event: false,
            network: Network::build(
                NetworkKind::ATreat,
                graph,
                vec![tman_common::DataSourceId(1)],
                0,
            )
            .unwrap(),
            action: CompiledAction::Notify("x".into()),
            window: None,
            enabled: AtomicBool::new(true),
        })
    }

    #[test]
    fn pin_loads_once_then_hits() {
        let cache = Arc::new(TriggerCache::new(10));
        let mut loads = 0;
        {
            let p = cache
                .pin(TriggerId(1), || {
                    loads += 1;
                    Ok(dummy_trigger(1))
                })
                .unwrap();
            assert_eq!(p.name, "t1");
        }
        let _p = cache
            .pin(TriggerId(1), || panic!("should not reload"))
            .unwrap();
        assert_eq!(loads, 1);
        assert_eq!(cache.stats().hits.get(), 1);
        assert_eq!(cache.stats().misses.get(), 1);
        assert_eq!(cache.stats().pins.get(), 2);
    }

    #[test]
    fn lru_eviction_of_unpinned() {
        let cache = Arc::new(TriggerCache::new(3));
        for id in 1..=3u64 {
            cache.insert(dummy_trigger(id));
        }
        // Touch 1 so 2 is LRU.
        drop(cache.pin(TriggerId(1), || unreachable!()).unwrap());
        cache.insert(dummy_trigger(4));
        assert!(cache.peek(TriggerId(2)).is_none(), "LRU evicted");
        assert!(cache.peek(TriggerId(1)).is_some());
        assert_eq!(cache.stats().evictions.get(), 1);
    }

    #[test]
    fn pinned_triggers_survive_pressure() {
        let cache = Arc::new(TriggerCache::new(2));
        let p1 = cache.pin(TriggerId(1), || Ok(dummy_trigger(1))).unwrap();
        let p2 = cache.pin(TriggerId(2), || Ok(dummy_trigger(2))).unwrap();
        cache.insert(dummy_trigger(3)); // over capacity, everything pinned
        assert!(cache.peek(TriggerId(1)).is_some());
        assert!(cache.peek(TriggerId(2)).is_some());
        drop(p1);
        drop(p2);
        cache.insert(dummy_trigger(4));
        assert!(cache.len() <= 2);
    }

    #[test]
    fn remove_forgets() {
        let cache = Arc::new(TriggerCache::new(4));
        cache.insert(dummy_trigger(7));
        cache.remove(TriggerId(7));
        assert!(cache.peek(TriggerId(7)).is_none());
    }

    #[test]
    fn hit_rate_reporting() {
        let cache = Arc::new(TriggerCache::new(4));
        for _ in 0..3 {
            drop(cache.pin(TriggerId(1), || Ok(dummy_trigger(1))).unwrap());
        }
        assert!((cache.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_pins_are_consistent() {
        let cache = Arc::new(TriggerCache::new(64));
        let handles: Vec<_> = (0..8)
            .map(|w| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let id = (w * 7 + i) % 32;
                        let p = cache.pin(TriggerId(id), || Ok(dummy_trigger(id))).unwrap();
                        assert_eq!(p.id, TriggerId(id));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // All pins released.
        for (_, slot) in cache.map.read().iter() {
            assert_eq!(slot.pins.load(Ordering::Relaxed), 0);
        }
    }
}
