//! Trigger compilation: §5.1 steps 1–4.
//!
//! Parsing and validation, CNF conversion, conjunct grouping into the
//! trigger condition graph, A-TREAT network construction, and extraction of
//! one selection-predicate registration per tuple variable (step 5 — the
//! actual predicate-index insertion — is performed by the system, which
//! owns expression ids).

use crate::source::SourceInfo;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use tman_common::{EventKind, Result, TmanError, TriggerId, TriggerSetId, Value};
use tman_expr::cnf::{remap_var, to_cnf, Cnf, ConditionGraph};
use tman_expr::scalar::Scalar;
use tman_expr::signature::analyze_selection;
use tman_expr::{BindCtx, SelectionSignature};
use tman_lang::ast::{Action, CreateTrigger, EventSpecKind, WindowSpec};
use tman_lang::SqlStmt;
use tman_network::{Network, NetworkKind};

/// One tuple variable of a compiled trigger.
pub struct VarBinding {
    /// The tuple-variable name (`from salesperson s` → `s`).
    pub name: String,
    /// The data source it ranges over.
    pub source: Arc<SourceInfo>,
}

/// A compiled rule action.
pub enum CompiledAction {
    /// `execSQL` — statement template with `:NEW`/`:OLD` transition
    /// references still embedded; substituted per firing.
    ExecSql(SqlStmt),
    /// `raise event` — name plus argument scalars resolved against the
    /// action environment (`num_vars` NEW slots then `num_vars` OLD slots).
    RaiseEvent {
        /// Event name.
        name: String,
        /// Argument expressions.
        args: Vec<Scalar>,
    },
    /// `notify` — message template with textual `:NEW.src.col` /
    /// `:OLD.src.col` macro substitution (§2's "macro substitution").
    Notify(String),
}

/// The in-memory trigger description held by the trigger cache: §5.1's
/// "complete descriptions of a set of recently accessed triggers,
/// including the trigger ID and name, references to data sources relevant
/// to the trigger, and the syntax tree and [...] network skeleton".
pub struct CompiledTrigger {
    /// Trigger id.
    pub id: TriggerId,
    /// Trigger name.
    pub name: String,
    /// Owning set.
    pub set: TriggerSetId,
    /// Source text (the catalog's `trigger_text`).
    pub text: String,
    /// Tuple variables, in `from` order.
    pub vars: Vec<VarBinding>,
    /// Ordinal of the variable the `on` clause names (0 if none).
    pub event_var: usize,
    /// The `on` event (InsertOrUpdate when no `on` clause).
    pub event: EventKind,
    /// Column ordinals for `update(col,...)` events.
    pub update_col_ords: Vec<usize>,
    /// Whether the trigger had an explicit `on` clause (changes which
    /// variables may run the action).
    pub explicit_event: bool,
    /// The discrimination network.
    pub network: Network,
    /// The action.
    pub action: CompiledAction,
    /// Windowed threshold (`when [pred] count >= K within W`): the action
    /// runs only while at least K matching events arrived inside the
    /// trailing window. Restricted to single-variable triggers.
    pub window: Option<WindowSpec>,
    /// In-memory enabled flag (mirrors the catalog's isEnabled).
    pub enabled: AtomicBool,
}

/// A selection predicate to register in the predicate index (one per
/// tuple variable; step 5 of §5.1).
pub struct PredicateReg {
    /// Which variable this predicate guards.
    pub var: usize,
    /// The variable's data source.
    pub source: Arc<SourceInfo>,
    /// The analyzed signature.
    pub sig: SelectionSignature,
    /// The constant vector for the constant table.
    pub consts: Vec<Value>,
    /// The concrete (pre-generalization) selection CNF the signature was
    /// analyzed from. The system needs it to re-analyze per-disjunct
    /// branches for tagged execution (it, not the compiler, owns the
    /// indexing policy).
    pub canon: Cnf,
}

/// Output of compilation.
pub struct Compiled {
    /// The trigger description.
    pub trigger: CompiledTrigger,
    /// Predicate registrations for the index.
    pub predicates: Vec<PredicateReg>,
}

/// Compile a parsed `create trigger` statement.
///
/// `resolve_source` maps a data-source name to its [`SourceInfo`].
pub fn compile_trigger(
    stmt: &CreateTrigger,
    id: TriggerId,
    set: TriggerSetId,
    text: &str,
    network_kind: NetworkKind,
    resolve_source: &dyn Fn(&str) -> Result<Arc<SourceInfo>>,
) -> Result<Compiled> {
    // Step 1: validation.
    if stmt.from.is_empty() {
        return Err(TmanError::Invalid(format!(
            "trigger '{}' needs a from clause",
            stmt.name
        )));
    }
    if stmt.from.len() > 16 {
        return Err(TmanError::Unsupported(
            "more than 16 tuple variables per trigger".into(),
        ));
    }
    if !stmt.group_by.is_empty() || stmt.having.is_some() {
        return Err(TmanError::Unsupported(
            "group by / having trigger conditions (temporal & aggregate \
             processing is the paper's future work, §9)"
                .into(),
        ));
    }
    if let Some(w) = &stmt.window {
        if stmt.from.len() != 1 {
            return Err(TmanError::Unsupported(
                "windowed thresholds (count >= K within W) require exactly \
                 one tuple variable"
                    .into(),
            ));
        }
        if w.count == 0 || w.within_ns == 0 {
            return Err(TmanError::Invalid(
                "windowed threshold needs count >= 1 and a positive window".into(),
            ));
        }
    }
    let mut vars = Vec::with_capacity(stmt.from.len());
    for item in &stmt.from {
        let source = resolve_source(&item.source)?;
        let name = item.var_name().to_string();
        if vars
            .iter()
            .any(|v: &VarBinding| v.name.eq_ignore_ascii_case(&name))
        {
            return Err(TmanError::Invalid(format!(
                "duplicate tuple variable '{name}'"
            )));
        }
        vars.push(VarBinding { name, source });
    }

    // Event clause.
    let (event_var, event, update_col_ords) = match &stmt.on {
        None => (0, EventKind::InsertOrUpdate, Vec::new()),
        Some(spec) => {
            let var = vars
                .iter()
                .position(|v| {
                    v.name.eq_ignore_ascii_case(&spec.target)
                        || v.source.name.eq_ignore_ascii_case(&spec.target)
                })
                .ok_or_else(|| {
                    TmanError::Invalid(format!(
                        "on-clause target '{}' is not in the from list",
                        spec.target
                    ))
                })?;
            let (kind, ords) = match &spec.kind {
                EventSpecKind::Insert => (EventKind::Insert, Vec::new()),
                EventSpecKind::Delete => (EventKind::Delete, Vec::new()),
                EventSpecKind::Update(cols) => {
                    let schema = &vars[var].source.schema;
                    let ords = cols
                        .iter()
                        .map(|c| {
                            schema.index_of(c).ok_or_else(|| {
                                TmanError::Invalid(format!(
                                    "no column '{c}' in '{}'",
                                    vars[var].source.name
                                ))
                            })
                        })
                        .collect::<Result<Vec<_>>>()?;
                    (EventKind::Update(cols.clone()), ords)
                }
            };
            (var, kind, ords)
        }
    };

    // Step 2: when-clause → CNF.
    let schemas: Vec<(String, &tman_common::Schema)> = vars
        .iter()
        .map(|v| (v.name.clone(), &v.source.schema))
        .collect();
    let ctx = BindCtx::new(schemas);
    let cnf = match &stmt.when {
        None => Cnf::truth(),
        Some(e) => to_cnf(&ctx.pred(e)?)?,
    };

    // Step 3: condition graph.
    let graph = ConditionGraph::build(cnf, vars.len());

    // Step 5-prep: per-variable selection predicate analysis (the actual
    // index insertion happens in the system, which assigns exprIDs).
    let stored_memories = vars.len() > 1
        && matches!(
            network_kind,
            NetworkKind::Treat | NetworkKind::Rete | NetworkKind::Gator
        );
    let mut predicates = Vec::new();
    for (v, binding) in vars.iter().enumerate() {
        // Per-variable event for index registration (see DESIGN.md):
        //  * the on-clause variable gets the on event,
        //  * other variables get insertOrUpdate (implicit event, §5) —
        //    except that stored-memory networks additionally need deletes
        //    for memory maintenance, so every variable is registered with
        //    the catch-all `any` opcode and event filtering moves to
        //    action time.
        let reg_event = if stored_memories {
            EventKind::Any
        } else if v == event_var && stmt.on.is_some() {
            event.clone()
        } else if stmt.on.is_some() && vars.len() > 1 {
            // A-TREAT: tokens on non-event variables of an explicit-event
            // trigger neither fire actions nor maintain memories; skip
            // registration entirely.
            continue;
        } else {
            EventKind::InsertOrUpdate
        };
        let reg_update_cols = if v == event_var && !stored_memories {
            update_col_ords.clone()
        } else {
            Vec::new()
        };
        let canon = remap_var(&graph.selections[v], v, 0, &binding.source.name);
        let (sig, consts) =
            analyze_selection(&canon, binding.source.id, reg_event, reg_update_cols);
        predicates.push(PredicateReg {
            var: v,
            source: binding.source.clone(),
            sig,
            consts,
            canon,
        });
    }

    // Step 4: build the network.
    let var_sources = vars.iter().map(|v| v.source.id).collect();
    let network = Network::build(network_kind, graph, var_sources, event_var)?;

    // Action compilation.
    let action = compile_action(&stmt.action, &vars)?;

    Ok(Compiled {
        trigger: CompiledTrigger {
            id,
            name: stmt.name.clone(),
            set,
            text: text.to_string(),
            vars,
            event_var,
            event,
            update_col_ords,
            explicit_event: stmt.on.is_some(),
            network,
            action,
            window: stmt.window.clone(),
            enabled: AtomicBool::new(true),
        },
        predicates,
    })
}

fn compile_action(action: &Action, vars: &[VarBinding]) -> Result<CompiledAction> {
    match action {
        Action::ExecSql(text) => {
            let stmt = tman_lang::parse_sql(text)?;
            // Validate transition references now (against the trigger's
            // variables) so errors surface at create-trigger time; keep the
            // template for per-firing substitution.
            validate_transitions(&stmt, vars)?;
            Ok(CompiledAction::ExecSql(stmt))
        }
        Action::RaiseEvent { name, args } => {
            let schemas: Vec<(String, &tman_common::Schema)> = vars
                .iter()
                .map(|v| (v.name.clone(), &v.source.schema))
                .collect();
            let ctx = BindCtx::for_actions(schemas);
            let args = args
                .iter()
                .map(|a| ctx.scalar(a))
                .collect::<Result<Vec<_>>>()?;
            Ok(CompiledAction::RaiseEvent {
                name: name.clone(),
                args,
            })
        }
        Action::Notify(msg) => Ok(CompiledAction::Notify(msg.clone())),
    }
}

fn validate_transitions(stmt: &SqlStmt, vars: &[VarBinding]) -> Result<()> {
    use tman_lang::ast::Expr;
    fn walk(e: &Expr, vars: &[VarBinding]) -> Result<()> {
        match e {
            Expr::Transition { source, column, .. } => {
                let var = vars
                    .iter()
                    .find(|v| {
                        v.name.eq_ignore_ascii_case(source)
                            || v.source.name.eq_ignore_ascii_case(source)
                    })
                    .ok_or_else(|| {
                        TmanError::Invalid(format!(
                            "transition reference to unknown source '{source}'"
                        ))
                    })?;
                var.source.schema.index_of(column).ok_or_else(|| {
                    TmanError::Invalid(format!("no column '{column}' in '{}'", var.source.name))
                })?;
                Ok(())
            }
            Expr::Unary { expr, .. } => walk(expr, vars),
            Expr::Binary { left, right, .. } => {
                walk(left, vars)?;
                walk(right, vars)
            }
            Expr::Call { args, .. } => {
                for a in args {
                    walk(a, vars)?;
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }
    let check = |exprs: &mut dyn Iterator<Item = &Expr>| -> Result<()> {
        for e in exprs {
            walk(e, vars)?;
        }
        Ok(())
    };
    match stmt {
        SqlStmt::Insert { values, .. } => check(&mut values.iter()),
        SqlStmt::Update { sets, filter, .. } => {
            check(&mut sets.iter().map(|(_, e)| e))?;
            check(&mut filter.iter())
        }
        SqlStmt::Delete { filter, .. } => check(&mut filter.iter()),
        SqlStmt::Select { filter, .. } => check(&mut filter.iter()),
        _ => Ok(()),
    }
}

impl CompiledTrigger {
    /// Is `var` allowed to run the action for `op` (as opposed to pure
    /// memory maintenance)?
    pub fn runs_action(&self, var: usize, token: &tman_common::UpdateDescriptor) -> bool {
        if self.explicit_event {
            var == self.event_var
                && self.event.accepts(token.op)
                && token.touches_columns(&self.update_col_ords)
        } else {
            // Implicit insert-or-update on every variable.
            EventKind::InsertOrUpdate.accepts(token.op)
        }
    }
}
