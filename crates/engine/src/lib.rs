//! `triggerman` — the scalable trigger processor.
//!
//! This crate assembles the substrates into the system of the paper's
//! Figure 1:
//!
//! * a database ([`tman_sql::Database`]) hosting base tables, the trigger
//!   catalogs ([`catalog`]), per-signature constant tables, and the
//!   persistent update-descriptor queue ([`queue`]);
//! * update capture (§3): every mutation made through [`TriggerMan::run_sql`]
//!   on a captured table becomes an update descriptor, as do tokens pushed
//!   through the data-source API ([`TriggerMan::push_token`]);
//! * the scalable predicate index ([`tman_predindex`]) with expression
//!   signatures and the four constant-set organizations (§5);
//! * the trigger cache ([`cache`]) with buffer-pool pin/unpin semantics
//!   (§5.1);
//! * A-TREAT (default) / TREAT / Rete discrimination networks
//!   ([`tman_network`]) for join conditions;
//! * rule actions (`execSQL`, `raise event`, `notify`) with `:NEW`/`:OLD`
//!   macro substitution ([`action`]);
//! * drivers calling [`TriggerMan::tman_test`] on a shared task queue with
//!   token-, condition-, and rule-action-level concurrency (§6,
//!   [`driver`]).
//!
//! ## Quick start
//!
//! ```
//! use triggerman::{Config, TriggerMan};
//!
//! let tman = TriggerMan::open_memory(Config::default()).unwrap();
//! tman.run_sql("create table emp (name varchar(32), salary float)").unwrap();
//! tman.execute_command("define data source emp from table emp").unwrap();
//! let events = tman.subscribe("notify");
//! tman.execute_command(
//!     "create trigger bigpay from emp when emp.salary > 80000 \
//!      do notify 'big salary: :NEW.emp.name'",
//! ).unwrap();
//! tman.run_sql("insert into emp values ('Bob', 90000)").unwrap();
//! tman.run_until_quiescent().unwrap();
//! assert_eq!(events.try_recv().unwrap().message.unwrap(), "big salary: Bob");
//! ```

pub mod action;
pub mod cache;
pub mod catalog;
pub mod client;
pub mod compile;
pub mod config;
pub mod driver;
pub mod events;
pub mod metrics;
pub mod partition_ctl;
pub mod queue;
pub mod shard;
pub mod source;
pub mod window;

pub use cache::{PinnedTrigger, TriggerCache};
pub use client::{Client, DataSourceClient};
pub use compile::{CompiledAction, CompiledTrigger};
pub use config::{Config, Partitioning, QueueMode, TracingMode};
pub use driver::{AckState, DriverPool, Task, TmanTestResult};
pub use events::{EventBus, EventNotification, NotificationSink};
pub use metrics::MetricsSnapshot;
pub use partition_ctl::{
    DriverLoad, PartitionController, PartitionPolicy, PartitionReport, PassInputs,
};
pub use shard::{EngineShard, ShardSet};
pub use tman_network::NetworkKind;
pub use tman_predindex::{GovernorPolicy, GovernorReport, OrgKind};
pub use tman_telemetry::{
    Registry, SpanKind, TraceEvent, TraceSnapshot, TraceTree, Tracer, TracerStats,
};
pub use window::WindowState;

use catalog::{Catalog, ConnectionRow, DataSourceRow, TriggerRow, TriggerSetRow};
use compile::compile_trigger;
use crossbeam::queue::SegQueue;
use parking_lot::{Mutex, RwLock};
use queue::UpdateQueue;
use source::{SourceInfo, TableAlphaSource};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use tman_common::fxhash::FxHashMap;
use tman_common::stats::Counter;
use tman_common::{
    DataSourceId, EventKind, ExprId, NodeId, Result, Schema, SignatureId, TagClaims, TmanError,
    TokenOp, TriggerId, TriggerSetId, Tuple, UpdateDescriptor,
};
use tman_expr::signature::analyze_selection;
use tman_expr::{decompose_disjunction, IndexPlan};
use tman_lang::ast::Command;
use tman_network::Polarity;
use tman_predindex::{PredicateIndex, SignatureRuntime};
use tman_sql::{Database, ExecResult};
use tman_telemetry::trace::{now_ns, ROOT_SPAN};
use tman_telemetry::{HttpResponse, HttpServer, TraceHandle};

/// An [`tman_network::AlphaSource`] with no data, for networks that never
/// scan (single-variable triggers).
struct NullAlphaSource;

impl tman_network::AlphaSource for NullAlphaSource {
    fn scan_source(
        &self,
        _data_src: DataSourceId,
        _visit: &mut dyn FnMut(&Tuple) -> Result<()>,
    ) -> Result<()> {
        Ok(())
    }
}

static NULL_ALPHA: NullAlphaSource = NullAlphaSource;

/// Outcome of a TriggerMan command.
#[derive(Debug, Clone, PartialEq)]
pub enum CommandOutput {
    /// `create trigger`.
    TriggerCreated(TriggerId),
    /// `drop trigger`.
    TriggerDropped(TriggerId),
    /// `create trigger set`.
    SetCreated(TriggerSetId),
    /// `drop trigger set`.
    SetDropped,
    /// `enable` / `disable`.
    EnabledChanged,
    /// `define data source`.
    DataSourceDefined(DataSourceId),
    /// `define connection`.
    ConnectionDefined,
    /// `show stats`: the formatted report.
    Stats(String),
    /// `trace last <n>` / `trace token <id>`: rendered span trees.
    Trace(String),
}

/// Engine-level counters. Held by `Arc` so they double as live registry
/// instruments (see [`metrics`]).
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Tokens fully processed.
    pub tokens: Arc<Counter>,
    /// Condition matches that reached a P-node.
    pub firings: Arc<Counter>,
    /// Rule actions executed.
    pub actions: Arc<Counter>,
    /// Task failures (see [`TriggerMan::last_error`]).
    pub errors: Arc<Counter>,
}

/// Execution metadata the engine keeps per predicate-index entry, keyed by
/// [`ExprId`]. It lives engine-side (not on [`tman_predindex::Entry`])
/// because DB-backed organizations round-trip entries through table rows,
/// and because the `ExprId` survives governor migrations unchanged.
struct PredMeta {
    /// Tagged execution: the disjunct entries a trigger variable
    /// registered share one tag; a token's first matching entry claims it
    /// and the rest are duplicates (Kim & Madden's tagged execution).
    tag: Option<u64>,
    /// The trigger's windowed-threshold state, shared by every one of its
    /// entries: a claimed match *observes* the window and fires only at
    /// or over the threshold.
    window: Option<Arc<WindowState>>,
}

/// The TriggerMan system (Figure 1).
pub struct TriggerMan {
    config: Config,
    db: Arc<Database>,
    catalog: Catalog,
    predindex: Arc<PredicateIndex>,
    cache: Arc<TriggerCache>,
    queue: UpdateQueue,
    /// The §6 task queue, split [`Config::num_shards`] ways (see [`shard`]).
    shards: ShardSet,
    /// Sequence numbers whose token-level work has fully completed (every
    /// [`AckState`] clone dropped), awaiting the next batched
    /// [`UpdateQueue::ack_batch`] barrier (see [`Self::flush_acks`]).
    pending_acks: Arc<SegQueue<i64>>,
    events: EventBus,
    sources_by_name: RwLock<FxHashMap<String, Arc<SourceInfo>>>,
    sources_by_id: RwLock<FxHashMap<DataSourceId, Arc<SourceInfo>>>,
    table_to_source: RwLock<FxHashMap<String, Arc<SourceInfo>>>,
    sets: RwLock<FxHashMap<String, TriggerSetRow>>,
    connections: RwLock<FxHashMap<String, ConnectionRow>>,
    trigger_names: RwLock<FxHashMap<String, TriggerId>>,
    /// Tagged-execution / windowed-threshold metadata per index entry.
    pred_meta: RwLock<FxHashMap<ExprId, PredMeta>>,
    /// Entries carrying metadata, per trigger (with the signature each
    /// landed in) — the drop-trigger cleanup walk.
    trigger_exprs: RwLock<FxHashMap<TriggerId, Vec<(ExprId, SignatureId)>>>,
    /// Windowed-threshold state per windowed trigger.
    windows: RwLock<FxHashMap<TriggerId, Arc<WindowState>>>,
    /// Signatures hosting at least one windowed trigger's entries
    /// (refcounted): they never take the Figure-5 fan-out, whose partition
    /// tasks run after the current drain position and would feed windows
    /// out of token order.
    window_sigs: RwLock<FxHashMap<SignatureId, usize>>,
    /// Next tagged-execution tag.
    next_tag: AtomicU64,
    /// Live tagged entries across the index (`Arc` so the registry can
    /// read it as the `tman_tagged_entries` instrument): tokens arm a
    /// claim set only while this is nonzero.
    tagged_count: Arc<AtomicU64>,
    /// Matches suppressed because another entry already claimed the tag.
    tag_dedup_hits: Arc<Counter>,
    /// Windowed-trigger firings admitted (threshold met).
    window_fires: Arc<Counter>,
    /// Timestamps aged out by the maintenance-path expiry.
    window_evictions: Arc<Counter>,
    next_trigger: AtomicU64,
    next_source: AtomicU32,
    next_set: AtomicU32,
    next_expr: AtomicU64,
    stats: EngineStats,
    pub(crate) telemetry: metrics::EngineTelemetry,
    tracer: Option<Arc<Tracer>>,
    last_error: Mutex<Option<String>>,
    /// `now_ns()` of the last organization-governor pass (0 = never); the
    /// driver that wins the CAS on this runs the next pass.
    governor_last_ns: AtomicU64,
    /// The adaptive condition-partition controller
    /// ([`Partitioning::Adaptive`] with telemetry on). `None` means no
    /// passes run and published per-signature fan-outs are left alone.
    partition_ctl: Option<PartitionController>,
    /// `now_ns()` of the last partition-controller pass. Its own stamp,
    /// so the controller and the governor never steal each other's
    /// maintenance turn.
    partition_last_ns: AtomicU64,
    /// The HTTP exposition endpoint ([`Config::http_addr`] or
    /// [`serve_http`](Self::serve_http)); stopped at shutdown.
    http: Mutex<Option<HttpServer>>,
    shutdown: AtomicBool,
}

impl TriggerMan {
    /// Open a volatile in-memory instance.
    pub fn open_memory(config: Config) -> Result<Arc<TriggerMan>> {
        let db = Arc::new(Database::open_memory(config.pool_pages));
        Self::with_database(db, config)
    }

    /// Open (or recover) a file-backed instance. When
    /// [`Config::faults`] carries a fault-injection plan it is attached to
    /// the disk manager, and any crash damage found by the open-time
    /// scavenge pass is absorbed before the engine state is rebuilt.
    pub fn open_file(path: &Path, config: Config) -> Result<Arc<TriggerMan>> {
        let db = Arc::new(Database::open_file_opts(
            path,
            config.pool_pages,
            config.faults.clone(),
            tman_storage::WalConfig {
                checkpoint_bytes: config.wal_checkpoint_bytes,
            },
        )?);
        Self::with_database(db, config)
    }

    fn with_database(db: Arc<Database>, config: Config) -> Result<Arc<TriggerMan>> {
        let registry = Arc::new(if config.telemetry {
            Registry::new()
        } else {
            tman_telemetry::disabled()
        });
        let telemetry = metrics::EngineTelemetry::new(registry);
        let catalog = Catalog::open(&db)?;
        let mut queue = match config.queue_mode {
            QueueMode::Volatile => UpdateQueue::volatile(),
            QueueMode::Persistent => UpdateQueue::persistent(&db)?,
        };
        queue.attach_telemetry(telemetry.queue.clone());
        let mut events = EventBus::new();
        events.attach_telemetry(&telemetry.registry);
        let mut predindex = PredicateIndex::with_database(config.index.clone(), db.clone());
        predindex.attach_telemetry(&telemetry.registry);
        let predindex = Arc::new(predindex);
        let cache = Arc::new(TriggerCache::new(config.trigger_cache_capacity));
        // One branch per token on the off path: `tracer` stays `None`.
        let tracer = match config.tracing {
            TracingMode::Off => None,
            TracingMode::Sampled(n) => Some(Arc::new(Tracer::new(
                config.trace_buffer_events,
                n,
                config.slow_token_threshold,
            ))),
            TracingMode::Full => Some(Arc::new(Tracer::new(
                config.trace_buffer_events,
                1,
                config.slow_token_threshold,
            ))),
        };
        // The controller reads its load signals (busy ns, queue waits,
        // expirations) from the metrics registry: with telemetry off those
        // all read zero, so adaptive passes would be blind — leave the
        // controller out and published fan-outs untouched.
        let partition_ctl = match config.partitioning {
            Partitioning::Adaptive if config.telemetry => {
                let mut ctl =
                    PartitionController::new(config.partition_policy.clone(), config.partition_min);
                ctl.attach_telemetry(&telemetry.registry);
                Some(ctl)
            }
            _ => None,
        };
        let system = Arc::new(TriggerMan {
            cache,
            predindex,
            queue,
            telemetry,
            tracer,
            shards: ShardSet::new(config.num_shards()),
            pending_acks: Arc::new(SegQueue::new()),
            events,
            sources_by_name: RwLock::new(FxHashMap::default()),
            sources_by_id: RwLock::new(FxHashMap::default()),
            table_to_source: RwLock::new(FxHashMap::default()),
            sets: RwLock::new(FxHashMap::default()),
            connections: RwLock::new(FxHashMap::default()),
            trigger_names: RwLock::new(FxHashMap::default()),
            pred_meta: RwLock::new(FxHashMap::default()),
            trigger_exprs: RwLock::new(FxHashMap::default()),
            windows: RwLock::new(FxHashMap::default()),
            window_sigs: RwLock::new(FxHashMap::default()),
            next_tag: AtomicU64::new(1),
            tagged_count: Arc::new(AtomicU64::new(0)),
            tag_dedup_hits: Arc::new(Counter::default()),
            window_fires: Arc::new(Counter::default()),
            window_evictions: Arc::new(Counter::default()),
            next_trigger: AtomicU64::new(1),
            next_source: AtomicU32::new(1),
            next_set: AtomicU32::new(2), // 1 = "default"
            next_expr: AtomicU64::new(1),
            stats: EngineStats::default(),
            last_error: Mutex::new(None),
            governor_last_ns: AtomicU64::new(0),
            partition_ctl,
            partition_last_ns: AtomicU64::new(0),
            http: Mutex::new(None),
            shutdown: AtomicBool::new(false),
            catalog,
            db,
            config,
        });
        system.register_shared_instruments();
        system.recover()?;
        if let Some(addr) = system.config.http_addr.clone() {
            system.serve_http(&addr)?;
        }
        Ok(system)
    }

    /// Register the per-subsystem counters (engine, cache, buffer pool,
    /// disk, event bus) into the metrics registry as shared instruments:
    /// exposition reads the same `Arc<Counter>`s the hot paths bump, so
    /// these rows cost nothing extra at runtime.
    fn register_shared_instruments(&self) {
        let r = &self.telemetry.registry;
        r.register_counter(
            "tman_tokens_processed_total",
            &[],
            self.stats.tokens.clone(),
        );
        r.register_counter("tman_firings_total", &[], self.stats.firings.clone());
        r.register_counter("tman_actions_run_total", &[], self.stats.actions.clone());
        r.register_counter("tman_task_errors_total", &[], self.stats.errors.clone());
        r.register_counter(
            "tman_tag_dedup_hits_total",
            &[],
            self.tag_dedup_hits.clone(),
        );
        r.register_counter("tman_window_fires_total", &[], self.window_fires.clone());
        r.register_counter(
            "tman_window_evictions_total",
            &[],
            self.window_evictions.clone(),
        );
        // Live tagged-entry population (a level, so a computed read of the
        // shared atomic rather than a monotone counter).
        let tagged = self.tagged_count.clone();
        r.register_counter_fn("tman_tagged_entries", &[], move || {
            tagged.load(Ordering::Relaxed)
        });
        r.register_counter(
            "tman_queue_wm_flushes_total",
            &[],
            self.queue.wm_flushes().clone(),
        );
        self.shards.register_instruments(r);
        let cs = self.cache.stats();
        r.register_counter("tman_cache_hits_total", &[], cs.hits.clone());
        r.register_counter("tman_cache_misses_total", &[], cs.misses.clone());
        r.register_counter("tman_cache_evictions_total", &[], cs.evictions.clone());
        r.register_counter("tman_cache_pins_total", &[], cs.pins.clone());
        let pool = self.db.storage().pool();
        let ps = pool.stats();
        r.register_counter("tman_pool_hits_total", &[], ps.pool_hits.clone());
        r.register_counter("tman_pool_misses_total", &[], ps.pool_misses.clone());
        r.register_counter("tman_pool_evictions_total", &[], ps.evictions.clone());
        r.register_counter("tman_io_retries_total", &[], ps.io_retries.clone());
        let ds = pool.disk().stats();
        r.register_counter("tman_page_reads_total", &[], ds.page_reads.clone());
        r.register_counter("tman_page_writes_total", &[], ds.page_writes.clone());
        r.register_counter("tman_disk_syncs_total", &[], ds.syncs.clone());
        r.register_counter(
            "tman_checksum_failures_total",
            &[],
            ds.checksum_failures.clone(),
        );
        r.register_counter(
            "tman_quarantined_pages_total",
            &[],
            ds.quarantined_pages.clone(),
        );
        r.register_counter(
            "tman_faults_injected_total",
            &[],
            ds.faults_injected.clone(),
        );
        if let Some(wal) = pool.wal() {
            let ws = wal.stats();
            r.register_counter("tman_wal_appends_total", &[], ws.appends.clone());
            r.register_counter("tman_wal_bytes_total", &[], ws.bytes.clone());
            r.register_counter("tman_wal_fsyncs_total", &[], ws.fsyncs.clone());
            r.register_counter(
                "tman_wal_group_commits_total",
                &[],
                ws.group_commits.clone(),
            );
            r.register_counter(
                "tman_wal_replayed_records_total",
                &[],
                ws.replayed_records.clone(),
            );
            r.register_counter("tman_wal_checkpoints_total", &[], ws.checkpoints.clone());
            r.register_histogram("tman_wal_group_commit_ns", &[], ws.group_commit_ns.clone());
        }
        r.register_counter(
            "tman_queue_corrupt_rows_total",
            &[],
            self.queue.corrupt_rows().clone(),
        );
        r.register_counter(
            "tman_queue_dedup_dropped_total",
            &[],
            self.queue.dedup_dropped().clone(),
        );
        // Event-bus delivery counters are registry CounterHandles resolved
        // in `EventBus::attach_telemetry` — nothing to register here.
        //
        // Trace-sampling health: the tracer counts starts/retention/ring
        // overwrites exactly, but those live in its own atomics. Computed
        // counters read them live at exposition time, so silent trace loss
        // (`tman_trace_events_dropped_total` climbing) is scrapeable.
        // Reads of these identities through `Registry::counter` handles
        // see a no-op (type mismatch by design); typed access goes through
        // `Tracer::stats` as before.
        if let Some(tracer) = &self.tracer {
            let series: [(&str, fn(&TracerStats) -> u64); 6] = [
                ("tman_trace_tokens_started_total", |s| s.started),
                ("tman_trace_tokens_retained_total", |s| s.retained),
                ("tman_trace_tokens_discarded_total", |s| s.discarded),
                ("tman_trace_slow_retained_total", |s| s.slow_retained),
                ("tman_trace_events_logged_total", |s| s.events_logged),
                ("tman_trace_events_dropped_total", |s| s.events_dropped),
            ];
            for (name, read) in series {
                let t = tracer.clone();
                r.register_counter_fn(name, &[], move || read(&t.stats()));
            }
        }
    }

    /// Rebuild in-memory state from the catalogs (system start, §5.1:
    /// triggers live on disk as text; descriptions are cached on demand).
    fn recover(&self) -> Result<()> {
        // Connections (the catalog pre-creates the default `local` one).
        {
            let mut conns = self.connections.write();
            for row in self.catalog.connections()? {
                conns.insert(row.name.to_lowercase(), row);
            }
        }
        // Trigger sets.
        {
            let mut sets = self.sets.write();
            for row in self.catalog.sets()? {
                self.next_set.fetch_max(row.id.raw() + 1, Ordering::Relaxed);
                sets.insert(row.name.to_lowercase(), row);
            }
        }
        // Data sources.
        for row in self.catalog.data_sources()? {
            let local_table = match &row.local_table {
                Some(t) => Some(self.db.table(t)?),
                None => None,
            };
            let info = Arc::new(SourceInfo {
                id: row.id,
                name: row.name.clone(),
                schema: row.schema.clone(),
                local_table,
                connection: row.connection.clone(),
            });
            self.install_source(info);
            self.next_source
                .fetch_max(row.id.raw() + 1, Ordering::Relaxed);
        }
        // Triggers: recompile each to re-register its predicates; cache
        // descriptions up to capacity.
        for row in self.catalog.triggers()? {
            self.next_trigger
                .fetch_max(row.id.raw() + 1, Ordering::Relaxed);
            self.trigger_names
                .write()
                .insert(row.name.to_lowercase(), row.id);
            let compiled = self.compile_row(&row)?;
            self.register_predicates(&compiled)?;
            let trigger = Arc::new(compiled.trigger);
            self.prime_network(&trigger)?;
            self.cache.insert(trigger);
        }
        // Windowed-threshold state: re-arm the coarsely persisted rings
        // (at-least-once — a crash between an observe and the next
        // durability barrier replays the token into an older window, so a
        // fire may repeat but is never lost). Rows of dropped triggers are
        // skipped.
        for (tid, last_ts, ring) in self.catalog.windows()? {
            if let Some(w) = self.windows.read().get(&tid) {
                w.hydrate(last_ts, &ring);
            }
        }
        Ok(())
    }

    // ----- accessors ---------------------------------------------------------

    /// The backing database (catalog inspection, experiments).
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The predicate index.
    pub fn predicate_index(&self) -> &Arc<PredicateIndex> {
        &self.predindex
    }

    /// Durable delivery watermark of the persistent update queue (`None`
    /// in volatile mode): every descriptor at or below it was fully
    /// processed, and a crash can never make one fire again. Crash
    /// harnesses read this after a restart to bound redelivery.
    pub fn queue_watermark(&self) -> Option<i64> {
        self.queue.watermark()
    }

    /// Number of ack/watermark durability barriers the persistent queue
    /// has paid (one per batched group-commit ack). Benchmarks compare
    /// this against tokens processed to show the batch-drain amortization.
    pub fn queue_wm_flushes(&self) -> u64 {
        self.queue.wm_flushes().get()
    }

    /// Did the storage layer's open-time scavenge pass find and absorb
    /// crash damage when this instance was opened?
    pub fn was_recovered(&self) -> bool {
        self.db.storage().was_recovered()
    }

    /// The trigger cache.
    pub fn trigger_cache(&self) -> &Arc<TriggerCache> {
        &self.cache
    }

    /// The event bus.
    pub fn events(&self) -> &EventBus {
        &self.events
    }

    /// Engine counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The metrics registry (disabled when `Config::telemetry` is false).
    pub fn metrics_registry(&self) -> &Arc<Registry> {
        &self.telemetry.registry
    }

    /// Typed snapshot of every engine metric.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::collect(self)
    }

    /// Prometheus-style text exposition of every registered instrument.
    pub fn render_text(&self) -> String {
        self.telemetry.registry.render_text()
    }

    /// JSON object of every registered instrument (bench harness dumps).
    pub fn render_metrics_json(&self) -> String {
        self.telemetry.registry.render_json()
    }

    /// The per-token tracer (`None` when `Config::tracing` is
    /// [`TracingMode::Off`]).
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// Typed snapshot of every retained trace, assembled into per-token
    /// span trees. Empty (with zeroed stats) when tracing is off.
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        match &self.tracer {
            Some(t) => t.snapshot(),
            None => TraceSnapshot::default(),
        }
    }

    /// Chrome trace-event JSON of every retained trace (loadable in
    /// Perfetto / `chrome://tracing`). Valid-but-empty when tracing is off.
    pub fn render_chrome_trace(&self) -> String {
        match &self.tracer {
            Some(t) => t.render_chrome_trace(),
            None => tman_telemetry::trace::render_chrome_trace(&[]),
        }
    }

    /// Start the HTTP exposition endpoint on `addr` (`"127.0.0.1:0"` for
    /// an ephemeral port), returning the bound address. Serves
    /// `GET /metrics` (Prometheus text), `/metrics.json`, `/healthz`, and
    /// `/tracez` (Chrome-trace JSON of retained slow-token span trees).
    /// Called automatically at open time when [`Config::http_addr`] is
    /// set; also the `.serve-http ADDR` console command. Replaces any
    /// endpoint already running. The handler holds only a weak reference,
    /// so the endpoint never keeps a dropped engine alive.
    pub fn serve_http(self: &Arc<Self>, addr: &str) -> Result<std::net::SocketAddr> {
        let weak = Arc::downgrade(self);
        let server = HttpServer::start(
            addr,
            Arc::new(move |path: &str| match weak.upgrade() {
                Some(tman) => tman.http_route(path),
                None => Some(HttpResponse::text(503, "engine is gone\n")),
            }),
        )
        .map_err(|e| TmanError::Internal(format!("http endpoint '{addr}': {e}")))?;
        let local = server.local_addr();
        *self.http.lock() = Some(server);
        Ok(local)
    }

    /// Bound address of the running HTTP endpoint, if any.
    pub fn http_local_addr(&self) -> Option<std::net::SocketAddr> {
        self.http.lock().as_ref().map(|s| s.local_addr())
    }

    /// Route one HTTP request path (`None` → 404).
    fn http_route(&self, path: &str) -> Option<HttpResponse> {
        match path {
            "/metrics" => Some(HttpResponse::metrics_text(self.render_text())),
            "/metrics.json" => Some(HttpResponse::json(self.render_metrics_json())),
            "/healthz" => Some(self.render_healthz()),
            "/tracez" => Some(HttpResponse::json(self.render_tracez())),
            _ => None,
        }
    }

    /// `/healthz`: liveness plus the operational signals a load balancer
    /// or probe cares about — queue depth against the wire high-water
    /// mark, the durable watermark, and whether the last open recovered
    /// crash damage. 503 when shutting down or overloaded, else 200.
    fn render_healthz(&self) -> HttpResponse {
        let depth = self.queue_len();
        let high = self.config.wire_queue_high_water;
        let shutdown = self.is_shutdown();
        let overloaded = depth >= high;
        let status = if shutdown {
            "shutting_down"
        } else if overloaded {
            "overloaded"
        } else {
            "ok"
        };
        let watermark = match self.queue_watermark() {
            Some(w) => w.to_string(),
            None => "null".into(),
        };
        let body = format!(
            "{{\"status\":\"{status}\",\"queue_depth\":{depth},\"queue_high_water\":{high},\
             \"queue_watermark\":{watermark},\"recovered\":{},\"shutdown\":{shutdown}}}\n",
            self.was_recovered(),
        );
        HttpResponse {
            status: if shutdown || overloaded { 503 } else { 200 },
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    /// `/tracez`: Chrome-trace JSON of the retained *slow* span trees
    /// (root carries the slow flag), falling back to every retained tree
    /// when none is slow. Valid-but-empty when tracing is off.
    pub fn render_tracez(&self) -> String {
        let snap = self.trace_snapshot();
        let slow: Vec<&TraceTree> = snap
            .traces
            .iter()
            .filter(|t| t.root().is_some_and(|r| r.arg_a != 0))
            .collect();
        let pick: Vec<&TraceTree> = if slow.is_empty() {
            snap.traces.iter().collect()
        } else {
            slow
        };
        let events: Vec<TraceEvent> = pick.iter().flat_map(|t| t.events.iter().cloned()).collect();
        tman_telemetry::trace::render_chrome_trace(&events)
    }

    /// A live trace handle when tracing is on, else the inert handle. The
    /// single branch here is the entire per-token cost of the off path.
    #[inline]
    fn begin_trace(&self) -> TraceHandle {
        match &self.tracer {
            Some(t) => t.begin(),
            None => TraceHandle::none(),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Most recent task failure, if any.
    pub fn last_error(&self) -> Option<String> {
        self.last_error.lock().clone()
    }

    /// Subscribe to an event name (`"notify"` for notify actions).
    pub fn subscribe(&self, event: &str) -> crossbeam::channel::Receiver<EventNotification> {
        self.events.subscribe(event)
    }

    /// Pending update descriptors (queue depth), across every shard.
    pub fn queue_len(&self) -> usize {
        self.queue.len() + self.shards.len()
    }

    /// Shard slots this engine was opened with ([`Config::num_shards`]).
    pub fn num_shards(&self) -> usize {
        self.shards.num_shards()
    }

    /// Shards currently active for task placement.
    pub fn active_shards(&self) -> usize {
        self.shards.active()
    }

    /// Steer task placement to `n` shards (clamped to `[1, num_shards]`);
    /// returns the applied value. Under [`Partitioning::Adaptive`] the
    /// partition controller calls this each pass; public so operators and
    /// the differential oracle can force mid-stream transitions.
    pub fn set_active_shards(&self, n: usize) -> usize {
        self.shards.set_active(n)
    }

    fn record_error(&self, e: &TmanError) {
        self.stats.errors.bump();
        *self.last_error.lock() = Some(e.to_string());
    }

    // ----- commands ------------------------------------------------------------

    /// Execute one TriggerMan command (the console / client API entry).
    pub fn execute_command(self: &Arc<Self>, text: &str) -> Result<CommandOutput> {
        let cmd = tman_lang::parse_command(text)?;
        match cmd {
            Command::CreateTrigger(stmt) => self.create_trigger(&stmt, text),
            Command::DropTrigger(name) => self.drop_trigger(&name),
            Command::CreateTriggerSet(name) => self.create_trigger_set(&name),
            Command::DropTriggerSet(name) => self.drop_trigger_set(&name),
            Command::SetTriggerEnabled { name, enabled } => {
                self.set_trigger_enabled(&name, enabled)
            }
            Command::SetTriggerSetEnabled { name, enabled } => {
                self.set_trigger_set_enabled(&name, enabled)
            }
            Command::DefineDataSource {
                name,
                columns,
                from_table,
                connection,
            } => {
                let schema = match (&columns, &from_table) {
                    (Some(cols), _) => Schema::new(
                        cols.iter()
                            .map(|c| tman_common::Column::new(c.name.clone(), c.ty))
                            .collect(),
                    )?,
                    (None, Some(table)) => self.db.table(table)?.schema().clone(),
                    (None, None) => {
                        return Err(TmanError::Invalid(
                            "data source needs a schema or a table".into(),
                        ))
                    }
                };
                self.define_data_source_on(
                    &name,
                    schema,
                    from_table.as_deref(),
                    connection.as_deref(),
                )
                .map(CommandOutput::DataSourceDefined)
            }
            Command::DefineConnection(def) => {
                self.define_connection(&def)?;
                Ok(CommandOutput::ConnectionDefined)
            }
            Command::ShowStats { subsystem } => {
                let report = self.metrics_snapshot().format(subsystem.as_deref())?;
                Ok(CommandOutput::Stats(report))
            }
            Command::TraceLast { n } => Ok(CommandOutput::Trace(self.render_trace_last(n))),
            Command::TraceToken { id } => self.render_trace_token(id).map(CommandOutput::Trace),
        }
    }

    /// `trace last <n>`: the `n` most recently retained traces, oldest
    /// first, as indented span trees.
    pub fn render_trace_last(&self, n: usize) -> String {
        if self.tracer.is_none() {
            return "tracing is off (start with Config { tracing: TracingMode::Sampled(n) | Full })"
                .into();
        }
        let snap = self.trace_snapshot();
        if snap.traces.is_empty() {
            return format!(
                "no traces retained (started {}, discarded by sampling {})",
                snap.stats.started, snap.stats.discarded
            );
        }
        let skip = snap.traces.len().saturating_sub(n);
        let mut out = String::new();
        for t in &snap.traces[skip..] {
            out.push_str(&t.render());
        }
        out
    }

    /// `trace token <id>`: the retained trace of one token.
    pub fn render_trace_token(&self, id: u64) -> Result<String> {
        if self.tracer.is_none() {
            return Err(TmanError::Invalid(
                "tracing is off (Config { tracing: TracingMode::Off })".into(),
            ));
        }
        self.trace_snapshot()
            .trace(id)
            .map(TraceTree::render)
            .ok_or_else(|| {
                TmanError::NotFound(format!(
                    "trace {id} (discarded by sampling, overwritten in the ring, or never started)"
                ))
            })
    }

    /// Register a connection (§2). The engine's own database is the
    /// pre-defined `local` connection; remote connections exist as catalog
    /// metadata whose sources ingest through the data-source API.
    pub fn define_connection(&self, def: &tman_lang::ast::ConnectionDef) -> Result<()> {
        let mut conns = self.connections.write();
        if conns.contains_key(&def.name.to_lowercase()) {
            return Err(TmanError::AlreadyExists(format!(
                "connection '{}'",
                def.name
            )));
        }
        let row = ConnectionRow {
            name: def.name.clone(),
            dbtype: def.dbtype.clone(),
            host: def.host.clone(),
            server: def.server.clone(),
            user: def.user.clone(),
            is_default: def.is_default,
        };
        self.catalog.insert_connection(&row)?;
        if def.is_default {
            for c in conns.values_mut() {
                c.is_default = false;
            }
        }
        conns.insert(def.name.to_lowercase(), row);
        Ok(())
    }

    /// All registered connections.
    pub fn connections(&self) -> Vec<ConnectionRow> {
        self.connections.read().values().cloned().collect()
    }

    /// The designated default connection (§2).
    pub fn default_connection(&self) -> String {
        self.connections
            .read()
            .values()
            .find(|c| c.is_default)
            .map(|c| c.name.clone())
            .unwrap_or_else(|| "local".into())
    }

    /// Register a data source on the default connection. `local_table`
    /// wires update capture to an existing table of the engine database.
    pub fn define_data_source(
        &self,
        name: &str,
        schema: Schema,
        local_table: Option<&str>,
    ) -> Result<DataSourceId> {
        self.define_data_source_on(name, schema, local_table, None)
    }

    /// Register a data source on a named connection (`None` = default).
    /// Captured local tables are only possible on the `local` connection;
    /// sources on remote connections ingest via [`TriggerMan::push_token`].
    pub fn define_data_source_on(
        &self,
        name: &str,
        schema: Schema,
        local_table: Option<&str>,
        connection: Option<&str>,
    ) -> Result<DataSourceId> {
        if self
            .sources_by_name
            .read()
            .contains_key(&name.to_lowercase())
        {
            return Err(TmanError::AlreadyExists(format!("data source '{name}'")));
        }
        let conn_name = match connection {
            Some(c) => {
                let conns = self.connections.read();
                conns
                    .get(&c.to_lowercase())
                    .map(|r| r.name.clone())
                    .ok_or_else(|| TmanError::NotFound(format!("connection '{c}'")))?
            }
            None => self.default_connection(),
        };
        if local_table.is_some() && !conn_name.eq_ignore_ascii_case("local") {
            return Err(TmanError::Invalid(format!(
                "update capture from a table requires the local connection,                  not '{conn_name}'"
            )));
        }
        let table = match local_table {
            Some(t) => Some(source::ensure_local_table(&self.db, t, &schema)?),
            None => None,
        };
        let id = DataSourceId(self.next_source.fetch_add(1, Ordering::Relaxed));
        let info = Arc::new(SourceInfo {
            id,
            name: name.to_string(),
            schema: schema.clone(),
            local_table: table,
            connection: conn_name.clone(),
        });
        self.catalog.insert_data_source(&DataSourceRow {
            id,
            name: name.to_string(),
            schema,
            local_table: local_table.map(|s| s.to_string()),
            connection: conn_name,
        })?;
        self.install_source(info);
        Ok(id)
    }

    fn install_source(&self, info: Arc<SourceInfo>) {
        self.sources_by_name
            .write()
            .insert(info.name.to_lowercase(), info.clone());
        self.sources_by_id.write().insert(info.id, info.clone());
        if let Some(t) = &info.local_table {
            self.table_to_source
                .write()
                .insert(t.name().to_lowercase(), info.clone());
        }
    }

    /// Look up a data source by name.
    pub fn source(&self, name: &str) -> Result<Arc<SourceInfo>> {
        self.sources_by_name
            .read()
            .get(&name.to_lowercase())
            .cloned()
            .ok_or_else(|| TmanError::NotFound(format!("data source '{name}'")))
    }

    fn alpha_source(&self) -> TableAlphaSource {
        TableAlphaSource::new(self.sources_by_id.read().values().cloned().collect())
    }

    /// Prime a trigger's network, scanning the memory nodes' base data in
    /// parallel for multi-variable triggers (§6 data-level concurrency).
    fn prime_network(&self, trigger: &CompiledTrigger) -> Result<()> {
        let alpha = self.alpha_source();
        if trigger.vars.len() > 1 {
            trigger.network.prime_parallel(&alpha)
        } else {
            trigger.network.prime(&alpha)
        }
    }

    fn compile_row(&self, row: &TriggerRow) -> Result<compile::Compiled> {
        let Command::CreateTrigger(stmt) = tman_lang::parse_command(&row.text)? else {
            return Err(TmanError::Internal(format!(
                "catalog text of trigger {} is not a create trigger statement",
                row.id
            )));
        };
        let compiled = compile_trigger(
            &stmt,
            row.id,
            row.set,
            &row.text,
            self.config.network,
            &|name| self.source(name),
        )?;
        compiled
            .trigger
            .enabled
            .store(row.enabled, Ordering::Relaxed);
        Ok(compiled)
    }

    /// §5.1: register a compiled trigger's selection predicates in the
    /// predicate index and refresh the `expression_signature` catalog.
    ///
    /// Two execution-metadata extensions ride on registration:
    ///
    /// * **Indexed disjunctions (tagged execution).** When a variable's
    ///   signature has no index plan — an OR across selectable atoms
    ///   survives CNF only as a residual test — the concrete CNF is
    ///   decomposed into per-disjunct branches, each individually
    ///   indexable, registered as separate entries sharing one *tag*. A
    ///   token claims the tag at its first matching entry
    ///   ([`Self::admit_match`]), so the trigger still fires at most once
    ///   per token even when several disjuncts match. The governor
    ///   accounts the multi-set membership automatically: each branch is
    ///   an ordinary entry in whatever constant set it lands in.
    /// * **Windowed thresholds.** A `count >= K within W` trigger gets one
    ///   shared [`WindowState`]; every entry's metadata references it, and
    ///   the signatures its entries land in are excluded from Figure-5
    ///   fan-out ([`Self::is_window_sig`]) to keep window advances in
    ///   token order.
    fn register_predicates(&self, compiled: &compile::Compiled) -> Result<()> {
        let tid = compiled.trigger.id;
        let win = compiled
            .trigger
            .window
            .as_ref()
            .map(|w| Arc::new(WindowState::new(w.count, w.within_ns)));
        if let Some(w) = &win {
            self.windows.write().insert(tid, w.clone());
        }
        let mut tracked: Vec<(ExprId, SignatureId)> = Vec::new();
        let mut tagged_added = 0u64;
        for reg in &compiled.predicates {
            let branches = if self.config.index.tagged_disjunctions
                && matches!(reg.sig.index_plan, IndexPlan::None)
            {
                decompose_disjunction(&reg.canon).filter(|b| b.len() > 1)
            } else {
                None
            };
            let node = NodeId(reg.var as u32);
            match branches {
                Some(branches) => {
                    let tag = self.next_tag.fetch_add(1, Ordering::Relaxed);
                    for branch in &branches {
                        let (sig, consts) = analyze_selection(
                            branch,
                            reg.source.id,
                            reg.sig.key.event.clone(),
                            reg.sig.update_cols.clone(),
                        );
                        let expr_id = ExprId(self.next_expr.fetch_add(1, Ordering::Relaxed));
                        let (rt, _is_new) = self.predindex.add_predicate(
                            reg.source.id,
                            &reg.source.schema,
                            sig,
                            consts,
                            expr_id,
                            tid,
                            node,
                        )?;
                        self.catalog.upsert_signature(
                            rt.id,
                            reg.source.id,
                            &rt.sig.key.desc,
                            &rt.const_table_name(),
                            rt.len(),
                            rt.org_kind().as_str(),
                        )?;
                        self.pred_meta.write().insert(
                            expr_id,
                            PredMeta {
                                tag: Some(tag),
                                window: win.clone(),
                            },
                        );
                        if win.is_some() {
                            *self.window_sigs.write().entry(rt.id).or_insert(0) += 1;
                        }
                        tracked.push((expr_id, rt.id));
                        tagged_added += 1;
                    }
                }
                None => {
                    let expr_id = ExprId(self.next_expr.fetch_add(1, Ordering::Relaxed));
                    let (rt, _is_new) = self.predindex.add_predicate(
                        reg.source.id,
                        &reg.source.schema,
                        reg.sig.clone(),
                        reg.consts.clone(),
                        expr_id,
                        tid,
                        node,
                    )?;
                    self.catalog.upsert_signature(
                        rt.id,
                        reg.source.id,
                        &rt.sig.key.desc,
                        &rt.const_table_name(),
                        rt.len(),
                        rt.org_kind().as_str(),
                    )?;
                    if let Some(w) = &win {
                        self.pred_meta.write().insert(
                            expr_id,
                            PredMeta {
                                tag: None,
                                window: Some(w.clone()),
                            },
                        );
                        *self.window_sigs.write().entry(rt.id).or_insert(0) += 1;
                        tracked.push((expr_id, rt.id));
                    }
                }
            }
        }
        if !tracked.is_empty() {
            self.trigger_exprs.write().insert(tid, tracked);
        }
        if tagged_added > 0 {
            self.tagged_count.fetch_add(tagged_added, Ordering::Relaxed);
        }
        Ok(())
    }

    fn create_trigger(
        self: &Arc<Self>,
        stmt: &tman_lang::ast::CreateTrigger,
        text: &str,
    ) -> Result<CommandOutput> {
        if self
            .trigger_names
            .read()
            .contains_key(&stmt.name.to_lowercase())
        {
            return Err(TmanError::AlreadyExists(format!("trigger '{}'", stmt.name)));
        }
        let set = match &stmt.set {
            None => TriggerSetId(1),
            Some(name) => self
                .sets
                .read()
                .get(&name.to_lowercase())
                .map(|s| s.id)
                .ok_or_else(|| TmanError::NotFound(format!("trigger set '{name}'")))?,
        };
        let id = TriggerId(self.next_trigger.fetch_add(1, Ordering::Relaxed));
        let compiled = compile_trigger(stmt, id, set, text, self.config.network, &|name| {
            self.source(name)
        })?;
        self.register_predicates(&compiled)?;
        let trigger = Arc::new(compiled.trigger);
        // "Prime" the trigger (§5.1) so stored memories see existing rows.
        self.prime_network(&trigger)?;
        self.catalog.insert_trigger(&TriggerRow {
            id,
            set,
            name: trigger.name.clone(),
            text: text.to_string(),
            created: 0,
            enabled: true,
        })?;
        self.trigger_names
            .write()
            .insert(trigger.name.to_lowercase(), id);
        self.cache.insert(trigger);
        Ok(CommandOutput::TriggerCreated(id))
    }

    fn drop_trigger(&self, name: &str) -> Result<CommandOutput> {
        let id = self
            .trigger_names
            .write()
            .remove(&name.to_lowercase())
            .ok_or_else(|| TmanError::NotFound(format!("trigger '{name}'")))?;
        self.predindex.remove_trigger(id)?;
        self.catalog.delete_trigger(id)?;
        self.cache.remove(id);
        // Tagged/windowed execution metadata.
        if let Some(exprs) = self.trigger_exprs.write().remove(&id) {
            let mut meta = self.pred_meta.write();
            let mut wsigs = self.window_sigs.write();
            let mut tagged_removed = 0u64;
            for (eid, sig) in exprs {
                if let Some(m) = meta.remove(&eid) {
                    if m.tag.is_some() {
                        tagged_removed += 1;
                    }
                    if m.window.is_some() {
                        if let Some(n) = wsigs.get_mut(&sig) {
                            *n -= 1;
                            if *n == 0 {
                                wsigs.remove(&sig);
                            }
                        }
                    }
                }
            }
            if tagged_removed > 0 {
                self.tagged_count
                    .fetch_sub(tagged_removed, Ordering::Relaxed);
            }
        }
        if self.windows.write().remove(&id).is_some() {
            self.catalog.delete_window(id)?;
        }
        Ok(CommandOutput::TriggerDropped(id))
    }

    fn create_trigger_set(&self, name: &str) -> Result<CommandOutput> {
        let mut sets = self.sets.write();
        if sets.contains_key(&name.to_lowercase()) || name.eq_ignore_ascii_case("default") {
            return Err(TmanError::AlreadyExists(format!("trigger set '{name}'")));
        }
        let id = TriggerSetId(self.next_set.fetch_add(1, Ordering::Relaxed));
        let row = TriggerSetRow {
            id,
            name: name.to_string(),
            enabled: true,
        };
        self.catalog.insert_set(&row)?;
        sets.insert(name.to_lowercase(), row);
        Ok(CommandOutput::SetCreated(id))
    }

    fn drop_trigger_set(&self, name: &str) -> Result<CommandOutput> {
        if name.eq_ignore_ascii_case("default") {
            return Err(TmanError::Invalid(
                "cannot drop the default trigger set".into(),
            ));
        }
        let mut sets = self.sets.write();
        let row = sets
            .get(&name.to_lowercase())
            .cloned()
            .ok_or_else(|| TmanError::NotFound(format!("trigger set '{name}'")))?;
        let in_use = self.catalog.triggers()?.iter().any(|t| t.set == row.id);
        if in_use {
            return Err(TmanError::Invalid(format!(
                "trigger set '{name}' still contains triggers"
            )));
        }
        self.catalog.delete_set(name)?;
        sets.remove(&name.to_lowercase());
        Ok(CommandOutput::SetDropped)
    }

    fn set_trigger_enabled(self: &Arc<Self>, name: &str, enabled: bool) -> Result<CommandOutput> {
        let id = *self
            .trigger_names
            .read()
            .get(&name.to_lowercase())
            .ok_or_else(|| TmanError::NotFound(format!("trigger '{name}'")))?;
        self.catalog.set_trigger_enabled(id, enabled)?;
        if let Some(t) = self.cache.peek(id) {
            t.enabled.store(enabled, Ordering::Relaxed);
        }
        Ok(CommandOutput::EnabledChanged)
    }

    fn set_trigger_set_enabled(&self, name: &str, enabled: bool) -> Result<CommandOutput> {
        let mut sets = self.sets.write();
        let row = sets
            .get_mut(&name.to_lowercase())
            .ok_or_else(|| TmanError::NotFound(format!("trigger set '{name}'")))?;
        row.enabled = enabled;
        self.catalog.set_set_enabled(name, enabled)?;
        Ok(CommandOutput::EnabledChanged)
    }

    fn set_is_enabled(&self, id: TriggerSetId) -> bool {
        self.sets
            .read()
            .values()
            .find(|s| s.id == id)
            .map(|s| s.enabled)
            .unwrap_or(true)
    }

    /// Trigger names currently defined.
    pub fn trigger_names(&self) -> Vec<String> {
        let names = self.trigger_names.read();
        let mut out: Vec<String> = names.keys().cloned().collect();
        out.sort();
        out
    }

    // ----- data ingestion -------------------------------------------------------

    /// Run a SQL statement against the engine database with update capture:
    /// changes to tables backing data sources produce update descriptors
    /// (the Informix-trigger path of §3). Used both by clients and by
    /// `execSQL` rule actions (which therefore chain).
    pub fn run_sql(&self, sql: &str) -> Result<ExecResult> {
        self.run_stmt(&tman_lang::parse_sql(sql)?)
    }

    /// [`run_sql`](Self::run_sql) for a pre-parsed statement.
    pub fn run_stmt(&self, stmt: &tman_lang::SqlStmt) -> Result<ExecResult> {
        let mut captured = Vec::new();
        let result = tman_sql::execute_with_capture(&self.db, stmt, &mut |c| captured.push(c))?;
        for c in captured {
            let Some(info) = self
                .table_to_source
                .read()
                .get(&c.table.to_lowercase())
                .cloned()
            else {
                continue; // not a captured table
            };
            let token = UpdateDescriptor {
                data_src: info.id,
                op: tman_common::TokenOp::from_code(c.op)?,
                old: c.old,
                new: c.new,
                trace: self.begin_trace(),
                origin: None,
                claims: TagClaims::none(), // armed at drain, not capture
                ingest_unix_ns: tman_telemetry::unix_now_ns(),
            };
            self.queue.enqueue(token)?;
        }
        Ok(result)
    }

    /// Check a descriptor against the source catalog: the source must
    /// exist and both images must match its schema arity. The wire tier
    /// validates each decoded descriptor with this before batching, so a
    /// bad one is attributed to the connection that sent it instead of
    /// poisoning a whole group commit.
    pub fn validate_token(&self, token: &UpdateDescriptor) -> Result<()> {
        let sources = self.sources_by_id.read();
        let info = sources
            .get(&token.data_src)
            .ok_or_else(|| TmanError::NotFound(format!("data source {}", token.data_src)))?;
        for t in [&token.old, &token.new].into_iter().flatten() {
            if t.arity() != info.schema.arity() {
                return Err(TmanError::Type(format!(
                    "token arity {} does not match '{}' ({} columns)",
                    t.arity(),
                    info.name,
                    info.schema.arity()
                )));
            }
        }
        Ok(())
    }

    /// Data-source API (§3): deliver one update descriptor from a remote
    /// data source program.
    pub fn push_token(&self, mut token: UpdateDescriptor) -> Result<()> {
        self.validate_token(&token)?;
        if !token.trace.is_active() {
            token.trace = self.begin_trace();
        }
        if token.ingest_unix_ns == 0 {
            token.ingest_unix_ns = tman_telemetry::unix_now_ns();
        }
        self.queue.enqueue(token)
    }

    /// Batched data-source API: validate and enqueue many descriptors
    /// under one group-commit durability barrier (a single sync on the
    /// persistent queue, see [`UpdateQueue::enqueue_batch`]). Validation
    /// failures reject the whole batch before anything is enqueued, so a
    /// caller never has to reason about partial acceptance.
    pub fn push_tokens(&self, tokens: Vec<UpdateDescriptor>) -> Result<()> {
        let mut batch = tokens;
        for token in &mut batch {
            self.validate_token(token)?;
            if !token.trace.is_active() {
                token.trace = self.begin_trace();
            }
            if token.ingest_unix_ns == 0 {
                token.ingest_unix_ns = tman_telemetry::unix_now_ns();
            }
        }
        self.queue.enqueue_batch(&batch).map(|_| ())
    }

    // ----- token processing (§5.4) ------------------------------------------------

    /// Stamp and arm a token for processing: an ingest timestamp when the
    /// producer left it unset (windowed thresholds read it), and — only
    /// while tagged entries exist, one relaxed load otherwise — a live
    /// claim set for tag dedup. Idempotent; clones of an armed token (fan
    /// out, async actions) share the claim set.
    fn arm_token(&self, tok: &mut UpdateDescriptor) {
        if tok.ingest_unix_ns == 0 {
            tok.ingest_unix_ns = tman_telemetry::unix_now_ns();
        }
        if !tok.claims.is_active() && self.tagged_count.load(Ordering::Relaxed) > 0 {
            tok.claims = TagClaims::fresh();
        }
    }

    /// Process one token synchronously (tests and the driver path).
    pub fn process_token(self: &Arc<Self>, token: &UpdateDescriptor) -> Result<()> {
        if token.ingest_unix_ns == 0
            || (!token.claims.is_active() && self.tagged_count.load(Ordering::Relaxed) > 0)
        {
            let mut tok = token.clone();
            self.arm_token(&mut tok);
            return self.process_token_on(0, &tok, None);
        }
        self.process_token_on(0, token, None)
    }

    /// Process one token as shard `home`'s work: fan-out and async-action
    /// tasks it spawns route through [`ShardSet::push`], each carrying a
    /// clone of `ack` so the originating persistent-queue row is
    /// acknowledged only after every descendant task has run.
    fn process_token_on(
        self: &Arc<Self>,
        home: usize,
        token: &UpdateDescriptor,
        ack: Option<&Arc<AckState>>,
    ) -> Result<()> {
        self.stats.tokens.bump();
        // The engine drives the index root inline (signature walk + probes
        // below) rather than through `PredicateIndex::match_token`, so the
        // index's token counter must be fed here to keep
        // `tman_index_tokens_total` meaning "tokens submitted to the root"
        // on both paths.
        self.predindex.stats().tokens.bump();
        let mut process = token.trace.span(SpanKind::Process, ROOT_SPAN);
        process.set_args(home as u64, 0);
        // Updates first retract the old image from stored-memory networks
        // (see DESIGN.md: the index is probed with the new image, so a
        // synthetic delete probe routes the retraction).
        if token.op == TokenOp::Update {
            let _maint = token.trace.span(SpanKind::Maintenance, process.id());
            self.maintenance_retract(token)?;
        }
        let Some(src) = self.predindex.source(token.data_src) else {
            return Ok(());
        };
        for sig in src.signatures() {
            if !sig.sig.key.event.accepts(token.op) {
                continue;
            }
            if !token.touches_columns(&sig.sig.update_cols) {
                continue;
            }
            self.predindex.stats().signatures_probed.bump();
            let parts = self.effective_partitions(&sig);
            if parts > 1 && sig.len() >= self.config.partition_min && !self.is_window_sig(sig.id) {
                // Condition-level concurrency (Figure 5): split this
                // signature's constant/triggerID sets into tasks. The
                // fan-out span parents every partition's probe span, so the
                // tree reassembles across driver threads.
                sig.partition_activity().record_fanout();
                let mut fanout = token.trace.span(SpanKind::Fanout, process.id());
                fanout.set_args(sig.id.raw() as u64, parts as u64);
                for part in 0..parts {
                    self.shards.push(
                        home,
                        Task::SigPartition {
                            token: token.clone(),
                            sig: sig.clone(),
                            part,
                            nparts: parts,
                            parent_span: fanout.id(),
                            ack: ack.cloned(),
                        },
                    );
                }
            } else {
                self.probe_signature(&sig, token, 0, 1, process.id(), home, ack)?;
            }
        }
        Ok(())
    }

    /// Figure-5 fan-out width for one signature probe: the static config
    /// knob under [`Partitioning::Static`], or the partition controller's
    /// published per-signature decision under [`Partitioning::Adaptive`]
    /// (read even when no controller instance runs, so tests can force a
    /// fan-out through [`tman_predindex::PartitionActivity::set_fanout`]).
    fn effective_partitions(&self, sig: &Arc<SignatureRuntime>) -> usize {
        match self.config.partitioning {
            Partitioning::Static => self.config.condition_partitions,
            Partitioning::Adaptive => sig.partition_activity().fanout(),
        }
    }

    fn probe_signature(
        self: &Arc<Self>,
        sig: &Arc<SignatureRuntime>,
        token: &UpdateDescriptor,
        part: usize,
        nparts: usize,
        parent_span: u32,
        home: usize,
        ack: Option<&Arc<AckState>>,
    ) -> Result<()> {
        let mut probe = token.trace.span(SpanKind::SigProbe, parent_span);
        probe.set_args(
            sig.id.raw() as u64,
            ((part as u64) << 32) | (nparts as u64 & 0xffff_ffff),
        );
        let tuple = token.probe_tuple();
        let mut matches = Vec::new();
        sig.probe_partition_traced(
            tuple,
            part,
            nparts,
            self.predindex.stats(),
            Some(&probe),
            &mut |e| matches.push((e.expr_id, e.trigger_id, e.next_node)),
        )?;
        // Close the probe span here: downstream pin/action spans are its
        // children by id, but their time is not probe time.
        let probe_id = probe.id();
        drop(probe);
        for (eid, tid, node) in matches {
            if !self.admit_match(eid, token) {
                continue;
            }
            self.handle_match(tid, node, token, probe_id, home, ack)?;
        }
        Ok(())
    }

    /// Is this signature excluded from Figure-5 fan-out because a
    /// windowed trigger's entries live in it?
    fn is_window_sig(&self, id: SignatureId) -> bool {
        self.window_sigs.read().contains_key(&id)
    }

    /// The tagged-execution / windowed-threshold gate for one index match,
    /// applied before the trigger pin on every probe path (per-token,
    /// partitioned fan-out, batched sort-merge replay, and maintenance
    /// retraction). A single read-locked map probe for entries with no
    /// metadata.
    ///
    /// Order matters: the tag is claimed *first*, so a multi-disjunct
    /// windowed trigger observes its window exactly once per matching
    /// token; duplicate disjunct matches are suppressed before they can
    /// double-count.
    fn admit_match(&self, expr: ExprId, token: &UpdateDescriptor) -> bool {
        let meta = self.pred_meta.read();
        let Some(m) = meta.get(&expr) else {
            return true;
        };
        if let Some(tag) = m.tag {
            if !token.claims.claim(tag) {
                self.tag_dedup_hits.bump();
                return false;
            }
        }
        if let Some(w) = &m.window {
            if !w.observe(token.ingest_unix_ns) {
                return false;
            }
            self.window_fires.bump();
        }
        true
    }

    fn pin(self: &Arc<Self>, id: TriggerId) -> Result<PinnedTrigger> {
        self.pin_traced(id, &TraceHandle::none(), ROOT_SPAN)
    }

    /// Pin `id`, recording a `CachePin` span (tagged hit/miss) into
    /// `trace` when it is live.
    fn pin_traced(
        self: &Arc<Self>,
        id: TriggerId,
        trace: &TraceHandle,
        parent_span: u32,
    ) -> Result<PinnedTrigger> {
        let mut span = trace.span(SpanKind::CachePin, parent_span);
        let (pinned, hit) = self.cache.pin_report(id, || {
            let row = self
                .catalog
                .trigger_by_id(id)?
                .ok_or_else(|| TmanError::NotFound(format!("trigger {id} in catalog")))?;
            let compiled = self.compile_row(&row)?;
            let trigger = Arc::new(compiled.trigger);
            // Re-prime stored memories lost at eviction (a no-op for the
            // default A-TREAT networks, whose alpha nodes are virtual).
            self.prime_network(&trigger)?;
            Ok(trigger)
        })?;
        span.set_args(id.raw(), u64::from(hit));
        Ok(pinned)
    }

    fn handle_match(
        self: &Arc<Self>,
        tid: TriggerId,
        node: NodeId,
        token: &UpdateDescriptor,
        parent_span: u32,
        home: usize,
        ack: Option<&Arc<AckState>>,
    ) -> Result<()> {
        // §5.4: pin the trigger in the trigger cache, then pass the token
        // to the network node the matched expression names. A concurrent
        // `drop trigger` can win the race between the index probe (which
        // saw the entry) and this pin — the trigger is gone from the
        // catalog by design, not broken, so skip instead of erroring.
        let trigger = match self.pin_traced(tid, &token.trace, parent_span) {
            Ok(t) => t,
            Err(TmanError::NotFound(_)) => return Ok(()),
            Err(e) => return Err(e),
        };
        self.handle_match_pinned(&trigger, node, token, parent_span, home, ack)
    }

    /// The post-pin half of [`handle_match`]; the batched drain path calls
    /// it directly with a memoized pin (one cache pin per trigger per
    /// batch instead of one per match).
    fn handle_match_pinned(
        self: &Arc<Self>,
        trigger: &PinnedTrigger,
        node: NodeId,
        token: &UpdateDescriptor,
        parent_span: u32,
        home: usize,
        ack: Option<&Arc<AckState>>,
    ) -> Result<()> {
        if !trigger.enabled.load(Ordering::Relaxed) || !self.set_is_enabled(trigger.set) {
            return Ok(());
        }
        let var = node.raw() as usize;
        let (polarity, tuple) = match token.op {
            TokenOp::Insert | TokenOp::Update => {
                (Polarity::Plus, token.new.as_ref().expect("new image"))
            }
            TokenOp::Delete => (Polarity::Minus, token.old.as_ref().expect("old image")),
        };
        let mut firings = Vec::new();
        if trigger.vars.len() == 1 {
            // Single-variable triggers never scan base data: skip the
            // alpha-source snapshot (a per-match allocation on a hot path).
            trigger
                .network
                .activate(var, polarity, tuple, &NULL_ALPHA, &mut |f| firings.push(f))?;
        } else {
            let alpha = self.alpha_source();
            trigger
                .network
                .activate(var, polarity, tuple, &alpha, &mut |f| firings.push(f))?;
        }
        let run = trigger.runs_action(var, token);
        let action_polarity = if token.op == TokenOp::Delete {
            Polarity::Minus
        } else {
            Polarity::Plus
        };
        for f in firings {
            self.stats.firings.bump();
            if !run || f.polarity != action_polarity {
                continue;
            }
            if self.config.async_actions {
                // Rule-action concurrency (§6 task type 2).
                self.shards.push(
                    home,
                    Task::Action {
                        trigger: trigger.id,
                        bindings: f.bindings,
                        token: token.clone(),
                        parent_span,
                        ack: ack.cloned(),
                    },
                );
            } else {
                self.stats.actions.bump();
                action::run_action(self, trigger, &f.bindings, token, parent_span)?;
            }
        }
        Ok(())
    }

    /// Retract the old image of an update token from triggers with
    /// stored-memory networks (registered under the `any` opcode).
    fn maintenance_retract(self: &Arc<Self>, token: &UpdateDescriptor) -> Result<()> {
        let old = token.old.clone().expect("update token has old image");
        let mut synth = UpdateDescriptor::delete(token.data_src, old.clone());
        // The synthetic probe gets its own claim set: a multi-variable
        // trigger whose selection was decomposed into tagged disjuncts
        // must retract the old image exactly once, not once per matching
        // branch entry.
        self.arm_token(&mut synth);
        let Some(src) = self.predindex.source(token.data_src) else {
            return Ok(());
        };
        for sig in src.signatures() {
            if sig.sig.key.event != EventKind::Any {
                continue;
            }
            let mut matches = Vec::new();
            sig.probe(synth.probe_tuple(), self.predindex.stats(), &mut |e| {
                matches.push((e.expr_id, e.trigger_id, e.next_node))
            })?;
            for (eid, tid, node) in matches {
                if !self.admit_match(eid, &synth) {
                    continue;
                }
                let trigger = self.pin(tid)?;
                if trigger.vars.len() <= 1 {
                    continue;
                }
                let alpha = self.alpha_source();
                // Maintenance only: retraction firings do not run actions.
                trigger.network.activate(
                    node.raw() as usize,
                    Polarity::Minus,
                    &old,
                    &alpha,
                    &mut |_| {},
                )?;
            }
        }
        Ok(())
    }

    // ----- task execution / drivers (§6) -------------------------------------------

    fn execute_task(self: &Arc<Self>, home: usize, task: Task) {
        // Each fan-out/action task holds one `AckState` clone; it drops at
        // the end of its match arm — after the work ran (or failed), never
        // before — so the originating token's ack fires only once every
        // task spawned for it has completed.
        let result = match task {
            Task::Token(mut tok) => {
                self.telemetry.tasks_executed[metrics::TASK_TOKEN].bump();
                self.arm_token(&mut tok);
                self.process_token_on(home, &tok, None)
            }
            Task::SigPartition {
                token,
                sig,
                part,
                nparts,
                parent_span,
                ref ack,
            } => {
                self.telemetry.tasks_executed[metrics::TASK_SIG_PARTITION].bump();
                self.probe_signature(&sig, &token, part, nparts, parent_span, home, ack.as_ref())
            }
            Task::Action {
                trigger,
                bindings,
                token,
                parent_span,
                ack: _ack,
            } => (|| {
                self.telemetry.tasks_executed[metrics::TASK_ACTION].bump();
                // Same benign race as `handle_match`: the trigger may have
                // been dropped between the firing and this async task.
                let pinned = match self.pin_traced(trigger, &token.trace, parent_span) {
                    Ok(p) => p,
                    Err(TmanError::NotFound(_)) => return Ok(()),
                    Err(e) => return Err(e),
                };
                self.stats.actions.bump();
                action::run_action(self, &pinned, &bindings, &token, parent_span)
            })(),
        };
        if let Err(e) = result {
            self.record_error(&e);
        }
    }

    /// One bounded-time drain of the task queue — the paper's `TmanTest()`
    /// UDR (§6). Returns whether work remains. Runs as shard 0's work;
    /// driver threads call [`tman_test_on`](Self::tman_test_on) with their
    /// bound shard instead.
    pub fn tman_test(self: &Arc<Self>, threshold: std::time::Duration) -> TmanTestResult {
        self.tman_test_on(0, threshold)
    }

    /// `TmanTest()` as shard `shard`'s driver: drain that shard's task
    /// queue first (stealing from the other shards when it runs dry), then
    /// pull tokens from the update queue [`Config::drain_batch`] at a time.
    /// A batch is processed with the root lookup, trigger-cache pins, and
    /// the persistent queue's ack/watermark barrier amortized across it
    /// (see [`drain_batch_on`](Self::drain_batch_on)).
    pub fn tman_test_on(
        self: &Arc<Self>,
        shard: usize,
        threshold: std::time::Duration,
    ) -> TmanTestResult {
        self.telemetry.tman_test_calls.bump();
        let _duration = self.telemetry.tman_test_ns.start();
        let start = std::time::Instant::now();
        let home = shard % self.shards.num_shards();
        loop {
            if let Some((task, _slot)) = self.shards.pop(home) {
                self.shards.shard(home).tasks.bump();
                self.execute_task(home, task);
                // Completed acks fold into one batched watermark barrier
                // at every loop boundary instead of one sync per token.
                self.flush_acks();
                // "Yield the processor so other Informix tasks can use
                // it" — cooperative scheduling point.
                std::thread::yield_now();
            } else {
                match self.queue.dequeue_tracked(self.config.drain_batch.max(1)) {
                    Ok(batch) if !batch.is_empty() => {
                        self.shards.shard(home).tokens.add(batch.len() as u64);
                        self.drain_batch_on(home, batch);
                        self.flush_acks();
                        std::thread::yield_now();
                    }
                    other => {
                        if let Err(e) = other {
                            self.record_error(&e);
                        }
                        // Maintenance path: with nothing to process, this
                        // driver may run an organization-governor pass (the
                        // paper's reorganizations happen off the insert and
                        // probe paths) and/or a partition-controller pass.
                        self.maybe_run_governor();
                        self.maybe_run_partition_pass();
                        self.expire_windows();
                        self.flush_acks();
                        // Tasks pushed concurrently must not be stranded
                        // for a full driver period: re-check before
                        // reporting empty. (Only the task queue — a dequeue
                        // error above must not turn into a spin on a broken
                        // update queue.)
                        if self.shards.is_empty() {
                            return TmanTestResult::QueueEmpty;
                        }
                    }
                }
            }
            if start.elapsed() >= threshold {
                // A threshold expiry only means "come back immediately"
                // when something is actually left — e.g. a `SigPartition`
                // fan-out enqueued by the last token. An expiry with
                // nothing pending is a clean drain, not saturation (the
                // expiration counter feeds the partition controller's
                // saturation signal, so false positives matter).
                self.flush_acks();
                if self.has_pending_work() {
                    self.telemetry.threshold_expirations.bump();
                    self.maybe_run_partition_pass();
                    return TmanTestResult::TasksRemaining;
                }
                return TmanTestResult::QueueEmpty;
            }
        }
    }

    /// Process one dequeued batch as shard `home`'s work. Stamps each
    /// token's durable origin and trace lineage, ties an [`AckState`] to
    /// each tracked sequence number, then splits the batch into contiguous
    /// same-data-source runs (global token order preserved): runs longer
    /// than one token with no live trace take the batched probe path
    /// ([`process_batch_run`](Self::process_batch_run)); everything else
    /// falls back to the per-token path, which keeps span trees intact.
    fn drain_batch_on(self: &Arc<Self>, home: usize, batch: Vec<queue::QueueItem>) {
        let mut items: Vec<(UpdateDescriptor, Option<Arc<AckState>>)> =
            Vec::with_capacity(batch.len());
        for item in batch {
            let mut tok = item.token;
            // Stamp the durable origin so notifications raised by this
            // token carry it (delivery-tier dedup).
            tok.origin = item.seq;
            if tok.trace.is_active() {
                // Queue wait = capture (trace start) to now.
                if let Some(start) = tok.trace.start_ns() {
                    let now = now_ns();
                    tok.trace.record_complete(
                        SpanKind::QueueWait,
                        ROOT_SPAN,
                        start,
                        now.saturating_sub(start),
                        0,
                        0,
                    );
                }
            } else if self.tracer.is_some() {
                // Persistent-queue round trips drop the handle (it is not
                // serialized): lineage restarts at dequeue, so the tree
                // still covers everything from here on.
                tok.trace = self.begin_trace();
            }
            // Arm tag-dedup claims here, at drain: the claim set is
            // execution metadata the persistent queue never serializes, so
            // capture-time arming would be lost on a round trip.
            self.arm_token(&mut tok);
            let ack = item
                .seq
                .map(|seq| AckState::new(seq, self.pending_acks.clone()));
            items.push((tok, ack));
        }
        let mut i = 0;
        while i < items.len() {
            let mut j = i + 1;
            while j < items.len() && items[j].0.data_src == items[i].0.data_src {
                j += 1;
            }
            let run = &items[i..j];
            if run.len() == 1 || run.iter().any(|(t, _)| t.trace.is_active()) {
                for (tok, ack) in run {
                    self.telemetry.tasks_executed[metrics::TASK_TOKEN].bump();
                    if let Err(e) = self.process_token_on(home, tok, ack.as_ref()) {
                        self.record_error(&e);
                    }
                }
            } else {
                self.process_batch_run(home, run);
            }
            i = j;
        }
        // `items` drops here: AckState clones not captured by spawned
        // tasks release, queuing their sequence numbers for the caller's
        // `flush_acks`.
    }

    /// The batched probe path for one same-data-source run of untraced
    /// tokens. Probes are pure reads of the constant sets (DDL is the only
    /// writer), so all `(token, signature)` probes of the run execute
    /// first — signature-major, through [`SignatureRuntime::probe_batch`],
    /// which sort-merges the batch into each equality organization — and
    /// buffer their matches. Network mutations then **replay in strict
    /// token order**: for each token, the update retraction (if any)
    /// followed by its buffered matches in signature/entry order — exactly
    /// the order the per-token path produces. Trigger-cache pins are
    /// memoized across the run.
    fn process_batch_run(
        self: &Arc<Self>,
        home: usize,
        run: &[(UpdateDescriptor, Option<Arc<AckState>>)],
    ) {
        /// One deferred per-token step, in signature order.
        enum RunStep {
            /// A buffered probe match to hand to the network (gated
            /// through [`TriggerMan::admit_match`] at replay time, so tag
            /// claims and window advances happen in token order).
            Match(ExprId, TriggerId, NodeId),
            /// A Figure-5 fan-out to push (sig, nparts).
            Fanout(Arc<SignatureRuntime>, usize),
        }
        let istats = self.predindex.stats();
        self.stats.tokens.add(run.len() as u64);
        istats.tokens.add(run.len() as u64);
        let mut steps: Vec<Vec<RunStep>> = (0..run.len()).map(|_| Vec::new()).collect();
        if let Some(src) = self.predindex.source(run[0].0.data_src) {
            for sig in src.signatures() {
                let parts = self.effective_partitions(&sig);
                let fan = parts > 1
                    && sig.len() >= self.config.partition_min
                    && !self.is_window_sig(sig.id);
                let mut probes: Vec<(usize, &Tuple)> = Vec::new();
                for (idx, (tok, _)) in run.iter().enumerate() {
                    if !sig.sig.key.event.accepts(tok.op) {
                        continue;
                    }
                    if !tok.touches_columns(&sig.sig.update_cols) {
                        continue;
                    }
                    istats.signatures_probed.bump();
                    if fan {
                        steps[idx].push(RunStep::Fanout(sig.clone(), parts));
                    } else {
                        probes.push((idx, tok.probe_tuple()));
                    }
                }
                if !probes.is_empty() {
                    if let Err(e) = sig.probe_batch(&probes, istats, &mut |idx, e| {
                        steps[idx].push(RunStep::Match(e.expr_id, e.trigger_id, e.next_node))
                    }) {
                        self.record_error(&e);
                    }
                }
            }
        }
        // Token-order replay. One pin per trigger per run (`None` memoizes
        // "dropped concurrently" so later matches skip the catalog miss).
        let mut pins: FxHashMap<TriggerId, Option<PinnedTrigger>> = FxHashMap::default();
        for (idx, (tok, ack)) in run.iter().enumerate() {
            self.telemetry.tasks_executed[metrics::TASK_TOKEN].bump();
            let result = (|| -> Result<()> {
                if tok.op == TokenOp::Update {
                    self.maintenance_retract(tok)?;
                }
                for step in &steps[idx] {
                    match step {
                        RunStep::Fanout(sig, parts) => {
                            sig.partition_activity().record_fanout();
                            for part in 0..*parts {
                                self.shards.push(
                                    home,
                                    Task::SigPartition {
                                        token: tok.clone(),
                                        sig: sig.clone(),
                                        part,
                                        nparts: *parts,
                                        parent_span: ROOT_SPAN,
                                        ack: ack.clone(),
                                    },
                                );
                            }
                        }
                        RunStep::Match(eid, tid, node) => {
                            if !self.admit_match(*eid, tok) {
                                continue;
                            }
                            if !pins.contains_key(tid) {
                                let pin = match self.pin(*tid) {
                                    Ok(p) => Some(p),
                                    Err(TmanError::NotFound(_)) => None,
                                    Err(e) => return Err(e),
                                };
                                pins.insert(*tid, pin);
                            }
                            if let Some(Some(trigger)) = pins.get(tid) {
                                self.handle_match_pinned(
                                    trigger,
                                    *node,
                                    tok,
                                    ROOT_SPAN,
                                    home,
                                    ack.as_ref(),
                                )?;
                            }
                        }
                    }
                }
                Ok(())
            })();
            if let Err(e) = result {
                self.record_error(&e);
            }
        }
    }

    /// Fold every completed ack (sequence numbers whose last [`AckState`]
    /// clone has dropped) into one batched watermark barrier. Called at
    /// drain-loop boundaries and before every `tman_test` return.
    fn flush_acks(&self) {
        if self.pending_acks.is_empty() {
            return;
        }
        let mut seqs = Vec::new();
        while let Some(seq) = self.pending_acks.pop() {
            seqs.push(seq);
        }
        if seqs.is_empty() {
            return;
        }
        // At-least-once for windowed state: dirty windows persist *before*
        // the ack barrier. A crash after the ack with a stale window would
        // lose in-window events for good (lost fires); a crash before it
        // replays the tokens into the recovered window, which can only
        // repeat a fire.
        if let Err(e) = self.persist_windows() {
            self.record_error(&e);
        }
        if let Err(e) = self.queue.ack_batch(&seqs) {
            self.record_error(&e);
        }
    }

    /// Maintenance-path expiry for windowed thresholds: advance every
    /// window to its clamp watermark, dropping aged-out timestamps. Never
    /// consults the wall clock, so it cannot change any firing decision —
    /// the next `observe` would evict the same entries — it just returns
    /// their memory early on idle engines.
    fn expire_windows(&self) {
        let windows = self.windows.read();
        if windows.is_empty() {
            return;
        }
        let mut evicted = 0u64;
        for w in windows.values() {
            w.expire();
            // The drained tally covers observe-time age-outs and capacity
            // drops too, so the counter reflects every timestamp that left
            // a window, whichever path removed it.
            evicted += w.take_evicted();
        }
        if evicted > 0 {
            self.window_evictions.add(evicted);
        }
    }

    /// Write every dirty window's coarse snapshot to the `window_state`
    /// catalog. Called before each ack barrier and at checkpoints.
    fn persist_windows(&self) -> Result<()> {
        let snaps: Vec<(TriggerId, u64, Vec<u64>)> = {
            let windows = self.windows.read();
            if windows.is_empty() {
                return Ok(());
            }
            windows
                .iter()
                .filter_map(|(id, w)| w.snapshot().map(|(last, ring)| (*id, last, ring)))
                .collect()
        };
        for (id, last, ring) in snaps {
            self.catalog.save_window(id, last, &ring)?;
        }
        Ok(())
    }

    /// Live tagged (disjunct) entries in the predicate index.
    pub fn tagged_entries(&self) -> u64 {
        self.tagged_count.load(Ordering::Relaxed)
    }

    /// Matches suppressed because another disjunct entry already claimed
    /// the token's tag.
    pub fn tag_dedup_hits(&self) -> u64 {
        self.tag_dedup_hits.get()
    }

    /// Windowed-trigger firings admitted (threshold met).
    pub fn window_fires(&self) -> u64 {
        self.window_fires.get()
    }

    /// Timestamps evicted from windowed-threshold rings (age-out,
    /// capacity drop, hydration discard), drained by the maintenance pass.
    pub fn window_evictions(&self) -> u64 {
        self.window_evictions.get()
    }

    /// Anything left for a driver to do right now?
    fn has_pending_work(&self) -> bool {
        !self.shards.is_empty() || !self.queue.is_empty()
    }

    /// Is the organization governor enabled by this configuration?
    fn governor_enabled(&self) -> bool {
        self.config.index.adaptive || self.config.index_memory_budget.is_some()
    }

    /// Opportunistic governor entry point, called from the drivers'
    /// maintenance path (empty task queue). At most one pass per
    /// [`Config::governor_period`] across all driver threads: the thread
    /// that wins the CAS on the last-pass stamp runs it, everyone else
    /// returns immediately.
    fn maybe_run_governor(&self) {
        if !self.governor_enabled() {
            return;
        }
        let now = now_ns();
        let last = self.governor_last_ns.load(Ordering::Relaxed);
        if now.saturating_sub(last) < self.config.governor_period.as_nanos() as u64 {
            return;
        }
        if self
            .governor_last_ns
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            self.run_governor();
        }
    }

    /// Run one organization-governor pass now (see
    /// [`PredicateIndex::governor_pass`]): refresh per-signature activity
    /// rates, apply hysteresis promotions/demotions, and enforce
    /// [`Config::index_memory_budget`]. Normally invoked from the drivers'
    /// maintenance path; public so tests and operators can force a pass.
    pub fn run_governor(&self) -> GovernorReport {
        let mut policy = GovernorPolicy::from_config(&self.config.index);
        policy.memory_budget = self.config.index_memory_budget;
        let report = self.predindex.governor_pass(&policy);
        for msg in &report.errors {
            self.record_error(&TmanError::Internal(msg.clone()));
        }
        if let Some(tracer) = self.tracer.as_ref() {
            if !report.migrations.is_empty() {
                let handle = tracer.begin();
                let now = now_ns();
                handle.record_complete(
                    SpanKind::Governor,
                    ROOT_SPAN,
                    now.saturating_sub(report.pass_ns),
                    report.pass_ns,
                    report.migrations.len() as u64,
                    report.mem_bytes as u64,
                );
            }
        }
        report
    }

    /// Opportunistic partition-controller entry point, called from the
    /// drivers' maintenance path. Unlike the governor it also runs on the
    /// threshold-expiry (saturated) exit — the controller must be able to
    /// *disengage* fan-out while the drivers never see an empty queue. At
    /// most one pass per [`Config::governor_period`] across all threads,
    /// on its own CAS stamp.
    fn maybe_run_partition_pass(&self) {
        if self.partition_ctl.is_none() {
            return;
        }
        let now = now_ns();
        let last = self.partition_last_ns.load(Ordering::Relaxed);
        if now.saturating_sub(last) < self.config.governor_period.as_nanos() as u64 {
            return;
        }
        if self
            .partition_last_ns
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            self.run_partition_pass();
        }
    }

    /// Run one condition-partition controller pass now (see
    /// [`PartitionController::pass`]): fold driver-utilization telemetry
    /// into the decayed load signals and publish per-signature fan-out
    /// decisions. Returns `None` when no controller is configured
    /// ([`Partitioning::Static`], or telemetry off). Normally invoked from
    /// the drivers' maintenance path; public so tests and operators can
    /// force a pass.
    pub fn run_partition_pass(&self) -> Option<PartitionReport> {
        let ctl = self.partition_ctl.as_ref()?;
        let inputs = PassInputs {
            now_ns: now_ns(),
            busy_ns: self.telemetry.tman_test_ns.summary().sum,
            test_calls: self.telemetry.tman_test_calls.get(),
            expirations: self.telemetry.threshold_expirations.get(),
            queue_wait_ns: self.telemetry.queue.wait_ns.summary().sum,
            queue_depth: self.queue_len(),
            num_drivers: self.config.num_drivers(),
            cur_shards: self.shards.active(),
            max_shards: self.shards.num_shards(),
        };
        let sigs = self.predindex.all_signatures();
        let report = ctl.pass(&sigs, inputs);
        // Steer task placement width along the controller's decision
        // (adaptive engines only — this method is a no-op under Static, so
        // a forced `set_active_shards` is never fought).
        if report.target_shards != self.shards.active() && report.target_shards >= 1 {
            self.shards.set_active(report.target_shards);
        }
        if let Some(tracer) = self.tracer.as_ref() {
            if report.transitions > 0 {
                let handle = tracer.begin();
                let now = now_ns();
                handle.record_complete(
                    SpanKind::PartitionCtl,
                    ROOT_SPAN,
                    now.saturating_sub(report.pass_ns),
                    report.pass_ns,
                    report.transitions as u64,
                    report.target_fanout as u64,
                );
            }
        }
        Some(report)
    }

    /// Drain everything synchronously (tests, examples). Equivalent to a
    /// driver loop with an unbounded THRESHOLD.
    pub fn run_until_quiescent(self: &Arc<Self>) -> Result<()> {
        while self.tman_test(std::time::Duration::from_secs(3600)) == TmanTestResult::TasksRemaining
        {
        }
        Ok(())
    }

    /// Start `N = ceil(NUM_CPUS * TMAN_CONCURRENCY_LEVEL)` driver threads
    /// (§6). Stop them by dropping the returned pool (or `shutdown`).
    /// Placement width starts at `min(num_shards, N)` — fanning placement
    /// wider than the driver pool only adds steal traffic; the adaptive
    /// controller re-steers it from there.
    pub fn start_drivers(self: &Arc<Self>) -> DriverPool {
        self.shards
            .set_active(self.config.num_drivers().min(self.shards.num_shards()));
        driver::start(self.clone())
    }

    /// Ask driver threads to exit and stop the HTTP endpoint if one is
    /// serving.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Dropping the server joins its thread.
        self.http.lock().take();
    }

    /// Has [`shutdown`](Self::shutdown) been requested? Embedded services
    /// (driver threads, the wire server) poll this to stop their loops.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Refresh `expression_signature` catalog rows (sizes/organizations
    /// change as triggers come and go); called by checkpoints.
    pub fn refresh_signature_catalog(&self) -> Result<()> {
        for (_, src) in self.sources_by_id.read().iter() {
            if let Some(ix) = self.predindex.source(src.id) {
                for sig in ix.signatures() {
                    self.catalog.upsert_signature(
                        sig.id,
                        src.id,
                        &sig.sig.key.desc,
                        &sig.const_table_name(),
                        sig.len(),
                        sig.org_kind().as_str(),
                    )?;
                }
            }
        }
        Ok(())
    }

    /// Flush dirty pages (catalogs, constant tables, queue) to disk.
    pub fn checkpoint(&self) -> Result<()> {
        self.refresh_signature_catalog()?;
        self.persist_windows()?;
        self.db.checkpoint()
    }

    /// Snapshot a tuple for a source by column values (test/client helper).
    pub fn tuple_for(&self, source: &str, values: Vec<tman_common::Value>) -> Result<Tuple> {
        let info = self.source(source)?;
        Ok(Tuple::new(info.schema.coerce_row(values)?))
    }
}

#[cfg(test)]
mod tests;
