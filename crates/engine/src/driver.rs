//! Driver processes and the shared task queue (§6).
//!
//! "The concurrent processing architecture ... will make use of N driver
//! processes" where `N = ceil(NUM_CPUS * TMAN_CONCURRENCY_LEVEL)`. "Each
//! driver process will call TriggerMan's TmanTest() function every T time
//! units. Each driver will also call back immediately after one execution
//! of TmanTest() if work is still left to do."

use crate::TriggerMan;
use crossbeam::queue::SegQueue;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use tman_common::{TriggerId, Tuple, UpdateDescriptor};
use tman_predindex::SignatureRuntime;

/// Deferred acknowledgement of one persistent-queue token.
///
/// A token dequeued from the persistent queue may fan out into several
/// tasks (signature partitions, async rule actions) that run on other
/// shards. The token must not be acked — i.e. must survive a crash and be
/// redelivered — until *all* of that work has run. Every task spawned for
/// the token clones one `Arc<AckState>`; when the last clone drops (the
/// originating drain pass included), the sequence number is pushed onto
/// the engine's pending-ack queue, and the next drain-loop boundary folds
/// it into one batched [`UpdateQueue::ack_batch`](crate::queue::UpdateQueue::ack_batch)
/// durability barrier. Tasks that error still ack on drop — matching the
/// pre-shard semantics where a failed task was acked after being recorded
/// in `last_error`.
pub struct AckState {
    seq: i64,
    pending: Arc<SegQueue<i64>>,
}

impl AckState {
    /// Tie queue sequence `seq` to a completion set; the returned handle
    /// (and its clones) push `seq` onto `pending` when the last one drops.
    pub fn new(seq: i64, pending: Arc<SegQueue<i64>>) -> Arc<AckState> {
        Arc::new(AckState { seq, pending })
    }
}

impl Drop for AckState {
    fn drop(&mut self) {
        self.pending.push(self.seq);
    }
}

/// A unit of work in the shared task queue. §6 names four task types:
/// process one token (1), run one rule action (2), process a token against
/// a set of conditions (3); type 4 (a token against a set of rule actions)
/// is subsumed by enqueueing one [`Task::Action`] per firing.
///
/// Fan-out tasks carry the span id of the work that spawned them
/// (`parent_span`), so the spans a task emits — possibly on a different
/// driver thread — link back into the originating token's trace tree. The
/// trace id itself rides inside the token's `trace` handle.
pub enum Task {
    /// Type 1: match one token against the predicate index.
    Token(UpdateDescriptor),
    /// Type 3: match one token against one partition of a signature's
    /// constant/triggerID sets (Figure 5).
    SigPartition {
        /// The token.
        token: UpdateDescriptor,
        /// The signature whose equivalence class is partitioned.
        sig: Arc<SignatureRuntime>,
        /// Partition ordinal.
        part: usize,
        /// Total partitions.
        nparts: usize,
        /// Trace span that fanned this partition out.
        parent_span: u32,
        /// Deferred persistent-queue ack shared by every task spawned for
        /// the originating token; `None` for volatile tokens.
        ack: Option<Arc<AckState>>,
    },
    /// Type 2: run one rule action for one condition match.
    Action {
        /// The trigger to run.
        trigger: TriggerId,
        /// The matched variable bindings.
        bindings: Vec<Tuple>,
        /// The token that caused the firing (supplies `:OLD`).
        token: UpdateDescriptor,
        /// Trace span of the probe that produced the firing.
        parent_span: u32,
        /// Deferred persistent-queue ack (see [`Task::SigPartition::ack`]).
        ack: Option<Arc<AckState>>,
    },
}

/// Result of one `tman_test` invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TmanTestResult {
    /// The THRESHOLD expired with work still queued — call back
    /// immediately.
    TasksRemaining,
    /// Nothing to do — wait `T` before calling again.
    QueueEmpty,
}

/// Handle over the running driver threads. Dropping the pool shuts the
/// drivers down and joins them.
pub struct DriverPool {
    system: Arc<TriggerMan>,
    handles: Vec<JoinHandle<()>>,
}

impl DriverPool {
    /// Number of driver threads.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Never empty (at least one driver).
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Stop and join all drivers.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.system.shutdown();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for DriverPool {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Spawn the driver threads. Driver `i` binds to shard `i % num_shards`:
/// it drains its own shard's task queue first and steals from the others
/// only when its own is empty, so with `num_drivers >= num_shards` the hot
/// probe path takes no cross-shard contention.
pub fn start(system: Arc<TriggerMan>) -> DriverPool {
    let n = system.config().num_drivers();
    let nshards = system.config().num_shards();
    let threshold = system.config().threshold;
    let period = system.config().driver_period;
    let handles = (0..n)
        .map(|i| {
            let system = system.clone();
            let shard = i % nshards;
            std::thread::Builder::new()
                .name(format!("tman-driver-{i}"))
                .spawn(move || driver_loop(system, shard, threshold, period))
                .expect("spawn driver")
        })
        .collect();
    DriverPool { system, handles }
}

fn driver_loop(system: Arc<TriggerMan>, shard: usize, threshold: Duration, period: Duration) {
    while !system.is_shutdown() {
        match system.tman_test_on(shard, threshold) {
            TmanTestResult::TasksRemaining => continue,
            TmanTestResult::QueueEmpty => {
                // Wait T, in small slices so shutdown is prompt.
                let slice = period.min(Duration::from_millis(5));
                let mut waited = Duration::ZERO;
                while waited < period && !system.is_shutdown() {
                    std::thread::sleep(slice);
                    waited += slice;
                }
            }
        }
    }
}
