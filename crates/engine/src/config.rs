//! Engine configuration.

use crate::partition_ctl::PartitionPolicy;
use std::time::Duration;
use tman_network::NetworkKind;
use tman_predindex::IndexConfig;

/// How update descriptors are queued between capture and processing (§3:
/// "data source programs or triggers can place update descriptors in a
/// table acting as a queue ... We plan to allow updates to be delivered
/// into a main-memory queue as well ... the safety of persistent update
/// queuing will be lost").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueMode {
    /// Update descriptors go to a database table; they survive restarts.
    Persistent,
    /// Update descriptors go to an in-memory queue; faster, volatile.
    Volatile,
}

/// Per-token trace capture mode. Mirrors the [`Config::telemetry`]
/// switch: `Off` reduces the hot path to a single branch (tokens carry an
/// inert handle, no allocation); the other modes give every token a live
/// trace whose retention is decided *after* it finishes (tail sampling),
/// so a slow token is never lost to the sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracingMode {
    /// No tracing.
    Off,
    /// Trace every token, retain roughly 1 in `n` — plus every token whose
    /// end-to-end latency exceeds [`Config::slow_token_threshold`].
    Sampled(u64),
    /// Retain every token's trace.
    Full,
}

/// How the Figure-5 condition-level fan-out is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioning {
    /// Fan out into exactly [`Config::condition_partitions`] tasks
    /// whenever a signature's class has at least
    /// [`Config::partition_min`] entries.
    Static,
    /// Let the [`partition_ctl`](crate::partition_ctl) controller pick a
    /// per-signature fan-out from observed driver utilization: engage
    /// only when drivers are idle and token latency is queue-dominated,
    /// widen/narrow with hysteresis, disengage under saturation.
    /// [`Config::condition_partitions`] is ignored;
    /// [`Config::partition_min`] still gates eligibility.
    Adaptive,
}

/// TriggerMan configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Trigger-cache capacity, in triggers (§5.1's example: 16,384
    /// descriptions in 64 MB at ~4 KB each).
    pub trigger_cache_capacity: usize,
    /// Discrimination network used for join triggers (the paper's default
    /// is A-TREAT).
    pub network: NetworkKind,
    /// Predicate-index tuning.
    pub index: IndexConfig,
    /// Update-descriptor queue mode.
    pub queue_mode: QueueMode,
    /// `TMAN_CONCURRENCY_LEVEL` ∈ (0, 1]: fraction of CPUs given to driver
    /// threads. `N = ceil(NUM_CPUS * TMAN_CONCURRENCY_LEVEL)` (§6).
    pub concurrency_level: f64,
    /// Override for NUM_CPUS (tests); `None` = detect.
    pub num_cpus: Option<usize>,
    /// Driver sleep period `T` when the task queue is empty (§6 proposes
    /// 250 ms; tests use much less).
    pub driver_period: Duration,
    /// `THRESHOLD`: maximum time one `tman_test` invocation may run (§6).
    pub threshold: Duration,
    /// Split a signature probe into this many condition-level tasks when
    /// its triggerID set is at least `partition_min` entries (Figure 5);
    /// 1 disables condition-level concurrency.
    pub condition_partitions: usize,
    /// Minimum triggerID-set size before partitioned probing kicks in.
    pub partition_min: usize,
    /// Static (config-driven) vs adaptive (controller-driven) fan-out.
    pub partitioning: Partitioning,
    /// Tuning for the adaptive partition controller (ignored under
    /// [`Partitioning::Static`]).
    pub partition_policy: PartitionPolicy,
    /// Run each rule action as its own task (rule-action concurrency, §6)
    /// instead of inline with token processing.
    pub async_actions: bool,
    /// Buffer-pool pages for the backing database.
    pub pool_pages: usize,
    /// Collect metrics (counters, gauges, latency histograms). On by
    /// default; turning it off hands every subsystem no-op instrument
    /// handles, reducing recording to a single branch per event — for
    /// baseline/ablation runs where even relaxed-atomic traffic must not
    /// show up in a profile.
    pub telemetry: bool,
    /// Per-token trace capture (span trees across the §6 task fan-out).
    pub tracing: TracingMode,
    /// A token whose end-to-end latency reaches this threshold has its
    /// trace retained even when `TracingMode::Sampled(n)` would discard it.
    pub slow_token_threshold: Duration,
    /// Capacity (in events) of the bounded trace ring buffer; oldest
    /// retained events are overwritten once it fills.
    pub trace_buffer_events: usize,
    /// Global cap on the predicate index's memory-resident constant sets.
    /// When the resident bytes exceed it, the organization governor
    /// force-spills the coldest large equivalence classes to the
    /// database until they fit (requires a database-backed engine, which
    /// [`TriggerMan::open_memory`](crate::TriggerMan) always is). `None`
    /// disables budget enforcement. Setting a budget enables governor
    /// passes even when [`IndexConfig::adaptive`] is off.
    pub index_memory_budget: Option<usize>,
    /// Minimum interval between organization-governor passes. Drivers
    /// run the governor opportunistically when the task queue goes
    /// empty, at most once per period across all threads.
    pub governor_period: Duration,
    /// Fault-injection plan attached to the disk manager (test builds
    /// only; `None` in production). See [`tman_storage::FaultPlan`] — the
    /// plan starts disarmed, so merely attaching it costs nothing until a
    /// harness arms it. Ignored by `open_memory`.
    pub faults: Option<tman_storage::FaultPlan>,
    /// Write-ahead-log size (bytes) that triggers an automatic checkpoint
    /// on the next durability barrier: dirty pages are written back to the
    /// page file and the log is truncated. Smaller values bound recovery
    /// replay time; larger ones amortize checkpoint write-back further.
    /// Ignored by `open_memory` (no WAL).
    pub wal_checkpoint_bytes: u64,
    /// Wire tier: maximum decoded descriptors accumulated per poll pass
    /// before a group commit (one batched enqueue + one sync) is forced.
    pub wire_batch_max: usize,
    /// Wire tier: ingestion credits granted to a source connection at
    /// hello time and replenished on batch acknowledgement (one credit =
    /// one update descriptor the client may send).
    pub wire_credits: u32,
    /// Wire tier: persistent-queue depth above which credit replenishment
    /// is withheld (backpressure). Clients stall on zero credits instead
    /// of being dropped; grants resume once the drivers drain the queue
    /// below the high-water mark.
    pub wire_queue_high_water: usize,
    /// HTTP exposition endpoint (`GET /metrics`, `/metrics.json`,
    /// `/healthz`, `/tracez`), e.g. `"127.0.0.1:9100"` (port 0 for
    /// ephemeral). `None` (the default) serves nothing; an address starts
    /// the dependency-free responder at open time and stops it at
    /// [`shutdown`](crate::TriggerMan::shutdown).
    pub http_addr: Option<String>,
    /// Engine shard count: the task queue and per-shard activity blocks
    /// are split this many ways, each driver thread binds to one shard
    /// (`driver_index % shards`), and async fan-out tasks route to their
    /// owning shard by stable signature id. `None` (the default) derives
    /// the count from `std::thread::available_parallelism()` — the
    /// explicit override knob exists for tests and for pinning a
    /// deployment below the machine width.
    pub shards: Option<usize>,
    /// Maximum tokens one drain pass dequeues and processes as a batch:
    /// root-hash lookups, trigger-cache pins, and the persistent queue's
    /// ack/watermark durability barrier are amortized across the batch.
    /// 1 restores strictly per-token draining.
    pub drain_batch: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            trigger_cache_capacity: 16_384,
            network: NetworkKind::ATreat,
            index: IndexConfig::default(),
            queue_mode: QueueMode::Volatile,
            concurrency_level: 1.0,
            num_cpus: None,
            driver_period: Duration::from_millis(250),
            threshold: Duration::from_millis(250),
            condition_partitions: 1,
            partition_min: 1024,
            partitioning: Partitioning::Static,
            partition_policy: PartitionPolicy::default(),
            async_actions: false,
            pool_pages: 4096,
            telemetry: true,
            tracing: TracingMode::Off,
            slow_token_threshold: Duration::from_millis(10),
            trace_buffer_events: 65_536,
            index_memory_budget: None,
            governor_period: Duration::from_millis(250),
            faults: None,
            wal_checkpoint_bytes: 1 << 20,
            wire_batch_max: 4096,
            wire_credits: 1024,
            wire_queue_high_water: 65_536,
            http_addr: None,
            shards: None,
            drain_batch: 64,
        }
    }
}

impl Config {
    /// Number of driver threads `N = ceil(NUM_CPUS * level)` (§6).
    pub fn num_drivers(&self) -> usize {
        let cpus = self.num_cpus.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        let level = self.concurrency_level.clamp(f64::MIN_POSITIVE, 1.0);
        ((cpus as f64 * level).ceil() as usize).max(1)
    }

    /// Number of engine shards. `shards: None` derives the count from the
    /// machine (`available_parallelism`), so multi-core hosts shard by
    /// default; an explicit `Some(n)` pins it. Always at least 1.
    pub fn num_shards(&self) -> usize {
        self.shards
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_count_formula() {
        let mut c = Config {
            num_cpus: Some(8),
            ..Default::default()
        };
        c.concurrency_level = 1.0;
        assert_eq!(c.num_drivers(), 8);
        c.concurrency_level = 0.5;
        assert_eq!(c.num_drivers(), 4);
        c.concurrency_level = 0.3;
        assert_eq!(c.num_drivers(), 3); // ceil(2.4)
        c.concurrency_level = 0.0; // clamped to >0
        assert_eq!(c.num_drivers(), 1);
    }

    #[test]
    fn shard_count_defaults_to_machine_width() {
        let c = Config::default();
        let machine = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(c.num_shards(), machine.max(1));
    }

    #[test]
    fn shard_count_override_and_floor() {
        let mut c = Config {
            shards: Some(8),
            ..Default::default()
        };
        assert_eq!(c.num_shards(), 8);
        c.shards = Some(0); // nonsense override clamps to 1
        assert_eq!(c.num_shards(), 1);
    }

    #[test]
    fn drain_batch_default_is_batched() {
        assert!(Config::default().drain_batch > 1);
    }
}
