//! Engine shards: the §6 task queue split N ways for multi-core scaling.
//!
//! The seed engine kept one shared `SegQueue<Task>` that every driver
//! thread popped; with many cores the queue head becomes the single point
//! of contention and all per-signature activity counters ping-pong between
//! sockets. A [`ShardSet`] partitions the task queue into
//! `Config::num_shards()` slots. Placement is deterministic:
//!
//! - [`Task::SigPartition`] routes to `sig.shard_of(active)` — the same
//!   stable `id % n` discipline the Figure-5 fan-out uses for partition
//!   ordinals, so one signature's constant-set probes always land on one
//!   shard and its activity block stays core-local.
//! - [`Task::Action`] round-robins across active shards (rule actions are
//!   independent of each other, §6's type-2 tasks).
//! - [`Task::Token`] stays on the shard that would pop it next (tokens are
//!   normally drained straight from the update queue, not re-queued).
//!
//! Drivers bind to a home shard and *steal* from the others only when
//! their own queue is empty. Stealing keeps the set work-conserving: a
//! single-threaded `run_until_quiescent` drains every shard, and narrowing
//! the active count mid-stream never strands queued tasks on a
//! deactivated shard — the remaining drivers steal them.

use crate::driver::Task;
use crossbeam::queue::SegQueue;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use tman_telemetry::{Counter, Gauge, Registry};

/// One shard: a task queue plus its per-shard instruments. The instrument
/// cells live here (not in the registry) so recording works — and the
/// differential oracle can observe placement — even with telemetry off;
/// [`ShardSet::register_instruments`] shares the same cells into a
/// [`Registry`] as `tman_shard_*{shard="i"}` series.
pub struct EngineShard {
    queue: SegQueue<Task>,
    /// Tasks executed by drivers homed on (or stealing into) this shard.
    pub tasks: Arc<Counter>,
    /// Update-queue tokens drained by this shard's drivers.
    pub tokens: Arc<Counter>,
    /// Tasks this shard's drivers stole from other shards' queues.
    pub steals: Arc<Counter>,
    /// Current queued-task depth of this shard.
    pub depth: Arc<Gauge>,
}

impl EngineShard {
    fn new() -> EngineShard {
        EngineShard {
            queue: SegQueue::new(),
            tasks: Arc::new(Counter::new()),
            tokens: Arc::new(Counter::new()),
            steals: Arc::new(Counter::new()),
            depth: Arc::new(Gauge::new()),
        }
    }
}

/// The sharded task queue. `active` bounds *placement* (new tasks route
/// only to shards `0..active`), never *draining* — pops scan all `N`
/// slots, so shrinking the active set is always safe.
pub struct ShardSet {
    shards: Vec<EngineShard>,
    active: AtomicUsize,
    /// Round-robin cursor for [`Task::Action`] placement.
    rr: AtomicUsize,
    /// `tman_shards_active` gauge cell (shared into the registry).
    active_gauge: Arc<Gauge>,
}

impl ShardSet {
    /// A set of `n` shards (clamped to at least 1), all initially active.
    pub fn new(n: usize) -> ShardSet {
        let n = n.max(1);
        let active_gauge = Arc::new(Gauge::new());
        active_gauge.add(n as i64);
        ShardSet {
            shards: (0..n).map(|_| EngineShard::new()).collect(),
            active: AtomicUsize::new(n),
            rr: AtomicUsize::new(0),
            active_gauge,
        }
    }

    /// Total shard slots (fixed at construction).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shards currently eligible for task placement.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Steer placement to `n` shards, clamped to `[1, num_shards]`.
    /// Returns the applied value. Narrowing never strands tasks already
    /// queued on higher shards: draining scans all slots.
    pub fn set_active(&self, n: usize) -> usize {
        let n = n.clamp(1, self.shards.len());
        self.active.store(n, Ordering::Relaxed);
        let cur = self.active_gauge.get();
        self.active_gauge.add(n as i64 - cur);
        n
    }

    /// Route `task` to its owning shard. Signature partitions go to the
    /// signature's stable home (`sig.shard_of(active)`); actions
    /// round-robin; bare tokens go to `home` (the pushing driver's shard).
    pub fn push(&self, home: usize, task: Task) {
        let active = self.active();
        let slot = match &task {
            Task::SigPartition { sig, .. } => sig.shard_of(active),
            Task::Action { .. } => self.rr.fetch_add(1, Ordering::Relaxed) % active,
            Task::Token(_) => home % self.shards.len(),
        };
        self.shards[slot].depth.inc();
        self.shards[slot].queue.push(task);
    }

    /// Pop a task for a driver homed on `shard`: own queue first, then a
    /// steal scan over the other slots (all `N`, not just active ones).
    /// Returns the task and the slot it came from.
    pub fn pop(&self, shard: usize) -> Option<(Task, usize)> {
        let n = self.shards.len();
        let home = shard % n;
        if let Some(t) = self.shards[home].queue.pop() {
            self.shards[home].depth.dec();
            return Some((t, home));
        }
        for off in 1..n {
            let slot = (home + off) % n;
            if let Some(t) = self.shards[slot].queue.pop() {
                self.shards[slot].depth.dec();
                self.shards[home].steals.bump();
                return Some((t, slot));
            }
        }
        None
    }

    /// Queued tasks across every shard.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }

    /// True when no shard has queued tasks.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.queue.is_empty())
    }

    /// Borrow shard `i`'s instrument block (metrics snapshots).
    pub fn shard(&self, i: usize) -> &EngineShard {
        &self.shards[i]
    }

    /// Share the per-shard instrument cells into `r` as labeled series:
    /// `tman_shard_tasks_total{shard="i"}`, `tman_shard_tokens_total`,
    /// `tman_shard_steals_total`, `tman_shard_queue_depth`, plus the
    /// scalar `tman_shards_active` gauge.
    pub fn register_instruments(&self, r: &Registry) {
        for (i, s) in self.shards.iter().enumerate() {
            let label = i.to_string();
            let l: &[(&str, &str)] = &[("shard", &label)];
            r.register_counter("tman_shard_tasks_total", l, s.tasks.clone());
            r.register_counter("tman_shard_tokens_total", l, s.tokens.clone());
            r.register_counter("tman_shard_steals_total", l, s.steals.clone());
            r.register_gauge("tman_shard_queue_depth", l, s.depth.clone());
        }
        r.register_gauge("tman_shards_active", &[], self.active_gauge.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tman_common::{DataSourceId, Tuple, UpdateDescriptor};

    fn token_task() -> Task {
        Task::Token(UpdateDescriptor::insert(
            DataSourceId(7),
            Tuple::new(vec![]),
        ))
    }

    #[test]
    fn pop_drains_own_queue_before_stealing() {
        let set = ShardSet::new(4);
        set.push(2, token_task()); // lands on shard 2
        set.push(0, token_task()); // lands on shard 0
                                   // Driver homed on 2 takes its own task first, then steals 0's.
        let (_, slot) = set.pop(2).unwrap();
        assert_eq!(slot, 2);
        assert_eq!(set.shard(2).steals.get(), 0);
        let (_, slot) = set.pop(2).unwrap();
        assert_eq!(slot, 0);
        assert_eq!(set.shard(2).steals.get(), 1);
        assert!(set.pop(2).is_none());
        assert!(set.is_empty());
    }

    #[test]
    fn set_active_clamps_and_narrowed_shards_still_drain() {
        let set = ShardSet::new(4);
        assert_eq!(set.set_active(0), 1);
        assert_eq!(set.set_active(99), 4);
        // Queue a task on shard 3, then narrow to 1: pops from shard 0
        // must still reach it via the steal scan.
        set.push(3, token_task());
        set.set_active(1);
        assert_eq!(set.len(), 1);
        let (_, slot) = set.pop(0).unwrap();
        assert_eq!(slot, 3);
    }

    #[test]
    fn depth_gauge_tracks_push_pop() {
        let set = ShardSet::new(2);
        set.push(1, token_task());
        set.push(1, token_task());
        assert_eq!(set.shard(1).depth.get(), 2);
        set.pop(1).unwrap();
        assert_eq!(set.shard(1).depth.get(), 1);
        set.pop(1).unwrap();
        assert_eq!(set.shard(1).depth.get(), 0);
    }
}
