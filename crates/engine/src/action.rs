//! Rule-action execution (§2, §5.4 "if the trigger condition is satisfied,
//! the trigger action is executed").
//!
//! "Values matching the trigger condition are substituted into the trigger
//! action using macro substitution. After substitution, the trigger action
//! is evaluated. This procedure binds the rule condition to the rule
//! action."

use crate::compile::{CompiledAction, CompiledTrigger};
use crate::events::EventNotification;
use crate::metrics::{ACTION_EXEC_SQL, ACTION_NOTIFY, ACTION_RAISE_EVENT};
use crate::TriggerMan;
use tman_common::{Result, TmanError, TokenOp, Tuple, UpdateDescriptor, Value};
use tman_expr::scalar::Env;
use tman_lang::ast::{Expr, Literal, SelectCols, SqlStmt};
use tman_telemetry::SpanKind;

/// Execute one action for one condition match.
///
/// `bindings` holds the matched tuple per variable; the token supplies the
/// `:OLD` image of the event variable for update/delete events.
/// `parent_span` links the `Action` span into the token's trace — it is
/// the span id of the probe that produced the firing (possibly recorded on
/// a different driver thread when `async_actions` is on).
pub fn run_action(
    system: &TriggerMan,
    trigger: &CompiledTrigger,
    bindings: &[Tuple],
    token: &UpdateDescriptor,
    parent_span: u32,
) -> Result<()> {
    let mut span = token.trace.span(SpanKind::Action, parent_span);
    span.set_args(trigger.id.raw(), 0);
    let old_of_event_var = match token.op {
        TokenOp::Update | TokenOp::Delete => token.old.clone(),
        TokenOp::Insert => None,
    };
    let _latency = system.telemetry.action_ns.start();
    match &trigger.action {
        CompiledAction::ExecSql(stmt) => {
            system.telemetry.actions_by_kind[ACTION_EXEC_SQL].bump();
            let substituted = substitute_stmt(stmt, trigger, bindings, old_of_event_var.as_ref())?;
            system.run_stmt(&substituted)?;
            Ok(())
        }
        CompiledAction::RaiseEvent { name, args } => {
            system.telemetry.actions_by_kind[ACTION_RAISE_EVENT].bump();
            // Action environment: NEW images in slots 0..n, OLD images in
            // slots n..2n (only the event variable has one).
            let n = trigger.vars.len();
            let mut slots: Vec<Option<&Tuple>> = Vec::with_capacity(2 * n);
            for b in bindings {
                slots.push(Some(b));
            }
            for v in 0..n {
                if v == trigger.event_var {
                    slots.push(old_of_event_var.as_ref());
                } else {
                    slots.push(None);
                }
            }
            let env = Env {
                tuples: &slots,
                consts: &[],
            };
            let values = args
                .iter()
                .map(|a| a.eval(&env))
                .collect::<Result<Vec<_>>>()?;
            let mut notify = token.trace.span(SpanKind::Notify, span.id());
            let fanout = system.events().publish(EventNotification {
                event: name.clone(),
                trigger: trigger.name.clone(),
                values,
                message: None,
                token_seq: token.origin,
                trace: token.trace.clone(),
                ingest_unix_ns: token.ingest_unix_ns,
            });
            notify.set_arg_b(fanout as u64);
            system.telemetry.notify_fanout.record(fanout as u64);
            Ok(())
        }
        CompiledAction::Notify(template) => {
            system.telemetry.actions_by_kind[ACTION_NOTIFY].bump();
            let msg = substitute_text(template, trigger, bindings, old_of_event_var.as_ref());
            let mut notify = token.trace.span(SpanKind::Notify, span.id());
            let fanout = system.events().publish(EventNotification {
                event: "notify".into(),
                trigger: trigger.name.clone(),
                values: Vec::new(),
                message: Some(msg),
                token_seq: token.origin,
                trace: token.trace.clone(),
                ingest_unix_ns: token.ingest_unix_ns,
            });
            notify.set_arg_b(fanout as u64);
            system.telemetry.notify_fanout.record(fanout as u64);
            Ok(())
        }
    }
}

/// Resolve a transition reference to a concrete value.
fn transition_value(
    trigger: &CompiledTrigger,
    bindings: &[Tuple],
    old_event: Option<&Tuple>,
    new: bool,
    source: &str,
    column: &str,
) -> Result<Value> {
    let var = trigger
        .vars
        .iter()
        .position(|v| {
            v.name.eq_ignore_ascii_case(source) || v.source.name.eq_ignore_ascii_case(source)
        })
        .ok_or_else(|| TmanError::Invalid(format!("unknown source '{source}' in action")))?;
    let col = trigger.vars[var]
        .source
        .schema
        .index_of(column)
        .ok_or_else(|| TmanError::Invalid(format!("no column '{column}' in '{source}'")))?;
    let tuple = if new {
        &bindings[var]
    } else if var == trigger.event_var {
        match old_event {
            Some(t) => t,
            // :OLD on an insert event: fall back to the new image, which is
            // the only image that exists.
            None => &bindings[var],
        }
    } else {
        // Non-event variables were not updated by this token; OLD == NEW.
        &bindings[var]
    };
    Ok(tuple.get(col).clone())
}

fn value_to_literal(v: Value) -> Literal {
    match v {
        Value::Null => Literal::Null,
        Value::Int(i) => Literal::Int(i),
        Value::Float(f) => Literal::Float(f),
        Value::Str(s) => Literal::Str(s),
    }
}

fn substitute_expr(
    e: &Expr,
    trigger: &CompiledTrigger,
    bindings: &[Tuple],
    old_event: Option<&Tuple>,
) -> Result<Expr> {
    Ok(match e {
        Expr::Transition {
            new,
            source,
            column,
        } => Expr::Literal(value_to_literal(transition_value(
            trigger, bindings, old_event, *new, source, column,
        )?)),
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(substitute_expr(expr, trigger, bindings, old_event)?),
        },
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(substitute_expr(left, trigger, bindings, old_event)?),
            right: Box::new(substitute_expr(right, trigger, bindings, old_event)?),
        },
        Expr::Call { name, args } => Expr::Call {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| substitute_expr(a, trigger, bindings, old_event))
                .collect::<Result<_>>()?,
        },
        other => other.clone(),
    })
}

/// Macro-substitute `:NEW`/`:OLD` references in an `execSQL` statement
/// template, producing a runnable statement.
pub fn substitute_stmt(
    stmt: &SqlStmt,
    trigger: &CompiledTrigger,
    bindings: &[Tuple],
    old_event: Option<&Tuple>,
) -> Result<SqlStmt> {
    let sub = |e: &Expr| substitute_expr(e, trigger, bindings, old_event);
    Ok(match stmt {
        SqlStmt::Insert { table, values } => SqlStmt::Insert {
            table: table.clone(),
            values: values.iter().map(sub).collect::<Result<_>>()?,
        },
        SqlStmt::Update {
            table,
            sets,
            filter,
        } => SqlStmt::Update {
            table: table.clone(),
            sets: sets
                .iter()
                .map(|(c, e)| Ok((c.clone(), sub(e)?)))
                .collect::<Result<_>>()?,
            filter: filter.as_ref().map(&sub).transpose()?,
        },
        SqlStmt::Delete { table, filter } => SqlStmt::Delete {
            table: table.clone(),
            filter: filter.as_ref().map(&sub).transpose()?,
        },
        SqlStmt::Select {
            cols,
            table,
            filter,
        } => SqlStmt::Select {
            cols: match cols {
                SelectCols::Star => SelectCols::Star,
                SelectCols::Exprs(es) => {
                    SelectCols::Exprs(es.iter().map(sub).collect::<Result<_>>()?)
                }
            },
            table: table.clone(),
            filter: filter.as_ref().map(&sub).transpose()?,
        },
        ddl => ddl.clone(),
    })
}

fn value_to_plain(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        other => other.to_string(),
    }
}

/// Textual `:NEW.src.col` / `:OLD.src.col` substitution for `notify`
/// message templates.
pub fn substitute_text(
    template: &str,
    trigger: &CompiledTrigger,
    bindings: &[Tuple],
    old_event: Option<&Tuple>,
) -> String {
    let mut out = template.to_string();
    for (v, var) in trigger.vars.iter().enumerate() {
        for col in var.source.schema.columns() {
            for (tag, new) in [(":NEW", true), (":OLD", false)] {
                let pattern = format!("{tag}.{}.{}", var.name, col.name);
                if out.contains(&pattern) {
                    let val = transition_value(
                        trigger,
                        bindings,
                        old_event,
                        new,
                        &trigger.vars[v].name,
                        &col.name,
                    )
                    .map(|v| value_to_plain(&v))
                    .unwrap_or_else(|_| "?".into());
                    out = out.replace(&pattern, &val);
                }
            }
        }
    }
    out
}
