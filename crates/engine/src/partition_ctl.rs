//! The condition-partition **controller**: adaptive Figure-5 fan-out.
//!
//! §6 of the paper uses partitioned constant/triggerID sets to keep N
//! drivers busy when one hot signature dominates — but fanning a token out
//! into `SigPartition` tasks is pure overhead when the drivers are already
//! saturated or the queue is empty. The static `condition_partitions` knob
//! cannot tell those regimes apart; this module closes the loop from the
//! driver-utilization signals the telemetry subsystem already exports:
//!
//! * **busy fraction** — delta of the `tman_test_ns` histogram sum over
//!   wall time × driver count: how much of the drivers' capacity was spent
//!   inside `tman_test`;
//! * **threshold-expiration rate** — expirations per `tman_test` call; a
//!   high rate means calls keep running out of THRESHOLD with work left,
//!   i.e. the drivers are saturated;
//! * **queue dominance** — delta of queued-wait nanoseconds vs busy
//!   nanoseconds (tokens spending longer waiting than the drivers spend
//!   processing), plus the live queue depth.
//!
//! A controller **pass** runs from the drivers' maintenance path in the
//! same CAS-throttled slot as the predicate-index governor (its own
//! timestamp, so the two loops never steal each other's turn). It folds
//! the raw deltas into decayed EWMAs, picks one *target* fan-out with
//! hysteresis ([`decide_fanout`]), and publishes a per-signature decision
//! into each [`SignatureRuntime`]'s
//! [`PartitionActivity`](tman_predindex::PartitionActivity): hot
//! signatures (own probe-rate share ≥ `hot_fraction`, class at least
//! `partition_min` entries) get the target, everything else stays at 1.
//! The probe path reads that cell instead of raw config when
//! [`Partitioning::Adaptive`](crate::config::Partitioning) is selected.
//!
//! Coexistence with the governor is by construction: partition assignment
//! hashes stable `expr_id`s (see
//! [`SignatureRuntime::probe_partition`]), so an organization migration
//! between two partition tasks of one fan-out cannot shift an entry
//! between partitions, and the controller's EWMA fold keeps its own probe
//! snapshot so the governor's [`SigActivity::tick`](tman_predindex::SigActivity::tick)
//! deltas stay untouched.

use parking_lot::Mutex;
use std::sync::Arc;
use tman_common::stats::Counter;
use tman_predindex::SignatureRuntime;
use tman_telemetry::{GaugeHandle, HistogramHandle, Registry};

/// Controller tuning. The defaults engage partitioning only when the
/// drivers are measurably idle *and* token latency is queue-dominated,
/// and disengage it outright under saturation.
#[derive(Debug, Clone)]
pub struct PartitionPolicy {
    /// Hard cap on the per-signature fan-out. `0` means "the number of
    /// drivers" — fanning wider than the driver pool only adds task-queue
    /// overhead, so on a single-driver host the adaptive controller never
    /// partitions at all.
    pub max_fanout: usize,
    /// Widening requires the decayed busy fraction at or under this (the
    /// drivers have spare capacity to soak up partition tasks).
    pub engage_busy_max: f64,
    /// At or above this decayed busy fraction the controller disengages
    /// (fan-out back to 1) immediately: under saturation, partition tasks
    /// only lengthen the task queue.
    pub disengage_busy_min: f64,
    /// Widening requires the decayed expirations-per-`tman_test`-call at
    /// or under this; twice this value counts as saturation and
    /// disengages.
    pub expiration_rate_max: f64,
    /// A signature is eligible for fan-out only while its decayed probe
    /// rate is at least this fraction of the total across all signatures
    /// (Figure 5 pays off only for *hot* signatures).
    pub hot_fraction: f64,
    /// EWMA weight of the newest sample when folding busy fraction,
    /// expiration rate, and per-signature probe rates.
    pub decay: f64,
    /// Passes that must elapse after a signature's last fan-out change
    /// before it may *widen* again. Narrowing and disengaging are
    /// immediate — backing off under saturation must not wait.
    pub cooldown_passes: u64,
    /// Queue dominance threshold: widening requires queued-wait
    /// nanoseconds ≥ `queue_wait_factor` × busy nanoseconds over the last
    /// inter-pass window (or a non-empty queue right now).
    pub queue_wait_factor: f64,
}

impl Default for PartitionPolicy {
    fn default() -> PartitionPolicy {
        PartitionPolicy {
            max_fanout: 0,
            engage_busy_max: 0.5,
            disengage_busy_min: 0.85,
            expiration_rate_max: 0.25,
            hot_fraction: 0.25,
            decay: 0.3,
            cooldown_passes: 2,
            queue_wait_factor: 1.0,
        }
    }
}

/// Decayed driver-utilization signals for one pass (inputs to
/// [`decide_fanout`]; pure data so the policy is unit-testable).
#[derive(Debug, Clone, Copy, Default)]
pub struct DriverLoad {
    /// EWMA fraction of driver wall-capacity spent inside `tman_test`
    /// (clamped to `[0, 1]`).
    pub busy_frac: f64,
    /// EWMA threshold expirations per `tman_test` call.
    pub expiration_rate: f64,
    /// Live update-queue + task-queue depth at pass time.
    pub queue_depth: usize,
    /// Queued-wait nanoseconds over busy nanoseconds in the last window.
    pub queue_wait_ratio: f64,
}

/// The hysteresis decision: the fan-out hot signatures should use, given
/// the current target `cur`. Saturation narrows to 1 immediately; idle,
/// queue-dominated drivers widen one doubling per pass up to `max_fanout`;
/// anything in between holds.
pub fn decide_fanout(
    cur: usize,
    load: &DriverLoad,
    policy: &PartitionPolicy,
    max_fanout: usize,
) -> usize {
    let cur = cur.max(1);
    if load.busy_frac >= policy.disengage_busy_min
        || load.expiration_rate >= 2.0 * policy.expiration_rate_max
    {
        return 1;
    }
    let idle = load.busy_frac <= policy.engage_busy_max
        && load.expiration_rate <= policy.expiration_rate_max;
    let queue_dominated =
        load.queue_wait_ratio >= policy.queue_wait_factor || load.queue_depth >= 1;
    if idle && queue_dominated {
        return (cur * 2).clamp(1, max_fanout.max(1));
    }
    cur.min(max_fanout.max(1))
}

/// Aggregate controller counters, shared `Arc`s so they can be registered
/// into a telemetry registry ([`PartitionController::attach_telemetry`]).
#[derive(Debug, Clone, Default)]
pub struct PartitionStats {
    /// Controller passes run.
    pub passes: Arc<Counter>,
    /// Signatures whose fan-out left 1 (partitioning engaged).
    pub engagements: Arc<Counter>,
    /// Signatures whose fan-out returned to 1 (partitioning disengaged).
    pub disengagements: Arc<Counter>,
    /// Fan-out increases applied (engagements included).
    pub widenings: Arc<Counter>,
    /// Fan-out decreases applied (disengagements included).
    pub narrowings: Arc<Counter>,
}

/// Cumulative telemetry readings the engine hands each pass. The
/// controller differences them against its previous snapshot; keeping the
/// reads in the engine keeps this module free of engine internals and
/// fully drivable from tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassInputs {
    /// Monotonic wall clock, nanoseconds.
    pub now_ns: u64,
    /// Cumulative nanoseconds spent inside `tman_test` across all drivers
    /// (`tman_test_ns` histogram sum).
    pub busy_ns: u64,
    /// Cumulative `tman_test` calls.
    pub test_calls: u64,
    /// Cumulative threshold expirations.
    pub expirations: u64,
    /// Cumulative queued-wait nanoseconds (`tman_queue_wait_ns` sum).
    pub queue_wait_ns: u64,
    /// Live update-queue + task-queue depth.
    pub queue_depth: usize,
    /// Driver-pool size (denominator of the busy fraction; resolves
    /// `max_fanout == 0`).
    pub num_drivers: usize,
    /// Engine shards currently active for task placement.
    pub cur_shards: usize,
    /// Total engine shard slots (`Config::num_shards()`); the steering
    /// ceiling. 0 means "the engine is not sharded" — the pass then echoes
    /// `cur_shards` back unchanged.
    pub max_shards: usize,
}

/// What one controller pass decided and applied.
#[derive(Debug, Clone, Default)]
pub struct PartitionReport {
    /// Signatures examined.
    pub examined: usize,
    /// The pass's target fan-out for hot signatures.
    pub target_fanout: usize,
    /// Fan-out changes actually published (all kinds).
    pub transitions: usize,
    /// Of those, engagements (1 → >1).
    pub engagements: usize,
    /// Of those, disengagements (>1 → 1).
    pub disengagements: usize,
    /// The decayed load signals the decision used.
    pub load: DriverLoad,
    /// Wall time of the whole pass.
    pub pass_ns: u64,
    /// The active-shard count the engine should steer to: the same
    /// [`decide_fanout`] hysteresis applied to the shard dimension —
    /// placement consolidates to one shard under saturation (stealing
    /// traffic only adds contention then), widens one doubling per pass
    /// while the drivers are idle and token latency is queue-dominated,
    /// and holds in between. Equal to [`PassInputs::cur_shards`] when no
    /// steering applies.
    pub target_shards: usize,
}

/// Previous-pass snapshots and EWMAs (all controller-owned, behind the
/// pass lock).
#[derive(Debug, Default)]
struct CtlState {
    last_ns: u64,
    last_busy_ns: u64,
    last_test_calls: u64,
    last_expirations: u64,
    last_queue_wait_ns: u64,
    busy_frac_ewma: f64,
    expiration_rate_ewma: f64,
    pass_no: u64,
}

/// The per-signature partitioning controller. One instance per engine,
/// its pass serialized by an internal lock (drivers race only on the
/// engine's CAS throttle, which admits one caller per period anyway).
pub struct PartitionController {
    policy: PartitionPolicy,
    partition_min: usize,
    stats: PartitionStats,
    fanout_gauge: GaugeHandle,
    pass_ns: HistogramHandle,
    state: Mutex<CtlState>,
}

impl PartitionController {
    /// A controller with no telemetry attached (counters still count,
    /// they are just not registered anywhere).
    pub fn new(policy: PartitionPolicy, partition_min: usize) -> PartitionController {
        PartitionController {
            policy,
            partition_min,
            stats: PartitionStats::default(),
            fanout_gauge: GaugeHandle::noop(),
            pass_ns: HistogramHandle::noop(),
            state: Mutex::new(CtlState::default()),
        }
    }

    /// Register the controller's instruments:
    /// `tman_partition_{passes,engagements,disengagements,widenings,narrowings}_total`,
    /// the `tman_partition_fanout` gauge (current hot-signature target) and
    /// the `tman_partition_pass_ns` histogram.
    pub fn attach_telemetry(&mut self, registry: &Arc<Registry>) {
        registry.register_counter(
            "tman_partition_passes_total",
            &[],
            self.stats.passes.clone(),
        );
        registry.register_counter(
            "tman_partition_engagements_total",
            &[],
            self.stats.engagements.clone(),
        );
        registry.register_counter(
            "tman_partition_disengagements_total",
            &[],
            self.stats.disengagements.clone(),
        );
        registry.register_counter(
            "tman_partition_widenings_total",
            &[],
            self.stats.widenings.clone(),
        );
        registry.register_counter(
            "tman_partition_narrowings_total",
            &[],
            self.stats.narrowings.clone(),
        );
        self.fanout_gauge = registry.gauge("tman_partition_fanout", &[]);
        self.pass_ns = registry.histogram("tman_partition_pass_ns", &[]);
    }

    /// The aggregate counters (for snapshotting).
    pub fn stats(&self) -> &PartitionStats {
        &self.stats
    }

    /// The policy this controller runs.
    pub fn policy(&self) -> &PartitionPolicy {
        &self.policy
    }

    /// One controller pass: fold the telemetry deltas into the decayed
    /// load signals, decide the target fan-out, and publish per-signature
    /// decisions (hot + large classes get the target, everything else
    /// returns to 1). Widening is cooldown-gated per signature; narrowing
    /// and disengaging apply immediately.
    pub fn pass(&self, sigs: &[Arc<SignatureRuntime>], inputs: PassInputs) -> PartitionReport {
        let t0 = std::time::Instant::now();
        let mut st = self.state.lock();
        st.pass_no += 1;
        self.stats.passes.bump();

        // Raw deltas since the previous pass. The first pass differences
        // against zero, which over-weights history; the clamp and EWMA
        // absorb that.
        let wall = inputs.now_ns.saturating_sub(st.last_ns).max(1);
        let busy = inputs.busy_ns.saturating_sub(st.last_busy_ns);
        let calls = inputs.test_calls.saturating_sub(st.last_test_calls);
        let expirations = inputs.expirations.saturating_sub(st.last_expirations);
        let waited = inputs.queue_wait_ns.saturating_sub(st.last_queue_wait_ns);
        st.last_ns = inputs.now_ns;
        st.last_busy_ns = inputs.busy_ns;
        st.last_test_calls = inputs.test_calls;
        st.last_expirations = inputs.expirations;
        st.last_queue_wait_ns = inputs.queue_wait_ns;

        let capacity = wall.saturating_mul(inputs.num_drivers.max(1) as u64).max(1);
        let busy_frac_now = (busy as f64 / capacity as f64).clamp(0.0, 1.0);
        let exp_rate_now = expirations as f64 / calls.max(1) as f64;
        let a = self.policy.decay;
        st.busy_frac_ewma = a * busy_frac_now + (1.0 - a) * st.busy_frac_ewma;
        st.expiration_rate_ewma = a * exp_rate_now + (1.0 - a) * st.expiration_rate_ewma;

        let load = DriverLoad {
            busy_frac: st.busy_frac_ewma,
            expiration_rate: st.expiration_rate_ewma,
            queue_depth: inputs.queue_depth,
            queue_wait_ratio: waited as f64 / busy.max(1) as f64,
        };

        let max_fanout = if self.policy.max_fanout == 0 {
            inputs.num_drivers.max(1)
        } else {
            self.policy.max_fanout
        };
        // The global target evolves from the widest currently-published
        // fan-out, so widening compounds across passes and narrowing takes
        // effect everywhere at once.
        let cur_target = sigs
            .iter()
            .map(|s| s.partition_activity().fanout())
            .max()
            .unwrap_or(1);
        let target = decide_fanout(cur_target, &load, &self.policy, max_fanout);
        // Steer the engine's active-shard count along the same hysteresis
        // curve. Both dimensions answer "how wide should work spread?":
        // the fan-out answers it per hot signature, the shard count for
        // task placement as a whole.
        let target_shards = if inputs.max_shards <= 1 {
            inputs.cur_shards
        } else {
            decide_fanout(inputs.cur_shards, &load, &self.policy, inputs.max_shards)
        };

        // Per-signature probe-rate fold (controller-owned snapshots).
        let rates: Vec<f64> = sigs
            .iter()
            .map(|s| {
                s.partition_activity()
                    .tick_probe_rate(s.activity().probes(), a)
            })
            .collect();
        let total_rate: f64 = rates.iter().sum();

        let mut report = PartitionReport {
            examined: sigs.len(),
            target_fanout: target,
            target_shards,
            load,
            ..PartitionReport::default()
        };
        for (sig, &rate) in sigs.iter().zip(&rates) {
            let pa = sig.partition_activity();
            let hot = total_rate > 0.0 && rate >= self.policy.hot_fraction * total_rate;
            let eligible = hot && sig.len() >= self.partition_min;
            let desired = if eligible { target } else { 1 };
            let old = pa.fanout();
            let new = if desired > old {
                // Cooldown gates widening only.
                if st.pass_no.saturating_sub(pa.last_change_pass()) >= self.policy.cooldown_passes {
                    desired
                } else {
                    old
                }
            } else {
                desired
            };
            if new == old {
                continue;
            }
            pa.set_fanout(new);
            pa.set_last_change_pass(st.pass_no);
            report.transitions += 1;
            if new > old {
                self.stats.widenings.bump();
                if old == 1 {
                    self.stats.engagements.bump();
                    report.engagements += 1;
                }
            } else {
                self.stats.narrowings.bump();
                if new == 1 {
                    self.stats.disengagements.bump();
                    report.disengagements += 1;
                }
            }
        }

        // Publish the widest live fan-out on the gauge (handles have no
        // absolute set; adjust by the delta).
        let widest = sigs
            .iter()
            .map(|s| s.partition_activity().fanout())
            .max()
            .unwrap_or(1) as i64;
        self.fanout_gauge.add(widest - self.fanout_gauge.get());
        drop(st);
        report.pass_ns = t0.elapsed().as_nanos() as u64;
        self.pass_ns.record(report.pass_ns);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idle_queued() -> DriverLoad {
        DriverLoad {
            busy_frac: 0.1,
            expiration_rate: 0.0,
            queue_depth: 4,
            queue_wait_ratio: 3.0,
        }
    }

    #[test]
    fn widens_one_doubling_when_idle_and_queue_dominated() {
        let p = PartitionPolicy::default();
        assert_eq!(decide_fanout(1, &idle_queued(), &p, 8), 2);
        assert_eq!(decide_fanout(2, &idle_queued(), &p, 8), 4);
        assert_eq!(decide_fanout(8, &idle_queued(), &p, 8), 8);
    }

    #[test]
    fn saturation_disengages_immediately() {
        let p = PartitionPolicy::default();
        let busy = DriverLoad {
            busy_frac: 0.9,
            ..idle_queued()
        };
        assert_eq!(decide_fanout(8, &busy, &p, 8), 1);
        let expiring = DriverLoad {
            expiration_rate: 0.6,
            ..idle_queued()
        };
        assert_eq!(decide_fanout(4, &expiring, &p, 8), 1);
    }

    #[test]
    fn middle_band_holds() {
        let p = PartitionPolicy::default();
        // Busy enough to forbid widening, not enough to disengage.
        let mid = DriverLoad {
            busy_frac: 0.7,
            ..idle_queued()
        };
        assert_eq!(decide_fanout(4, &mid, &p, 8), 4);
        // Idle but nothing queued: no reason to fan out.
        let empty = DriverLoad {
            busy_frac: 0.1,
            expiration_rate: 0.0,
            queue_depth: 0,
            queue_wait_ratio: 0.0,
        };
        assert_eq!(decide_fanout(1, &empty, &p, 8), 1);
        assert_eq!(decide_fanout(4, &empty, &p, 8), 4);
    }

    #[test]
    fn max_fanout_caps_widening_and_holding() {
        let p = PartitionPolicy::default();
        // Single driver: the adaptive controller never partitions.
        assert_eq!(decide_fanout(1, &idle_queued(), &p, 1), 1);
        // A narrowed cap pulls an over-wide published value back down.
        assert_eq!(decide_fanout(8, &idle_queued(), &p, 4), 4);
    }

    #[test]
    fn pass_engages_hot_signature_and_counts_transitions() {
        // Pure-controller test without an engine: drive pass() with
        // synthetic inputs against an empty signature slice, then check
        // the bookkeeping via the report.
        let ctl = PartitionController::new(PartitionPolicy::default(), 1);
        let report = ctl.pass(
            &[],
            PassInputs {
                now_ns: 1_000_000,
                num_drivers: 4,
                queue_depth: 2,
                ..PassInputs::default()
            },
        );
        assert_eq!(report.examined, 0);
        assert_eq!(report.transitions, 0);
        assert_eq!(ctl.stats().passes.get(), 1);
        // Idle + queued: target widens from 1 even with no signatures.
        assert_eq!(report.target_fanout, 2);
    }

    #[test]
    fn pass_steers_shard_count_with_the_same_hysteresis() {
        let ctl = PartitionController::new(PartitionPolicy::default(), 1);
        // Idle + queued: shards widen one doubling toward the ceiling.
        let report = ctl.pass(
            &[],
            PassInputs {
                now_ns: 1_000_000,
                num_drivers: 8,
                queue_depth: 4,
                cur_shards: 2,
                max_shards: 8,
                ..PassInputs::default()
            },
        );
        assert_eq!(report.target_shards, 4);
        // Saturated: shards consolidate to 1. A fresh controller so the
        // EWMA sees the saturated sample undiluted.
        let ctl = PartitionController::new(
            PartitionPolicy {
                decay: 1.0,
                ..PartitionPolicy::default()
            },
            1,
        );
        let report = ctl.pass(
            &[],
            PassInputs {
                now_ns: 1_000_000,
                busy_ns: 8_000_000, // 8 drivers busy the whole window
                num_drivers: 8,
                test_calls: 10,
                expirations: 10,
                cur_shards: 8,
                max_shards: 8,
                ..PassInputs::default()
            },
        );
        assert_eq!(report.target_shards, 1);
        // Unsharded engine: echoed back untouched.
        let report = ctl.pass(
            &[],
            PassInputs {
                now_ns: 2_000_000,
                num_drivers: 8,
                cur_shards: 1,
                max_shards: 1,
                ..PassInputs::default()
            },
        );
        assert_eq!(report.target_shards, 1);
    }
}
