//! Windowed-threshold state: `when [pred] count >= K within W`.
//!
//! One [`WindowState`] per windowed trigger holds the timestamps of the
//! matching events currently inside the trailing window. The rule fires on
//! every matching event observed while the window holds at least K events
//! (threshold semantics in the style of Bonifati et al.'s threshold
//! queries); expiry is O(1) amortized — each timestamp is pushed and popped
//! exactly once.
//!
//! # Determinism under out-of-order timestamps
//!
//! Event timestamps come from ingestion wall clocks
//! (`UpdateDescriptor::ingest_unix_ns`), which are not guaranteed monotone
//! across sources or shards. To keep firing decisions a pure function of
//! the *token sequence* (what the differential oracles replay), the window
//! advances on a monotone clamp: an event's effective time is
//! `max(its timestamp, the previous effective time)`. A late timestamp
//! therefore never rewinds the window — it lands at the current edge — and
//! every engine organization/shard/batch arrangement that preserves token
//! order computes the identical firing multiset.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Hard cap on in-window timestamps retained per trigger. A window is a
/// *threshold* gate, not an aggregate: once K is reached the exact
/// population above K only matters for how long the gate stays open, so
/// dropping the oldest entries beyond the cap is a bounded-memory
/// approximation that can only shorten (never extend) an open gate — and
/// only for triggers receiving > 65536 events per window width.
const RING_CAP: usize = 65_536;

/// How many ring timestamps [`WindowState::snapshot`] persists. Recovery
/// needs at most K entries to re-arm the gate; persisting a small multiple
/// keeps catalog rows bounded while restoring the common case exactly.
const PERSIST_CAP: usize = 4_096;

struct Inner {
    /// In-window effective timestamps, oldest first (monotone by
    /// construction of the clamp).
    ring: VecDeque<u64>,
    /// The monotone clamp watermark: the largest effective timestamp
    /// observed so far.
    last_ts: u64,
    /// Set by [`observe`](WindowState::observe) / eviction, cleared by
    /// [`snapshot`](WindowState::snapshot) — lets durability barriers skip
    /// untouched windows.
    dirty: bool,
    /// Timestamps evicted (aged out, capacity-dropped, or discarded at
    /// hydration) since the last [`take_evicted`](WindowState::take_evicted)
    /// drain — the maintenance pass moves this into
    /// `tman_window_evictions_total`.
    evicted: u64,
}

/// Shared, thread-safe window state for one windowed trigger.
///
/// A plain mutex (not a lock-free structure) is deliberate: windowed
/// triggers serialize on their window by definition, and the critical
/// section is a few queue operations.
pub struct WindowState {
    /// Threshold K.
    pub count: u64,
    /// Window width in nanoseconds.
    pub within_ns: u64,
    inner: Mutex<Inner>,
}

impl WindowState {
    /// Fresh, empty window.
    pub fn new(count: u64, within_ns: u64) -> WindowState {
        WindowState {
            count,
            within_ns,
            inner: Mutex::new(Inner {
                ring: VecDeque::new(),
                last_ts: 0,
                dirty: false,
                evicted: 0,
            }),
        }
    }

    /// Rebuild from a persisted snapshot (recovery). Timestamps outside
    /// the window of `last_ts` or beyond the caps are discarded.
    pub fn restore(count: u64, within_ns: u64, last_ts: u64, ts: &[u64]) -> WindowState {
        let w = WindowState::new(count, within_ns);
        w.hydrate(last_ts, ts);
        w
    }

    /// Replace this window's contents with a persisted snapshot (in-place
    /// form of [`restore`](Self::restore), for states already shared by
    /// `Arc` at recovery time).
    pub fn hydrate(&self, last_ts: u64, ts: &[u64]) {
        let mut g = self.inner.lock().expect("window poisoned");
        g.ring.clear();
        let cutoff = last_ts.saturating_sub(self.within_ns);
        let mut prev = 0u64;
        for &t in ts {
            let eff = t.max(prev); // re-apply the monotone clamp
            prev = eff;
            if eff > cutoff && g.ring.len() < RING_CAP {
                g.ring.push_back(eff);
            } else {
                g.evicted += 1;
            }
        }
        g.last_ts = last_ts.max(prev);
        g.dirty = false;
    }

    /// Record one matching event at `ts` and decide whether the trigger
    /// fires: evict entries older than the window, admit the event, fire
    /// iff at least K events remain in-window.
    pub fn observe(&self, ts: u64) -> bool {
        let mut g = self.inner.lock().expect("window poisoned");
        let eff = ts.max(g.last_ts);
        g.last_ts = eff;
        let cutoff = eff.saturating_sub(self.within_ns);
        while g.ring.front().is_some_and(|&t| t <= cutoff) {
            g.ring.pop_front();
            g.evicted += 1;
        }
        if g.ring.len() == RING_CAP {
            g.ring.pop_front();
            g.evicted += 1;
        }
        g.ring.push_back(eff);
        g.dirty = true;
        g.ring.len() as u64 >= self.count
    }

    /// Evict entries that have aged out of the window relative to the
    /// clamp watermark (maintenance-time expiry; never consults the wall
    /// clock, so it cannot change any firing decision — `observe` would
    /// evict the same entries on the next event). Returns how many were
    /// evicted.
    pub fn expire(&self) -> usize {
        let mut g = self.inner.lock().expect("window poisoned");
        let cutoff = g.last_ts.saturating_sub(self.within_ns);
        let before = g.ring.len();
        while g.ring.front().is_some_and(|&t| t <= cutoff) {
            g.ring.pop_front();
        }
        let evicted = before - g.ring.len();
        if evicted > 0 {
            g.dirty = true;
            g.evicted += evicted as u64;
        }
        evicted
    }

    /// Drain the eviction tally accumulated since the last call
    /// ([`observe`](Self::observe) age-outs and capacity drops,
    /// [`hydrate`](Self::hydrate) discards, [`expire`](Self::expire)) —
    /// the maintenance pass feeds it to `tman_window_evictions_total`.
    pub fn take_evicted(&self) -> u64 {
        let mut g = self.inner.lock().expect("window poisoned");
        std::mem::take(&mut g.evicted)
    }

    /// Number of events currently in-window.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("window poisoned").ring.len()
    }

    /// Is the window empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// If the state changed since the last snapshot, return
    /// `(last_ts, newest timestamps)` for persistence and clear the dirty
    /// flag; `None` when clean. At most [`PERSIST_CAP`] newest entries are
    /// returned — enough to re-arm any threshold up to that size exactly.
    pub fn snapshot(&self) -> Option<(u64, Vec<u64>)> {
        let mut g = self.inner.lock().expect("window poisoned");
        if !g.dirty {
            return None;
        }
        g.dirty = false;
        let skip = g.ring.len().saturating_sub(PERSIST_CAP);
        Some((g.last_ts, g.ring.iter().skip(skip).copied().collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_at_threshold_and_slides() {
        let w = WindowState::new(3, 100);
        assert!(!w.observe(10));
        assert!(!w.observe(20));
        assert!(w.observe(30)); // 3 in [−70, 30]
        assert!(w.observe(40)); // keeps firing while over threshold
        assert!(!w.observe(200)); // 10..=40 all aged out (<= 200-100)
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn out_of_order_timestamps_clamp_forward() {
        let w = WindowState::new(2, 100);
        assert!(!w.observe(1_000));
        // A late event (ts 5) lands at the clamp edge, inside the window.
        assert!(w.observe(5));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn window_boundary_is_half_open() {
        let w = WindowState::new(2, 100);
        assert!(!w.observe(100));
        // 200 - 100 = 100: the event at 100 is exactly at the cutoff and
        // is evicted ((eff-W, eff] is half-open).
        assert!(!w.observe(200));
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn expire_matches_observe_eviction_and_reports_dirty() {
        let w = WindowState::new(2, 200);
        w.observe(10);
        w.observe(90);
        w.snapshot(); // clear dirty
                      // Observe-time eviction keeps the ring tight against the clamp
                      // watermark, so maintenance expiry ordinarily finds nothing.
        assert_eq!(w.expire(), 0);
        assert!(w.snapshot().is_none(), "no-op expiry stays clean");
        // Advance the watermark without an observe (no public path does
        // this today; expire() is the backstop if one appears).
        w.inner.lock().unwrap().last_ts = 250;
        assert_eq!(w.expire(), 1); // 10 <= 250-200; 90 stays
        assert_eq!(w.len(), 1);
        let (last, ring) = w.snapshot().expect("expiry dirties the window");
        assert_eq!((last, ring), (250, vec![90]));
    }

    #[test]
    fn restore_reapplies_clamp_and_cutoff() {
        let w = WindowState::restore(3, 100, 250, &[100, 200, 180, 240]);
        // 100 <= 250-100 is out; 200 stays; 180 clamps to 200; 240 stays.
        assert_eq!(w.len(), 3);
        // One more event within the window crosses the threshold of 3... it
        // already holds 3, so the next observe fires.
        assert!(w.observe(260));
    }

    #[test]
    fn snapshot_roundtrips_through_restore() {
        let w = WindowState::new(2, 1_000);
        w.observe(500);
        w.observe(900);
        let (last, ring) = w.snapshot().unwrap();
        let r = WindowState::restore(2, 1_000, last, &ring);
        assert_eq!(r.len(), 2);
        assert!(w.snapshot().is_none(), "snapshot clears dirty");
    }

    #[test]
    fn eviction_tally_drains_once() {
        let w = WindowState::new(2, 100);
        w.observe(10);
        w.observe(20);
        w.observe(300); // ages out both earlier entries
        assert_eq!(w.take_evicted(), 2);
        assert_eq!(w.take_evicted(), 0, "tally drains");
        // Hydration discards count too.
        w.hydrate(500, &[10, 450]);
        assert_eq!(w.take_evicted(), 1);
    }

    #[test]
    fn ring_is_bounded() {
        let w = WindowState::new(1, u64::MAX / 2);
        for i in 0..(RING_CAP + 10) {
            w.observe(i as u64 + 1);
        }
        assert_eq!(w.len(), RING_CAP);
    }
}
