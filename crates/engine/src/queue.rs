//! The update-descriptor queue (§3, Figure 1).
//!
//! Captured updates are parked here until a driver's `tman_test` call
//! consumes them. Two modes:
//!
//! * **Persistent** — "a table acting as a queue": descriptors are rows of
//!   `update_queue(qid, body)` and survive restarts (the paper's "safety of
//!   persistent update queuing").
//! * **Volatile** — the planned "main-memory queue ... faster, but the
//!   safety ... will be lost": a lock-free in-memory queue.
//!
//! Telemetry: the queue owns a depth gauge, enqueue/dequeue counters, and
//! an enqueue→dequeue wait-time histogram ([`QueueTelemetry`]). Wait time
//! is measured on the volatile backend by stamping each descriptor with its
//! enqueue instant (skipped entirely when telemetry is disabled). The
//! persistent backend prefixes each row body with the enqueue wall-clock
//! time (8 bytes, UNIX-epoch nanoseconds, little-endian) so the wait
//! histogram survives the database round trip — and even a restart, since
//! wall-clock stamps stay meaningful across processes. Rows written before
//! this format (no stamp) still decode.
//!
//! # Crash tolerance
//!
//! The persistent backend keeps a *delivery watermark* in a reserved row
//! (`qid == -1`): the highest qid below which every descriptor has been
//! fully processed. Consumers use [`UpdateQueue::dequeue_tracked`] to read
//! descriptors *without* deleting them and [`UpdateQueue::ack`] after the
//! rule actions have run; ack advances the watermark over the contiguous
//! acknowledged prefix and only then deletes the row. After a crash, any
//! row at or below the durable watermark is a duplicate from the
//! ack-then-delete window and is dropped at open (counted in
//! `dedup_dropped`); rows above it are redelivered — the at-least-once /
//! no-double-fire contract of §3. Rows whose bodies fail validation (torn
//! pages can surface as garbage hex) are classified as
//! [`TmanError::Corrupt`], deleted and counted instead of wedging the
//! queue.

use crossbeam::queue::SegQueue;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tman_common::fxhash::FxHashMap;
use tman_common::hex::{hex_decode, hex_encode};
use tman_common::stats::Counter;
use tman_common::{Result, TmanError, UpdateDescriptor, Value};
use tman_sql::{Database, Table};
use tman_storage::{BufferPool, RecordId};
use tman_telemetry::{CounterHandle, GaugeHandle, HistogramHandle, Registry};

/// Name of the persistent queue table.
pub const QUEUE_TABLE: &str = "update_queue";

/// Reserved qid of the watermark row (never a descriptor).
const WATERMARK_QID: i64 = -1;

/// Wall-clock now in UNIX-epoch nanoseconds (persistent-queue wait stamps).
fn unix_now_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// Split a persistent row body into (enqueue stamp, descriptor). `None`
/// means the body predates the stamp format.
fn decode_stamped(bytes: &[u8]) -> Option<(u64, UpdateDescriptor)> {
    if bytes.len() < 8 {
        return None;
    }
    let stamp = u64::from_le_bytes(bytes[..8].try_into().expect("8-byte prefix"));
    UpdateDescriptor::decode(&bytes[8..])
        .ok()
        .map(|d| (stamp, d))
}

/// Pre-resolved queue instruments.
#[derive(Clone, Default)]
pub struct QueueTelemetry {
    /// `tman_queue_depth`: descriptors currently queued.
    pub depth: GaugeHandle,
    /// `tman_queue_enqueued_total`.
    pub enqueued: CounterHandle,
    /// `tman_queue_dequeued_total`.
    pub dequeued: CounterHandle,
    /// `tman_queue_wait_ns`: enqueue→dequeue latency (volatile mode).
    pub wait_ns: HistogramHandle,
}

impl QueueTelemetry {
    /// Resolve the queue instrument family from a registry.
    pub fn from_registry(registry: &Registry) -> QueueTelemetry {
        QueueTelemetry {
            depth: registry.gauge("tman_queue_depth", &[]),
            enqueued: registry.counter("tman_queue_enqueued_total", &[]),
            dequeued: registry.counter("tman_queue_dequeued_total", &[]),
            wait_ns: registry.histogram("tman_queue_wait_ns", &[]),
        }
    }
}

/// Mutable persistent-backend state, all under one lock so a tracked
/// dequeue cannot race another into handing out the same row.
struct PersistState {
    /// Highest qid with every descriptor at or below it fully processed.
    watermark: i64,
    /// Current record id of the watermark row (moves on update).
    wm_rid: RecordId,
    /// Rows handed out by `dequeue_tracked` awaiting `ack`.
    in_flight: FxHashMap<i64, RecordId>,
    /// Acked qids above the watermark, waiting for the prefix to close.
    acked: BTreeSet<i64>,
}

#[allow(clippy::large_enum_variant)] // one queue per engine; size is moot
enum Backend {
    Volatile(SegQueue<(Option<Instant>, UpdateDescriptor)>),
    Persistent {
        table: Arc<Table>,
        next_qid: AtomicI64,
        state: Mutex<PersistState>,
        /// Buffer pool backing the queue table, kept so
        /// [`UpdateQueue::enqueue_batch`] can group-commit: one
        /// flush-and-sync covering every row in a batch.
        pool: Arc<BufferPool>,
    },
}

/// A descriptor handed out by [`UpdateQueue::dequeue_tracked`]: the token
/// plus the persistent sequence number to [`UpdateQueue::ack`] once its
/// rule actions have completed (`None` on the volatile backend, where
/// delivery is not tracked).
#[derive(Debug)]
pub struct QueueItem {
    /// Persistent sequence number (qid), if tracked.
    pub seq: Option<i64>,
    /// The captured update.
    pub token: UpdateDescriptor,
}

/// FIFO of update descriptors awaiting processing.
pub struct UpdateQueue {
    backend: Backend,
    telemetry: QueueTelemetry,
    /// Rows whose body failed hex/descriptor validation (deleted, skipped).
    corrupt_rows: Arc<Counter>,
    /// Already-delivered rows dropped by the open-time dedup pass.
    dedup_dropped: Arc<Counter>,
    /// Watermark durability barriers paid by [`ack_batch`](Self::ack_batch)
    /// — one per drained batch, not one per token.
    wm_flushes: Arc<Counter>,
}

impl UpdateQueue {
    /// In-memory queue.
    pub fn volatile() -> UpdateQueue {
        UpdateQueue {
            backend: Backend::Volatile(SegQueue::new()),
            telemetry: QueueTelemetry::default(),
            corrupt_rows: Arc::new(Counter::default()),
            dedup_dropped: Arc::new(Counter::default()),
            wm_flushes: Arc::new(Counter::default()),
        }
    }

    /// Table-backed queue; creates (or reopens) `update_queue`, resumes
    /// after the highest existing qid, and drops any row at or below the
    /// durable watermark — a descriptor that was fully processed before a
    /// crash but whose deletion never reached disk.
    pub fn persistent(db: &Database) -> Result<UpdateQueue> {
        use tman_common::{Column, DataType, Schema};
        let table = if db.has_table(QUEUE_TABLE) {
            db.table(QUEUE_TABLE)?
        } else {
            db.create_table(
                QUEUE_TABLE,
                Schema::new(vec![
                    Column::new("qid", DataType::Int),
                    Column::new("body", DataType::Varchar(65535)),
                ])?,
            )?
        };
        let dedup_dropped = Arc::new(Counter::default());
        let mut max_qid = 0i64;
        let mut wm_row: Option<(RecordId, i64)> = None;
        let mut rows: Vec<(i64, RecordId)> = Vec::new();
        table.scan(|rid, row| {
            let qid = row.get(0).as_i64().unwrap_or(0);
            if qid == WATERMARK_QID {
                let wm = row
                    .get(1)
                    .as_str()
                    .and_then(|s| hex_decode(s).ok())
                    .and_then(|b| b.get(..8).map(|p| p.try_into().unwrap()))
                    .map(i64::from_le_bytes)
                    .unwrap_or(0);
                wm_row = Some((rid, wm));
            } else {
                max_qid = max_qid.max(qid);
                rows.push((qid, rid));
            }
            Ok(true)
        })?;
        let (wm_rid, watermark) = match wm_row {
            Some(found) => found,
            None => {
                let rid = table.insert(vec![
                    Value::Int(WATERMARK_QID),
                    Value::str(hex_encode(&0i64.to_le_bytes())),
                ])?;
                (rid, 0)
            }
        };
        for (_, rid) in rows.iter().filter(|(qid, _)| *qid <= watermark) {
            table.delete(*rid)?;
            dedup_dropped.bump();
        }
        Ok(UpdateQueue {
            backend: Backend::Persistent {
                table,
                next_qid: AtomicI64::new(max_qid.max(watermark) + 1),
                pool: db.storage().pool().clone(),
                state: Mutex::new(PersistState {
                    watermark,
                    wm_rid,
                    in_flight: FxHashMap::default(),
                    acked: BTreeSet::new(),
                }),
            },
            telemetry: QueueTelemetry::default(),
            corrupt_rows: Arc::new(Counter::default()),
            dedup_dropped,
            wm_flushes: Arc::new(Counter::default()),
        })
    }

    /// The durable delivery watermark (`None` on the volatile backend):
    /// every qid at or below it has been fully processed, and any copy
    /// found on disk after a crash is dropped rather than redelivered.
    pub fn watermark(&self) -> Option<i64> {
        match &self.backend {
            Backend::Volatile(_) => None,
            Backend::Persistent { state, .. } => Some(state.lock().watermark),
        }
    }

    /// Rows whose body failed validation at dequeue (deleted and skipped).
    pub fn corrupt_rows(&self) -> &Arc<Counter> {
        &self.corrupt_rows
    }

    /// Already-delivered rows dropped by the open-time dedup pass.
    pub fn dedup_dropped(&self) -> &Arc<Counter> {
        &self.dedup_dropped
    }

    /// Watermark durability barriers paid by [`ack_batch`](Self::ack_batch).
    pub fn wm_flushes(&self) -> &Arc<Counter> {
        &self.wm_flushes
    }

    /// Wire instruments in. Initializes the depth gauge from the current
    /// length, so a persistent queue recovered with rows already in it
    /// reports them.
    pub fn attach_telemetry(&mut self, telemetry: QueueTelemetry) {
        telemetry.depth.add(self.len() as i64);
        self.telemetry = telemetry;
    }

    /// Append a descriptor.
    pub fn enqueue(&self, d: UpdateDescriptor) -> Result<()> {
        match &self.backend {
            Backend::Volatile(q) => {
                let stamp = if self.telemetry.wait_ns.is_enabled() {
                    Some(Instant::now())
                } else {
                    None
                };
                q.push((stamp, d));
            }
            Backend::Persistent {
                table, next_qid, ..
            } => {
                let qid = next_qid.fetch_add(1, Ordering::Relaxed);
                // Stamp unconditionally: the row format must not depend on
                // whether telemetry happens to be attached.
                let payload = d.encode();
                let mut body = Vec::with_capacity(8 + payload.len());
                body.extend_from_slice(&unix_now_ns().to_le_bytes());
                body.extend_from_slice(&payload);
                table.insert(vec![Value::Int(qid), Value::str(hex_encode(&body))])?;
            }
        }
        self.telemetry.enqueued.bump();
        self.telemetry.depth.inc();
        Ok(())
    }

    /// Append a batch of descriptors under one durability barrier (group
    /// commit, §3's "safety of persistent update queuing" at wire-tier
    /// rates). On the persistent backend every row is inserted first, then
    /// a single [`BufferPool::sync`] makes the whole batch durable — one
    /// fsync amortized over `batch.len()` descriptors, where per-token
    /// [`enqueue`](Self::enqueue) relies on the next checkpoint instead.
    /// On a WAL-backed store that barrier is a log group commit: dirty
    /// pages become redo records, one `fsync` of the log covers the batch,
    /// and concurrent `enqueue_batch` callers share the same fsync (the
    /// WAL's committer/piggybacker protocol), so syncs stay ≪ tokens even
    /// with many wire connections committing at once.
    /// Returns the persistent qid of the *last* descriptor in the batch
    /// (`None` for an empty batch or the volatile backend).
    pub fn enqueue_batch(&self, batch: &[UpdateDescriptor]) -> Result<Option<i64>> {
        if batch.is_empty() {
            return Ok(None);
        }
        match &self.backend {
            Backend::Volatile(q) => {
                let stamp = if self.telemetry.wait_ns.is_enabled() {
                    Some(Instant::now())
                } else {
                    None
                };
                for d in batch {
                    q.push((stamp, d.clone()));
                }
                self.telemetry.enqueued.add(batch.len() as u64);
                self.telemetry.depth.add(batch.len() as i64);
                Ok(None)
            }
            Backend::Persistent {
                table,
                next_qid,
                pool,
                ..
            } => {
                let now = unix_now_ns();
                let mut last = 0i64;
                for d in batch {
                    let qid = next_qid.fetch_add(1, Ordering::Relaxed);
                    let payload = d.encode();
                    let mut body = Vec::with_capacity(8 + payload.len());
                    body.extend_from_slice(&now.to_le_bytes());
                    body.extend_from_slice(&payload);
                    table.insert(vec![Value::Int(qid), Value::str(hex_encode(&body))])?;
                    last = qid;
                }
                pool.sync()?;
                self.telemetry.enqueued.add(batch.len() as u64);
                self.telemetry.depth.add(batch.len() as i64);
                Ok(Some(last))
            }
        }
    }

    /// Decode a persistent row body, classifying any validation failure as
    /// [`TmanError::Corrupt`] (a torn page can surface here as garbage).
    fn decode_row(&self, body: &str, now: u64) -> Result<UpdateDescriptor> {
        let bytes = hex_decode(body)
            .map_err(|e| TmanError::Corrupt(format!("queue row body is not hex: {e}")))?;
        if let Some((stamp, d)) = decode_stamped(&bytes) {
            self.telemetry.wait_ns.record(now.saturating_sub(stamp));
            return Ok(d);
        }
        // Pre-stamp row format (or a qid written by an older build): the
        // whole body is the descriptor.
        UpdateDescriptor::decode(&bytes)
            .map_err(|e| TmanError::Corrupt(format!("queue row descriptor invalid: {e}")))
    }

    /// Advance the watermark over the contiguous acked prefix and persist
    /// it. Called with `state` locked.
    fn advance_watermark(table: &Table, st: &mut PersistState, qid: i64) -> Result<()> {
        st.acked.insert(qid);
        let before = st.watermark;
        while st.acked.remove(&(st.watermark + 1)) {
            st.watermark += 1;
        }
        if st.watermark != before {
            let (_, new_rid) = table.update(
                st.wm_rid,
                vec![
                    Value::Int(WATERMARK_QID),
                    Value::str(hex_encode(&st.watermark.to_le_bytes())),
                ],
            )?;
            st.wm_rid = new_rid;
        }
        Ok(())
    }

    /// Return up to `max` descriptors in FIFO order *without* deleting
    /// their persistent rows. Each item carries its sequence number; the
    /// caller must [`ack`](Self::ack) it after the descriptor has been
    /// fully processed, at which point the row is deleted and the delivery
    /// watermark may advance. Un-acked items are redelivered after a
    /// restart (at-least-once). Rows that fail validation are deleted,
    /// counted in `corrupt_rows` and skipped — they never abort the batch.
    pub fn dequeue_tracked(&self, max: usize) -> Result<Vec<QueueItem>> {
        match &self.backend {
            Backend::Volatile(q) => {
                let mut out = Vec::new();
                while out.len() < max {
                    match q.pop() {
                        Some((stamp, d)) => {
                            if let Some(t0) = stamp {
                                self.telemetry
                                    .wait_ns
                                    .record(t0.elapsed().as_nanos() as u64);
                            }
                            out.push(QueueItem {
                                seq: None,
                                token: d,
                            });
                        }
                        None => break,
                    }
                }
                // The pop is the removal: account for it here.
                self.telemetry.dequeued.add(out.len() as u64);
                self.telemetry.depth.add(-(out.len() as i64));
                Ok(out)
            }
            Backend::Persistent { table, state, .. } => {
                let mut st = state.lock();
                // One scan collects (qid, rid, body); take the lowest qids
                // not already handed out.
                let mut rows: Vec<(i64, RecordId, String)> = Vec::new();
                table.scan(|rid, row| {
                    let qid = row.get(0).as_i64().unwrap_or(0);
                    if qid != WATERMARK_QID && !st.in_flight.contains_key(&qid) {
                        rows.push((qid, rid, row.get(1).as_str().unwrap_or("").to_string()));
                    }
                    Ok(true)
                })?;
                rows.sort_by_key(|(qid, _, _)| *qid);
                rows.truncate(max);
                let now = unix_now_ns();
                let mut out = Vec::with_capacity(rows.len());
                for (qid, rid, body) in rows {
                    match self.decode_row(&body, now) {
                        Ok(d) => {
                            st.in_flight.insert(qid, rid);
                            out.push(QueueItem {
                                seq: Some(qid),
                                token: d,
                            });
                        }
                        Err(TmanError::Corrupt(_)) => {
                            // Damaged row: consume it so the queue cannot
                            // wedge, but deliver nothing.
                            table.delete(rid)?;
                            self.corrupt_rows.bump();
                            self.telemetry.depth.dec();
                            Self::advance_watermark(table, &mut st, qid)?;
                        }
                        Err(e) => return Err(e),
                    }
                }
                Ok(out)
            }
        }
    }

    /// Acknowledge a tracked descriptor by its sequence number: its rule
    /// actions have run, so the watermark is advanced (over the contiguous
    /// acked prefix) and the persistent row deleted — in that order, so
    /// the crash window leaves a duplicate row behind the watermark, never
    /// a lost one. Idempotent; a no-op on the volatile backend.
    pub fn ack(&self, seq: i64) -> Result<()> {
        let Backend::Persistent { table, state, .. } = &self.backend else {
            return Ok(());
        };
        let mut st = state.lock();
        let Some(rid) = st.in_flight.remove(&seq) else {
            return Ok(()); // already acked
        };
        Self::advance_watermark(table, &mut st, seq)?;
        table.delete(rid)?;
        self.telemetry.dequeued.bump();
        self.telemetry.depth.dec();
        Ok(())
    }

    /// Acknowledge a whole drained batch under one state lock and one
    /// durability barrier: every row is deleted and folded into the acked
    /// set first, the watermark row is rewritten at most once over the
    /// contiguous prefix, and a single [`BufferPool::sync`] covers the lot
    /// (on a WAL store that is one group-commit fsync). Per-token
    /// [`ack`](Self::ack) deletes-after-advance without a barrier, so each
    /// token's durability waited for the next checkpoint; here a batched
    /// drain pays one explicit barrier per K tokens instead.
    ///
    /// Ordering note: deleting a row before its watermark advance is
    /// durable is safe — the token already fired, so losing the row keeps
    /// at-least-once intact, and a watermark that outruns a surviving copy
    /// is exactly the open-time dedup window `ack` already has.
    ///
    /// Unknown or already-acked seqs are skipped (idempotent). Returns the
    /// number of seqs newly acknowledged; a no-op returning 0 on the
    /// volatile backend.
    pub fn ack_batch(&self, seqs: &[i64]) -> Result<usize> {
        let Backend::Persistent {
            table, state, pool, ..
        } = &self.backend
        else {
            return Ok(0);
        };
        if seqs.is_empty() {
            return Ok(0);
        }
        let mut st = state.lock();
        let st = &mut *st; // plain &mut so field borrows split
        let mut acked = 0usize;
        for &seq in seqs {
            let Some(rid) = st.in_flight.remove(&seq) else {
                continue; // already acked
            };
            st.acked.insert(seq);
            table.delete(rid)?;
            acked += 1;
        }
        if acked == 0 {
            return Ok(0);
        }
        // Advance over the contiguous prefix once, one watermark-row write.
        let before = st.watermark;
        while st.acked.remove(&(st.watermark + 1)) {
            st.watermark += 1;
        }
        if st.watermark != before {
            let (_, new_rid) = table.update(
                st.wm_rid,
                vec![
                    Value::Int(WATERMARK_QID),
                    Value::str(hex_encode(&st.watermark.to_le_bytes())),
                ],
            )?;
            st.wm_rid = new_rid;
        }
        pool.sync()?;
        self.wm_flushes.bump();
        self.telemetry.dequeued.add(acked as u64);
        self.telemetry.depth.add(-(acked as i64));
        Ok(acked)
    }

    /// Remove and return up to `max` descriptors in FIFO order,
    /// acknowledging each immediately (no redelivery tracking).
    pub fn dequeue_batch(&self, max: usize) -> Result<Vec<UpdateDescriptor>> {
        let items = self.dequeue_tracked(max)?;
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            if let Some(seq) = item.seq {
                self.ack(seq)?;
            }
            out.push(item.token);
        }
        Ok(out)
    }

    /// Number of queued descriptors (excluding the watermark row and any
    /// tracked in-flight descriptors).
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Volatile(q) => q.len(),
            Backend::Persistent { table, state, .. } => {
                let st = state.lock();
                let mut n = 0usize;
                let _ = table.scan(|_, row| {
                    let qid = row.get(0).as_i64().unwrap_or(0);
                    if qid != WATERMARK_QID && !st.in_flight.contains_key(&qid) {
                        n += 1;
                    }
                    Ok(true)
                });
                n
            }
        }
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tman_common::{DataSourceId, Tuple};

    fn tok(i: i64) -> UpdateDescriptor {
        UpdateDescriptor::insert(DataSourceId(1), Tuple::new(vec![Value::Int(i)]))
    }

    #[test]
    fn volatile_fifo() {
        let q = UpdateQueue::volatile();
        for i in 0..5 {
            q.enqueue(tok(i)).unwrap();
        }
        assert_eq!(q.len(), 5);
        let batch = q.dequeue_batch(3).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0], tok(0));
        assert_eq!(q.dequeue_batch(10).unwrap().len(), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn persistent_fifo_and_recovery() {
        let db = Database::open_memory(128);
        {
            let q = UpdateQueue::persistent(&db).unwrap();
            for i in 0..4 {
                q.enqueue(tok(i)).unwrap();
            }
            let batch = q.dequeue_batch(2).unwrap();
            assert_eq!(batch, vec![tok(0), tok(1)]);
        }
        // "Restart": reopen over the same database — 2 descriptors remain,
        // and new qids don't collide.
        let q2 = UpdateQueue::persistent(&db).unwrap();
        assert_eq!(q2.len(), 2);
        q2.enqueue(tok(9)).unwrap();
        let batch = q2.dequeue_batch(10).unwrap();
        assert_eq!(batch, vec![tok(2), tok(3), tok(9)]);
    }

    #[test]
    fn telemetry_tracks_depth_throughput_and_wait() {
        let registry = Registry::new();
        let mut q = UpdateQueue::volatile();
        q.attach_telemetry(QueueTelemetry::from_registry(&registry));
        let t = QueueTelemetry::from_registry(&registry); // same series
        for i in 0..3 {
            q.enqueue(tok(i)).unwrap();
        }
        assert_eq!(t.depth.get(), 3);
        assert_eq!(t.enqueued.get(), 3);
        q.dequeue_batch(2).unwrap();
        assert_eq!(t.depth.get(), 1);
        assert_eq!(t.dequeued.get(), 2);
        assert_eq!(t.wait_ns.summary().count, 2);
        q.dequeue_batch(10).unwrap();
        assert_eq!(t.depth.get(), 0);
    }

    #[test]
    fn persistent_wait_histogram_is_populated() {
        let registry = Registry::new();
        let db = Database::open_memory(128);
        let mut q = UpdateQueue::persistent(&db).unwrap();
        q.attach_telemetry(QueueTelemetry::from_registry(&registry));
        let t = QueueTelemetry::from_registry(&registry);
        q.enqueue(tok(1)).unwrap();
        q.enqueue(tok(2)).unwrap();
        let batch = q.dequeue_batch(10).unwrap();
        assert_eq!(batch, vec![tok(1), tok(2)]);
        // The wall-clock stamp in the row body survives the database round
        // trip, so persistent mode populates the wait histogram too.
        assert_eq!(t.wait_ns.summary().count, 2);
    }

    #[test]
    fn prestamp_rows_still_decode() {
        let db = Database::open_memory(128);
        let q = UpdateQueue::persistent(&db).unwrap();
        // A row in the pre-stamp format: body is the bare descriptor.
        if let Backend::Persistent {
            table, next_qid, ..
        } = &q.backend
        {
            let qid = next_qid.fetch_add(1, Ordering::Relaxed);
            table
                .insert(vec![
                    Value::Int(qid),
                    Value::str(hex_encode(&tok(7).encode())),
                ])
                .unwrap();
        }
        assert_eq!(q.dequeue_batch(10).unwrap(), vec![tok(7)]);
    }

    #[test]
    fn corrupt_rows_are_skipped_not_fatal() {
        let db = Database::open_memory(128);
        let q = UpdateQueue::persistent(&db).unwrap();
        q.enqueue(tok(1)).unwrap();
        // Hand-plant damaged rows between two good ones: a truncated
        // descriptor body and a body that is not even hex.
        if let Backend::Persistent {
            table, next_qid, ..
        } = &q.backend
        {
            let truncated = &tok(2).encode()[..3];
            let qid = next_qid.fetch_add(1, Ordering::Relaxed);
            table
                .insert(vec![Value::Int(qid), Value::str(hex_encode(truncated))])
                .unwrap();
            let qid = next_qid.fetch_add(1, Ordering::Relaxed);
            table
                .insert(vec![Value::Int(qid), Value::str("zz-not-hex")])
                .unwrap();
        }
        q.enqueue(tok(4)).unwrap();
        // Both damaged rows are consumed and counted; the good rows come
        // through and the batch never errors.
        let batch = q.dequeue_batch(10).unwrap();
        assert_eq!(batch, vec![tok(1), tok(4)]);
        assert_eq!(q.corrupt_rows().get(), 2);
        assert!(q.is_empty());
        // The watermark covered the damaged qids too, so nothing about
        // them survives a reopen.
        assert_eq!(q.watermark(), Some(4));
        let q2 = UpdateQueue::persistent(&db).unwrap();
        assert!(q2.is_empty());
        assert_eq!(q2.dequeue_batch(10).unwrap(), vec![]);
    }

    #[test]
    fn tracked_dequeue_redelivers_unacked_items() {
        let db = Database::open_memory(128);
        let q = UpdateQueue::persistent(&db).unwrap();
        for i in 0..3 {
            q.enqueue(tok(i)).unwrap();
        }
        let items = q.dequeue_tracked(2).unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].seq, Some(1));
        // In-flight rows are not handed out twice.
        let more = q.dequeue_tracked(10).unwrap();
        assert_eq!(more.len(), 1);
        assert_eq!(more[0].token, tok(2));
        // Ack only the first; the others stay on disk.
        q.ack(items[0].seq.unwrap()).unwrap();
        q.ack(items[0].seq.unwrap()).unwrap(); // idempotent
        assert_eq!(q.watermark(), Some(1));
        // "Crash" without acking the rest: a fresh queue over the same
        // database redelivers exactly the unacked descriptors.
        let q2 = UpdateQueue::persistent(&db).unwrap();
        assert_eq!(q2.watermark(), Some(1));
        assert_eq!(q2.dequeue_batch(10).unwrap(), vec![tok(1), tok(2)]);
    }

    #[test]
    fn ack_batch_pays_one_barrier_per_batch() {
        let db = Database::open_memory(128);
        let syncs = db.storage().pool().disk().stats().syncs.clone();
        let q = UpdateQueue::persistent(&db).unwrap();
        for i in 0..8 {
            q.enqueue(tok(i)).unwrap();
        }
        let items = q.dequeue_tracked(8).unwrap();
        let seqs: Vec<i64> = items.iter().map(|it| it.seq.unwrap()).collect();
        let before = syncs.get();
        assert_eq!(q.ack_batch(&seqs).unwrap(), 8);
        // 8 tokens, exactly one durability barrier and one watermark flush.
        assert_eq!(syncs.get(), before + 1);
        assert_eq!(q.wm_flushes().get(), 1);
        assert_eq!(q.watermark(), Some(8));
        assert!(q.is_empty());
        // Idempotent: re-acking (or acking unknown seqs) is a free no-op.
        assert_eq!(q.ack_batch(&seqs).unwrap(), 0);
        assert_eq!(q.ack_batch(&[999]).unwrap(), 0);
        assert_eq!(q.ack_batch(&[]).unwrap(), 0);
        assert_eq!(syncs.get(), before + 1);
        assert_eq!(q.wm_flushes().get(), 1);
    }

    #[test]
    fn ack_batch_gap_holds_watermark_then_closes() {
        let db = Database::open_memory(128);
        let q = UpdateQueue::persistent(&db).unwrap();
        for i in 0..4 {
            q.enqueue(tok(i)).unwrap();
        }
        let items = q.dequeue_tracked(4).unwrap();
        assert_eq!(items.len(), 4);
        // Ack 1, 3, 4 but not 2: the watermark stops at the gap.
        q.ack_batch(&[1, 3, 4]).unwrap();
        assert_eq!(q.watermark(), Some(1));
        // Closing the gap advances over the out-of-order acks in one step.
        q.ack_batch(&[2]).unwrap();
        assert_eq!(q.watermark(), Some(4));
        assert!(q.is_empty());
    }

    #[test]
    fn ack_batch_crash_mid_gap_redelivers_only_unacked() {
        let db = Database::open_memory(128);
        {
            let q = UpdateQueue::persistent(&db).unwrap();
            for i in 0..4 {
                q.enqueue(tok(i)).unwrap();
            }
            q.dequeue_tracked(4).unwrap();
            q.ack_batch(&[1, 3, 4]).unwrap();
        }
        // "Crash" without acking 2: the reopened queue redelivers exactly
        // the unacked descriptor. Qids 3 and 4 were deleted before their
        // watermark advance — safe, because they already fired.
        let q2 = UpdateQueue::persistent(&db).unwrap();
        assert_eq!(q2.watermark(), Some(1));
        assert_eq!(q2.dequeue_batch(10).unwrap(), vec![tok(1)]);
        assert!(q2.is_empty());
    }

    #[test]
    fn ack_batch_volatile_is_noop() {
        let q = UpdateQueue::volatile();
        q.enqueue(tok(1)).unwrap();
        assert_eq!(q.ack_batch(&[1, 2, 3]).unwrap(), 0);
        assert_eq!(q.wm_flushes().get(), 0);
    }

    #[test]
    fn watermark_dedups_resurrected_rows_at_open() {
        let db = Database::open_memory(128);
        let q = UpdateQueue::persistent(&db).unwrap();
        for i in 0..3 {
            q.enqueue(tok(i)).unwrap();
        }
        let items = q.dequeue_tracked(3).unwrap();
        for item in &items {
            q.ack(item.seq.unwrap()).unwrap();
        }
        assert_eq!(q.watermark(), Some(3));
        // Simulate the crash window where acked rows resurrect: re-insert
        // copies of already-delivered qids 2 and 3 behind the watermark.
        if let Backend::Persistent { table, .. } = &q.backend {
            for qid in [2i64, 3] {
                let mut body = Vec::new();
                body.extend_from_slice(&0u64.to_le_bytes());
                body.extend_from_slice(&tok(qid - 1).encode());
                table
                    .insert(vec![Value::Int(qid), Value::str(hex_encode(&body))])
                    .unwrap();
            }
        }
        // Reopen: the dedup pass drops both copies instead of redelivering.
        let q2 = UpdateQueue::persistent(&db).unwrap();
        assert_eq!(q2.dedup_dropped().get(), 2);
        assert!(q2.is_empty());
        assert_eq!(q2.dequeue_batch(10).unwrap(), vec![]);
        // And new traffic resumes above the old qid space.
        q2.enqueue(tok(9)).unwrap();
        assert_eq!(q2.dequeue_batch(10).unwrap(), vec![tok(9)]);
    }

    #[test]
    fn enqueue_batch_pays_one_sync_per_batch() {
        let db = Database::open_memory(128);
        // Memory stores carry no WAL, so the barrier is a plain disk sync.
        let syncs = db.storage().pool().disk().stats().syncs.clone();
        let q = UpdateQueue::persistent(&db).unwrap();
        let before = syncs.get();
        let batch: Vec<UpdateDescriptor> = (0..32).map(tok).collect();
        let last = q.enqueue_batch(&batch).unwrap();
        // 32 descriptors, exactly one durability barrier.
        assert_eq!(syncs.get(), before + 1);
        assert_eq!(last, Some(32));
        assert_eq!(q.len(), 32);
        // Per-token enqueue never syncs (checkpoint-based durability).
        q.enqueue(tok(99)).unwrap();
        assert_eq!(syncs.get(), before + 1);
        // Empty batches are free.
        assert_eq!(q.enqueue_batch(&[]).unwrap(), None);
        assert_eq!(syncs.get(), before + 1);
        // FIFO order is preserved across the batch boundary.
        let out = q.dequeue_batch(64).unwrap();
        assert_eq!(out.len(), 33);
        assert_eq!(out[0], tok(0));
        assert_eq!(out[32], tok(99));
    }

    #[test]
    fn enqueue_batch_group_commits_through_the_wal() {
        let path = std::env::temp_dir().join(format!("tman_queue_gc_{}.db", std::process::id()));
        let wal = {
            let mut w = path.as_os_str().to_owned();
            w.push(".wal");
            std::path::PathBuf::from(w)
        };
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&wal);
        {
            let db = Database::open_file(&path, 128).unwrap();
            let pool = db.storage().pool();
            let ws = pool.wal().expect("file store is WAL-backed").stats();
            let q = UpdateQueue::persistent(&db).unwrap();
            let (fsyncs0, page_syncs0) = (ws.fsyncs.get(), pool.disk().stats().syncs.get());
            let batch: Vec<UpdateDescriptor> = (0..32).map(tok).collect();
            q.enqueue_batch(&batch).unwrap();
            // The whole batch rides one log fsync; the page file is not
            // touched until a checkpoint (the WAL write ordering invariant).
            assert_eq!(ws.fsyncs.get(), fsyncs0 + 1);
            assert_eq!(pool.disk().stats().syncs.get(), page_syncs0);
            assert_eq!(q.len(), 32);
        }
        // Crash here (no checkpoint): replay must restore the batch.
        {
            let db = Database::open_file(&path, 128).unwrap();
            assert!(db.storage().was_recovered());
            let q = UpdateQueue::persistent(&db).unwrap();
            assert_eq!(q.len(), 32);
            assert_eq!(q.dequeue_batch(64).unwrap().len(), 32);
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&wal);
    }

    #[test]
    fn enqueue_batch_volatile_is_plain_fifo() {
        let q = UpdateQueue::volatile();
        assert_eq!(
            q.enqueue_batch(&(0..4).map(tok).collect::<Vec<_>>())
                .unwrap(),
            None
        );
        assert_eq!(q.len(), 4);
        assert_eq!(q.dequeue_batch(10).unwrap()[0], tok(0));
    }

    #[test]
    fn recovered_persistent_depth_is_reported() {
        let registry = Registry::new();
        let db = Database::open_memory(128);
        {
            let q = UpdateQueue::persistent(&db).unwrap();
            q.enqueue(tok(1)).unwrap();
            q.enqueue(tok(2)).unwrap();
        }
        let mut q2 = UpdateQueue::persistent(&db).unwrap();
        q2.attach_telemetry(QueueTelemetry::from_registry(&registry));
        let t = QueueTelemetry::from_registry(&registry);
        assert_eq!(t.depth.get(), 2);
        q2.dequeue_batch(10).unwrap();
        assert_eq!(t.depth.get(), 0);
    }
}
