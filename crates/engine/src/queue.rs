//! The update-descriptor queue (§3, Figure 1).
//!
//! Captured updates are parked here until a driver's `tman_test` call
//! consumes them. Two modes:
//!
//! * **Persistent** — "a table acting as a queue": descriptors are rows of
//!   `update_queue(qid, body)` and survive restarts (the paper's "safety of
//!   persistent update queuing").
//! * **Volatile** — the planned "main-memory queue ... faster, but the
//!   safety ... will be lost": a lock-free in-memory queue.
//!
//! Telemetry: the queue owns a depth gauge, enqueue/dequeue counters, and
//! an enqueue→dequeue wait-time histogram ([`QueueTelemetry`]). Wait time
//! is measured on the volatile backend by stamping each descriptor with its
//! enqueue instant (skipped entirely when telemetry is disabled). The
//! persistent backend prefixes each row body with the enqueue wall-clock
//! time (8 bytes, UNIX-epoch nanoseconds, little-endian) so the wait
//! histogram survives the database round trip — and even a restart, since
//! wall-clock stamps stay meaningful across processes. Rows written before
//! this format (no stamp) still decode.

use crossbeam::queue::SegQueue;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tman_common::hex::{hex_decode, hex_encode};
use tman_common::{Result, UpdateDescriptor, Value};
use tman_sql::{Database, Table};
use tman_telemetry::{CounterHandle, GaugeHandle, HistogramHandle, Registry};

/// Name of the persistent queue table.
pub const QUEUE_TABLE: &str = "update_queue";

/// Wall-clock now in UNIX-epoch nanoseconds (persistent-queue wait stamps).
fn unix_now_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// Split a persistent row body into (enqueue stamp, descriptor). `None`
/// means the body predates the stamp format.
fn decode_stamped(bytes: &[u8]) -> Option<(u64, UpdateDescriptor)> {
    if bytes.len() < 8 {
        return None;
    }
    let stamp = u64::from_le_bytes(bytes[..8].try_into().expect("8-byte prefix"));
    UpdateDescriptor::decode(&bytes[8..])
        .ok()
        .map(|d| (stamp, d))
}

/// Pre-resolved queue instruments.
#[derive(Clone, Default)]
pub struct QueueTelemetry {
    /// `tman_queue_depth`: descriptors currently queued.
    pub depth: GaugeHandle,
    /// `tman_queue_enqueued_total`.
    pub enqueued: CounterHandle,
    /// `tman_queue_dequeued_total`.
    pub dequeued: CounterHandle,
    /// `tman_queue_wait_ns`: enqueue→dequeue latency (volatile mode).
    pub wait_ns: HistogramHandle,
}

impl QueueTelemetry {
    /// Resolve the queue instrument family from a registry.
    pub fn from_registry(registry: &Registry) -> QueueTelemetry {
        QueueTelemetry {
            depth: registry.gauge("tman_queue_depth", &[]),
            enqueued: registry.counter("tman_queue_enqueued_total", &[]),
            dequeued: registry.counter("tman_queue_dequeued_total", &[]),
            wait_ns: registry.histogram("tman_queue_wait_ns", &[]),
        }
    }
}

#[allow(clippy::large_enum_variant)] // one queue per engine; size is moot
enum Backend {
    Volatile(SegQueue<(Option<Instant>, UpdateDescriptor)>),
    Persistent {
        table: Arc<Table>,
        next_qid: AtomicI64,
    },
}

/// FIFO of update descriptors awaiting processing.
pub struct UpdateQueue {
    backend: Backend,
    telemetry: QueueTelemetry,
}

impl UpdateQueue {
    /// In-memory queue.
    pub fn volatile() -> UpdateQueue {
        UpdateQueue {
            backend: Backend::Volatile(SegQueue::new()),
            telemetry: QueueTelemetry::default(),
        }
    }

    /// Table-backed queue; creates (or reopens) `update_queue` and resumes
    /// after the highest existing qid.
    pub fn persistent(db: &Database) -> Result<UpdateQueue> {
        use tman_common::{Column, DataType, Schema};
        let table = if db.has_table(QUEUE_TABLE) {
            db.table(QUEUE_TABLE)?
        } else {
            db.create_table(
                QUEUE_TABLE,
                Schema::new(vec![
                    Column::new("qid", DataType::Int),
                    Column::new("body", DataType::Varchar(65535)),
                ])?,
            )?
        };
        let mut max_qid = 0i64;
        table.scan(|_, row| {
            max_qid = max_qid.max(row.get(0).as_i64().unwrap_or(0));
            Ok(true)
        })?;
        Ok(UpdateQueue {
            backend: Backend::Persistent {
                table,
                next_qid: AtomicI64::new(max_qid + 1),
            },
            telemetry: QueueTelemetry::default(),
        })
    }

    /// Wire instruments in. Initializes the depth gauge from the current
    /// length, so a persistent queue recovered with rows already in it
    /// reports them.
    pub fn attach_telemetry(&mut self, telemetry: QueueTelemetry) {
        telemetry.depth.add(self.len() as i64);
        self.telemetry = telemetry;
    }

    /// Append a descriptor.
    pub fn enqueue(&self, d: UpdateDescriptor) -> Result<()> {
        match &self.backend {
            Backend::Volatile(q) => {
                let stamp = if self.telemetry.wait_ns.is_enabled() {
                    Some(Instant::now())
                } else {
                    None
                };
                q.push((stamp, d));
            }
            Backend::Persistent { table, next_qid } => {
                let qid = next_qid.fetch_add(1, Ordering::Relaxed);
                // Stamp unconditionally: the row format must not depend on
                // whether telemetry happens to be attached.
                let payload = d.encode();
                let mut body = Vec::with_capacity(8 + payload.len());
                body.extend_from_slice(&unix_now_ns().to_le_bytes());
                body.extend_from_slice(&payload);
                table.insert(vec![Value::Int(qid), Value::str(hex_encode(&body))])?;
            }
        }
        self.telemetry.enqueued.bump();
        self.telemetry.depth.inc();
        Ok(())
    }

    /// Remove and return up to `max` descriptors in FIFO order.
    pub fn dequeue_batch(&self, max: usize) -> Result<Vec<UpdateDescriptor>> {
        let out = match &self.backend {
            Backend::Volatile(q) => {
                let mut out = Vec::new();
                while out.len() < max {
                    match q.pop() {
                        Some((stamp, d)) => {
                            if let Some(t0) = stamp {
                                self.telemetry
                                    .wait_ns
                                    .record(t0.elapsed().as_nanos() as u64);
                            }
                            out.push(d);
                        }
                        None => break,
                    }
                }
                out
            }
            Backend::Persistent { table, .. } => {
                // One scan collects (qid, rid, body); take the lowest qids.
                let mut rows: Vec<(i64, tman_storage::RecordId, String)> = Vec::new();
                table.scan(|rid, row| {
                    rows.push((
                        row.get(0).as_i64().unwrap_or(0),
                        rid,
                        row.get(1).as_str().unwrap_or("").to_string(),
                    ));
                    Ok(true)
                })?;
                rows.sort_by_key(|(qid, _, _)| *qid);
                rows.truncate(max);
                let now = unix_now_ns();
                let mut out = Vec::with_capacity(rows.len());
                for (_, rid, body) in rows {
                    table.delete(rid)?;
                    let bytes = hex_decode(&body)?;
                    match decode_stamped(&bytes) {
                        Some((stamp, d)) => {
                            self.telemetry.wait_ns.record(now.saturating_sub(stamp));
                            out.push(d);
                        }
                        // Pre-stamp row format (or a qid written by an
                        // older build): the whole body is the descriptor.
                        None => out.push(UpdateDescriptor::decode(&bytes)?),
                    }
                }
                out
            }
        };
        self.telemetry.dequeued.add(out.len() as u64);
        self.telemetry.depth.add(-(out.len() as i64));
        Ok(out)
    }

    /// Number of queued descriptors.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Volatile(q) => q.len(),
            Backend::Persistent { table, .. } => table.count().unwrap_or(0),
        }
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tman_common::{DataSourceId, Tuple};

    fn tok(i: i64) -> UpdateDescriptor {
        UpdateDescriptor::insert(DataSourceId(1), Tuple::new(vec![Value::Int(i)]))
    }

    #[test]
    fn volatile_fifo() {
        let q = UpdateQueue::volatile();
        for i in 0..5 {
            q.enqueue(tok(i)).unwrap();
        }
        assert_eq!(q.len(), 5);
        let batch = q.dequeue_batch(3).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0], tok(0));
        assert_eq!(q.dequeue_batch(10).unwrap().len(), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn persistent_fifo_and_recovery() {
        let db = Database::open_memory(128);
        {
            let q = UpdateQueue::persistent(&db).unwrap();
            for i in 0..4 {
                q.enqueue(tok(i)).unwrap();
            }
            let batch = q.dequeue_batch(2).unwrap();
            assert_eq!(batch, vec![tok(0), tok(1)]);
        }
        // "Restart": reopen over the same database — 2 descriptors remain,
        // and new qids don't collide.
        let q2 = UpdateQueue::persistent(&db).unwrap();
        assert_eq!(q2.len(), 2);
        q2.enqueue(tok(9)).unwrap();
        let batch = q2.dequeue_batch(10).unwrap();
        assert_eq!(batch, vec![tok(2), tok(3), tok(9)]);
    }

    #[test]
    fn telemetry_tracks_depth_throughput_and_wait() {
        let registry = Registry::new();
        let mut q = UpdateQueue::volatile();
        q.attach_telemetry(QueueTelemetry::from_registry(&registry));
        let t = QueueTelemetry::from_registry(&registry); // same series
        for i in 0..3 {
            q.enqueue(tok(i)).unwrap();
        }
        assert_eq!(t.depth.get(), 3);
        assert_eq!(t.enqueued.get(), 3);
        q.dequeue_batch(2).unwrap();
        assert_eq!(t.depth.get(), 1);
        assert_eq!(t.dequeued.get(), 2);
        assert_eq!(t.wait_ns.summary().count, 2);
        q.dequeue_batch(10).unwrap();
        assert_eq!(t.depth.get(), 0);
    }

    #[test]
    fn persistent_wait_histogram_is_populated() {
        let registry = Registry::new();
        let db = Database::open_memory(128);
        let mut q = UpdateQueue::persistent(&db).unwrap();
        q.attach_telemetry(QueueTelemetry::from_registry(&registry));
        let t = QueueTelemetry::from_registry(&registry);
        q.enqueue(tok(1)).unwrap();
        q.enqueue(tok(2)).unwrap();
        let batch = q.dequeue_batch(10).unwrap();
        assert_eq!(batch, vec![tok(1), tok(2)]);
        // The wall-clock stamp in the row body survives the database round
        // trip, so persistent mode populates the wait histogram too.
        assert_eq!(t.wait_ns.summary().count, 2);
    }

    #[test]
    fn prestamp_rows_still_decode() {
        let db = Database::open_memory(128);
        let q = UpdateQueue::persistent(&db).unwrap();
        // A row in the pre-stamp format: body is the bare descriptor.
        if let Backend::Persistent { table, next_qid } = &q.backend {
            let qid = next_qid.fetch_add(1, Ordering::Relaxed);
            table
                .insert(vec![
                    Value::Int(qid),
                    Value::str(hex_encode(&tok(7).encode())),
                ])
                .unwrap();
        }
        assert_eq!(q.dequeue_batch(10).unwrap(), vec![tok(7)]);
    }

    #[test]
    fn recovered_persistent_depth_is_reported() {
        let registry = Registry::new();
        let db = Database::open_memory(128);
        {
            let q = UpdateQueue::persistent(&db).unwrap();
            q.enqueue(tok(1)).unwrap();
            q.enqueue(tok(2)).unwrap();
        }
        let mut q2 = UpdateQueue::persistent(&db).unwrap();
        q2.attach_telemetry(QueueTelemetry::from_registry(&registry));
        let t = QueueTelemetry::from_registry(&registry);
        assert_eq!(t.depth.get(), 2);
        q2.dequeue_batch(10).unwrap();
        assert_eq!(t.depth.get(), 0);
    }
}
