//! The update-descriptor queue (§3, Figure 1).
//!
//! Captured updates are parked here until a driver's `tman_test` call
//! consumes them. Two modes:
//!
//! * **Persistent** — "a table acting as a queue": descriptors are rows of
//!   `update_queue(qid, body)` and survive restarts (the paper's "safety of
//!   persistent update queuing").
//! * **Volatile** — the planned "main-memory queue ... faster, but the
//!   safety ... will be lost": a lock-free in-memory queue.

use crossbeam::queue::SegQueue;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use tman_common::{Result, TmanError, UpdateDescriptor, Value};
use tman_sql::{Database, Table};

/// Name of the persistent queue table.
pub const QUEUE_TABLE: &str = "update_queue";

#[allow(clippy::large_enum_variant)] // one queue per engine; size is moot
enum Backend {
    Volatile(SegQueue<UpdateDescriptor>),
    Persistent { table: Arc<Table>, next_qid: AtomicI64 },
}

/// FIFO of update descriptors awaiting processing.
pub struct UpdateQueue {
    backend: Backend,
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn hex_decode(s: &str) -> Result<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return Err(TmanError::Storage("odd-length hex body".into()));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&s[i..i + 2], 16)
                .map_err(|e| TmanError::Storage(format!("bad hex body: {e}")))
        })
        .collect()
}

impl UpdateQueue {
    /// In-memory queue.
    pub fn volatile() -> UpdateQueue {
        UpdateQueue { backend: Backend::Volatile(SegQueue::new()) }
    }

    /// Table-backed queue; creates (or reopens) `update_queue` and resumes
    /// after the highest existing qid.
    pub fn persistent(db: &Database) -> Result<UpdateQueue> {
        use tman_common::{Column, DataType, Schema};
        let table = if db.has_table(QUEUE_TABLE) {
            db.table(QUEUE_TABLE)?
        } else {
            db.create_table(
                QUEUE_TABLE,
                Schema::new(vec![
                    Column::new("qid", DataType::Int),
                    Column::new("body", DataType::Varchar(65535)),
                ])?,
            )?
        };
        let mut max_qid = 0i64;
        table.scan(|_, row| {
            max_qid = max_qid.max(row.get(0).as_i64().unwrap_or(0));
            Ok(true)
        })?;
        Ok(UpdateQueue {
            backend: Backend::Persistent { table, next_qid: AtomicI64::new(max_qid + 1) },
        })
    }

    /// Append a descriptor.
    pub fn enqueue(&self, d: UpdateDescriptor) -> Result<()> {
        match &self.backend {
            Backend::Volatile(q) => {
                q.push(d);
                Ok(())
            }
            Backend::Persistent { table, next_qid } => {
                let qid = next_qid.fetch_add(1, Ordering::Relaxed);
                table.insert(vec![Value::Int(qid), Value::str(hex_encode(&d.encode()))])?;
                Ok(())
            }
        }
    }

    /// Remove and return up to `max` descriptors in FIFO order.
    pub fn dequeue_batch(&self, max: usize) -> Result<Vec<UpdateDescriptor>> {
        match &self.backend {
            Backend::Volatile(q) => {
                let mut out = Vec::new();
                while out.len() < max {
                    match q.pop() {
                        Some(d) => out.push(d),
                        None => break,
                    }
                }
                Ok(out)
            }
            Backend::Persistent { table, .. } => {
                // One scan collects (qid, rid, body); take the lowest qids.
                let mut rows: Vec<(i64, tman_storage::RecordId, String)> = Vec::new();
                table.scan(|rid, row| {
                    rows.push((
                        row.get(0).as_i64().unwrap_or(0),
                        rid,
                        row.get(1).as_str().unwrap_or("").to_string(),
                    ));
                    Ok(true)
                })?;
                rows.sort_by_key(|(qid, _, _)| *qid);
                rows.truncate(max);
                let mut out = Vec::with_capacity(rows.len());
                for (_, rid, body) in rows {
                    table.delete(rid)?;
                    out.push(UpdateDescriptor::decode(&hex_decode(&body)?)?);
                }
                Ok(out)
            }
        }
    }

    /// Number of queued descriptors.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Volatile(q) => q.len(),
            Backend::Persistent { table, .. } => table.count().unwrap_or(0),
        }
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tman_common::{DataSourceId, Tuple};

    fn tok(i: i64) -> UpdateDescriptor {
        UpdateDescriptor::insert(DataSourceId(1), Tuple::new(vec![Value::Int(i)]))
    }

    #[test]
    fn volatile_fifo() {
        let q = UpdateQueue::volatile();
        for i in 0..5 {
            q.enqueue(tok(i)).unwrap();
        }
        assert_eq!(q.len(), 5);
        let batch = q.dequeue_batch(3).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0], tok(0));
        assert_eq!(q.dequeue_batch(10).unwrap().len(), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn persistent_fifo_and_recovery() {
        let db = Database::open_memory(128);
        {
            let q = UpdateQueue::persistent(&db).unwrap();
            for i in 0..4 {
                q.enqueue(tok(i)).unwrap();
            }
            let batch = q.dequeue_batch(2).unwrap();
            assert_eq!(batch, vec![tok(0), tok(1)]);
        }
        // "Restart": reopen over the same database — 2 descriptors remain,
        // and new qids don't collide.
        let q2 = UpdateQueue::persistent(&db).unwrap();
        assert_eq!(q2.len(), 2);
        q2.enqueue(tok(9)).unwrap();
        let batch = q2.dequeue_batch(10).unwrap();
        assert_eq!(batch, vec![tok(2), tok(3), tok(9)]);
    }

    #[test]
    fn hex_roundtrip() {
        let data = vec![0u8, 255, 16, 1, 171];
        assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
    }
}
