//! Data sources and update capture (§3).
//!
//! A data source "normally corresponds to a table". Local sources wrap a
//! table in the engine's database: every mutation made through the engine
//! (including `execSQL` rule actions) is captured as an update descriptor —
//! the role Informix row triggers play in the paper. Remote/stream sources
//! have only a schema; their programs push descriptors through the data
//! source API ([`crate::TriggerMan::push_token`]).

use std::sync::Arc;
use tman_common::{DataSourceId, Result, Schema, Tuple};
use tman_network::AlphaSource;
use tman_sql::{Database, Table};

/// A registered data source.
pub struct SourceInfo {
    /// Source id (catalog `dsID`).
    pub id: DataSourceId,
    /// Source name.
    pub name: String,
    /// Row schema.
    pub schema: Schema,
    /// Captured local table, if any.
    pub local_table: Option<Arc<Table>>,
    /// Connection the source is defined on (§2; `"local"` = this engine).
    pub connection: String,
}

/// [`AlphaSource`] over the engine's local tables: virtual alpha nodes
/// (A-TREAT) and trigger priming scan base relations through this.
pub struct TableAlphaSource {
    sources: Vec<Arc<SourceInfo>>,
}

impl TableAlphaSource {
    /// Snapshot the given sources.
    pub fn new(sources: Vec<Arc<SourceInfo>>) -> TableAlphaSource {
        TableAlphaSource { sources }
    }
}

impl AlphaSource for TableAlphaSource {
    fn scan_source(
        &self,
        data_src: DataSourceId,
        visit: &mut dyn FnMut(&Tuple) -> Result<()>,
    ) -> Result<()> {
        let Some(info) = self.sources.iter().find(|s| s.id == data_src) else {
            return Ok(()); // remote source with no local data: nothing to scan
        };
        let Some(table) = &info.local_table else {
            return Ok(());
        };
        let mut err = None;
        table.scan(|_, row| {
            if let Err(e) = visit(row) {
                err = Some(e);
                return Ok(false);
            }
            Ok(true)
        })?;
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Create (or open) the local table behind a captured source.
pub fn ensure_local_table(db: &Database, table: &str, schema: &Schema) -> Result<Arc<Table>> {
    if db.has_table(table) {
        let t = db.table(table)?;
        if t.schema() != schema {
            return Err(tman_common::TmanError::Invalid(format!(
                "table '{table}' exists with a different schema"
            )));
        }
        Ok(t)
    } else {
        db.create_table(table, schema.clone())
    }
}
