//! Engine-wide observability: instrument wiring ([`EngineTelemetry`]) and
//! the typed read surface ([`MetricsSnapshot`], `show stats`).
//!
//! Every subsystem's counters are registered into one
//! [`tman_telemetry::Registry`] at engine construction — shared `Arc`s, so
//! exposition reads live values with zero extra hot-path cost — and the
//! latency/fanout histograms plus labeled task/organization counters are
//! pre-resolved here into handles the hot paths bump directly. With
//! `Config::telemetry == false` the registry is disabled and every handle
//! is a branch-only no-op.

use crate::queue::QueueTelemetry;
use crate::TriggerMan;
use std::sync::Arc;
use tman_common::{Result, TmanError};
use tman_telemetry::{CounterHandle, HistogramHandle, HistogramSummary, Registry};

/// Task-type slots for `tman_tasks_executed_total{type=...}`, matching
/// [`crate::driver::Task`]'s variants.
pub(crate) const TASK_TOKEN: usize = 0;
pub(crate) const TASK_SIG_PARTITION: usize = 1;
pub(crate) const TASK_ACTION: usize = 2;
const TASK_LABELS: [&str; 3] = ["token", "sig_partition", "action"];

/// Action-kind slots for `tman_actions_total{kind=...}`.
pub(crate) const ACTION_EXEC_SQL: usize = 0;
pub(crate) const ACTION_RAISE_EVENT: usize = 1;
pub(crate) const ACTION_NOTIFY: usize = 2;
const ACTION_LABELS: [&str; 3] = ["exec_sql", "raise_event", "notify"];

/// Pre-resolved engine instruments (everything the hot paths bump that is
/// not already a shared subsystem counter).
pub(crate) struct EngineTelemetry {
    /// The registry all instruments live in.
    pub registry: Arc<Registry>,
    /// Queue instruments (same series the queue itself records through).
    pub queue: QueueTelemetry,
    /// `tman_test_ns`: duration of each `tman_test` invocation.
    pub tman_test_ns: HistogramHandle,
    /// `tman_test_calls_total`.
    pub tman_test_calls: CounterHandle,
    /// `tman_test_threshold_expirations_total`: invocations that returned
    /// `TasksRemaining` because THRESHOLD expired.
    pub threshold_expirations: CounterHandle,
    /// `tman_tasks_executed_total{type=...}`, by [`crate::driver::Task`] type.
    pub tasks_executed: [CounterHandle; 3],
    /// `tman_action_ns`: rule-action execution latency.
    pub action_ns: HistogramHandle,
    /// `tman_notify_fanout`: subscribers reached per notification.
    pub notify_fanout: HistogramHandle,
    /// `tman_actions_total{kind=...}`.
    pub actions_by_kind: [CounterHandle; 3],
}

/// Wire-tier series pre-created at engine construction so the exposition
/// (and the `wire` snapshot section) shows them as zeros even before a
/// `WireServer` starts. The wire crate resolves the same identities
/// (get-or-create, or `register_counter` replace-at-identity), so both
/// sides read and write one series.
const WIRE_COUNTERS: [(&str, &[(&str, &str)]); 14] = [
    ("tman_wire_connections", &[]),
    ("tman_wire_frames_total", &[("dir", "in")]),
    ("tman_wire_frames_total", &[("dir", "out")]),
    ("tman_wire_protocol_errors_total", &[]),
    ("tman_wire_backpressure_total", &[]),
    ("tman_wire_batches_total", &[]),
    ("tman_wire_tokens_total", &[]),
    ("tman_wire_notifications_sent_total", &[]),
    ("tman_wire_acks_total", &[]),
    ("tman_wire_delivery_appends_total", &[]),
    ("tman_wire_redelivery_suppressed_total", &[]),
    ("tman_wire_delivery_acked_total", &[]),
    ("tman_wire_acks_clamped_total", &[]),
    ("tman_wire_subscriber_stalls_total", &[]),
];

/// Wire-tier end-to-end latency histograms (see [`WireMetrics`]).
const WIRE_HISTOGRAMS: [&str; 3] = [
    "tman_wire_ingest_to_fire_ns",
    "tman_wire_fire_to_ack_ns",
    "tman_wire_credit_stall_ns",
];

impl EngineTelemetry {
    pub(crate) fn new(registry: Arc<Registry>) -> EngineTelemetry {
        for (name, labels) in WIRE_COUNTERS {
            registry.counter(name, labels);
        }
        for name in WIRE_HISTOGRAMS {
            registry.histogram(name, &[]);
        }
        EngineTelemetry {
            queue: QueueTelemetry::from_registry(&registry),
            tman_test_ns: registry.histogram("tman_test_ns", &[]),
            tman_test_calls: registry.counter("tman_test_calls_total", &[]),
            threshold_expirations: registry.counter("tman_test_threshold_expirations_total", &[]),
            tasks_executed: std::array::from_fn(|i| {
                registry.counter("tman_tasks_executed_total", &[("type", TASK_LABELS[i])])
            }),
            action_ns: registry.histogram("tman_action_ns", &[]),
            notify_fanout: registry.histogram("tman_notify_fanout", &[]),
            actions_by_kind: std::array::from_fn(|i| {
                registry.counter("tman_actions_total", &[("kind", ACTION_LABELS[i])])
            }),
            registry,
        }
    }
}

/// Typed point-in-time snapshot of every engine metric
/// ([`TriggerMan::metrics_snapshot`]).
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Token / firing / action / error totals.
    pub engine: EngineMetrics,
    /// Update-descriptor queue.
    pub queue: QueueMetrics,
    /// `tman_test` / task execution.
    pub driver: DriverMetrics,
    /// Predicate index.
    pub index: IndexMetrics,
    /// Trigger cache.
    pub cache: CacheMetrics,
    /// Storage buffer pool and physical I/O.
    pub storage: StorageMetrics,
    /// Rule actions and notifications.
    pub actions: ActionMetrics,
    /// Per-token tracing (flight recorder).
    pub trace: TraceMetrics,
    /// TCP wire tier (ingestion + subscriber delivery). All zero until a
    /// `WireServer` is started on this engine.
    pub wire: WireMetrics,
    /// Per-signature detail (id, description, organization, class size).
    pub signatures: Vec<SignatureMetrics>,
}

/// Engine-level totals.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineMetrics {
    /// Tokens fully processed.
    pub tokens: u64,
    /// Condition matches that reached a P-node.
    pub firings: u64,
    /// Rule actions executed.
    pub actions: u64,
    /// Task failures.
    pub errors: u64,
    /// Windowed-trigger firings admitted (`count >= K within W` met).
    pub window_fires: u64,
    /// Window timestamps evicted (age-out, capacity, hydration discard),
    /// drained into the counter by the maintenance pass.
    pub window_evictions: u64,
}

/// Queue metrics.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueMetrics {
    /// Current depth (gauge; 0 when telemetry is disabled).
    pub depth: i64,
    /// Descriptors enqueued.
    pub enqueued: u64,
    /// Descriptors dequeued.
    pub dequeued: u64,
    /// Enqueue→dequeue wait (volatile mode).
    pub wait_ns: HistogramSummary,
    /// Persistent rows whose body failed validation (deleted, skipped).
    pub corrupt_rows: u64,
    /// Already-delivered rows dropped by the open-time dedup pass.
    pub dedup_dropped: u64,
    /// Durable delivery watermark (`None` in volatile mode).
    pub watermark: Option<i64>,
}

/// Driver / `tman_test` metrics.
#[derive(Debug, Clone, Default)]
pub struct DriverMetrics {
    /// `tman_test` invocations.
    pub tman_test_calls: u64,
    /// Invocations that hit THRESHOLD with work remaining.
    pub threshold_expirations: u64,
    /// Invocation duration.
    pub tman_test_ns: HistogramSummary,
    /// Type-1 tasks (token) executed.
    pub tasks_token: u64,
    /// Type-3 tasks (signature partition) executed.
    pub tasks_sig_partition: u64,
    /// Type-2 tasks (rule action) executed.
    pub tasks_action: u64,
    /// Shards currently active for task placement.
    pub active_shards: i64,
    /// Per-shard activity, indexed by shard ordinal.
    pub shards: Vec<ShardMetrics>,
    /// Adaptive condition-partition controller.
    pub partition: PartitionMetrics,
}

/// One engine shard's activity ([`crate::shard::EngineShard`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardMetrics {
    /// Shard ordinal.
    pub shard: usize,
    /// Tasks executed from (or stolen out of) this shard's queue.
    pub tasks: u64,
    /// Update-queue tokens drained by drivers homed here.
    pub tokens: u64,
    /// Tasks this shard's drivers stole from other shards.
    pub steals: u64,
    /// Live queued-task depth.
    pub queue_depth: i64,
}

/// Condition-partition controller totals
/// ([`crate::partition_ctl::PartitionController`]). All zero under
/// [`Partitioning::Static`](crate::config::Partitioning).
#[derive(Debug, Clone, Copy, Default)]
pub struct PartitionMetrics {
    /// Controller passes run.
    pub passes: u64,
    /// Signatures whose fan-out left 1 (partitioning engaged).
    pub engagements: u64,
    /// Signatures whose fan-out returned to 1 (partitioning disengaged).
    pub disengagements: u64,
    /// Fan-out increases applied (engagements included).
    pub widenings: u64,
    /// Fan-out decreases applied (disengagements included).
    pub narrowings: u64,
    /// Widest currently-published per-signature fan-out (gauge).
    pub current_fanout: i64,
    /// Controller pass duration.
    pub pass_ns: HistogramSummary,
}

/// Predicate-index metrics.
#[derive(Debug, Clone, Default)]
pub struct IndexMetrics {
    /// Tokens submitted to the index root.
    pub tokens: u64,
    /// Signature entries visited.
    pub signatures_probed: u64,
    /// Constant-set probes.
    pub probes: u64,
    /// Rest-of-predicate re-tests.
    pub residual_tests: u64,
    /// Full matches produced.
    pub matches: u64,
    /// `residual_tests / probes` (0 before any probe).
    pub retest_rate: f64,
    /// Unique signatures.
    pub signatures: usize,
    /// Predicate entries across all constant sets.
    pub entries: usize,
    /// Approximate constant-set memory.
    pub memory_bytes: usize,
    /// Live tagged (disjunct) entries registered for OR-triggers.
    pub tagged_entries: u64,
    /// Matches suppressed because another disjunct already claimed the
    /// token's tag.
    pub tag_dedup_hits: u64,
    /// Probe/match totals per constant-set organization.
    pub per_org: Vec<OrgMetrics>,
    /// Adaptive organization governor.
    pub governor: GovernorMetrics,
}

/// Per-organization probe/match totals.
#[derive(Debug, Clone, Copy)]
pub struct OrgMetrics {
    /// Organization label (`mem_list`, `mem_index`, ...).
    pub org: &'static str,
    /// Probes against sets in this organization.
    pub probes: u64,
    /// Matches produced by sets in this organization.
    pub matches: u64,
}

/// Adaptive organization-governor totals
/// ([`tman_predindex::PredicateIndex::governor_pass`]).
#[derive(Debug, Clone, Default)]
pub struct GovernorMetrics {
    /// Governor passes run.
    pub passes: u64,
    /// Organization promotions (toward a more indexed/persistent form).
    pub promotions: u64,
    /// Organization demotions (back toward a list).
    pub demotions: u64,
    /// Classes force-spilled to the database by the memory budget.
    pub budget_spills: u64,
    /// Migrations abandoned after repeated snapshot invalidation.
    pub aborted_migrations: u64,
    /// Governor pass duration.
    pub pass_ns: HistogramSummary,
    /// Per-`{from,to}` migration totals (non-zero pairs only).
    pub transitions: Vec<OrgTransitionMetrics>,
}

/// Migration totals for one ordered organization pair.
#[derive(Debug, Clone, Copy)]
pub struct OrgTransitionMetrics {
    /// Organization migrated from.
    pub from: &'static str,
    /// Organization migrated to.
    pub to: &'static str,
    /// Times this pair was a promotion.
    pub promotions: u64,
    /// Times this pair was a demotion.
    pub demotions: u64,
}

/// Trigger-cache metrics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheMetrics {
    /// Pins satisfied from memory.
    pub hits: u64,
    /// Pins that recompiled from the catalog.
    pub misses: u64,
    /// Descriptions evicted.
    pub evictions: u64,
    /// Total pin calls (== hits + misses).
    pub pins: u64,
    /// `hits / (hits + misses)`.
    pub hit_rate: f64,
    /// Descriptions currently resident.
    pub resident: usize,
}

/// Storage metrics.
#[derive(Debug, Clone, Copy, Default)]
pub struct StorageMetrics {
    /// Buffer-pool hits.
    pub pool_hits: u64,
    /// Buffer-pool misses.
    pub pool_misses: u64,
    /// Pages evicted from the pool.
    pub pool_evictions: u64,
    /// `pool_hits / (pool_hits + pool_misses)`.
    pub pool_hit_rate: f64,
    /// Physical page reads.
    pub page_reads: u64,
    /// Physical page writes.
    pub page_writes: u64,
    /// Explicit durability syncs (group-commit barriers).
    pub syncs: u64,
    /// Transient write errors retried by the buffer pool.
    pub io_retries: u64,
    /// Page-slot reads that failed checksum/version validation.
    pub checksum_failures: u64,
    /// Pages zeroed and quarantined by the open-time recovery pass.
    pub quarantined_pages: u64,
    /// Faults injected by an attached fault plan (test builds only).
    pub faults_injected: u64,
    /// The store has a write-ahead log (file-backed databases).
    pub wal_attached: bool,
    /// WAL redo records (page images/deltas) appended.
    pub wal_appends: u64,
    /// WAL bytes appended (commit frames included).
    pub wal_bytes: u64,
    /// Log fsyncs actually issued.
    pub wal_fsyncs: u64,
    /// Commits made durable by piggybacking on another writer's fsync.
    pub wal_group_commits: u64,
    /// Committed records replayed into the page file at open.
    pub wal_replayed_records: u64,
    /// Checkpoints (write-back + log truncation).
    pub wal_checkpoints: u64,
    /// Time for one commit to become durable (the group-commit wait).
    pub wal_group_commit_ns: HistogramSummary,
}

/// Rule-action metrics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ActionMetrics {
    /// `execSQL` actions run.
    pub exec_sql: u64,
    /// `raise event` actions run.
    pub raise_event: u64,
    /// `notify` actions run.
    pub notify: u64,
    /// Action execution latency.
    pub latency_ns: HistogramSummary,
    /// Subscribers reached per notification.
    pub notify_fanout: HistogramSummary,
    /// Notifications delivered to subscribers.
    pub delivered: u64,
    /// Notifications dropped (dead subscribers).
    pub dropped: u64,
}

/// Per-token tracing counters (zeroed with `enabled == false` when
/// `Config::tracing` is `Off`).
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceMetrics {
    /// Is a tracer attached?
    pub enabled: bool,
    /// Tokens that got a live trace handle.
    pub started: u64,
    /// Tokens whose spans were flushed to the ring.
    pub retained: u64,
    /// Tokens discarded by tail sampling.
    pub discarded: u64,
    /// Tokens retained only because they crossed the slow-token threshold.
    pub slow_retained: u64,
    /// Events ever flushed to the ring.
    pub events_logged: u64,
    /// Events lost to ring overwrite.
    pub events_dropped: u64,
}

/// TCP wire-tier metrics (`crates/wire`): ingestion connections, frame
/// traffic, group-commit batching, durable subscriber delivery, and the
/// end-to-end latency SLIs computed from v2 wall-clock stamps. Collected
/// by registry-name reads — the engine crate does not depend on the wire
/// crate, but both resolve the same series identities.
#[derive(Debug, Clone, Default)]
pub struct WireMetrics {
    /// Connections accepted.
    pub connections: u64,
    /// Frames decoded from peers.
    pub frames_in: u64,
    /// Frames written to peers.
    pub frames_out: u64,
    /// Protocol errors (bad frames, credit overruns, validation).
    pub protocol_errors: u64,
    /// Credit grants withheld under queue backpressure.
    pub backpressure: u64,
    /// Group-commit batches enqueued.
    pub batches: u64,
    /// Update descriptors ingested over the wire.
    pub tokens: u64,
    /// Notifications written to subscriber connections.
    pub notifications: u64,
    /// Subscriber watermark acknowledgements processed.
    pub acks: u64,
    /// Notifications appended to the durable delivery log.
    pub delivery_appends: u64,
    /// Redeliveries suppressed by the per-subscriber dedup.
    pub redelivery_suppressed: u64,
    /// Delivery-log rows retired by subscriber acks.
    pub delivery_acked: u64,
    /// Subscriber acks clamped to the delivered range.
    pub acks_clamped: u64,
    /// Deliveries dropped on stalled subscriber mailboxes.
    pub subscriber_stalls: u64,
    /// Ingest stamp → trigger fire (delivery-log append), wall clock.
    pub ingest_to_fire_ns: HistogramSummary,
    /// Trigger fire → subscriber ack, monotonic server clock.
    pub fire_to_ack_ns: HistogramSummary,
    /// Time source connections spent stalled on withheld credit.
    pub credit_stall_ns: HistogramSummary,
}

/// One signature's catalog-style row.
#[derive(Debug, Clone)]
pub struct SignatureMetrics {
    /// Signature id.
    pub id: u32,
    /// Source name the signature is registered on.
    pub source: String,
    /// Signature description (generalized expression text).
    pub desc: String,
    /// Current constant-set organization.
    pub org: &'static str,
    /// Equivalence-class size.
    pub entries: usize,
    /// Approximate constant-set memory.
    pub memory_bytes: usize,
}

impl MetricsSnapshot {
    pub(crate) fn collect(tman: &TriggerMan) -> MetricsSnapshot {
        let t = &tman.telemetry;
        let es = tman.stats();
        let is = tman.predicate_index().stats();
        let cs = tman.trigger_cache().stats();
        let pool = tman.database().storage().pool();
        let ps = pool.stats();
        let ds = pool.disk().stats();
        let mut signatures = Vec::new();
        for (_, src) in tman.sources_by_id.read().iter() {
            if let Some(ix) = tman.predicate_index().source(src.id) {
                for sig in ix.signatures() {
                    signatures.push(SignatureMetrics {
                        id: sig.id.raw(),
                        source: src.name.clone(),
                        desc: sig.sig.key.desc.clone(),
                        org: sig.org_kind().as_str(),
                        entries: sig.len(),
                        memory_bytes: sig.memory_bytes(),
                    });
                }
            }
        }
        signatures.sort_by_key(|s| s.id);
        let per_org = tman_predindex::ORG_LABELS
            .iter()
            .map(|&org| OrgMetrics {
                org,
                probes: t
                    .registry
                    .counter("tman_index_probes_total", &[("org", org)])
                    .get(),
                matches: t
                    .registry
                    .counter("tman_index_matches_total", &[("org", org)])
                    .get(),
            })
            .filter(|o| o.probes > 0 || o.matches > 0)
            .collect();
        let gs = tman.predicate_index().governor_stats();
        let mut transitions = Vec::new();
        for &from in tman_predindex::ORG_LABELS.iter() {
            for &to in tman_predindex::ORG_LABELS.iter() {
                if from == to {
                    continue;
                }
                let labels = [("from", from), ("to", to)];
                let row = OrgTransitionMetrics {
                    from,
                    to,
                    promotions: t
                        .registry
                        .counter("tman_org_promotions_total", &labels)
                        .get(),
                    demotions: t
                        .registry
                        .counter("tman_org_demotions_total", &labels)
                        .get(),
                };
                if row.promotions > 0 || row.demotions > 0 {
                    transitions.push(row);
                }
            }
        }
        let governor = GovernorMetrics {
            passes: gs.passes.get(),
            promotions: gs.promotions.get(),
            demotions: gs.demotions.get(),
            budget_spills: gs.budget_spills.get(),
            aborted_migrations: gs.aborted_migrations.get(),
            pass_ns: t.registry.histogram("tman_governor_pass_ns", &[]).summary(),
            transitions,
        };
        MetricsSnapshot {
            engine: EngineMetrics {
                tokens: es.tokens.get(),
                firings: es.firings.get(),
                actions: es.actions.get(),
                errors: es.errors.get(),
                window_fires: tman.window_fires(),
                window_evictions: tman.window_evictions(),
            },
            queue: QueueMetrics {
                depth: t.queue.depth.get(),
                enqueued: t.queue.enqueued.get(),
                dequeued: t.queue.dequeued.get(),
                wait_ns: t.queue.wait_ns.summary(),
                corrupt_rows: tman.queue.corrupt_rows().get(),
                dedup_dropped: tman.queue.dedup_dropped().get(),
                watermark: tman.queue.watermark(),
            },
            driver: DriverMetrics {
                tman_test_calls: t.tman_test_calls.get(),
                threshold_expirations: t.threshold_expirations.get(),
                tman_test_ns: t.tman_test_ns.summary(),
                tasks_token: t.tasks_executed[TASK_TOKEN].get(),
                tasks_sig_partition: t.tasks_executed[TASK_SIG_PARTITION].get(),
                tasks_action: t.tasks_executed[TASK_ACTION].get(),
                active_shards: tman.active_shards() as i64,
                shards: (0..tman.num_shards())
                    .map(|i| {
                        let s = tman.shards.shard(i);
                        ShardMetrics {
                            shard: i,
                            tasks: s.tasks.get(),
                            tokens: s.tokens.get(),
                            steals: s.steals.get(),
                            queue_depth: s.depth.get(),
                        }
                    })
                    .collect(),
                partition: PartitionMetrics {
                    passes: t.registry.counter("tman_partition_passes_total", &[]).get(),
                    engagements: t
                        .registry
                        .counter("tman_partition_engagements_total", &[])
                        .get(),
                    disengagements: t
                        .registry
                        .counter("tman_partition_disengagements_total", &[])
                        .get(),
                    widenings: t
                        .registry
                        .counter("tman_partition_widenings_total", &[])
                        .get(),
                    narrowings: t
                        .registry
                        .counter("tman_partition_narrowings_total", &[])
                        .get(),
                    current_fanout: t.registry.gauge("tman_partition_fanout", &[]).get(),
                    pass_ns: t
                        .registry
                        .histogram("tman_partition_pass_ns", &[])
                        .summary(),
                },
            },
            index: IndexMetrics {
                tokens: is.tokens.get(),
                signatures_probed: is.signatures_probed.get(),
                probes: is.probes.get(),
                residual_tests: is.residual_tests.get(),
                matches: is.matches.get(),
                retest_rate: is.retest_rate(),
                signatures: tman.predicate_index().num_signatures(),
                entries: tman.predicate_index().num_entries(),
                memory_bytes: tman.predicate_index().memory_bytes(),
                tagged_entries: tman.tagged_entries(),
                tag_dedup_hits: tman.tag_dedup_hits(),
                per_org,
                governor,
            },
            cache: CacheMetrics {
                hits: cs.hits.get(),
                misses: cs.misses.get(),
                evictions: cs.evictions.get(),
                pins: cs.pins.get(),
                hit_rate: cs.hit_rate(),
                resident: tman.trigger_cache().len(),
            },
            storage: {
                let mut sm = StorageMetrics {
                    pool_hits: ps.pool_hits.get(),
                    pool_misses: ps.pool_misses.get(),
                    pool_evictions: ps.evictions.get(),
                    pool_hit_rate: ps.pool_hit_rate(),
                    page_reads: ds.page_reads.get(),
                    page_writes: ds.page_writes.get(),
                    syncs: ds.syncs.get(),
                    io_retries: ps.io_retries.get(),
                    checksum_failures: ds.checksum_failures.get(),
                    quarantined_pages: ds.quarantined_pages.get(),
                    faults_injected: ds.faults_injected.get(),
                    ..StorageMetrics::default()
                };
                if let Some(wal) = pool.wal() {
                    let ws = wal.stats();
                    sm.wal_attached = true;
                    sm.wal_appends = ws.appends.get();
                    sm.wal_bytes = ws.bytes.get();
                    sm.wal_fsyncs = ws.fsyncs.get();
                    sm.wal_group_commits = ws.group_commits.get();
                    sm.wal_replayed_records = ws.replayed_records.get();
                    sm.wal_checkpoints = ws.checkpoints.get();
                    sm.wal_group_commit_ns = ws.group_commit_ns.summary();
                }
                sm
            },
            actions: ActionMetrics {
                exec_sql: t.actions_by_kind[ACTION_EXEC_SQL].get(),
                raise_event: t.actions_by_kind[ACTION_RAISE_EVENT].get(),
                notify: t.actions_by_kind[ACTION_NOTIFY].get(),
                latency_ns: t.action_ns.summary(),
                notify_fanout: t.notify_fanout.summary(),
                delivered: tman.events().delivered(),
                dropped: tman.events().dropped(),
            },
            trace: match tman.tracer() {
                None => TraceMetrics::default(),
                Some(tracer) => {
                    let ts = tracer.stats();
                    TraceMetrics {
                        enabled: true,
                        started: ts.started,
                        retained: ts.retained,
                        discarded: ts.discarded,
                        slow_retained: ts.slow_retained,
                        events_logged: ts.events_logged,
                        events_dropped: ts.events_dropped,
                    }
                }
            },
            wire: {
                let c = |name: &str| t.registry.counter(name, &[]).get();
                WireMetrics {
                    connections: c("tman_wire_connections"),
                    frames_in: t
                        .registry
                        .counter("tman_wire_frames_total", &[("dir", "in")])
                        .get(),
                    frames_out: t
                        .registry
                        .counter("tman_wire_frames_total", &[("dir", "out")])
                        .get(),
                    protocol_errors: c("tman_wire_protocol_errors_total"),
                    backpressure: c("tman_wire_backpressure_total"),
                    batches: c("tman_wire_batches_total"),
                    tokens: c("tman_wire_tokens_total"),
                    notifications: c("tman_wire_notifications_sent_total"),
                    acks: c("tman_wire_acks_total"),
                    delivery_appends: c("tman_wire_delivery_appends_total"),
                    redelivery_suppressed: c("tman_wire_redelivery_suppressed_total"),
                    delivery_acked: c("tman_wire_delivery_acked_total"),
                    acks_clamped: c("tman_wire_acks_clamped_total"),
                    subscriber_stalls: c("tman_wire_subscriber_stalls_total"),
                    ingest_to_fire_ns: t
                        .registry
                        .histogram("tman_wire_ingest_to_fire_ns", &[])
                        .summary(),
                    fire_to_ack_ns: t
                        .registry
                        .histogram("tman_wire_fire_to_ack_ns", &[])
                        .summary(),
                    credit_stall_ns: t
                        .registry
                        .histogram("tman_wire_credit_stall_ns", &[])
                        .summary(),
                }
            },
            signatures,
        }
    }

    /// Subsystem names accepted by `show stats <subsystem>`.
    pub const SUBSYSTEMS: [&'static str; 9] = [
        "engine", "queue", "driver", "index", "cache", "storage", "actions", "trace", "wire",
    ];

    /// Human-readable rendering for the console. `None` renders every
    /// section; otherwise one of [`MetricsSnapshot::SUBSYSTEMS`] (with
    /// `predindex`, `action`, and `drivers` accepted as aliases).
    pub fn format(&self, subsystem: Option<&str>) -> Result<String> {
        let canonical = match subsystem.map(|s| s.to_lowercase()) {
            None => None,
            Some(s) => Some(match s.as_str() {
                "predindex" => "index".to_string(),
                "action" => "actions".to_string(),
                "drivers" => "driver".to_string(),
                other if Self::SUBSYSTEMS.contains(&other) => other.to_string(),
                other => {
                    return Err(TmanError::Invalid(format!(
                        "unknown stats subsystem '{other}' (expected one of: {})",
                        Self::SUBSYSTEMS.join(", ")
                    )))
                }
            }),
        };
        let want = |name: &str| canonical.as_deref().is_none_or(|c| c == name);
        let mut out = String::new();
        let hist = |h: &HistogramSummary| {
            format!(
                "count={} mean={}ns p50={}ns p95={}ns p99={}ns max={}ns",
                h.count,
                h.mean(),
                h.p50,
                h.p95,
                h.p99,
                h.max
            )
        };
        if want("engine") {
            out.push_str("engine:\n");
            out.push_str(&format!("  tokens processed   {}\n", self.engine.tokens));
            out.push_str(&format!("  firings            {}\n", self.engine.firings));
            out.push_str(&format!("  actions run        {}\n", self.engine.actions));
            out.push_str(&format!("  task errors        {}\n", self.engine.errors));
            out.push_str(&format!(
                "  windows            fires={} evictions={}\n",
                self.engine.window_fires, self.engine.window_evictions
            ));
        }
        if want("queue") {
            out.push_str("queue:\n");
            out.push_str(&format!("  depth              {}\n", self.queue.depth));
            out.push_str(&format!("  enqueued           {}\n", self.queue.enqueued));
            out.push_str(&format!("  dequeued           {}\n", self.queue.dequeued));
            out.push_str(&format!(
                "  wait               {}\n",
                hist(&self.queue.wait_ns)
            ));
            out.push_str(&format!(
                "  corrupt rows       {}\n",
                self.queue.corrupt_rows
            ));
            out.push_str(&format!(
                "  dedup dropped      {}\n",
                self.queue.dedup_dropped
            ));
            if let Some(wm) = self.queue.watermark {
                out.push_str(&format!("  watermark          {wm}\n"));
            }
        }
        if want("driver") {
            out.push_str("driver:\n");
            out.push_str(&format!(
                "  tman_test calls    {}\n",
                self.driver.tman_test_calls
            ));
            out.push_str(&format!(
                "  threshold expired  {}\n",
                self.driver.threshold_expirations
            ));
            out.push_str(&format!(
                "  tman_test          {}\n",
                hist(&self.driver.tman_test_ns)
            ));
            out.push_str(&format!(
                "  tasks              token={} sig_partition={} action={}\n",
                self.driver.tasks_token, self.driver.tasks_sig_partition, self.driver.tasks_action
            ));
            out.push_str(&format!(
                "  shards active      {}/{}\n",
                self.driver.active_shards,
                self.driver.shards.len()
            ));
            for s in &self.driver.shards {
                out.push_str(&format!(
                    "  shard {:<12} tasks={} tokens={} steals={} depth={}\n",
                    s.shard, s.tasks, s.tokens, s.steals, s.queue_depth
                ));
            }
            let p = &self.driver.partition;
            out.push_str(&format!(
                "  partition passes   {} (fanout {})\n",
                p.passes, p.current_fanout
            ));
            out.push_str(&format!(
                "  partition moves    engage={} disengage={} widen={} narrow={}\n",
                p.engagements, p.disengagements, p.widenings, p.narrowings
            ));
            out.push_str(&format!("  partition pass     {}\n", hist(&p.pass_ns)));
        }
        if want("index") {
            out.push_str("index:\n");
            out.push_str(&format!(
                "  signatures         {} ({} entries, ~{} bytes)\n",
                self.index.signatures, self.index.entries, self.index.memory_bytes
            ));
            out.push_str(&format!("  tokens             {}\n", self.index.tokens));
            out.push_str(&format!(
                "  signatures probed  {}\n",
                self.index.signatures_probed
            ));
            out.push_str(&format!("  probes             {}\n", self.index.probes));
            out.push_str(&format!(
                "  residual retests   {} (rate {:.3})\n",
                self.index.residual_tests, self.index.retest_rate
            ));
            out.push_str(&format!("  matches            {}\n", self.index.matches));
            out.push_str(&format!(
                "  tagged disjuncts   entries={} dedup_hits={}\n",
                self.index.tagged_entries, self.index.tag_dedup_hits
            ));
            for o in &self.index.per_org {
                out.push_str(&format!(
                    "  org {:<16} probes={} matches={}\n",
                    o.org, o.probes, o.matches
                ));
            }
            let g = &self.index.governor;
            out.push_str(&format!(
                "  governor           passes={} promotions={} demotions={} budget_spills={} aborted={}\n",
                g.passes, g.promotions, g.demotions, g.budget_spills, g.aborted_migrations
            ));
            if g.pass_ns.count > 0 {
                out.push_str(&format!("  governor pass      {}\n", hist(&g.pass_ns)));
            }
            for tr in &g.transitions {
                out.push_str(&format!(
                    "  move {:<16} -> {:<16} promotions={} demotions={}\n",
                    tr.from, tr.to, tr.promotions, tr.demotions
                ));
            }
        }
        if want("cache") {
            out.push_str("cache:\n");
            out.push_str(&format!(
                "  pins               {} (hits={} misses={} rate {:.3})\n",
                self.cache.pins, self.cache.hits, self.cache.misses, self.cache.hit_rate
            ));
            out.push_str(&format!("  evictions          {}\n", self.cache.evictions));
            out.push_str(&format!("  resident           {}\n", self.cache.resident));
        }
        if want("storage") {
            out.push_str("storage:\n");
            out.push_str(&format!(
                "  pool               hits={} misses={} rate {:.3} evictions={}\n",
                self.storage.pool_hits,
                self.storage.pool_misses,
                self.storage.pool_hit_rate,
                self.storage.pool_evictions
            ));
            out.push_str(&format!(
                "  disk               reads={} writes={} syncs={}\n",
                self.storage.page_reads, self.storage.page_writes, self.storage.syncs
            ));
            out.push_str(&format!(
                "  faults             injected={} retries={} checksum_failures={} quarantined={}\n",
                self.storage.faults_injected,
                self.storage.io_retries,
                self.storage.checksum_failures,
                self.storage.quarantined_pages
            ));
            if self.storage.wal_attached {
                out.push_str(&format!(
                    "  wal                appends={} bytes={} fsyncs={} group_commits={}\n",
                    self.storage.wal_appends,
                    self.storage.wal_bytes,
                    self.storage.wal_fsyncs,
                    self.storage.wal_group_commits
                ));
                out.push_str(&format!(
                    "  wal recovery       replayed={} checkpoints={}\n",
                    self.storage.wal_replayed_records, self.storage.wal_checkpoints
                ));
                out.push_str(&format!(
                    "  wal group commit   {}\n",
                    hist(&self.storage.wal_group_commit_ns)
                ));
            }
        }
        if want("actions") {
            out.push_str("actions:\n");
            out.push_str(&format!(
                "  by kind            exec_sql={} raise_event={} notify={}\n",
                self.actions.exec_sql, self.actions.raise_event, self.actions.notify
            ));
            out.push_str(&format!(
                "  latency            {}\n",
                hist(&self.actions.latency_ns)
            ));
            out.push_str(&format!(
                "  notify fanout      {}\n",
                hist(&self.actions.notify_fanout)
            ));
            out.push_str(&format!(
                "  notifications      delivered={} dropped={}\n",
                self.actions.delivered, self.actions.dropped
            ));
        }
        if want("trace") {
            out.push_str("trace:\n");
            if !self.trace.enabled {
                out.push_str("  tracing off\n");
            } else {
                out.push_str(&format!(
                    "  tokens             started={} retained={} discarded={} slow={}\n",
                    self.trace.started,
                    self.trace.retained,
                    self.trace.discarded,
                    self.trace.slow_retained
                ));
                out.push_str(&format!(
                    "  ring events        logged={} dropped={}\n",
                    self.trace.events_logged, self.trace.events_dropped
                ));
            }
        }
        if want("wire") {
            out.push_str("wire:\n");
            let w = &self.wire;
            out.push_str(&format!("  connections        {}\n", w.connections));
            out.push_str(&format!(
                "  frames             in={} out={}\n",
                w.frames_in, w.frames_out
            ));
            out.push_str(&format!(
                "  ingest             batches={} tokens={} backpressure={} protocol_errors={}\n",
                w.batches, w.tokens, w.backpressure, w.protocol_errors
            ));
            out.push_str(&format!(
                "  delivery           appends={} sent={} acks={} acked_rows={}\n",
                w.delivery_appends, w.notifications, w.acks, w.delivery_acked
            ));
            out.push_str(&format!(
                "  anomalies          suppressed={} clamped={} stalls={}\n",
                w.redelivery_suppressed, w.acks_clamped, w.subscriber_stalls
            ));
            out.push_str(&format!(
                "  ingest->fire       {}\n",
                hist(&w.ingest_to_fire_ns)
            ));
            out.push_str(&format!(
                "  fire->ack          {}\n",
                hist(&w.fire_to_ack_ns)
            ));
            out.push_str(&format!(
                "  credit stall       {}\n",
                hist(&w.credit_stall_ns)
            ));
        }
        Ok(out)
    }
}
