//! Trigger system catalogs (§5.1).
//!
//! The primary tables, exactly as the paper lists them:
//!
//! ```text
//! trigger_set(tsID, name, comments, creation_date, isEnabled)
//! trigger(triggerID, tsID, name, comments, trigger_text, creation_date, isEnabled)
//! expression_signature(sigID, dataSrcID, signatureDesc, constTableName,
//!                      constantSetSize, constantSetOrganization)
//! data_source(dsID, name, schemaDesc, localTable)   -- connection metadata
//! ```
//!
//! Triggers are persisted as their *text* plus metadata; the trigger cache
//! recompiles a description on demand (pin miss) — exactly the division the
//! paper describes between disk-based catalogs and the in-memory cache.

use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};
use tman_common::{
    DataSourceId, Result, Schema, SignatureId, TmanError, TriggerId, TriggerSetId, Value,
};
use tman_sql::{Database, Table};

/// One `expression_signature` row: `(sigID, dataSrcID, signatureDesc,
/// constTableName, constantSetSize, constantSetOrganization)`.
pub type SignatureRow = (SignatureId, DataSourceId, String, String, i64, String);

/// Handle to the system catalog tables.
pub struct Catalog {
    trigger_set: Arc<Table>,
    trigger: Arc<Table>,
    expression_signature: Arc<Table>,
    data_source: Arc<Table>,
    connection: Arc<Table>,
    window_state: Arc<Table>,
}

/// A row of the `connection` catalog (§2's connection description).
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectionRow {
    /// Connection name (unique).
    pub name: String,
    /// Database system type (`local` = this engine's own database).
    pub dbtype: String,
    /// Host name.
    pub host: Option<String>,
    /// Database server name.
    pub server: Option<String>,
    /// User id.
    pub user: Option<String>,
    /// Designated default connection.
    pub is_default: bool,
}

/// A row of the `trigger` catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerRow {
    /// Trigger id.
    pub id: TriggerId,
    /// Owning trigger set.
    pub set: TriggerSetId,
    /// Trigger name (unique).
    pub name: String,
    /// Full `create trigger` text — the unit of recompilation.
    pub text: String,
    /// Creation time (unix seconds).
    pub created: i64,
    /// Eligibility to fire.
    pub enabled: bool,
}

/// A row of the `trigger_set` catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerSetRow {
    /// Set id.
    pub id: TriggerSetId,
    /// Set name (unique; "default" is created automatically).
    pub name: String,
    /// Eligibility of the whole set.
    pub enabled: bool,
}

/// A row of the `data_source` catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSourceRow {
    /// Source id.
    pub id: DataSourceId,
    /// Source name (unique).
    pub name: String,
    /// Schema (encoded as in `tman-sql`).
    pub schema: Schema,
    /// Local captured table name, if this source wraps one.
    pub local_table: Option<String>,
    /// Connection the source is defined on (§2).
    pub connection: String,
}

fn now_secs() -> i64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0)
}

fn encode_schema(schema: &Schema) -> String {
    schema
        .columns()
        .iter()
        .map(|c| {
            let ty = match c.ty {
                tman_common::DataType::Int => "int".to_string(),
                tman_common::DataType::Float => "float".to_string(),
                tman_common::DataType::Char(n) => format!("char({n})"),
                tman_common::DataType::Varchar(n) => format!("varchar({n})"),
            };
            format!("{} {}", c.name, ty)
        })
        .collect::<Vec<_>>()
        .join(";")
}

fn decode_schema(s: &str) -> Result<Schema> {
    use tman_common::{Column, DataType};
    let mut cols = Vec::new();
    for part in s.split(';').filter(|p| !p.is_empty()) {
        let (name, ty) = part
            .split_once(' ')
            .ok_or_else(|| TmanError::Storage(format!("bad schema entry '{part}'")))?;
        let ty = if ty == "int" {
            DataType::Int
        } else if ty == "float" {
            DataType::Float
        } else if let Some(n) = ty.strip_prefix("char(").and_then(|t| t.strip_suffix(')')) {
            DataType::Char(
                n.parse()
                    .map_err(|_| TmanError::Storage("bad char len".into()))?,
            )
        } else if let Some(n) = ty
            .strip_prefix("varchar(")
            .and_then(|t| t.strip_suffix(')'))
        {
            DataType::Varchar(
                n.parse()
                    .map_err(|_| TmanError::Storage("bad varchar len".into()))?,
            )
        } else {
            return Err(TmanError::Storage(format!("bad schema type '{ty}'")));
        };
        cols.push(Column::new(name, ty));
    }
    Schema::new(cols)
}

impl Catalog {
    /// Open the catalogs, creating them (plus the "default" trigger set) on
    /// first use.
    pub fn open(db: &Database) -> Result<Catalog> {
        use tman_common::{Column, DataType};
        let mk = |name: &str, cols: &[(&str, DataType)]| -> Result<Arc<Table>> {
            if db.has_table(name) {
                db.table(name)
            } else {
                db.create_table(
                    name,
                    Schema::new(cols.iter().map(|(n, t)| Column::new(*n, *t)).collect())?,
                )
            }
        };
        let v = DataType::Varchar(65535);
        let cat = Catalog {
            trigger_set: mk(
                "trigger_set",
                &[
                    ("tsID", DataType::Int),
                    ("name", v),
                    ("comments", v),
                    ("creation_date", DataType::Int),
                    ("isEnabled", DataType::Int),
                ],
            )?,
            trigger: mk(
                "trigger",
                &[
                    ("triggerID", DataType::Int),
                    ("tsID", DataType::Int),
                    ("name", v),
                    ("comments", v),
                    ("trigger_text", v),
                    ("creation_date", DataType::Int),
                    ("isEnabled", DataType::Int),
                ],
            )?,
            expression_signature: mk(
                "expression_signature",
                &[
                    ("sigID", DataType::Int),
                    ("dataSrcID", DataType::Int),
                    ("signatureDesc", v),
                    ("constTableName", v),
                    ("constantSetSize", DataType::Int),
                    ("constantSetOrganization", v),
                ],
            )?,
            data_source: mk(
                "data_source",
                &[
                    ("dsID", DataType::Int),
                    ("name", v),
                    ("schemaDesc", v),
                    ("localTable", v),
                    ("connection", v),
                ],
            )?,
            connection: mk(
                "connection",
                &[
                    ("name", v),
                    ("dbtype", v),
                    ("host", v),
                    ("server", v),
                    ("userID", v),
                    ("isDefault", DataType::Int),
                ],
            )?,
            window_state: mk(
                "window_state",
                &[
                    ("triggerID", DataType::Int),
                    ("lastTs", DataType::Int),
                    ("ring", v),
                ],
            )?,
        };
        if cat.connections()?.is_empty() {
            // The engine's own database is the initial default connection.
            cat.insert_connection(&ConnectionRow {
                name: "local".into(),
                dbtype: "local".into(),
                host: None,
                server: None,
                user: None,
                is_default: true,
            })?;
        }
        if cat.find_set_by_name("default")?.is_none() {
            cat.insert_set(&TriggerSetRow {
                id: TriggerSetId(1),
                name: "default".into(),
                enabled: true,
            })?;
        }
        Ok(cat)
    }

    // ----- trigger sets ----------------------------------------------------

    /// Insert a trigger-set row.
    pub fn insert_set(&self, row: &TriggerSetRow) -> Result<()> {
        self.trigger_set.insert(vec![
            Value::Int(row.id.raw() as i64),
            Value::str(&*row.name),
            Value::str(""),
            Value::Int(now_secs()),
            Value::Int(row.enabled as i64),
        ])?;
        Ok(())
    }

    /// All trigger sets.
    pub fn sets(&self) -> Result<Vec<TriggerSetRow>> {
        let mut out = Vec::new();
        self.trigger_set.scan(|_, row| {
            out.push(TriggerSetRow {
                id: TriggerSetId(row.get(0).as_i64().unwrap_or(0) as u32),
                name: row.get(1).as_str().unwrap_or("").to_string(),
                enabled: row.get(4) == &Value::Int(1),
            });
            Ok(true)
        })?;
        Ok(out)
    }

    /// Find a set by name.
    pub fn find_set_by_name(&self, name: &str) -> Result<Option<TriggerSetRow>> {
        Ok(self
            .sets()?
            .into_iter()
            .find(|s| s.name.eq_ignore_ascii_case(name)))
    }

    /// Flip a set's isEnabled flag. Returns false if missing.
    pub fn set_set_enabled(&self, name: &str, enabled: bool) -> Result<bool> {
        let mut hit = None;
        self.trigger_set.scan(|rid, row| {
            if row.get(1).as_str().map(|s| s.eq_ignore_ascii_case(name)) == Some(true) {
                hit = Some((rid, row.clone()));
                return Ok(false);
            }
            Ok(true)
        })?;
        let Some((rid, row)) = hit else {
            return Ok(false);
        };
        let mut vals = row.values().to_vec();
        vals[4] = Value::Int(enabled as i64);
        self.trigger_set.update(rid, vals)?;
        Ok(true)
    }

    /// Remove a set row (callers ensure it is empty).
    pub fn delete_set(&self, name: &str) -> Result<bool> {
        let mut hit = None;
        self.trigger_set.scan(|rid, row| {
            if row.get(1).as_str().map(|s| s.eq_ignore_ascii_case(name)) == Some(true) {
                hit = Some(rid);
                return Ok(false);
            }
            Ok(true)
        })?;
        match hit {
            Some(rid) => {
                self.trigger_set.delete(rid)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    // ----- triggers ---------------------------------------------------------

    /// Insert a trigger row.
    pub fn insert_trigger(&self, row: &TriggerRow) -> Result<()> {
        self.trigger.insert(vec![
            Value::Int(row.id.raw() as i64),
            Value::Int(row.set.raw() as i64),
            Value::str(&*row.name),
            Value::str(""),
            Value::str(&*row.text),
            Value::Int(row.created),
            Value::Int(row.enabled as i64),
        ])?;
        Ok(())
    }

    fn trigger_from_row(row: &tman_common::Tuple) -> TriggerRow {
        TriggerRow {
            id: TriggerId(row.get(0).as_i64().unwrap_or(0) as u64),
            set: TriggerSetId(row.get(1).as_i64().unwrap_or(0) as u32),
            name: row.get(2).as_str().unwrap_or("").to_string(),
            text: row.get(4).as_str().unwrap_or("").to_string(),
            created: row.get(5).as_i64().unwrap_or(0),
            enabled: row.get(6) == &Value::Int(1),
        }
    }

    /// All trigger rows.
    pub fn triggers(&self) -> Result<Vec<TriggerRow>> {
        let mut out = Vec::new();
        self.trigger.scan(|_, row| {
            out.push(Self::trigger_from_row(row));
            Ok(true)
        })?;
        Ok(out)
    }

    /// Fetch one trigger row by id.
    pub fn trigger_by_id(&self, id: TriggerId) -> Result<Option<TriggerRow>> {
        let mut hit = None;
        self.trigger.scan(|_, row| {
            if row.get(0) == &Value::Int(id.raw() as i64) {
                hit = Some(Self::trigger_from_row(row));
                return Ok(false);
            }
            Ok(true)
        })?;
        Ok(hit)
    }

    /// Fetch one trigger row by name.
    pub fn trigger_by_name(&self, name: &str) -> Result<Option<TriggerRow>> {
        let mut hit = None;
        self.trigger.scan(|_, row| {
            if row.get(2).as_str().map(|s| s.eq_ignore_ascii_case(name)) == Some(true) {
                hit = Some(Self::trigger_from_row(row));
                return Ok(false);
            }
            Ok(true)
        })?;
        Ok(hit)
    }

    /// Remove a trigger row. Returns false if missing.
    pub fn delete_trigger(&self, id: TriggerId) -> Result<bool> {
        let mut hit = None;
        self.trigger.scan(|rid, row| {
            if row.get(0) == &Value::Int(id.raw() as i64) {
                hit = Some(rid);
                return Ok(false);
            }
            Ok(true)
        })?;
        match hit {
            Some(rid) => {
                self.trigger.delete(rid)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Flip a trigger's isEnabled flag. Returns false if missing.
    pub fn set_trigger_enabled(&self, id: TriggerId, enabled: bool) -> Result<bool> {
        let mut hit = None;
        self.trigger.scan(|rid, row| {
            if row.get(0) == &Value::Int(id.raw() as i64) {
                hit = Some((rid, row.clone()));
                return Ok(false);
            }
            Ok(true)
        })?;
        let Some((rid, row)) = hit else {
            return Ok(false);
        };
        let mut vals = row.values().to_vec();
        vals[6] = Value::Int(enabled as i64);
        self.trigger.update(rid, vals)?;
        Ok(true)
    }

    // ----- connections --------------------------------------------------------

    /// Insert a connection row; when it is the new default, clear the flag
    /// on the previous default.
    pub fn insert_connection(&self, row: &ConnectionRow) -> Result<()> {
        if row.is_default {
            let mut updates = Vec::new();
            self.connection.scan(|rid, r| {
                if r.get(5) == &Value::Int(1) {
                    updates.push((rid, r.clone()));
                }
                Ok(true)
            })?;
            for (rid, r) in updates {
                let mut vals = r.values().to_vec();
                vals[5] = Value::Int(0);
                self.connection.update(rid, vals)?;
            }
        }
        let opt = |o: &Option<String>| match o {
            Some(s) => Value::str(&**s),
            None => Value::Null,
        };
        self.connection.insert(vec![
            Value::str(&*row.name),
            Value::str(&*row.dbtype),
            opt(&row.host),
            opt(&row.server),
            opt(&row.user),
            Value::Int(row.is_default as i64),
        ])?;
        Ok(())
    }

    /// All connection rows.
    pub fn connections(&self) -> Result<Vec<ConnectionRow>> {
        let mut out = Vec::new();
        self.connection.scan(|_, row| {
            out.push(ConnectionRow {
                name: row.get(0).as_str().unwrap_or("").to_string(),
                dbtype: row.get(1).as_str().unwrap_or("").to_string(),
                host: row.get(2).as_str().map(|s| s.to_string()),
                server: row.get(3).as_str().map(|s| s.to_string()),
                user: row.get(4).as_str().map(|s| s.to_string()),
                is_default: row.get(5) == &Value::Int(1),
            });
            Ok(true)
        })?;
        Ok(out)
    }

    // ----- data sources -----------------------------------------------------

    /// Insert a data-source row.
    pub fn insert_data_source(&self, row: &DataSourceRow) -> Result<()> {
        self.data_source.insert(vec![
            Value::Int(row.id.raw() as i64),
            Value::str(&*row.name),
            Value::str(encode_schema(&row.schema)),
            match &row.local_table {
                Some(t) => Value::str(&**t),
                None => Value::Null,
            },
            Value::str(&*row.connection),
        ])?;
        Ok(())
    }

    /// All data-source rows.
    pub fn data_sources(&self) -> Result<Vec<DataSourceRow>> {
        let mut out = Vec::new();
        let mut err = None;
        self.data_source.scan(|_, row| {
            match decode_schema(row.get(2).as_str().unwrap_or("")) {
                Ok(schema) => out.push(DataSourceRow {
                    id: DataSourceId(row.get(0).as_i64().unwrap_or(0) as u32),
                    name: row.get(1).as_str().unwrap_or("").to_string(),
                    schema,
                    local_table: row.get(3).as_str().map(|s| s.to_string()),
                    connection: row.get(4).as_str().unwrap_or("local").to_string(),
                }),
                Err(e) => err = Some(e),
            }
            Ok(true)
        })?;
        match err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    // ----- expression signatures ---------------------------------------------

    /// Upsert an `expression_signature` row (refresh of `constantSetSize`
    /// and `constantSetOrganization`).
    pub fn upsert_signature(
        &self,
        id: SignatureId,
        data_src: DataSourceId,
        desc: &str,
        const_table: &str,
        size: usize,
        organization: &str,
    ) -> Result<()> {
        let mut existing = None;
        self.expression_signature.scan(|rid, row| {
            if row.get(0) == &Value::Int(id.raw() as i64) {
                existing = Some(rid);
                return Ok(false);
            }
            Ok(true)
        })?;
        let vals = vec![
            Value::Int(id.raw() as i64),
            Value::Int(data_src.raw() as i64),
            Value::str(desc),
            Value::str(const_table),
            Value::Int(size as i64),
            Value::str(organization),
        ];
        match existing {
            Some(rid) => {
                self.expression_signature.update(rid, vals)?;
            }
            None => {
                self.expression_signature.insert(vals)?;
            }
        }
        Ok(())
    }

    // ----- windowed-threshold state -------------------------------------------

    /// Upsert a trigger's persisted window state: the clamp watermark and
    /// the in-window event timestamps (comma-joined nanoseconds). The ring
    /// is persisted coarsely — at durability barriers, not per event — so
    /// recovery restores an at-least-once prefix of the window.
    pub fn save_window(&self, id: TriggerId, last_ts: u64, ring: &[u64]) -> Result<()> {
        let encoded = ring
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let vals = vec![
            Value::Int(id.raw() as i64),
            Value::Int(last_ts as i64),
            Value::str(encoded),
        ];
        let mut existing = None;
        self.window_state.scan(|rid, row| {
            if row.get(0) == &Value::Int(id.raw() as i64) {
                existing = Some(rid);
                return Ok(false);
            }
            Ok(true)
        })?;
        match existing {
            Some(rid) => {
                self.window_state.update(rid, vals)?;
            }
            None => {
                self.window_state.insert(vals)?;
            }
        }
        Ok(())
    }

    /// All persisted window states as `(triggerID, lastTs, timestamps)`.
    pub fn windows(&self) -> Result<Vec<(TriggerId, u64, Vec<u64>)>> {
        let mut out = Vec::new();
        self.window_state.scan(|_, row| {
            let ring = row
                .get(2)
                .as_str()
                .unwrap_or("")
                .split(',')
                .filter(|s| !s.is_empty())
                .filter_map(|s| s.parse::<u64>().ok())
                .collect();
            out.push((
                TriggerId(row.get(0).as_i64().unwrap_or(0) as u64),
                row.get(1).as_i64().unwrap_or(0) as u64,
                ring,
            ));
            Ok(true)
        })?;
        Ok(out)
    }

    /// Remove a trigger's window state. Returns false if missing.
    pub fn delete_window(&self, id: TriggerId) -> Result<bool> {
        let mut hit = None;
        self.window_state.scan(|rid, row| {
            if row.get(0) == &Value::Int(id.raw() as i64) {
                hit = Some(rid);
                return Ok(false);
            }
            Ok(true)
        })?;
        match hit {
            Some(rid) => {
                self.window_state.delete(rid)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// All signature rows as `(sigID, dataSrcID, desc, constTable, size,
    /// organization)`.
    pub fn signatures(&self) -> Result<Vec<SignatureRow>> {
        let mut out = Vec::new();
        self.expression_signature.scan(|_, row| {
            out.push((
                SignatureId(row.get(0).as_i64().unwrap_or(0) as u32),
                DataSourceId(row.get(1).as_i64().unwrap_or(0) as u32),
                row.get(2).as_str().unwrap_or("").to_string(),
                row.get(3).as_str().unwrap_or("").to_string(),
                row.get(4).as_i64().unwrap_or(0),
                row.get(5).as_str().unwrap_or("").to_string(),
            ));
            Ok(true)
        })?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_roundtrips() {
        let db = Database::open_memory(256);
        let cat = Catalog::open(&db).unwrap();
        // Default set exists.
        assert!(cat.find_set_by_name("default").unwrap().is_some());

        cat.insert_set(&TriggerSetRow {
            id: TriggerSetId(2),
            name: "alerts".into(),
            enabled: true,
        })
        .unwrap();
        let t = TriggerRow {
            id: TriggerId(10),
            set: TriggerSetId(2),
            name: "t10".into(),
            text: "create trigger t10 from emp do notify 'x'".into(),
            created: 123,
            enabled: true,
        };
        cat.insert_trigger(&t).unwrap();
        assert_eq!(
            cat.trigger_by_id(TriggerId(10)).unwrap().unwrap().name,
            "t10"
        );
        assert_eq!(
            cat.trigger_by_name("T10").unwrap().unwrap().id,
            TriggerId(10)
        );

        assert!(cat.set_trigger_enabled(TriggerId(10), false).unwrap());
        assert!(!cat.trigger_by_id(TriggerId(10)).unwrap().unwrap().enabled);
        assert!(cat.delete_trigger(TriggerId(10)).unwrap());
        assert!(cat.trigger_by_id(TriggerId(10)).unwrap().is_none());
        assert!(!cat.delete_trigger(TriggerId(10)).unwrap());
    }

    #[test]
    fn signature_upsert_updates_in_place() {
        let db = Database::open_memory(256);
        let cat = Catalog::open(&db).unwrap();
        cat.upsert_signature(
            SignatureId(1),
            DataSourceId(1),
            "emp.x = CONSTANT1",
            "const_table_1",
            1,
            "mem_list",
        )
        .unwrap();
        cat.upsert_signature(
            SignatureId(1),
            DataSourceId(1),
            "emp.x = CONSTANT1",
            "const_table_1",
            500,
            "mem_index",
        )
        .unwrap();
        let sigs = cat.signatures().unwrap();
        assert_eq!(sigs.len(), 1);
        assert_eq!(sigs[0].4, 500);
        assert_eq!(sigs[0].5, "mem_index");
    }

    #[test]
    fn window_state_roundtrips() {
        let db = Database::open_memory(256);
        let cat = Catalog::open(&db).unwrap();
        assert!(cat.windows().unwrap().is_empty());
        cat.save_window(TriggerId(7), 1_000, &[400, 700, 1_000])
            .unwrap();
        cat.save_window(TriggerId(7), 2_000, &[1_500, 2_000])
            .unwrap(); // upsert
        cat.save_window(TriggerId(9), 50, &[]).unwrap();
        let mut rows = cat.windows().unwrap();
        rows.sort_by_key(|(id, _, _)| id.raw());
        assert_eq!(
            rows,
            vec![
                (TriggerId(7), 2_000, vec![1_500, 2_000]),
                (TriggerId(9), 50, vec![]),
            ]
        );
        assert!(cat.delete_window(TriggerId(7)).unwrap());
        assert!(!cat.delete_window(TriggerId(7)).unwrap());
        assert_eq!(cat.windows().unwrap().len(), 1);
    }

    #[test]
    fn data_sources_persist_schema() {
        let db = Database::open_memory(256);
        let cat = Catalog::open(&db).unwrap();
        let schema = Schema::from_pairs(&[
            ("a", tman_common::DataType::Int),
            ("b", tman_common::DataType::Varchar(10)),
        ]);
        cat.insert_data_source(&DataSourceRow {
            id: DataSourceId(3),
            name: "quotes".into(),
            schema: schema.clone(),
            local_table: Some("quotes_tbl".into()),
            connection: "local".into(),
        })
        .unwrap();
        let rows = cat.data_sources().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].schema, schema);
        assert_eq!(rows[0].local_table.as_deref(), Some("quotes_tbl"));
    }
}
