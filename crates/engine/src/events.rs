//! Event notification (\[Hans98\]): `raise event` in rule actions
//! communicates with the outside world; client applications "register for
//! events, receive event notifications when triggers fire".

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;
use tman_common::fxhash::FxHashMap;
use tman_common::Value;
use tman_telemetry::{CounterHandle, Registry};

/// A notification delivered to registered clients.
#[derive(Debug, Clone, PartialEq)]
pub struct EventNotification {
    /// Event name (`raise event Name(...)`), or `"notify"` for `do notify`
    /// messages.
    pub event: String,
    /// Name of the trigger whose action raised it.
    pub trigger: String,
    /// Evaluated event arguments.
    pub values: Vec<Value>,
    /// Message text (for `notify` actions).
    pub message: Option<String>,
}

/// Pub/sub hub connecting rule actions to client applications.
pub struct EventBus {
    by_event: RwLock<FxHashMap<String, Vec<Sender<EventNotification>>>>,
    all: RwLock<Vec<Sender<EventNotification>>>,
    delivered: CounterHandle,
    dropped: CounterHandle,
}

impl Default for EventBus {
    fn default() -> EventBus {
        EventBus::new()
    }
}

impl EventBus {
    /// Fresh bus. Delivery counters are no-ops until
    /// [`attach_telemetry`](Self::attach_telemetry) resolves them against a
    /// registry.
    pub fn new() -> EventBus {
        EventBus {
            by_event: RwLock::default(),
            all: RwLock::default(),
            delivered: CounterHandle::noop(),
            dropped: CounterHandle::noop(),
        }
    }

    /// Resolve the delivery counters in `registry`, so
    /// `tman_notifications_{delivered,dropped}_total` show up in
    /// `show stats` / the text exposition.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.delivered = registry.counter("tman_notifications_delivered_total", &[]);
        self.dropped = registry.counter("tman_notifications_dropped_total", &[]);
    }

    /// Register for one named event.
    pub fn subscribe(&self, event: &str) -> Receiver<EventNotification> {
        let (tx, rx) = unbounded();
        self.by_event
            .write()
            .entry(event.to_lowercase())
            .or_default()
            .push(tx);
        rx
    }

    /// Register for every event (console use).
    pub fn subscribe_all(&self) -> Receiver<EventNotification> {
        let (tx, rx) = unbounded();
        self.all.write().push(tx);
        rx
    }

    /// Deliver a notification to all matching subscribers, returning the
    /// number actually delivered (the fanout). Disconnected receivers are
    /// pruned lazily.
    ///
    /// Hot path note: rule actions publish from every driver thread
    /// concurrently, so delivery runs under *read* locks; the write lock is
    /// only taken to prune when a send actually failed.
    pub fn publish(&self, n: EventNotification) -> usize {
        let key = n.event.to_lowercase();
        let mut fanout = 0usize;
        let mut dead: Vec<Sender<EventNotification>> = Vec::new();
        {
            let by_event = self.by_event.read();
            if let Some(subs) = by_event.get(&key) {
                for tx in subs {
                    match tx.send(n.clone()) {
                        Ok(()) => {
                            self.delivered.bump();
                            fanout += 1;
                        }
                        Err(_) => {
                            self.dropped.bump();
                            dead.push(tx.clone());
                        }
                    }
                }
            }
        }
        {
            let all = self.all.read();
            for tx in all.iter() {
                match tx.send(n.clone()) {
                    Ok(()) => {
                        self.delivered.bump();
                        fanout += 1;
                    }
                    Err(_) => {
                        self.dropped.bump();
                        dead.push(tx.clone());
                    }
                }
            }
        }
        if !dead.is_empty() {
            let is_dead = |tx: &Sender<EventNotification>| dead.iter().any(|d| d.same_channel(tx));
            if let Some(subs) = self.by_event.write().get_mut(&key) {
                subs.retain(|tx| !is_dead(tx));
            }
            self.all.write().retain(|tx| !is_dead(tx));
        }
        fanout
    }

    /// Notifications successfully delivered (0 until a registry is
    /// attached).
    pub fn delivered(&self) -> u64 {
        self.delivered.get()
    }

    /// Notifications dropped on dead subscribers (0 until a registry is
    /// attached).
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn note(event: &str) -> EventNotification {
        EventNotification {
            event: event.into(),
            trigger: "t".into(),
            values: vec![Value::Int(1)],
            message: None,
        }
    }

    #[test]
    fn routed_by_event_name_case_insensitively() {
        let bus = EventBus::new();
        let rx_a = bus.subscribe("NewHouse");
        let rx_b = bus.subscribe("other");
        bus.publish(note("newhouse"));
        assert_eq!(rx_a.try_recv().unwrap().event, "newhouse");
        assert!(rx_b.try_recv().is_err());
    }

    #[test]
    fn subscribe_all_sees_everything() {
        let registry = Registry::new();
        let mut bus = EventBus::new();
        bus.attach_telemetry(&registry);
        let rx = bus.subscribe_all();
        bus.publish(note("a"));
        bus.publish(note("b"));
        assert_eq!(
            rx.iter().take(2).map(|n| n.event).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        // The handles resolve into the registry, so both the bus getter and
        // the exposition see the deliveries.
        assert_eq!(bus.delivered(), 2);
        assert_eq!(
            registry
                .counter("tman_notifications_delivered_total", &[])
                .get(),
            2
        );
    }

    #[test]
    fn dead_subscribers_are_pruned() {
        let bus = EventBus::new();
        drop(bus.subscribe("x"));
        let live = bus.subscribe("x");
        bus.publish(note("x"));
        assert_eq!(live.try_recv().unwrap().event, "x");
        bus.publish(note("x"));
        assert_eq!(bus.by_event.read().get("x").unwrap().len(), 1);
    }
}
