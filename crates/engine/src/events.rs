//! Event notification (\[Hans98\]): `raise event` in rule actions
//! communicates with the outside world; client applications "register for
//! events, receive event notifications when triggers fire".
//!
//! Delivery accounting is per-subscriber: every subscription carries a
//! stable id, and drops (dead or backlogged receivers) are counted both in
//! the aggregate `tman_notifications_dropped_total` series and in a
//! `subscriber`-labeled child of the same family, so one stalled client is
//! attributable instead of vanishing into a global counter. Dead receivers
//! are pruned *eagerly*: the publish that detects the failure sweeps the
//! subscriber out of every routing table before returning.
//!
//! [`NotificationSink`]s are synchronous observers invoked inside
//! [`EventBus::publish`] *before* channel fanout — the wire tier's durable
//! delivery log hooks in here, so a notification is logged before the
//! publishing driver can acknowledge the token that produced it.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tman_common::fxhash::FxHashMap;
use tman_common::Value;
use tman_telemetry::{CounterHandle, Registry, TraceHandle};

/// A notification delivered to registered clients.
///
/// Equality ignores the [`trace`](Self::trace) handle and the
/// [`ingest_unix_ns`](Self::ingest_unix_ns) stamp — like their
/// counterparts on `UpdateDescriptor`, they are execution metadata riding
/// along with the notification, not part of its identity.
#[derive(Debug, Clone)]
pub struct EventNotification {
    /// Event name (`raise event Name(...)`), or `"notify"` for `do notify`
    /// messages.
    pub event: String,
    /// Name of the trigger whose action raised it.
    pub trigger: String,
    /// Evaluated event arguments.
    pub values: Vec<Value>,
    /// Message text (for `notify` actions).
    pub message: Option<String>,
    /// Durable origin of the token whose action raised this notification:
    /// its persistent-queue sequence number, when the engine runs a
    /// persistent queue (`None` on the volatile queue). Delivery tiers key
    /// crash-redelivery dedup on it.
    pub token_seq: Option<i64>,
    /// Trace lineage of the token whose action raised this notification
    /// (inert unless the engine is tracing). Delivery tiers record their
    /// append/write spans on it so the span tree extends past the engine.
    pub trace: TraceHandle,
    /// Wall-clock ingest stamp of the originating token (ns since the Unix
    /// epoch, 0 when unknown) — the basis for ingest→fire latency.
    pub ingest_unix_ns: u64,
}

impl PartialEq for EventNotification {
    fn eq(&self, other: &EventNotification) -> bool {
        self.event == other.event
            && self.trigger == other.trigger
            && self.values == other.values
            && self.message == other.message
            && self.token_seq == other.token_seq
    }
}

/// Synchronous observer of every published notification. Sinks run inside
/// [`EventBus::publish`] on the publishing driver thread, before any
/// channel fanout — a sink that persists the notification therefore
/// completes *before* the token that produced it can be acknowledged to
/// the update queue, which is what makes at-least-once delivery compose
/// end-to-end.
pub trait NotificationSink: Send + Sync {
    /// Observe one notification at publish time.
    fn on_publish(&self, n: &EventNotification);
}

/// Per-subscriber mailbox cap. The channels are unbounded, so "full" is a
/// policy decision: past this backlog a subscriber is considered stalled
/// and further notifications to it are counted drops instead of unbounded
/// memory growth.
pub const SLOW_CHANNEL_DEPTH: usize = 65_536;

/// One subscription: a stable id (for labeled drop accounting) plus its
/// channel.
struct Sub {
    id: u64,
    tx: Sender<EventNotification>,
}

/// Pub/sub hub connecting rule actions to client applications.
pub struct EventBus {
    by_event: RwLock<FxHashMap<String, Vec<Sub>>>,
    all: RwLock<Vec<Sub>>,
    sinks: RwLock<Vec<Arc<dyn NotificationSink>>>,
    next_sub: AtomicU64,
    registry: Option<Arc<Registry>>,
    delivered: CounterHandle,
    dropped: CounterHandle,
}

impl Default for EventBus {
    fn default() -> EventBus {
        EventBus::new()
    }
}

impl EventBus {
    /// Fresh bus. Delivery counters are no-ops until
    /// [`attach_telemetry`](Self::attach_telemetry) resolves them against a
    /// registry.
    pub fn new() -> EventBus {
        EventBus {
            by_event: RwLock::default(),
            all: RwLock::default(),
            sinks: RwLock::default(),
            next_sub: AtomicU64::new(1),
            registry: None,
            delivered: CounterHandle::noop(),
            dropped: CounterHandle::noop(),
        }
    }

    /// Resolve the delivery counters in `registry`, so
    /// `tman_notifications_{delivered,dropped}_total` show up in
    /// `show stats` / the text exposition. The registry is retained so
    /// per-subscriber `subscriber`-labeled drop counters can be resolved
    /// lazily, the first time a given subscriber actually drops.
    pub fn attach_telemetry(&mut self, registry: &Arc<Registry>) {
        self.delivered = registry.counter("tman_notifications_delivered_total", &[]);
        self.dropped = registry.counter("tman_notifications_dropped_total", &[]);
        self.registry = Some(registry.clone());
    }

    /// Register for one named event.
    pub fn subscribe(&self, event: &str) -> Receiver<EventNotification> {
        let (tx, rx) = unbounded();
        let id = self.next_sub.fetch_add(1, Ordering::Relaxed);
        self.by_event
            .write()
            .entry(event.to_lowercase())
            .or_default()
            .push(Sub { id, tx });
        rx
    }

    /// Register for every event (console use).
    pub fn subscribe_all(&self) -> Receiver<EventNotification> {
        let (tx, rx) = unbounded();
        let id = self.next_sub.fetch_add(1, Ordering::Relaxed);
        self.all.write().push(Sub { id, tx });
        rx
    }

    /// Attach a synchronous sink observing every published notification.
    pub fn register_sink(&self, sink: Arc<dyn NotificationSink>) {
        self.sinks.write().push(sink);
    }

    /// Count one drop against subscriber `id`: the aggregate series plus
    /// the `subscriber`-labeled child of the same family.
    fn count_drop(&self, id: u64) {
        self.dropped.bump();
        if let Some(r) = &self.registry {
            let id_s = id.to_string();
            r.counter(
                "tman_notifications_dropped_total",
                &[("subscriber", id_s.as_str())],
            )
            .bump();
        }
    }

    /// Deliver a notification to all matching subscribers, returning the
    /// number actually delivered (the fanout). Sinks run first (see
    /// [`NotificationSink`]). A subscriber whose mailbox has grown past
    /// [`SLOW_CHANNEL_DEPTH`] is treated as full: the notification is
    /// dropped for that subscriber and counted under its id. Disconnected
    /// receivers are counted the same way and pruned eagerly — out of
    /// every routing table before this call returns.
    ///
    /// Hot path note: rule actions publish from every driver thread
    /// concurrently, so delivery runs under *read* locks; the write lock is
    /// only taken to prune when a send actually failed.
    pub fn publish(&self, n: EventNotification) -> usize {
        {
            let sinks = self.sinks.read();
            for s in sinks.iter() {
                s.on_publish(&n);
            }
        }
        let key = n.event.to_lowercase();
        let mut fanout = 0usize;
        let mut dead: Vec<u64> = Vec::new();
        {
            let by_event = self.by_event.read();
            if let Some(subs) = by_event.get(&key) {
                for sub in subs {
                    self.send_one(sub, &n, &mut fanout, &mut dead);
                }
            }
        }
        {
            let all = self.all.read();
            for sub in all.iter() {
                self.send_one(sub, &n, &mut fanout, &mut dead);
            }
        }
        if !dead.is_empty() {
            let mut by_event = self.by_event.write();
            for subs in by_event.values_mut() {
                subs.retain(|s| !dead.contains(&s.id));
            }
            by_event.retain(|_, subs| !subs.is_empty());
            self.all.write().retain(|s| !dead.contains(&s.id));
        }
        fanout
    }

    fn send_one(&self, sub: &Sub, n: &EventNotification, fanout: &mut usize, dead: &mut Vec<u64>) {
        if sub.tx.len() >= SLOW_CHANNEL_DEPTH {
            // Stalled subscriber: mailbox is "full" under the backlog
            // policy. Drop for this subscriber only; it stays registered.
            self.count_drop(sub.id);
            return;
        }
        match sub.tx.send(n.clone()) {
            Ok(()) => {
                self.delivered.bump();
                *fanout += 1;
            }
            Err(_) => {
                self.count_drop(sub.id);
                dead.push(sub.id);
            }
        }
    }

    /// Notifications successfully delivered (0 until a registry is
    /// attached).
    pub fn delivered(&self) -> u64 {
        self.delivered.get()
    }

    /// Notifications dropped on dead or stalled subscribers (0 until a
    /// registry is attached).
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn note(event: &str) -> EventNotification {
        EventNotification {
            event: event.into(),
            trigger: "t".into(),
            values: vec![Value::Int(1)],
            message: None,
            token_seq: None,
            trace: TraceHandle::none(),
            ingest_unix_ns: 0,
        }
    }

    #[test]
    fn routed_by_event_name_case_insensitively() {
        let bus = EventBus::new();
        let rx_a = bus.subscribe("NewHouse");
        let rx_b = bus.subscribe("other");
        bus.publish(note("newhouse"));
        assert_eq!(rx_a.try_recv().unwrap().event, "newhouse");
        assert!(rx_b.try_recv().is_err());
    }

    #[test]
    fn subscribe_all_sees_everything() {
        let registry = Arc::new(Registry::new());
        let mut bus = EventBus::new();
        bus.attach_telemetry(&registry);
        let rx = bus.subscribe_all();
        bus.publish(note("a"));
        bus.publish(note("b"));
        assert_eq!(
            rx.iter().take(2).map(|n| n.event).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        // The handles resolve into the registry, so both the bus getter and
        // the exposition see the deliveries.
        assert_eq!(bus.delivered(), 2);
        assert_eq!(
            registry
                .counter("tman_notifications_delivered_total", &[])
                .get(),
            2
        );
    }

    #[test]
    fn dead_subscribers_are_pruned() {
        let bus = EventBus::new();
        drop(bus.subscribe("x"));
        let live = bus.subscribe("x");
        bus.publish(note("x"));
        assert_eq!(live.try_recv().unwrap().event, "x");
        bus.publish(note("x"));
        assert_eq!(bus.by_event.read().get("x").unwrap().len(), 1);
    }

    #[test]
    fn dead_subscribers_are_pruned_in_the_same_publish() {
        let registry = Arc::new(Registry::new());
        let mut bus = EventBus::new();
        bus.attach_telemetry(&registry);
        drop(bus.subscribe("x"));
        drop(bus.subscribe_all());
        let _live = bus.subscribe("x");
        bus.publish(note("x"));
        // The first (and only) publish already swept both routing tables.
        assert_eq!(bus.by_event.read().get("x").unwrap().len(), 1);
        assert!(bus.all.read().is_empty());
        assert_eq!(bus.dropped(), 2);
    }

    #[test]
    fn drops_are_attributed_per_subscriber() {
        let registry = Arc::new(Registry::new());
        let mut bus = EventBus::new();
        bus.attach_telemetry(&registry);
        let dead_rx = bus.subscribe("x");
        let id = bus.by_event.read().get("x").unwrap()[0].id;
        drop(dead_rx);
        let _live = bus.subscribe("x");
        bus.publish(note("x"));
        let id_s = id.to_string();
        assert_eq!(
            registry
                .counter(
                    "tman_notifications_dropped_total",
                    &[("subscriber", id_s.as_str())]
                )
                .get(),
            1
        );
        // The aggregate series counts it too.
        assert_eq!(bus.dropped(), 1);
    }

    #[test]
    fn stalled_subscribers_drop_instead_of_growing_without_bound() {
        let registry = Arc::new(Registry::new());
        let mut bus = EventBus::new();
        bus.attach_telemetry(&registry);
        let rx = bus.subscribe("x");
        for _ in 0..SLOW_CHANNEL_DEPTH + 5 {
            bus.publish(note("x"));
        }
        // The mailbox stopped at the cap; the overflow was counted, and
        // the subscriber stayed registered (it is slow, not dead).
        assert_eq!(rx.len(), SLOW_CHANNEL_DEPTH);
        assert_eq!(bus.dropped(), 5);
        assert_eq!(bus.by_event.read().get("x").unwrap().len(), 1);
        // Draining restores delivery.
        for _ in rx.try_iter() {}
        bus.publish(note("x"));
        assert_eq!(rx.len(), 1);
    }

    #[test]
    fn sinks_observe_before_fanout() {
        struct Probe(AtomicU64);
        impl NotificationSink for Probe {
            fn on_publish(&self, n: &EventNotification) {
                assert_eq!(n.event, "x");
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let bus = EventBus::new();
        let probe = Arc::new(Probe(AtomicU64::new(0)));
        bus.register_sink(probe.clone());
        // No channel subscribers at all: sinks still see every publish.
        assert_eq!(bus.publish(note("x")), 0);
        assert_eq!(probe.0.load(Ordering::Relaxed), 1);
    }
}
