use super::*;
use std::time::Duration;
use tman_common::Value;

fn system() -> Arc<TriggerMan> {
    TriggerMan::open_memory(Config::default()).unwrap()
}

fn setup_emp(tman: &Arc<TriggerMan>) {
    tman.run_sql("create table emp (name varchar(32), salary float, dept int)")
        .unwrap();
    tman.execute_command("define data source emp from table emp")
        .unwrap();
}

fn setup_real_estate(tman: &Arc<TriggerMan>) {
    for (ddl, src) in [
        (
            "create table salesperson (spno int, name varchar(20), phone varchar(16))",
            "salesperson",
        ),
        (
            "create table house (hno int, address varchar(40), price float, nno int)",
            "house",
        ),
        ("create table represents (spno int, nno int)", "represents"),
        (
            "create table neighborhood (nno int, name varchar(20), location varchar(20))",
            "neighborhood",
        ),
    ] {
        tman.run_sql(ddl).unwrap();
        tman.execute_command(&format!("define data source {src} from table {src}"))
            .unwrap();
    }
}

#[test]
fn paper_example_update_fred() {
    // §2: "This rule sets the salary of Fred to the salary of Bob."
    let tman = system();
    setup_emp(&tman);
    tman.run_sql("insert into emp values ('Fred', 1000, 1)")
        .unwrap();
    tman.run_sql("insert into emp values ('Bob', 2000, 1)")
        .unwrap();
    tman.run_until_quiescent().unwrap();

    tman.execute_command(
        "create trigger updateFred from emp on update(emp.salary) \
         when emp.name = 'Bob' \
         do execSQL 'update emp set salary=:NEW.emp.salary where emp.name= ''Fred'''",
    )
    .unwrap();

    tman.run_sql("update emp set salary = 95000 where name = 'Bob'")
        .unwrap();
    tman.run_until_quiescent().unwrap();
    assert!(tman.last_error().is_none(), "{:?}", tman.last_error());

    let rows = tman
        .run_sql("select salary from emp where name = 'Fred'")
        .unwrap()
        .rows();
    assert_eq!(rows[0].get(0), &Value::Float(95000.0));
    assert_eq!(tman.stats().actions.get(), 1);

    // A name-only update must NOT fire (update(emp.salary) event).
    tman.run_sql("update emp set name = 'Robert' where name = 'Bob'")
        .unwrap();
    tman.run_until_quiescent().unwrap();
    assert_eq!(tman.stats().actions.get(), 1);
}

#[test]
fn paper_example_iris_house_alert() {
    let tman = system();
    setup_real_estate(&tman);
    tman.run_sql("insert into salesperson values (1, 'Iris', '555-1234')")
        .unwrap();
    tman.run_sql("insert into salesperson values (2, 'Bob', '555-9999')")
        .unwrap();
    tman.run_sql("insert into represents values (1, 10)")
        .unwrap();
    tman.run_sql("insert into represents values (2, 11)")
        .unwrap();
    tman.run_until_quiescent().unwrap();

    let rx = tman.subscribe("NewHouseInIrisNeighborhood");
    tman.execute_command(
        "create trigger IrisHouseAlert on insert to house \
         from salesperson s, house h, represents r \
         when s.name = 'Iris' and s.spno=r.spno and r.nno=h.nno \
         do raise event NewHouseInIrisNeighborhood(h.hno, h.address)",
    )
    .unwrap();

    // House in Iris's neighborhood fires; Bob's does not.
    tman.run_sql("insert into house values (100, '12 Oak St', 250000, 10)")
        .unwrap();
    tman.run_sql("insert into house values (101, '9 Elm St', 150000, 11)")
        .unwrap();
    tman.run_until_quiescent().unwrap();
    assert!(tman.last_error().is_none(), "{:?}", tman.last_error());

    let n = rx.try_recv().unwrap();
    assert_eq!(n.trigger, "IrisHouseAlert");
    assert_eq!(n.values, vec![Value::Int(100), Value::str("12 Oak St")]);
    assert!(rx.try_recv().is_err(), "Bob's house must not fire");

    // Inserting a represents row must not raise (event is insert to house).
    tman.run_sql("insert into represents values (1, 11)")
        .unwrap();
    tman.run_until_quiescent().unwrap();
    assert!(rx.try_recv().is_err());
    // ... but now a house in nno 11 fires (Iris represents it too).
    tman.run_sql("insert into house values (102, '1 Pine St', 99000, 11)")
        .unwrap();
    tman.run_until_quiescent().unwrap();
    assert_eq!(rx.try_recv().unwrap().values[0], Value::Int(102));
}

#[test]
fn notify_action_substitutes_macros() {
    let tman = system();
    setup_emp(&tman);
    let rx = tman.subscribe("notify");
    tman.execute_command(
        "create trigger bigpay from emp when emp.salary > 80000 \
         do notify 'big: :NEW.emp.name earns :NEW.emp.salary'",
    )
    .unwrap();
    tman.run_sql("insert into emp values ('Ann', 90000, 2)")
        .unwrap();
    tman.run_sql("insert into emp values ('Bo', 50000, 2)")
        .unwrap();
    tman.run_until_quiescent().unwrap();
    let n = rx.try_recv().unwrap();
    assert_eq!(n.message.as_deref(), Some("big: Ann earns 90000"));
    assert!(rx.try_recv().is_err());
}

#[test]
fn delete_event_uses_old_image() {
    let tman = system();
    setup_emp(&tman);
    let rx = tman.subscribe("Gone");
    tman.execute_command(
        "create trigger leaver from emp on delete from emp \
         when emp.dept = 7 do raise event Gone(:OLD.emp.name)",
    )
    .unwrap();
    tman.run_sql("insert into emp values ('Kim', 100, 7)")
        .unwrap();
    tman.run_sql("insert into emp values ('Lee', 100, 8)")
        .unwrap();
    tman.run_sql("delete from emp where dept = 7").unwrap();
    tman.run_sql("delete from emp where dept = 8").unwrap();
    tman.run_until_quiescent().unwrap();
    assert!(tman.last_error().is_none(), "{:?}", tman.last_error());
    let n = rx.try_recv().unwrap();
    assert_eq!(n.values, vec![Value::str("Kim")]);
    assert!(rx.try_recv().is_err());
}

#[test]
fn trigger_chaining_via_execsql() {
    // updateFred-style chaining: trigger A's execSQL fires trigger B.
    let tman = system();
    setup_emp(&tman);
    tman.run_sql("create table audit (who varchar(32), sal float)")
        .unwrap();
    tman.execute_command("define data source audit from table audit")
        .unwrap();
    let rx = tman.subscribe("Audited");
    tman.execute_command(
        "create trigger log_raises from emp on update(emp.salary) \
         do execSQL 'insert into audit values (:NEW.emp.name, :NEW.emp.salary)'",
    )
    .unwrap();
    tman.execute_command(
        "create trigger audit_watch from audit on insert to audit \
         do raise event Audited(audit.who)",
    )
    .unwrap();
    tman.run_sql("insert into emp values ('Zoe', 10, 1)")
        .unwrap();
    tman.run_sql("update emp set salary = 20 where name = 'Zoe'")
        .unwrap();
    tman.run_until_quiescent().unwrap();
    assert!(tman.last_error().is_none(), "{:?}", tman.last_error());
    assert_eq!(rx.try_recv().unwrap().values, vec![Value::str("Zoe")]);
    assert_eq!(tman.run_sql("select * from audit").unwrap().rows().len(), 1);
}

#[test]
fn enable_disable_trigger_and_set() {
    let tman = system();
    setup_emp(&tman);
    let rx = tman.subscribe("notify");
    tman.execute_command("create trigger set alerts").unwrap();
    tman.execute_command("create trigger t1 in alerts from emp when emp.dept = 1 do notify 't1'")
        .unwrap();

    tman.run_sql("insert into emp values ('a', 1, 1)").unwrap();
    tman.run_until_quiescent().unwrap();
    assert!(rx.try_recv().is_ok());

    tman.execute_command("disable trigger t1").unwrap();
    tman.run_sql("insert into emp values ('b', 1, 1)").unwrap();
    tman.run_until_quiescent().unwrap();
    assert!(rx.try_recv().is_err(), "disabled trigger must not fire");

    tman.execute_command("enable trigger t1").unwrap();
    tman.execute_command("disable trigger set alerts").unwrap();
    tman.run_sql("insert into emp values ('c', 1, 1)").unwrap();
    tman.run_until_quiescent().unwrap();
    assert!(rx.try_recv().is_err(), "disabled set must not fire");

    tman.execute_command("enable trigger set alerts").unwrap();
    tman.run_sql("insert into emp values ('d', 1, 1)").unwrap();
    tman.run_until_quiescent().unwrap();
    assert!(rx.try_recv().is_ok());
}

#[test]
fn drop_trigger_stops_matching_and_cleans_index() {
    let tman = system();
    setup_emp(&tman);
    tman.execute_command("create trigger t from emp when emp.dept = 1 do notify 'x'")
        .unwrap();
    assert_eq!(tman.predicate_index().num_entries(), 1);
    tman.execute_command("drop trigger t").unwrap();
    assert_eq!(tman.predicate_index().num_entries(), 0);
    assert!(tman.execute_command("drop trigger t").is_err());
    // Recreating under the same name works.
    tman.execute_command("create trigger t from emp when emp.dept = 2 do notify 'y'")
        .unwrap();
}

#[test]
fn signatures_shared_and_catalogued() {
    let tman = system();
    setup_emp(&tman);
    for i in 0..50 {
        tman.execute_command(&format!(
            "create trigger w{i} from emp when emp.salary > {} do notify 'hi'",
            1000 * i
        ))
        .unwrap();
    }
    assert_eq!(tman.predicate_index().num_signatures(), 1);
    assert_eq!(tman.predicate_index().num_entries(), 50);
    tman.refresh_signature_catalog().unwrap();
    let sigs = tman.catalog.signatures().unwrap();
    assert_eq!(sigs.len(), 1);
    assert_eq!(sigs[0].4, 50); // constantSetSize
    assert!(sigs[0].2.contains("CONSTANT1")); // signatureDesc
}

#[test]
fn duplicate_names_and_bad_commands_error() {
    let tman = system();
    setup_emp(&tman);
    tman.execute_command("create trigger t from emp do notify 'x'")
        .unwrap();
    assert!(tman
        .execute_command("create trigger t from emp do notify 'x'")
        .is_err());
    assert!(tman
        .execute_command("create trigger u from nosource do notify 'x'")
        .is_err());
    assert!(tman
        .execute_command("create trigger v from emp when emp.bogus = 1 do notify 'x'")
        .is_err());
    assert!(tman
        .execute_command("create trigger w from emp group by emp.dept do notify 'x'")
        .is_err());
    // A failed create leaves no residue.
    assert!(tman
        .execute_command("create trigger u from emp do notify 'ok'")
        .is_ok());
}

#[test]
fn remote_data_source_via_push_token() {
    let tman = system();
    tman.execute_command("define data source quotes (symbol varchar(8), price float)")
        .unwrap();
    let rx = tman.subscribe("Cheap");
    tman.execute_command(
        "create trigger cheap from quotes when quotes.price < 10 \
         do raise event Cheap(quotes.symbol, quotes.price)",
    )
    .unwrap();
    let src = tman.source("quotes").unwrap().id;
    tman.push_token(UpdateDescriptor::insert(
        src,
        tman.tuple_for("quotes", vec![Value::str("ACME"), Value::Float(5.0)])
            .unwrap(),
    ))
    .unwrap();
    tman.push_token(UpdateDescriptor::insert(
        src,
        tman.tuple_for("quotes", vec![Value::str("BIG"), Value::Float(500.0)])
            .unwrap(),
    ))
    .unwrap();
    tman.run_until_quiescent().unwrap();
    let n = rx.try_recv().unwrap();
    assert_eq!(n.values[0], Value::str("ACME"));
    assert!(rx.try_recv().is_err());
    // Arity validation.
    assert!(tman
        .push_token(UpdateDescriptor::insert(
            src,
            Tuple::new(vec![Value::Int(1)])
        ))
        .is_err());
}

#[test]
fn persistent_recovery_restores_triggers_and_queue() {
    let path = std::env::temp_dir().join(format!("tman_engine_{}.db", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let cfg = Config {
        queue_mode: QueueMode::Persistent,
        ..Default::default()
    };
    {
        let tman = TriggerMan::open_file(&path, cfg.clone()).unwrap();
        setup_emp(&tman);
        tman.execute_command(
            "create trigger persisted from emp when emp.dept = 3 do notify 'dept3: :NEW.emp.name'",
        )
        .unwrap();
        // Enqueue but do NOT process: must survive the restart.
        tman.run_sql("insert into emp values ('Pat', 1, 3)")
            .unwrap();
        tman.checkpoint().unwrap();
    }
    {
        let tman = TriggerMan::open_file(&path, cfg).unwrap();
        assert_eq!(tman.trigger_names(), vec!["persisted".to_string()]);
        assert_eq!(tman.predicate_index().num_entries(), 1);
        let rx = tman.subscribe("notify");
        tman.run_until_quiescent().unwrap();
        assert_eq!(
            rx.try_recv().unwrap().message.as_deref(),
            Some("dept3: Pat")
        );
        // And the machinery still works for fresh updates.
        tman.run_sql("insert into emp values ('Quinn', 1, 3)")
            .unwrap();
        tman.run_until_quiescent().unwrap();
        assert!(rx.try_recv().is_ok());
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn drivers_process_in_background() {
    let cfg = Config {
        num_cpus: Some(2),
        driver_period: Duration::from_millis(2),
        threshold: Duration::from_millis(5),
        ..Default::default()
    };
    let tman = TriggerMan::open_memory(cfg).unwrap();
    setup_emp(&tman);
    let rx = tman.subscribe("notify");
    tman.execute_command("create trigger t from emp when emp.dept = 1 do notify 'hit'")
        .unwrap();
    let pool = tman.start_drivers();
    assert_eq!(pool.len(), 2);
    for i in 0..200 {
        tman.run_sql(&format!("insert into emp values ('p{i}', 1, {})", i % 4))
            .unwrap();
    }
    // Wait for the drivers to drain the queue.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while tman.queue_len() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    pool.stop();
    assert!(tman.last_error().is_none(), "{:?}", tman.last_error());
    assert_eq!(rx.try_iter().count(), 50);
}

#[test]
fn join_triggers_work_on_all_network_kinds() {
    for kind in [
        NetworkKind::ATreat,
        NetworkKind::Treat,
        NetworkKind::Rete,
        NetworkKind::Gator,
    ] {
        let cfg = Config {
            network: kind,
            ..Default::default()
        };
        let tman = TriggerMan::open_memory(cfg).unwrap();
        setup_real_estate(&tman);
        tman.run_sql("insert into salesperson values (1, 'Iris', 'x')")
            .unwrap();
        tman.run_sql("insert into represents values (1, 10)")
            .unwrap();
        tman.run_until_quiescent().unwrap();

        let rx = tman.subscribe("Hit");
        tman.execute_command(
            "create trigger j on insert to house from salesperson s, house h, represents r \
             when s.name = 'Iris' and s.spno=r.spno and r.nno=h.nno \
             do raise event Hit(h.hno)",
        )
        .unwrap();

        tman.run_sql("insert into house values (7, 'a', 1, 10)")
            .unwrap();
        tman.run_sql("insert into house values (8, 'b', 1, 99)")
            .unwrap();
        tman.run_until_quiescent().unwrap();
        assert!(
            tman.last_error().is_none(),
            "{kind:?}: {:?}",
            tman.last_error()
        );
        assert_eq!(
            rx.try_recv().unwrap().values,
            vec![Value::Int(7)],
            "{kind:?}"
        );
        assert!(rx.try_recv().is_err(), "{kind:?}");

        // Represents-row churn maintains memories without firing.
        tman.run_sql("delete from represents where nno = 10")
            .unwrap();
        tman.run_sql("insert into house values (9, 'c', 1, 10)")
            .unwrap();
        tman.run_until_quiescent().unwrap();
        assert!(rx.try_recv().is_err(), "{kind:?}: no rep row anymore");
    }
}

#[test]
fn update_tokens_maintain_stored_memories() {
    // TREAT: an update that moves a row out of the selection must retract
    // it from the alpha memory (via the synthetic-delete maintenance path).
    let cfg = Config {
        network: NetworkKind::Treat,
        ..Default::default()
    };
    let tman = TriggerMan::open_memory(cfg).unwrap();
    setup_real_estate(&tman);
    tman.run_sql("insert into salesperson values (1, 'Iris', 'x')")
        .unwrap();
    tman.run_sql("insert into represents values (1, 10)")
        .unwrap();
    tman.run_until_quiescent().unwrap();
    let rx = tman.subscribe("Hit");
    tman.execute_command(
        "create trigger j on insert to house from salesperson s, house h, represents r \
         when s.name = 'Iris' and s.spno=r.spno and r.nno=h.nno \
         do raise event Hit(h.hno)",
    )
    .unwrap();
    // Rename Iris: the selection s.name='Iris' no longer holds.
    tman.run_sql("update salesperson set name = 'Irene' where spno = 1")
        .unwrap();
    tman.run_sql("insert into house values (1, 'a', 1, 10)")
        .unwrap();
    tman.run_until_quiescent().unwrap();
    assert!(rx.try_recv().is_err(), "stale alpha memory fired");
    // Rename back: updates must re-admit her.
    tman.run_sql("update salesperson set name = 'Iris' where spno = 1")
        .unwrap();
    tman.run_sql("insert into house values (2, 'b', 1, 10)")
        .unwrap();
    tman.run_until_quiescent().unwrap();
    assert!(tman.last_error().is_none(), "{:?}", tman.last_error());
    assert_eq!(rx.try_recv().unwrap().values, vec![Value::Int(2)]);
}

#[test]
fn condition_level_concurrency_partitions() {
    let cfg = Config {
        condition_partitions: 4,
        partition_min: 10,
        ..Default::default()
    };
    let tman = TriggerMan::open_memory(cfg).unwrap();
    setup_emp(&tman);
    let rx = tman.subscribe("notify");
    // Many triggers with the same condition, different actions (the §6
    // partitioning example).
    for i in 0..40 {
        tman.execute_command(&format!(
            "create trigger p{i} from emp when emp.dept = 5 do notify 'p{i}'"
        ))
        .unwrap();
    }
    tman.run_sql("insert into emp values ('x', 1, 5)").unwrap();
    tman.run_until_quiescent().unwrap();
    assert!(tman.last_error().is_none(), "{:?}", tman.last_error());
    assert_eq!(rx.try_iter().count(), 40, "all partitions processed");
}

#[test]
fn async_actions_run_as_tasks() {
    let cfg = Config {
        async_actions: true,
        ..Default::default()
    };
    let tman = TriggerMan::open_memory(cfg).unwrap();
    setup_emp(&tman);
    let rx = tman.subscribe("notify");
    tman.execute_command("create trigger t from emp when emp.dept = 1 do notify 'x'")
        .unwrap();
    for _ in 0..10 {
        tman.run_sql("insert into emp values ('a', 1, 1)").unwrap();
    }
    tman.run_until_quiescent().unwrap();
    assert_eq!(rx.try_iter().count(), 10);
    assert_eq!(tman.stats().actions.get(), 10);
}

#[test]
fn trigger_cache_eviction_and_reload() {
    let cfg = Config {
        trigger_cache_capacity: 4,
        ..Default::default()
    };
    let tman = TriggerMan::open_memory(cfg).unwrap();
    setup_emp(&tman);
    let rx = tman.subscribe("notify");
    for i in 0..20 {
        tman.execute_command(&format!(
            "create trigger c{i} from emp when emp.dept = {i} do notify 'c{i}'"
        ))
        .unwrap();
    }
    assert!(tman.trigger_cache().len() <= 4);
    assert!(tman.trigger_cache().stats().evictions.get() >= 16);
    // Firing an evicted trigger reloads (recompiles) it from the catalog.
    tman.run_sql("insert into emp values ('a', 1, 2)").unwrap();
    tman.run_until_quiescent().unwrap();
    assert!(tman.last_error().is_none(), "{:?}", tman.last_error());
    assert_eq!(rx.try_recv().unwrap().message.as_deref(), Some("c2"));
    assert!(tman.trigger_cache().stats().misses.get() > 0);
}

#[test]
fn implicit_insert_or_update_event() {
    let tman = system();
    setup_emp(&tman);
    let rx = tman.subscribe("notify");
    // No on clause: fires on insert and update, not delete.
    tman.execute_command("create trigger any from emp when emp.dept = 1 do notify 'hit'")
        .unwrap();
    tman.run_sql("insert into emp values ('a', 1, 1)").unwrap();
    tman.run_sql("update emp set salary = 2 where name = 'a'")
        .unwrap();
    tman.run_sql("delete from emp where name = 'a'").unwrap();
    tman.run_until_quiescent().unwrap();
    assert_eq!(rx.try_iter().count(), 2);
}

#[test]
fn tman_test_reports_threshold_expiry() {
    // drain_batch 1: each drain pass pulls exactly one token, so the zero
    // threshold expires after precisely one unit of work.
    let tman = TriggerMan::open_memory(Config {
        drain_batch: 1,
        ..Default::default()
    })
    .unwrap();
    setup_emp(&tman);
    tman.execute_command("create trigger t from emp when emp.dept >= 0 do notify 'x'")
        .unwrap();
    for i in 0..500 {
        tman.run_sql(&format!("insert into emp values ('p{i}', 1, 1)"))
            .unwrap();
    }
    // A zero threshold processes exactly one task then reports more work.
    assert_eq!(
        tman.tman_test(Duration::ZERO),
        TmanTestResult::TasksRemaining
    );
    assert_eq!(tman.stats().tokens.get(), 1);
    tman.run_until_quiescent().unwrap();
    assert_eq!(
        tman.tman_test(Duration::from_millis(1)),
        TmanTestResult::QueueEmpty
    );
    assert_eq!(tman.stats().tokens.get(), 500);
}

#[test]
fn connections_catalog_and_defaults() {
    let tman = system();
    // The local connection pre-exists and is the default.
    assert_eq!(tman.default_connection(), "local");
    assert_eq!(tman.connections().len(), 1);

    tman.execute_command(
        "define connection wallst type 'informix' host 'nyse.example.com' \
         server 'quotes1' user 'feed'",
    )
    .unwrap();
    assert_eq!(tman.connections().len(), 2);
    assert_eq!(tman.default_connection(), "local");
    assert!(
        tman.execute_command("define connection wallst type 'oracle'")
            .is_err(),
        "duplicate connection"
    );

    // A stream source on the remote connection works via push_token...
    tman.execute_command("define data source ticks (sym varchar(8), px float) via wallst")
        .unwrap();
    assert_eq!(tman.source("ticks").unwrap().connection, "wallst");
    // ...but captured local tables are local-connection only.
    tman.run_sql("create table t (x int)").unwrap();
    assert!(tman
        .execute_command("define data source t from table t via wallst")
        .is_err());
    assert!(tman
        .execute_command("define data source t from table t")
        .is_ok());

    // Changing the default connection affects subsequent sources.
    tman.execute_command("define connection lse type 'db2' default")
        .unwrap();
    assert_eq!(tman.default_connection(), "lse");
    tman.execute_command("define data source lseticks (sym varchar(8), px float)")
        .unwrap();
    assert_eq!(tman.source("lseticks").unwrap().connection, "lse");
}

#[test]
fn connections_survive_restart() {
    let path = std::env::temp_dir().join(format!("tman_conn_{}.db", std::process::id()));
    let _ = std::fs::remove_file(&path);
    {
        let tman = TriggerMan::open_file(&path, Config::default()).unwrap();
        tman.execute_command("define connection feed type 'sybase' host 'h1' default")
            .unwrap();
        tman.execute_command("define data source s (x int) via feed")
            .unwrap();
        tman.checkpoint().unwrap();
    }
    {
        let tman = TriggerMan::open_file(&path, Config::default()).unwrap();
        assert_eq!(tman.default_connection(), "feed");
        assert_eq!(tman.connections().len(), 2);
        assert_eq!(tman.source("s").unwrap().connection, "feed");
    }
    let _ = std::fs::remove_file(&path);
}

// ----- observability (tman-telemetry wiring) ---------------------------------

/// Drive a small but representative workload: two triggers (notify +
/// raise event), 40 matching / 20 non-matching tokens.
fn run_observed_workload(tman: &Arc<TriggerMan>) {
    setup_emp(tman);
    let _keep = tman.subscribe("Big");
    tman.execute_command(
        "create trigger obs1 from emp when emp.dept = 1 do notify 'd1: :NEW.emp.name'",
    )
    .unwrap();
    tman.execute_command(
        "create trigger obs2 from emp when emp.salary > 100 do raise event Big(emp.name)",
    )
    .unwrap();
    for i in 0..60 {
        tman.run_sql(&format!(
            "insert into emp values ('p{i}', {}, {})",
            i * 10,
            i % 3
        ))
        .unwrap();
    }
    tman.run_until_quiescent().unwrap();
    assert!(tman.last_error().is_none(), "{:?}", tman.last_error());
}

#[test]
fn metrics_snapshot_invariants_after_quiescence() {
    let tman = system();
    run_observed_workload(&tman);
    let m = tman.metrics_snapshot();

    // Every enqueued token was dequeued and processed; the depth gauge is
    // back to zero.
    assert_eq!(m.queue.enqueued, 60);
    assert_eq!(m.queue.dequeued, m.queue.enqueued);
    assert_eq!(m.queue.depth, 0);
    assert_eq!(m.engine.tokens, m.queue.enqueued);
    assert_eq!(m.queue.wait_ns.count, 60);

    // Cache accounting: every pin was either a hit or a miss.
    assert_eq!(m.cache.pins, m.cache.hits + m.cache.misses);
    assert!(m.cache.pins > 0);

    // Driver task accounting: inline actions mean every task was a token.
    assert_eq!(m.driver.tasks_token, 60);
    assert!(m.driver.tman_test_calls > 0);
    assert_eq!(m.driver.tman_test_ns.count, m.driver.tman_test_calls);

    // Index: 60 tokens reached the root; probes found the matches that
    // became engine firings.
    assert_eq!(m.index.tokens, 60);
    assert!(m.index.matches >= m.engine.firings);
    let org_probes: u64 = m.index.per_org.iter().map(|o| o.probes).sum();
    let org_matches: u64 = m.index.per_org.iter().map(|o| o.matches).sum();
    assert_eq!(org_probes, m.index.probes);
    assert_eq!(org_matches, m.index.matches);

    // Actions: obs1 (notify) fires for dept=1 (20 tokens), obs2
    // (raise event) for salary>100 (49 tokens: i in 11..60).
    assert_eq!(m.actions.notify, 20);
    assert_eq!(m.actions.raise_event, 49);
    assert_eq!(m.engine.actions, 69);
    assert_eq!(m.actions.latency_ns.count, 69);
    assert_eq!(m.actions.notify_fanout.count, 69);
    // One live "Big" subscriber; notify has none.
    assert_eq!(m.actions.delivered, 49);

    // Storage served catalog reads.
    assert!(m.storage.pool_hits > 0);
    assert!((m.storage.pool_hit_rate - 1.0).abs() < 1e-9 || m.storage.pool_misses > 0);

    // Fault-path counters exist and stay zero without an armed fault plan.
    assert_eq!(m.storage.faults_injected, 0);
    assert_eq!(m.storage.io_retries, 0);
    assert_eq!(m.storage.checksum_failures, 0);
    assert_eq!(m.storage.quarantined_pages, 0);
    assert_eq!(m.queue.corrupt_rows, 0);
    assert_eq!(m.queue.dedup_dropped, 0);
    // Volatile queue mode: no delivery watermark.
    assert_eq!(m.queue.watermark, None);

    // Signature rows exist for both triggers' signatures.
    assert!(!m.signatures.is_empty());
}

#[test]
fn render_text_exposes_all_subsystems() {
    let tman = system();
    run_observed_workload(&tman);
    let text = tman.render_text();
    for series in [
        "# TYPE tman_queue_depth gauge",
        "# TYPE tman_queue_wait_ns summary",
        "tman_queue_enqueued_total 60",
        "tman_tokens_processed_total 60",
        "tman_tasks_executed_total{type=\"token\"} 60",
        "tman_test_calls_total",
        "tman_index_probes_total{org=",
        "tman_index_tokens_total 60",
        "tman_cache_pins_total",
        "tman_pool_hits_total",
        "tman_actions_total{kind=\"notify\"} 20",
        "tman_action_ns_count 69",
        "tman_notifications_delivered_total 49",
        "tman_faults_injected_total 0",
        "tman_io_retries_total 0",
        "tman_checksum_failures_total 0",
        "tman_quarantined_pages_total 0",
        "tman_queue_corrupt_rows_total 0",
        "tman_queue_dedup_dropped_total 0",
        // Wire-tier series are pre-registered so scrapers see the family
        // (at zero) before the first remote connection.
        "tman_wire_tokens_total 0",
        "tman_wire_frames_total{dir=\"in\"} 0",
        "# TYPE tman_wire_ingest_to_fire_ns summary",
        "tman_wire_fire_to_ack_ns_count 0",
        "tman_wire_credit_stall_ns_count 0",
    ] {
        assert!(text.contains(series), "missing '{series}' in:\n{text}");
    }
    // JSON rendering parses the same families.
    let json = tman.render_metrics_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"tman_tokens_processed_total\":60"));
}

#[test]
fn show_stats_command_formats_report() {
    let tman = system();
    run_observed_workload(&tman);
    let CommandOutput::Stats(all) = tman.execute_command("show stats").unwrap() else {
        panic!("expected stats output");
    };
    for section in [
        "engine:", "queue:", "driver:", "index:", "cache:", "storage:", "actions:", "wire:",
    ] {
        assert!(
            all.contains(section),
            "missing section {section} in:\n{all}"
        );
    }
    assert!(all.contains("tokens processed   60"));
    // The crash-tolerance counters show up in their sections.
    assert!(all.contains("faults             injected=0"));
    assert!(all.contains("corrupt rows       0"));

    let CommandOutput::Stats(cache_only) = tman.execute_command("show stats cache").unwrap() else {
        panic!("expected stats output");
    };
    assert!(cache_only.contains("cache:") && !cache_only.contains("queue:"));
    // The wire subsystem is selectable on its own, with the SLI rows.
    let CommandOutput::Stats(wire_only) = tman.execute_command("show stats wire").unwrap() else {
        panic!("expected stats output");
    };
    assert!(wire_only.contains("wire:") && !wire_only.contains("queue:"));
    assert!(
        wire_only.contains("ingest->fire") && wire_only.contains("fire->ack"),
        "missing SLI rows in:\n{wire_only}"
    );
    // predindex is accepted as an alias for index.
    assert!(tman.execute_command("show stats predindex").is_ok());
    assert!(tman.execute_command("show stats bogus").is_err());
}

/// `Config { http_addr }` serves the exposition endpoints over plain
/// HTTP/1.0 for the engine's lifetime: `/metrics` is the Prometheus text,
/// `/metrics.json` and `/tracez` are JSON, `/healthz` reports liveness,
/// anything else is 404 — and shutdown stops the listener.
#[test]
fn http_endpoint_serves_metrics_health_and_traces() {
    use std::io::{Read, Write};

    let tman = TriggerMan::open_memory(Config {
        tracing: TracingMode::Full,
        http_addr: Some("127.0.0.1:0".into()),
        ..Default::default()
    })
    .unwrap();
    run_observed_workload(&tman);

    let addr = tman.http_local_addr().expect("endpoint started at open");
    let get = |path: &str| -> (String, String) {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        write!(s, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).unwrap();
        let status = raw.lines().next().unwrap_or_default().to_string();
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    };

    let (status, body) = get("/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("tman_tokens_processed_total 60"), "{body}");
    let (status, body) = get("/metrics.json");
    assert!(status.contains("200"), "{status}");
    assert!(body.starts_with('{') && body.contains("\"tman_tokens_processed_total\":60"));
    let (status, body) = get("/healthz");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("ok"), "{body}");
    let (status, body) = get("/tracez");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("traceEvents"), "{body}");
    let (status, _) = get("/nope");
    assert!(status.contains("404"), "{status}");

    tman.shutdown();
    assert!(
        tman.http_local_addr().is_none(),
        "listener survived shutdown"
    );
    assert!(
        std::net::TcpStream::connect(addr).is_err()
            || std::net::TcpStream::connect(addr)
                .and_then(|mut s| {
                    s.set_read_timeout(Some(Duration::from_secs(5)))?;
                    write!(s, "GET /healthz HTTP/1.0\r\n\r\n")?;
                    let mut raw = String::new();
                    s.read_to_string(&mut raw).map(|_| s)
                })
                .is_err(),
        "endpoint still answering after shutdown"
    );
}

#[test]
fn telemetry_disabled_is_inert_but_engine_works() {
    let cfg = Config {
        telemetry: false,
        ..Default::default()
    };
    let tman = TriggerMan::open_memory(cfg).unwrap();
    run_observed_workload(&tman);
    assert!(!tman.metrics_registry().is_enabled());
    let m = tman.metrics_snapshot();
    // Handle-backed instruments record nothing...
    assert_eq!(m.queue.enqueued, 0);
    assert_eq!(m.queue.depth, 0);
    assert_eq!(m.driver.tasks_token, 0);
    assert_eq!(m.actions.latency_ns.count, 0);
    // ...while shared engine counters (plain Arc<Counter>s) still count.
    assert_eq!(m.engine.tokens, 60);
    assert_eq!(m.engine.actions, 69);
    // Exposition still works; it just has nothing registered.
    assert_eq!(tman.render_text(), "");
    let CommandOutput::Stats(s) = tman.execute_command("show stats engine").unwrap() else {
        panic!("expected stats output");
    };
    assert!(s.contains("tokens processed   60"));
}

/// The tentpole acceptance check: a multi-conjunct trigger population run
/// with condition partitioning *and* async actions yields one trace tree
/// per token covering the queue wait, every partition probe, the cache
/// pin, and the action — with parent links that survive the §6 task
/// hand-offs — and the tree is reachable from the console and exports as
/// valid Chrome trace JSON.
#[test]
fn trace_tree_covers_partitioned_async_fanout() {
    use tman_telemetry::trace::NO_PARENT;
    let cfg = Config {
        tracing: TracingMode::Full,
        condition_partitions: 2,
        partition_min: 1,
        async_actions: true,
        ..Default::default()
    };
    let tman = TriggerMan::open_memory(cfg).unwrap();
    tman.execute_command("define data source q (sym varchar(12), price float, vol int)")
        .unwrap();
    let src = tman.source("q").unwrap().id;
    for i in 0..8 {
        tman.execute_command(&format!(
            "create trigger p{i} from q when q.sym = 'S{i}' and q.price > 10 \
             do raise event Hit(q.sym)"
        ))
        .unwrap();
    }
    let rx = tman.subscribe("Hit");
    tman.push_token(UpdateDescriptor::insert(
        src,
        Tuple::new(vec![Value::str("S3"), Value::Float(50.0), Value::Int(1)]),
    ))
    .unwrap();
    tman.run_until_quiescent().unwrap();
    assert_eq!(rx.try_iter().count(), 1);

    let snap = tman.trace_snapshot();
    assert_eq!(snap.stats.started, 1);
    assert_eq!(snap.stats.retained, 1);
    assert_eq!(snap.traces.len(), 1);
    let tree = &snap.traces[0];
    let root = tree.root().expect("root token span survived");
    assert_eq!(root.parent_id, NO_PARENT);

    let count = |k: SpanKind| tree.events.iter().filter(|e| e.kind == k).count();
    assert_eq!(count(SpanKind::QueueWait), 1, "{}", tree.render());
    assert_eq!(count(SpanKind::Process), 1);
    assert_eq!(count(SpanKind::Fanout), 1);
    assert_eq!(count(SpanKind::SigProbe), 2, "one probe per partition");
    assert!(count(SpanKind::RestTest) >= 1, "residual tests aggregated");
    assert!(count(SpanKind::CachePin) >= 1);
    assert_eq!(count(SpanKind::Action), 1);
    assert_eq!(count(SpanKind::Notify), 1);

    // Partition probes carry (part, nparts) and parent to the fan-out span
    // even though the SigPartition tasks went back through the task queue.
    let fanout = tree
        .events
        .iter()
        .find(|e| e.kind == SpanKind::Fanout)
        .unwrap();
    let probes: Vec<_> = tree
        .events
        .iter()
        .filter(|e| e.kind == SpanKind::SigProbe)
        .collect();
    let mut parts: Vec<u64> = probes.iter().map(|p| p.arg_b >> 32).collect();
    parts.sort_unstable();
    assert_eq!(parts, vec![0, 1]);
    for p in &probes {
        assert_eq!(p.parent_id, fanout.span_id);
        assert_eq!(p.arg_b & 0xffff_ffff, 2, "nparts");
    }
    // Every span's parent resolves inside the same tree: no dangling links
    // across the enqueue → probe → pin → action chain.
    for ev in &tree.events {
        if ev.span_id != tman_telemetry::trace::ROOT_SPAN {
            assert!(
                tree.span(ev.parent_id).is_some(),
                "dangling parent for {ev:?}"
            );
        }
    }

    // Console surfaces render the same tree.
    let CommandOutput::Trace(text) = tman
        .execute_command(&format!("trace token {}", tree.trace_id))
        .unwrap()
    else {
        panic!("expected trace output");
    };
    assert!(text.contains("sig_probe"), "{text}");
    assert!(text.contains("action"), "{text}");
    let CommandOutput::Trace(last) = tman.execute_command("trace last 5").unwrap() else {
        panic!("expected trace output");
    };
    assert!(last.contains(&format!("trace {}", tree.trace_id)));
    assert!(tman.execute_command("trace token 999999").is_err());

    // The Perfetto export round-trips through the serde-free validator.
    let json = tman.render_chrome_trace();
    let n = tman_telemetry::trace::validate_chrome_trace(&json).unwrap();
    assert_eq!(n, tree.events.len());
}

#[test]
fn tracing_off_is_inert() {
    let tman = system(); // default Config: TracingMode::Off
    tman.execute_command("define data source q (sym varchar(12), price float, vol int)")
        .unwrap();
    let src = tman.source("q").unwrap().id;
    tman.execute_command("create trigger t from q when q.vol > 0 do raise event E(q.vol)")
        .unwrap();
    tman.push_token(UpdateDescriptor::insert(
        src,
        Tuple::new(vec![Value::str("A"), Value::Float(1.0), Value::Int(5)]),
    ))
    .unwrap();
    tman.run_until_quiescent().unwrap();
    assert_eq!(tman.stats().tokens.get(), 1);

    assert!(tman.tracer().is_none());
    let snap = tman.trace_snapshot();
    assert!(snap.traces.is_empty());
    assert_eq!(snap.stats.started, 0);
    let CommandOutput::Trace(s) = tman.execute_command("trace last 3").unwrap() else {
        panic!("expected trace output");
    };
    assert!(s.contains("tracing is off"));
    assert!(tman.execute_command("trace token 1").is_err());
    // The empty export is still a valid (zero-event) Chrome trace.
    let json = tman.render_chrome_trace();
    assert_eq!(
        tman_telemetry::trace::validate_chrome_trace(&json).unwrap(),
        0
    );
    // Metrics report the subsystem as disabled.
    assert!(!tman.metrics_snapshot().trace.enabled);
}

/// The organization governor runs from the drivers' maintenance path: an
/// adaptive config leaves a 40-constant equality class on a list through
/// all the inserts, then the first empty-queue `tman_test` promotes it.
#[test]
fn governor_runs_from_driver_maintenance_path() {
    let cfg = Config {
        index: tman_predindex::IndexConfig {
            list_to_index: 8,
            adaptive: true,
            ..Default::default()
        },
        governor_period: Duration::ZERO,
        ..Default::default()
    };
    let tman = TriggerMan::open_memory(cfg).unwrap();
    setup_emp(&tman);
    for i in 0..40 {
        tman.execute_command(&format!(
            "create trigger gov{i} on insert to emp from emp \
             when emp.dept = {i} do raise event GovHit(emp.name)"
        ))
        .unwrap();
    }
    let rx = tman.subscribe("GovHit");
    // With `adaptive` on, insert-time promotion is off: the class is still
    // a list even though it is far past list_to_index.
    let before = tman.metrics_snapshot();
    assert!(before.signatures.iter().any(|s| s.org == "mem_list"));
    assert_eq!(before.index.governor.passes, 0);

    // Processing a token drains the queue; the empty-queue branch of
    // `tman_test` then runs a governor pass (period is zero).
    tman.run_sql("insert into emp values ('Ann', 10, 7)")
        .unwrap();
    tman.run_until_quiescent().unwrap();
    assert!(tman.last_error().is_none(), "{:?}", tman.last_error());
    assert_eq!(rx.try_iter().count(), 1);

    let m = tman.metrics_snapshot();
    assert!(m.index.governor.passes > 0);
    assert!(m.index.governor.promotions > 0, "{:?}", m.index.governor);
    assert!(m.signatures.iter().any(|s| s.org == "mem_index"));
    assert!(m
        .index
        .governor
        .transitions
        .iter()
        .any(|tr| tr.from == "mem_list" && tr.to == "mem_index" && tr.promotions > 0));

    // Matching still works after the migration.
    tman.run_sql("insert into emp values ('Bea', 20, 3)")
        .unwrap();
    tman.run_until_quiescent().unwrap();
    assert_eq!(rx.try_iter().count(), 1);

    // The console surfaces the governor counters.
    let CommandOutput::Stats(s) = tman.execute_command("show stats index").unwrap() else {
        panic!("expected stats output");
    };
    assert!(s.contains("governor"), "missing governor line in:\n{s}");
    assert!(s.contains("promotions="), "missing counts in:\n{s}");
    assert!(
        s.contains("move mem_list"),
        "missing transition row in:\n{s}"
    );
}

/// `index_memory_budget` alone (adaptive off) enables governor passes,
/// which force-spill the class to an indexed database table; probes keep
/// matching through the database-resident organization.
#[test]
fn memory_budget_spills_class_via_maintenance_path() {
    let cfg = Config {
        index_memory_budget: Some(1),
        governor_period: Duration::ZERO,
        ..Default::default()
    };
    let tman = TriggerMan::open_memory(cfg).unwrap();
    setup_emp(&tman);
    // One 48-entry equality class: comfortably bigger than the governor's
    // minimum spill size, and under the static list_to_index threshold
    // is irrelevant since the budget pass spills any resident org.
    for i in 0..48 {
        tman.execute_command(&format!(
            "create trigger spill{i} on insert to emp from emp \
             when emp.dept = {i} do raise event SpillHit(emp.name)"
        ))
        .unwrap();
    }
    let rx = tman.subscribe("SpillHit");
    tman.run_sql("insert into emp values ('Cal', 30, 5)")
        .unwrap();
    tman.run_until_quiescent().unwrap();
    assert!(tman.last_error().is_none(), "{:?}", tman.last_error());
    assert_eq!(rx.try_iter().count(), 1);

    let m = tman.metrics_snapshot();
    assert!(m.index.governor.passes > 0);
    assert!(m.index.governor.budget_spills > 0, "{:?}", m.index.governor);
    assert!(m.signatures.iter().any(|s| s.org == "db_indexed_table"));

    // Probe-through-database still produces the match.
    tman.run_sql("insert into emp values ('Dee', 40, 11)")
        .unwrap();
    tman.run_until_quiescent().unwrap();
    assert_eq!(rx.try_iter().count(), 1);
}

// ----- condition-partition controller (adaptive Figure-5 fan-out) ------------

/// Regression for the `TmanTestResult` threshold semantics: `SigPartition`
/// tasks enqueued by the last token before THRESHOLD expires are pending
/// work, so the call must report `TasksRemaining` — stranding them until
/// the next driver period serializes exactly the fan-out that was supposed
/// to add parallelism. Conversely, an expiry with nothing left is a clean
/// drain and must *not* count as a threshold expiration (the expiration
/// rate feeds the partition controller's saturation signal).
#[test]
fn sig_partition_fanout_near_threshold_not_stranded() {
    let cfg = Config {
        condition_partitions: 4,
        partition_min: 1,
        ..Default::default()
    };
    let tman = TriggerMan::open_memory(cfg).unwrap();
    setup_emp(&tman);
    let rx = tman.subscribe("notify");
    tman.execute_command("create trigger t from emp when emp.dept >= 0 do notify 'x'")
        .unwrap();
    tman.run_sql("insert into emp values ('a', 1, 1)").unwrap();

    // A zero threshold expires right after the first task: the token's
    // probe fans out into 4 SigPartition tasks that are still queued.
    assert_eq!(
        tman.tman_test(Duration::ZERO),
        TmanTestResult::TasksRemaining
    );
    assert!(!tman.shards.is_empty(), "fan-out tasks must be queued");
    assert_eq!(tman.telemetry.threshold_expirations.get(), 1);
    tman.run_until_quiescent().unwrap();
    assert_eq!(rx.try_iter().count(), 1);

    // Tiny threshold on a drained engine: expiry with nothing pending is
    // QueueEmpty, and the expiration counter must not move.
    assert_eq!(tman.tman_test(Duration::ZERO), TmanTestResult::QueueEmpty);
    assert_eq!(tman.telemetry.threshold_expirations.get(), 1);
}

/// The controller integration loop: a hot signature engages under idle +
/// queue-dominated load, widens one doubling per pass up to the cap, and
/// disengages immediately under saturation — all visible through the probe
/// path, the metrics snapshot, and `show stats drivers`.
#[test]
fn adaptive_controller_engages_and_disengages() {
    let cfg = Config {
        partitioning: Partitioning::Adaptive,
        partition_min: 1,
        partition_policy: PartitionPolicy {
            max_fanout: 4,
            cooldown_passes: 1,
            ..Default::default()
        },
        num_cpus: Some(4),
        ..Default::default()
    };
    let tman = TriggerMan::open_memory(cfg).unwrap();
    setup_emp(&tman);
    let rx = tman.subscribe("notify");
    tman.execute_command("create trigger hot from emp when emp.dept >= 0 do notify 'x'")
        .unwrap();
    // Warm the signature's probe counter so the controller sees it as hot.
    for i in 0..8 {
        tman.run_sql(&format!("insert into emp values ('p{i}', 1, {i})"))
            .unwrap();
    }
    tman.run_until_quiescent().unwrap();
    assert_eq!(rx.try_iter().count(), 8);

    let ctl = tman.partition_ctl.as_ref().expect("adaptive controller");
    let sigs = tman.predicate_index().all_signatures();
    assert_eq!(sigs.len(), 1);
    let idle = |pass: u64| PassInputs {
        now_ns: pass * 1_000_000_000,
        busy_ns: pass * 1_000,
        test_calls: pass * 100,
        expirations: 0,
        queue_wait_ns: pass * 1_000_000, // wait >> busy: queue-dominated
        queue_depth: 8,
        num_drivers: 4,
        ..PassInputs::default()
    };

    // Pass 1: idle and queue-dominated → engage at fan-out 2.
    let r = ctl.pass(&sigs, idle(1));
    assert_eq!(r.target_fanout, 2);
    assert_eq!((r.engagements, r.transitions), (1, 1));
    assert_eq!(sigs[0].partition_activity().fanout(), 2);
    assert_eq!(tman.effective_partitions(&sigs[0]), 2);

    // Pass 2: still idle → widen to the max_fanout cap.
    let r = ctl.pass(&sigs, idle(2));
    assert_eq!(r.target_fanout, 4);
    assert_eq!(sigs[0].partition_activity().fanout(), 4);

    // The probe path fans out with the published decision.
    tman.run_sql("insert into emp values ('q', 1, 1)").unwrap();
    tman.run_until_quiescent().unwrap();
    assert_eq!(rx.try_iter().count(), 1);
    let m = tman.metrics_snapshot();
    assert_eq!(m.driver.tasks_sig_partition, 4);

    // Pass 3: a burst of threshold expirations (saturation) → disengage.
    let r = ctl.pass(
        &sigs,
        PassInputs {
            now_ns: 3_000_000_000,
            busy_ns: 3_000,
            test_calls: 300,
            expirations: 400,
            queue_wait_ns: 3_000_000,
            queue_depth: 8,
            num_drivers: 4,
            ..PassInputs::default()
        },
    );
    assert_eq!(r.target_fanout, 1);
    assert_eq!((r.disengagements, r.transitions), (1, 1));
    assert_eq!(sigs[0].partition_activity().fanout(), 1);

    // Counters reached the registry and the console report.
    let m = tman.metrics_snapshot();
    assert_eq!(m.driver.partition.passes, 3);
    assert_eq!(m.driver.partition.engagements, 1);
    assert_eq!(m.driver.partition.widenings, 2);
    assert_eq!(m.driver.partition.disengagements, 1);
    assert_eq!(m.driver.partition.current_fanout, 1);
    let text = tman.render_text();
    for series in [
        "tman_partition_passes_total 3",
        "tman_partition_engagements_total 1",
        "tman_partition_fanout 1",
    ] {
        assert!(text.contains(series), "missing '{series}' in:\n{text}");
    }
    let CommandOutput::Stats(s) = tman.execute_command("show stats drivers").unwrap() else {
        panic!("expected stats output");
    };
    assert!(s.contains("partition passes"), "missing row in:\n{s}");
    assert!(s.contains("engage=1"), "missing transitions in:\n{s}");
}

/// Satellite stress: partitioned fan-out + async actions while triggers in
/// the same signature class are created/dropped, the organization governor
/// migrates the class, and the published fan-out is toggled mid-stream.
/// Every matching token must fire the sentinel exactly once — no lost and
/// no duplicated firings — and the run must not deadlock.
fn partition_churn_stress(tokens: usize, churn_iters: usize) {
    let cfg = Config {
        // Adaptive with telemetry off: no controller instance runs, so the
        // test owns the published per-signature fan-out completely.
        partitioning: Partitioning::Adaptive,
        telemetry: false,
        partition_min: 1,
        async_actions: true,
        index: tman_predindex::IndexConfig {
            adaptive: true,
            list_to_index: 8,
            ..Default::default()
        },
        driver_period: Duration::from_millis(1),
        threshold: Duration::from_millis(5),
        num_cpus: Some(4),
        ..Default::default()
    };
    let tman = TriggerMan::open_memory(cfg).unwrap();
    setup_emp(&tman);
    let rx = tman.subscribe("Hit");
    tman.execute_command(
        "create trigger sentinel from emp when emp.dept = 777 do raise event Hit(emp.name)",
    )
    .unwrap();
    // Seed the class with siblings so partitioned probes see >1 entry.
    for i in 0..16 {
        tman.execute_command(&format!(
            "create trigger seed{i} from emp when emp.dept = {i} do notify 's'"
        ))
        .unwrap();
    }
    let pool = tman.start_drivers();
    let stop = Arc::new(AtomicBool::new(false));

    // Churn: create/drop triggers in the sentinel's signature class.
    let churn = {
        let tman = tman.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            for i in 0..churn_iters {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let name = format!("churn{}", 1000 + i % 8);
                let _ = tman.execute_command(&format!(
                    "create trigger {name} from emp when emp.dept = {} do notify 'c'",
                    100 + i % 8
                ));
                std::thread::yield_now();
                let _ = tman.execute_command(&format!("drop trigger {name}"));
            }
        })
    };
    // Governor + fan-out toggling: migrate the class's organization and
    // flip the published fan-out through 1/2/4/8 mid-stream.
    let toggle = {
        let tman = tman.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut w = 0usize;
            while !stop.load(Ordering::Relaxed) {
                tman.run_governor();
                for sig in tman.predicate_index().all_signatures() {
                    sig.partition_activity().set_fanout([1, 2, 4, 8][w % 4]);
                }
                w += 1;
                std::thread::yield_now();
            }
        })
    };

    for i in 0..tokens {
        // Every third token matches the sentinel.
        let dept = if i % 3 == 0 { 777 } else { (i % 8) as i64 };
        tman.run_sql(&format!("insert into emp values ('t{i}', 1, {dept})"))
            .unwrap();
    }
    let expected = tokens.div_ceil(3) as u64;

    // Drivers drain asynchronously; wait (bounded) for quiescence.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while (tman.stats().tokens.get() < tokens as u64 || tman.queue_len() > 0)
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(2));
    }
    stop.store(true, Ordering::Relaxed);
    churn.join().unwrap();
    toggle.join().unwrap();
    drop(pool); // joins driver threads; hanging here would be a deadlock
    tman.run_until_quiescent().unwrap(); // flush any still-queued actions

    assert!(tman.last_error().is_none(), "{:?}", tman.last_error());
    assert_eq!(tman.stats().tokens.get(), tokens as u64, "tokens processed");
    let hits = rx.try_iter().count() as u64;
    assert_eq!(hits, expected, "sentinel must fire exactly once per match");
}

#[test]
fn partitioned_fanout_stress_with_churn_and_governor() {
    partition_churn_stress(150, 40);
}

#[test]
#[ignore = "long partition/churn stress; run with --ignored"]
fn partitioned_fanout_stress_long() {
    partition_churn_stress(3000, 600);
}

// ----- sharded engine + batched token drain ----------------------------------

/// A K-token batch pays exactly one ack/watermark durability barrier
/// (`UpdateQueue::ack_batch`), not one per token as the per-token drain
/// did: the whole point of the batched drain on a persistent queue.
#[test]
fn batched_drain_pays_one_ack_barrier_per_batch() {
    let path = std::env::temp_dir().join(format!("tman_batch_ack_{}.db", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let cfg = Config {
        queue_mode: QueueMode::Persistent,
        drain_batch: 64,
        ..Default::default()
    };
    let tman = TriggerMan::open_file(&path, cfg).unwrap();
    setup_emp(&tman);
    let rx = tman.subscribe("notify");
    tman.execute_command("create trigger t from emp when emp.dept >= 0 do notify 'x'")
        .unwrap();
    for i in 0..32 {
        tman.run_sql(&format!("insert into emp values ('p{i}', 1, {i})"))
            .unwrap();
    }
    let flushes_before = tman.queue.wm_flushes().get();
    tman.run_until_quiescent().unwrap();
    assert!(tman.last_error().is_none(), "{:?}", tman.last_error());
    assert_eq!(rx.try_iter().count(), 32);
    // 32 tokens fit one drain batch: exactly one watermark barrier.
    assert_eq!(tman.queue.wm_flushes().get() - flushes_before, 1);
    assert_eq!(tman.queue.watermark(), Some(32));
    drop(tman);
    let _ = std::fs::remove_file(&path);
}

/// With fan-out and async actions, a token's ack is deferred until every
/// task spawned for it has run — and all of them do complete under
/// `run_until_quiescent`, leaving the watermark fully advanced (no row is
/// acked early, none is stranded in-flight).
#[test]
fn deferred_acks_complete_across_fanout_and_async_actions() {
    let path = std::env::temp_dir().join(format!("tman_defer_ack_{}.db", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let cfg = Config {
        queue_mode: QueueMode::Persistent,
        drain_batch: 8,
        shards: Some(4),
        condition_partitions: 4,
        partition_min: 1,
        async_actions: true,
        ..Default::default()
    };
    let tman = TriggerMan::open_file(&path, cfg).unwrap();
    setup_emp(&tman);
    let rx = tman.subscribe("notify");
    tman.execute_command("create trigger t from emp when emp.dept >= 0 do notify 'x'")
        .unwrap();
    for i in 0..20 {
        tman.run_sql(&format!("insert into emp values ('p{i}', 1, {i})"))
            .unwrap();
    }
    tman.run_until_quiescent().unwrap();
    assert!(tman.last_error().is_none(), "{:?}", tman.last_error());
    assert_eq!(rx.try_iter().count(), 20);
    assert_eq!(tman.queue.watermark(), Some(20));
    assert!(tman.queue.is_empty());
    drop(tman);
    let _ = std::fs::remove_file(&path);
}

/// Narrowing/widening the active-shard set mid-stream only redirects task
/// placement — every queued task still drains (steal scan), every firing
/// still happens exactly once.
#[test]
fn set_active_shards_mid_stream_is_lossless() {
    let cfg = Config {
        shards: Some(4),
        drain_batch: 16,
        condition_partitions: 2,
        partition_min: 1,
        ..Default::default()
    };
    let tman = TriggerMan::open_memory(cfg).unwrap();
    assert_eq!(tman.num_shards(), 4);
    setup_emp(&tman);
    let rx = tman.subscribe("notify");
    tman.execute_command("create trigger t from emp when emp.dept = 1 do notify 'hit'")
        .unwrap();
    let mut expected = 0;
    for (round, width) in [(0usize, 4usize), (1, 1), (2, 3), (3, 2)] {
        assert_eq!(tman.set_active_shards(width), width);
        assert_eq!(tman.active_shards(), width);
        for i in 0..10 {
            let dept = i % 2; // half the tokens match
            expected += dept; // dept==1 fires
            tman.run_sql(&format!(
                "insert into emp values ('r{round}i{i}', 1, {dept})"
            ))
            .unwrap();
        }
        tman.run_until_quiescent().unwrap();
    }
    assert!(tman.last_error().is_none(), "{:?}", tman.last_error());
    assert_eq!(rx.try_iter().count(), expected);
    // Clamping: 0 and over-wide requests land in [1, num_shards].
    assert_eq!(tman.set_active_shards(0), 1);
    assert_eq!(tman.set_active_shards(100), 4);
}

/// `show stats drivers` exposes the per-shard rows and the active-shard
/// gauge; the snapshot mirrors them as typed data.
#[test]
fn show_stats_drivers_reports_shard_rows() {
    let cfg = Config {
        shards: Some(2),
        ..Default::default()
    };
    let tman = TriggerMan::open_memory(cfg).unwrap();
    setup_emp(&tman);
    tman.execute_command("create trigger t from emp when emp.dept >= 0 do notify 'x'")
        .unwrap();
    for i in 0..6 {
        tman.run_sql(&format!("insert into emp values ('p{i}', 1, 1)"))
            .unwrap();
    }
    tman.run_until_quiescent().unwrap();
    let m = tman.metrics_snapshot();
    assert_eq!(m.driver.shards.len(), 2);
    assert_eq!(m.driver.active_shards, 2);
    // Single-threaded drain: shard 0 drained every token.
    let tokens: u64 = m.driver.shards.iter().map(|s| s.tokens).sum();
    assert_eq!(tokens, 6);
    assert!(m.driver.shards.iter().all(|s| s.queue_depth == 0));
    let CommandOutput::Stats(report) = tman.execute_command("show stats drivers").unwrap() else {
        panic!("expected stats output")
    };
    assert!(report.contains("shards active      2/2"), "{report}");
    assert!(report.contains("shard 0"), "{report}");
    assert!(report.contains("shard 1"), "{report}");
    // The labeled series are scrapeable through the registry, too.
    let text = tman.render_text();
    assert!(
        text.contains("tman_shard_tokens_total{shard=\"0\"}"),
        "{text}"
    );
    assert!(text.contains("tman_shards_active 2"), "{text}");
}

/// The adaptive controller steers the active-shard count: idle +
/// queue-dominated load widens placement, saturation consolidates it.
#[test]
fn adaptive_pass_steers_active_shards() {
    let cfg = Config {
        partitioning: Partitioning::Adaptive,
        shards: Some(8),
        num_cpus: Some(8),
        ..Default::default()
    };
    let tman = TriggerMan::open_memory(cfg).unwrap();
    tman.set_active_shards(2);
    let report = tman.run_partition_pass().expect("controller configured");
    // Fresh EWMA on an idle engine with an empty queue: the controller
    // holds (no queue dominance), so the active count is unchanged.
    assert_eq!(report.target_shards, tman.active_shards());
}
