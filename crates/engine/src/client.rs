//! The TriggerMan client and data-source APIs (§3).
//!
//! "Two libraries that come with TriggerMan allow writing of client
//! applications and data source programs. ... The console program and
//! other application programs use client API functions to connect to
//! TriggerMan, issue commands, register for events, and so forth. Data
//! source programs can be written using the data source API."
//!
//! In this reproduction both are thin in-process handles over
//! [`TriggerMan`]; the information flow (commands in, notifications out,
//! update descriptors in) matches the paper's Figure 1.

use crate::events::EventNotification;
use crate::{CommandOutput, TriggerMan};
use crossbeam::channel::Receiver;
use std::sync::Arc;
use tman_common::{Result, TmanError, Tuple, UpdateDescriptor, Value};
use tman_sql::ExecResult;

/// A client application connection.
pub struct Client {
    system: Arc<TriggerMan>,
}

impl Client {
    /// Connect to a running TriggerMan instance.
    pub fn connect(system: Arc<TriggerMan>) -> Client {
        Client { system }
    }

    /// Issue one TriggerMan command (`create trigger`, `drop trigger`,
    /// `define data source`, ...).
    pub fn command(&self, text: &str) -> Result<CommandOutput> {
        self.system.execute_command(text)
    }

    /// Run a SQL statement against the engine database (with update
    /// capture on tables backing data sources).
    pub fn sql(&self, text: &str) -> Result<ExecResult> {
        self.system.run_sql(text)
    }

    /// Register for an event raised by trigger actions
    /// (`raise event Name(...)`; use `"notify"` for notify actions).
    pub fn register_for_event(&self, name: &str) -> Receiver<EventNotification> {
        self.system.subscribe(name)
    }

    /// Register for every event (console behaviour).
    pub fn register_for_all_events(&self) -> Receiver<EventNotification> {
        self.system.events().subscribe_all()
    }

    /// Names of all defined triggers.
    pub fn triggers(&self) -> Vec<String> {
        self.system.trigger_names()
    }

    /// Typed snapshot of the per-token trace flight recorder (empty when
    /// tracing is off; same data `trace last <n>` renders).
    pub fn trace_snapshot(&self) -> crate::TraceSnapshot {
        self.system.trace_snapshot()
    }

    /// Open the data-source API for a named source.
    pub fn data_source(&self, name: &str) -> Result<DataSourceClient> {
        let source = self.system.source(name)?;
        Ok(DataSourceClient {
            system: self.system.clone(),
            source,
        })
    }
}

/// A data-source program's handle (§3): transmits update descriptors for
/// one source "through the data source API".
pub struct DataSourceClient {
    system: Arc<TriggerMan>,
    source: Arc<crate::source::SourceInfo>,
}

impl DataSourceClient {
    /// The source's name.
    pub fn name(&self) -> &str {
        &self.source.name
    }

    fn tuple(&self, values: Vec<Value>) -> Result<Tuple> {
        Ok(Tuple::new(self.source.schema.coerce_row(values)?))
    }

    /// Report an inserted row.
    pub fn insert(&self, values: Vec<Value>) -> Result<()> {
        let t = self.tuple(values)?;
        self.system
            .push_token(UpdateDescriptor::insert(self.source.id, t))
    }

    /// Report a deleted row.
    pub fn delete(&self, values: Vec<Value>) -> Result<()> {
        let t = self.tuple(values)?;
        self.system
            .push_token(UpdateDescriptor::delete(self.source.id, t))
    }

    /// Report an updated row (old → new images).
    pub fn update(&self, old: Vec<Value>, new: Vec<Value>) -> Result<()> {
        let old = self.tuple(old)?;
        let new = self.tuple(new)?;
        self.system
            .push_token(UpdateDescriptor::update(self.source.id, old, new))
    }

    /// Report a raw descriptor (advanced: pre-built old/new pair).
    pub fn push(&self, token: UpdateDescriptor) -> Result<()> {
        if token.data_src != self.source.id {
            return Err(TmanError::Invalid(format!(
                "descriptor for source {} pushed through '{}'",
                token.data_src, self.source.name
            )));
        }
        self.system.push_token(token)
    }

    /// Report many inserted rows under one group-commit barrier: on the
    /// persistent queue the whole batch becomes durable with a single
    /// sync (see [`TriggerMan::push_tokens`]).
    pub fn insert_batch(&self, rows: Vec<Vec<Value>>) -> Result<()> {
        let mut batch = Vec::with_capacity(rows.len());
        for values in rows {
            let t = self.tuple(values)?;
            batch.push(UpdateDescriptor::insert(self.source.id, t));
        }
        self.system.push_tokens(batch)
    }

    /// Report a batch of raw descriptors under one group-commit barrier.
    pub fn push_batch(&self, tokens: Vec<UpdateDescriptor>) -> Result<()> {
        for token in &tokens {
            if token.data_src != self.source.id {
                return Err(TmanError::Invalid(format!(
                    "descriptor for source {} pushed through '{}'",
                    token.data_src, self.source.name
                )));
            }
        }
        self.system.push_tokens(tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Config;

    #[test]
    fn client_end_to_end() {
        let tman = TriggerMan::open_memory(Config::default()).unwrap();
        let client = Client::connect(tman.clone());
        client
            .command("define data source prices (sym varchar(8), px float)")
            .unwrap();
        let alerts = client.register_for_event("Spike");
        client
            .command(
                "create trigger spike from prices when prices.px > 100 \
                 do raise event Spike(prices.sym, prices.px)",
            )
            .unwrap();
        assert_eq!(client.triggers(), vec!["spike".to_string()]);

        // A data-source program feeds updates.
        let feed = client.data_source("prices").unwrap();
        feed.insert(vec![Value::str("AA"), Value::Float(50.0)])
            .unwrap();
        feed.insert(vec![Value::str("BB"), Value::Float(150.0)])
            .unwrap();
        feed.update(
            vec![Value::str("AA"), Value::Float(50.0)],
            vec![Value::str("AA"), Value::Float(200.0)],
        )
        .unwrap();
        tman.run_until_quiescent().unwrap();

        let got: Vec<String> = alerts
            .try_iter()
            .map(|n| n.values[0].as_str().unwrap().to_string())
            .collect();
        assert_eq!(got, vec!["BB".to_string(), "AA".to_string()]);
    }

    #[test]
    fn data_source_client_validates() {
        let tman = TriggerMan::open_memory(Config::default()).unwrap();
        let client = Client::connect(tman.clone());
        client.command("define data source s (x int)").unwrap();
        let ds = client.data_source("s").unwrap();
        assert!(ds.insert(vec![Value::str("wrong type")]).is_err());
        assert!(ds.insert(vec![Value::Int(1), Value::Int(2)]).is_err());
        assert!(client.data_source("missing").is_err());
        // Mis-addressed raw descriptor rejected.
        let bad = UpdateDescriptor::insert(
            tman_common::DataSourceId(999),
            Tuple::new(vec![Value::Int(1)]),
        );
        assert!(ds.push(bad).is_err());
    }
}
