use triggerman::{Config, TriggerMan};
fn main() {
    let tman = TriggerMan::open_memory(Config::default()).unwrap();
    tman.run_sql("create table m (k int, v float)").unwrap();
    tman.execute_command("define data source m from table m").unwrap();
    for i in 0..60 {
        tman.execute_command(&format!("create trigger t{i} from m when m.k = {i} do notify 'k{i}'")).unwrap();
    }
    let sig = &tman.predicate_index().source(tman.source("m").unwrap().id).unwrap().signatures()[0];
    println!("org={:?} len={}", sig.org_kind(), sig.len());
    let rx = tman.subscribe("notify");
    tman.run_sql("insert into m values (42, 1.0)").unwrap();
    tman.run_until_quiescent().unwrap();
    println!("msgs={:?} err={:?}", rx.try_iter().count(), tman.last_error());
    println!("matches={} probes={}", tman.predicate_index().stats().matches.get(), tman.predicate_index().stats().probes.get());
}
