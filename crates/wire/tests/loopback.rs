//! End-to-end loopback: remote sources feed a live engine over TCP,
//! triggers fire, a remote subscriber receives the notifications, acks
//! its watermark, and reconnecting never redelivers.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tman_common::Value;
use tman_wire::{RemoteClient, RemoteSubscriber, WireServer};
use triggerman::{Config, QueueMode, TriggerMan};

fn engine(cfg: Config) -> Arc<TriggerMan> {
    let tman = TriggerMan::open_memory(cfg).unwrap();
    tman.execute_command("define data source quotes (symbol varchar(12), price float)")
        .unwrap();
    tman.execute_command(
        "create trigger spike from quotes when quotes.price > 100 \
         do raise event Spike(quotes.symbol, quotes.price)",
    )
    .unwrap();
    tman
}

fn collect(sub: &mut RemoteSubscriber, n: usize) -> Vec<(u64, f64)> {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut got = Vec::new();
    while got.len() < n {
        assert!(
            Instant::now() < deadline,
            "timed out with {}/{n} notifications",
            got.len()
        );
        if let Some((seq, note)) = sub.next(Duration::from_millis(500)).unwrap() {
            assert_eq!(note.event, "Spike");
            let price = match note.values[1] {
                Value::Float(f) => f,
                ref v => panic!("unexpected value {v:?}"),
            };
            got.push((seq, price));
        }
    }
    got
}

#[test]
fn insert_fire_notify_ack_roundtrip() {
    let tman = engine(Config::default());
    let server = WireServer::start(tman.clone(), "127.0.0.1:0").unwrap();
    let drivers = tman.start_drivers();
    let client = RemoteClient::new(server.local_addr().to_string());

    let mut sub = client.subscribe("dash", "Spike", 0).unwrap();
    assert_eq!(sub.watermark(), 0);

    let mut src = client.data_source("quotes").unwrap();
    const FIRES: usize = 40;
    for i in 0..FIRES {
        src.insert(vec![Value::str("ACME"), Value::Float(200.0 + i as f64)])
            .unwrap();
        // Interleave tokens that match nothing.
        src.insert(vec![Value::str("ACME"), Value::Float(1.0)])
            .unwrap();
    }
    src.sync().unwrap();
    assert_eq!(src.acked(), (FIRES * 2) as u64);

    // Every spike arrives, with contiguous sequence numbers from 1.
    let got = collect(&mut sub, FIRES);
    let seqs: Vec<u64> = got.iter().map(|(s, _)| *s).collect();
    assert_eq!(seqs, (1..=FIRES as u64).collect::<Vec<_>>());

    // Ack the lot; the durable watermark catches up.
    let last = *seqs.last().unwrap();
    sub.ack(last).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.hub().watermark("dash") != Some(last) {
        assert!(Instant::now() < deadline, "ack never reached the hub");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.hub().resident_len("dash"), Some(0));
    assert!(sub.next(Duration::from_millis(200)).unwrap().is_none());

    // Reconnecting — with or without a client-side watermark — redelivers
    // nothing at or below the ack.
    drop(sub);
    let mut again = client.subscribe("dash", "Spike", last).unwrap();
    assert_eq!(again.watermark(), last);
    assert!(again.next(Duration::from_millis(200)).unwrap().is_none());
    let mut fresh = client.subscribe("dash", "Spike", 0).unwrap();
    assert_eq!(fresh.watermark(), last, "server watermark wins");
    assert!(fresh.next(Duration::from_millis(200)).unwrap().is_none());

    drivers.stop();
}

#[test]
fn many_sources_share_group_commits() {
    let tman = engine(Config::default());
    let server = WireServer::start(tman.clone(), "127.0.0.1:0").unwrap();
    let drivers = tman.start_drivers();
    let addr = server.local_addr().to_string();

    let mut sub = RemoteClient::new(addr.clone())
        .subscribe("agg", "Spike", 0)
        .unwrap();

    const SOURCES: usize = 8;
    const PER_SOURCE: usize = 64;
    let feeders: Vec<_> = (0..SOURCES)
        .map(|t| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let client = RemoteClient::new(addr);
                let mut src = client.data_source("quotes").unwrap();
                for i in 0..PER_SOURCE {
                    src.insert(vec![
                        Value::str(format!("S{t}")),
                        Value::Float(101.0 + i as f64),
                    ])
                    .unwrap();
                    if i % 16 == 15 {
                        src.flush().unwrap();
                    }
                }
                src.sync().unwrap();
                src.close().unwrap();
            })
        })
        .collect();
    for f in feeders {
        f.join().unwrap();
    }

    let total = SOURCES * PER_SOURCE;
    let got = collect(&mut sub, total);
    // One durable stream: contiguous seqs regardless of which connection
    // produced the token.
    let seqs: Vec<u64> = got.iter().map(|(s, _)| *s).collect();
    assert_eq!(seqs, (1..=total as u64).collect::<Vec<_>>());
    sub.ack(total as u64).unwrap();

    let registry = tman.metrics_registry();
    assert_eq!(
        registry.counter("tman_wire_tokens_total", &[]).get(),
        total as u64
    );
    let batches = registry.counter("tman_wire_batches_total", &[]).get();
    assert!(batches >= 1, "no group commit recorded");
    assert!(
        batches
            <= registry
                .counter("tman_wire_frames_total", &[("dir", "in")])
                .get(),
        "sanity: batches bounded by inbound frames"
    );
    drivers.stop();
}

#[test]
fn persistent_queue_pays_sub_token_syncs() {
    let path = std::env::temp_dir().join(format!("tman_wire_loopback_{}.db", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let tman = TriggerMan::open_file(
        &path,
        Config {
            queue_mode: QueueMode::Persistent,
            ..Default::default()
        },
    )
    .unwrap();
    tman.execute_command("define data source quotes (symbol varchar(12), price float)")
        .unwrap();
    tman.execute_command(
        "create trigger spike from quotes when quotes.price > 100 \
         do raise event Spike(quotes.symbol, quotes.price)",
    )
    .unwrap();
    let server = WireServer::start(tman.clone(), "127.0.0.1:0").unwrap();
    let client = RemoteClient::new(server.local_addr().to_string());
    // Since the WAL refactor the durability barrier on enqueue is the log
    // fsync; the page file is written only at checkpoint.
    let syncs = tman
        .metrics_registry()
        .counter("tman_wal_fsyncs_total", &[]);
    let before = syncs.get();

    const TOKENS: usize = 100;
    let mut src = client.data_source("quotes").unwrap();
    for i in 0..TOKENS {
        src.insert(vec![Value::str("ACME"), Value::Float(150.0 + i as f64)])
            .unwrap();
    }
    src.sync().unwrap();

    // Group commit: the whole burst is durable for a handful of fsyncs,
    // not one per token.
    let spent = syncs.get() - before;
    assert!(spent >= 1, "persistent enqueue never synced");
    assert!(
        spent <= 10,
        "{spent} syncs for {TOKENS} tokens — group commit is not amortizing"
    );

    // And the durably queued tokens actually fire.
    let mut sub = client.subscribe("dash", "Spike", 0).unwrap();
    let drivers = tman.start_drivers();
    let got = collect(&mut sub, TOKENS);
    sub.ack(got.last().unwrap().0).unwrap();
    drivers.stop();
    drop(server);
    let _ = std::fs::remove_file(&path);
}
