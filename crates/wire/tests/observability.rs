//! End-to-end wire observability: one token driven from
//! `RemoteDataSource::insert` through fire, delivery, and subscriber ack
//! reassembles into a single span tree (client send → wire group commit →
//! queue wait → process → deliver → ack), the ingest→fire and fire→ack
//! SLI histograms fill in, and the engine's HTTP endpoint serves it all
//! as Prometheus text while the server is live.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tman_common::Value;
use tman_telemetry::SpanKind;
use tman_wire::{RemoteClient, WireServer};
use triggerman::{Config, TracingMode, TriggerMan};

fn engine() -> Arc<TriggerMan> {
    let tman = TriggerMan::open_memory(Config {
        tracing: TracingMode::Full,
        http_addr: Some("127.0.0.1:0".into()),
        ..Default::default()
    })
    .unwrap();
    tman.execute_command("define data source quotes (symbol varchar(12), price float)")
        .unwrap();
    tman.execute_command(
        "create trigger spike from quotes when quotes.price > 100 \
         do raise event Spike(quotes.symbol, quotes.price)",
    )
    .unwrap();
    tman
}

/// Plain HTTP/1.0 GET over a raw socket; returns (status line, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(s, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    let status = raw.lines().next().unwrap_or_default().to_string();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn one_token_reassembles_into_one_span_tree_with_slis_and_http() {
    let tman = engine();
    let server = WireServer::start(tman.clone(), "127.0.0.1:0").unwrap();
    let drivers = tman.start_drivers();
    let client = RemoteClient::new(server.local_addr().to_string());

    let mut sub = client.subscribe("dash", "Spike", 0).unwrap();
    let mut src = client.data_source("quotes").unwrap();
    let trace_id = src
        .insert(vec![Value::str("ACME"), Value::Float(500.0)])
        .unwrap();
    assert_ne!(trace_id, 0, "client assigns a nonzero trace id");
    src.sync().unwrap();

    // The notification carries the originating token's trace context.
    let deadline = Instant::now() + Duration::from_secs(30);
    let got = loop {
        assert!(Instant::now() < deadline, "notification never arrived");
        if let Some(r) = sub.next_full(Duration::from_millis(500)).unwrap() {
            break r;
        }
    };
    assert_eq!(got.note.event, "Spike");
    assert_eq!(got.trace_id, trace_id, "notification names the origin");
    assert!(got.fire_unix_ns > 0, "fire carries a wall-clock stamp");

    // Ack closes the delivery span on the server.
    sub.ack(got.seq).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.hub().watermark("dash") != Some(got.seq) {
        assert!(Instant::now() < deadline, "ack never reached the hub");
        std::thread::sleep(Duration::from_millis(5));
    }

    // ONE reassembled tree holds the whole journey: client send, wire
    // group commit, queue wait, processing, delivery, and the ack.
    let want = [
        SpanKind::WireSend,
        SpanKind::Wire,
        SpanKind::QueueWait,
        SpanKind::Process,
        SpanKind::WireDeliver,
        SpanKind::WireAck,
    ];
    let deadline = Instant::now() + Duration::from_secs(10);
    let tree = loop {
        let snap = tman.trace_snapshot();
        let matching: Vec<_> = snap
            .traces
            .iter()
            .filter(|t| t.trace_id == trace_id)
            .collect();
        assert!(
            matching.len() <= 1,
            "trace id split across {} trees",
            matching.len()
        );
        if let Some(t) = matching.first() {
            if want.iter().all(|k| t.events.iter().any(|e| e.kind == *k)) {
                break (*t).clone();
            }
        }
        assert!(
            Instant::now() < deadline,
            "span tree never completed: have {:?}",
            matching
                .first()
                .map(|t| t.events.iter().map(|e| e.kind).collect::<Vec<_>>())
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    for kind in want {
        assert_eq!(
            tree.events.iter().filter(|e| e.kind == kind).count(),
            1,
            "expected exactly one {kind:?} span"
        );
    }

    // Both end-to-end SLI histograms are non-empty.
    let registry = tman.metrics_registry();
    let ingest_to_fire = registry
        .histogram("tman_wire_ingest_to_fire_ns", &[])
        .summary();
    assert!(ingest_to_fire.count >= 1, "ingest→fire SLI is empty");
    let fire_to_ack = registry
        .histogram("tman_wire_fire_to_ack_ns", &[])
        .summary();
    assert!(fire_to_ack.count >= 1, "fire→ack SLI is empty");

    // And the HTTP endpoint serves them as Prometheus text, live.
    let http = tman.http_local_addr().expect("http endpoint is serving");
    let (status, body) = http_get(http, "/metrics");
    assert!(status.contains("200"), "GET /metrics: {status}");
    assert!(
        body.contains("tman_wire_ingest_to_fire_ns"),
        "ingest→fire histogram missing from exposition"
    );
    assert!(
        body.contains("tman_wire_fire_to_ack_ns"),
        "fire→ack histogram missing from exposition"
    );
    let (status, body) = http_get(http, "/healthz");
    assert!(status.contains("200"), "GET /healthz: {status}");
    assert!(body.contains("ok"), "healthz body: {body}");
    let (status, body) = http_get(http, "/tracez");
    assert!(status.contains("200"), "GET /tracez: {status}");
    assert!(body.contains("traceEvents"), "tracez is not a chrome trace");

    drivers.stop();
    tman.shutdown();
}

#[test]
fn subscriber_gauges_and_trace_health_counters_export() {
    let tman = engine();
    let server = WireServer::start(tman.clone(), "127.0.0.1:0").unwrap();
    let drivers = tman.start_drivers();
    let client = RemoteClient::new(server.local_addr().to_string());

    let mut sub = client.subscribe("lagger", "Spike", 0).unwrap();
    let mut src = client.data_source("quotes").unwrap();
    const FIRES: usize = 10;
    for i in 0..FIRES {
        src.insert(vec![Value::str("ACME"), Value::Float(200.0 + i as f64)])
            .unwrap();
    }
    src.sync().unwrap();

    let mut seqs = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    while seqs.len() < FIRES {
        assert!(Instant::now() < deadline, "fires never arrived");
        if let Some((seq, _)) = sub.next(Duration::from_millis(500)).unwrap() {
            seqs.push(seq);
        }
    }

    // Everything delivered, nothing acked: the lag gauge reads the gap.
    let registry = tman.metrics_registry();
    let lag = registry.gauge("tman_wire_watermark_lag", &[("sub", "lagger")]);
    assert_eq!(lag.get(), FIRES as i64, "unacked fires show as lag");

    sub.ack(*seqs.last().unwrap()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while lag.get() != 0 {
        assert!(Instant::now() < deadline, "lag gauge never drained");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Trace-sampling health: full tracing retained every token, dropping
    // none — and the computed counters export it in the exposition.
    let stats = tman.trace_snapshot().stats;
    assert!(stats.events_logged > 0, "no trace events logged");
    assert_eq!(
        stats.events_dropped, 0,
        "ring dropped events under light load"
    );

    let http = tman.http_local_addr().expect("http endpoint is serving");
    let (status, body) = http_get(http, "/metrics");
    assert!(status.contains("200"), "GET /metrics: {status}");
    assert!(body.contains("tman_trace_events_logged_total"));
    assert!(body.contains("tman_trace_events_dropped_total"));
    assert!(body.contains("tman_wire_watermark_lag"));

    drivers.stop();
    tman.shutdown();
}
