//! End-to-end crash/reconnect contract for the wire tier.
//!
//! Mirrors `tests/crash_recovery.rs`, but the tokens arrive over TCP and
//! the fires leave over TCP. Each case:
//!
//! * **Phase A** (reliable disk): a remote source feeds N tokens, a remote
//!   subscriber receives all N fires and acks its watermark, and a
//!   checkpoint makes the whole prefix durable.
//! * **Phase B** (armed [`FaultPlan`]): the subscriber is gone; more
//!   tokens stream in over the wire with **no acks** until the seeded
//!   crash point freezes the disk mid-workload. Serials whose wire-level
//!   batch ack arrived before a successful checkpoint form the durable
//!   oracle, exactly like the in-process harness.
//! * **Restart**: the disk thaws, a fresh engine + server come up on a new
//!   port, and the subscriber reconnects presenting its old watermark. It
//!   must receive the fire of every durable phase-B token **exactly
//!   once**, every delivered sequence number strictly above the watermark,
//!   and nothing at or below it (no phase-A redelivery).
//! * **Clean restart**: after acking and checkpointing, one more
//!   stop/start cycle delivers nothing at all.
//!
//! Every schedule derives from the case number, so a failure replays
//! exactly. `WIRE_CRASH_CASES` bounds the default run; the `#[ignore]`d
//! sweep covers 32 cases. Case 12 — the schedule that once persisted a
//! queue ack ahead of its delivery-log append — additionally runs
//! unconditionally as `wal_closes_ack_before_append_gap`.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use tman_common::Value;
use tman_storage::{FaultConfig, FaultPlan};
use tman_wire::{RemoteClient, RemoteDataSource, RemoteSubscriber, WireServer};
use triggerman::{Config, QueueMode, TriggerMan};

/// Phase-A prefix: every one of these is fired, acked, and checkpointed.
const PHASE_A: u64 = 24;
/// Safety valve: give up on a case if the crash point somehow never fires.
const MAX_OPS: u64 = 2_000;

/// Thread id in the name keeps concurrently-running tests (e.g. the full
/// sweep and the named case-12 regression under `--include-ignored`) from
/// sharing a database file.
fn tmpfile(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "tman_wire_crash_{tag}_{}_{:?}.db",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// Remove a database file and its write-ahead-log sidecar.
fn cleanup(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
    let mut wal = path.as_os_str().to_owned();
    wal.push(".wal");
    let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
}

/// Unique identity of the `serial`-th insert, as observed in a `Fired`
/// event (`values[1]` carries the row's varchar tag).
fn token_id(serial: u64) -> String {
    format!("{:?}", Value::str(format!("t{serial}")))
}

fn insert_serial(src: &mut RemoteDataSource, serial: u64) -> bool {
    src.insert(vec![
        Value::Int(serial as i64),
        Value::str(format!("t{serial}")),
    ])
    .is_ok()
        && src.sync().is_ok()
}

/// Drain the subscriber until it stays silent for one timeout window,
/// recording `(seq, token id)` pairs in delivery order.
fn drain(sub: &mut RemoteSubscriber) -> Vec<(u64, String)> {
    let mut got = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match sub.next(Duration::from_millis(400)).unwrap() {
            Some((seq, note)) => {
                assert_eq!(note.event, "Fired");
                got.push((seq, format!("{:?}", note.values[1])));
                assert!(Instant::now() < deadline, "subscriber never went idle");
            }
            None => return got,
        }
    }
}

fn wait_watermark(server: &WireServer, name: &str, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.hub().watermark(name) != Some(want) {
        assert!(
            Instant::now() < deadline,
            "ack watermark never reached {want} (have {:?})",
            server.hub().watermark(name)
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn crash_case(case: u64) {
    let path = tmpfile(&format!("case{case}"));
    cleanup(&path);
    let plan = FaultPlan::new(FaultConfig {
        seed: 0x511E ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        crash_after_writes: Some(5 + (case * 11) % 160),
        torn_per_mille: 25,
        transient_per_mille: 40,
        ..Default::default()
    });
    let cfg = Config {
        queue_mode: QueueMode::Persistent,
        faults: Some(plan.clone()),
        ..Default::default()
    };

    // Serials whose wire batch ack landed, partitioned by whether a later
    // checkpoint succeeded (durable) or not yet (pending) at crash time.
    let mut durable: Vec<u64> = Vec::new();
    let mut pending: Vec<u64> = Vec::new();
    let client_watermark;
    {
        let tman = TriggerMan::open_file(&path, cfg).unwrap();
        let mut server = WireServer::start(tman.clone(), "127.0.0.1:0").unwrap();
        let client = RemoteClient::new(server.local_addr().to_string());

        // ----- phase A: reliable disk, all of this becomes durable -------
        tman.execute_command("define data source s (k int, v varchar(16))")
            .unwrap();
        tman.execute_command(
            "create trigger fired from s when s.k >= 0 do raise event Fired(s.k, s.v)",
        )
        .unwrap();
        let mut sub = client.subscribe("dash", "Fired", 0).unwrap();
        let mut src = client.data_source("s").unwrap();
        for serial in 0..PHASE_A {
            assert!(insert_serial(&mut src, serial), "phase-A insert failed");
        }
        tman.run_until_quiescent().unwrap();
        let got = drain(&mut sub);
        assert_eq!(got.len() as u64, PHASE_A, "case {case}: phase-A fires");
        sub.ack(PHASE_A).unwrap();
        wait_watermark(&server, "dash", PHASE_A);
        assert_eq!(server.hub().resident_len("dash"), Some(0));
        tman.checkpoint().unwrap();
        client_watermark = PHASE_A;
        // The subscriber disappears before the faults arm: everything from
        // here on is delivered only through the durable log after restart.
        drop(sub);

        // ----- phase B: armed; failures tolerated, successes tracked -----
        plan.arm();
        let mut live = Some(src);
        let mut serial = PHASE_A;
        while !plan.crashed() && serial < MAX_OPS {
            if live.is_none() {
                live = client.data_source("s").ok();
            }
            if let Some(s) = live.as_mut() {
                if insert_serial(s, serial) {
                    pending.push(serial);
                } else {
                    live = None; // the server failed the connection; retry
                }
            }
            serial += 1;
            if serial % 4 == 0 && tman.checkpoint().is_ok() {
                durable.append(&mut pending);
            }
            if serial % 7 == 0 {
                let _ = tman.run_until_quiescent();
            }
        }
        assert!(plan.crashed(), "case {case}: crash point never fired");
        // Tear the server down with the disk still frozen, then drop the
        // engine — a process kill, as the storage layer sees it.
        server.stop();
    }

    // ----- restart: thaw the disk, reopen + reconnect --------------------
    plan.reset_crash();
    plan.disarm();
    let cfg_clean = Config {
        queue_mode: QueueMode::Persistent,
        ..Default::default()
    };
    let final_watermark;
    {
        let tman = TriggerMan::open_file(&path, cfg_clean.clone()).unwrap();
        let mut server = WireServer::start(tman.clone(), "127.0.0.1:0").unwrap();
        let client = RemoteClient::new(server.local_addr().to_string());

        // Reconnect presenting the pre-crash watermark; the server's
        // durable watermark must agree.
        let mut sub = client.subscribe("dash", "Fired", client_watermark).unwrap();
        assert_eq!(
            sub.watermark(),
            client_watermark,
            "case {case}: durable watermark diverged from the client's"
        );

        // Replay everything the queue redelivers, then drain the wire.
        tman.run_until_quiescent().unwrap();
        assert_eq!(tman.queue_len(), 0, "case {case}: queue not drained");
        let got = drain(&mut sub);

        // Sequences: strictly ascending, all above the ack watermark.
        let mut prev = client_watermark;
        for &(seq, _) in &got {
            assert!(
                seq > prev,
                "case {case}: seq {seq} not above {prev} — redelivery below \
                 the watermark or out of order"
            );
            prev = seq;
        }

        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for (_, id) in &got {
            *counts.entry(id.clone()).or_default() += 1;
        }
        // No phase-A token is ever redelivered.
        for serial in 0..PHASE_A {
            assert!(
                !counts.contains_key(&token_id(serial)),
                "case {case}: acked phase-A token t{serial} redelivered"
            );
        }
        // Exactly-once: nothing arrives twice...
        for (id, &n) in &counts {
            assert!(
                n == 1,
                "case {case}: token {id} delivered {n} times after reconnect"
            );
        }
        // ...and every durable phase-B token arrives.
        for &serial in &durable {
            assert!(
                counts.contains_key(&token_id(serial)),
                "case {case}: durable token t{serial} was lost across the crash"
            );
        }

        // Ack the new frontier and make it durable.
        final_watermark = got.last().map(|&(seq, _)| seq).unwrap_or(client_watermark);
        if final_watermark > client_watermark {
            sub.ack(final_watermark).unwrap();
            wait_watermark(&server, "dash", final_watermark);
        }
        tman.checkpoint().unwrap();
        drop(sub);
        server.stop();
    }

    // ----- a clean restart after a drained checkpoint delivers nothing ---
    {
        let tman = TriggerMan::open_file(&path, cfg_clean).unwrap();
        let server = WireServer::start(tman.clone(), "127.0.0.1:0").unwrap();
        let client = RemoteClient::new(server.local_addr().to_string());
        let mut sub = client.subscribe("dash", "Fired", final_watermark).unwrap();
        assert_eq!(sub.watermark(), final_watermark);
        tman.run_until_quiescent().unwrap();
        assert!(
            sub.next(Duration::from_millis(400)).unwrap().is_none(),
            "case {case}: clean restart redelivered tokens"
        );
        drop(server);
    }
    cleanup(&path);
}

fn budget() -> u64 {
    std::env::var("WIRE_CRASH_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

#[test]
fn wire_crash_reconnect_bounded() {
    for case in 0..budget() {
        crash_case(case);
    }
}

/// Case 12's schedule used to lose a fire: the buffer pool persisted a
/// token's queue-ack page while the delivery-log append that preceded it
/// was still dirty, so after the crash the queue never redelivered and
/// the subscriber never saw the fire. The storage WAL closes the gap —
/// evictions append redo records instead of writing pages, durability is
/// atomic at commit boundaries, and the page file is only written at
/// checkpoint from durable records — so the ack can no longer outrun the
/// append. Always-on regression for that ordering invariant.
#[test]
fn wal_closes_ack_before_append_gap() {
    crash_case(12);
}

/// The full pinned-seed sweep. Slow; run with `cargo test -- --ignored`.
#[test]
#[ignore]
fn wire_crash_reconnect_full() {
    for case in 0..32 {
        crash_case(case);
    }
}
