//! Frame-codec property coverage plus the malformed-input suite against a
//! live server.
//!
//! The codec properties are pure: every frame round-trips byte-exactly,
//! any prefix of an encoded frame decodes to "need more", and arbitrary
//! single-bit corruption is always rejected (or deferred for more bytes) —
//! never decoded into a different frame, never a panic. The live-server
//! suite then feeds truncated frames, CRC garbage, oversized length
//! prefixes and version skew down real sockets and asserts the server
//! closes that connection cleanly, counts the error in
//! `tman_wire_protocol_errors_total`, and keeps serving everyone else.

use proptest::prelude::*;
use std::borrow::Cow;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tman_common::Value;
use tman_wire::crc::crc32;
use tman_wire::frame::{
    decode_frame, decode_frame_v, encode_frame_v, encode_frame_vec, Frame, HEADER_LEN, MAGIC,
    MAX_PAYLOAD, ROLE_SOURCE, ROLE_SUBSCRIBER, VERSION, VERSION_1,
};
use tman_wire::{RemoteClient, WireServer};
use triggerman::{Config, TriggerMan};

fn arb_text() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_ .:-]{0,48}"
}

fn arb_bytes(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..max)
}

fn arb_frame() -> impl Strategy<Value = Frame<'static>> {
    prop_oneof![
        (
            prop_oneof![Just(ROLE_SOURCE), Just(ROLE_SUBSCRIBER)],
            arb_text(),
            arb_text(),
            any::<u64>()
        )
            .prop_map(|(role, name, event, resume_from)| Frame::Hello {
                role,
                name,
                event,
                resume_from,
            }),
        (any::<u32>(), any::<u32>(), any::<u64>()).prop_map(|(credits, source_id, resume_from)| {
            Frame::HelloAck {
                credits,
                source_id,
                resume_from,
            }
        }),
        // Descriptors paired with their trace ids; `any::<u64>()` covers
        // both absent (0) and present trace context.
        (
            proptest::collection::vec((arb_bytes(96), any::<u64>()), 0..8),
            any::<u64>()
        )
            .prop_map(|(ds, sent_unix_ns)| {
                let (descriptors, trace_ids): (Vec<_>, Vec<_>) = ds.into_iter().unzip();
                Frame::UpdateBatch {
                    descriptors: descriptors.into_iter().map(Cow::Owned).collect(),
                    trace_ids,
                    sent_unix_ns,
                }
            }),
        (any::<u64>(), any::<u32>())
            .prop_map(|(through, credits)| Frame::BatchAck { through, credits }),
        (any::<u64>(), arb_bytes(160), any::<u64>(), any::<u64>()).prop_map(
            |(seq, body, trace_id, fire_unix_ns)| Frame::Notification {
                seq,
                body: Cow::Owned(body),
                trace_id,
                fire_unix_ns,
            }
        ),
        any::<u64>().prop_map(|watermark| Frame::Ack { watermark }),
        any::<u32>().prop_map(|credits| Frame::Credit { credits }),
        (any::<u16>(), arb_text()).prop_map(|(code, message)| Frame::Error { code, message }),
        Just(Frame::Goodbye),
    ]
}

proptest! {
    #[test]
    fn every_frame_roundtrips(frame in arb_frame()) {
        let bytes = encode_frame_vec(&frame).unwrap();
        let (decoded, used) = decode_frame(&bytes).unwrap().expect("complete frame");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn any_prefix_asks_for_more(frame in arb_frame(), keep in any::<prop::sample::Index>()) {
        let bytes = encode_frame_vec(&frame).unwrap();
        let keep = keep.index(bytes.len()); // 0..len, strictly short of a full frame
        prop_assert!(decode_frame(&bytes[..keep]).unwrap().is_none());
    }

    #[test]
    fn frames_decode_back_to_back(a in arb_frame(), b in arb_frame()) {
        let mut bytes = encode_frame_vec(&a).unwrap();
        bytes.extend_from_slice(&encode_frame_vec(&b).unwrap());
        let (da, used) = decode_frame(&bytes).unwrap().expect("first frame");
        prop_assert_eq!(da, a);
        let (db, used2) = decode_frame(&bytes[used..]).unwrap().expect("second frame");
        prop_assert_eq!(db, b);
        prop_assert_eq!(used + used2, bytes.len());
    }

    /// Every frame also encodes at v1 and stays decodable — the v2-only
    /// trace fields are the whole loss (empty / zero after the v1 round
    /// trip); everything else survives byte-exactly.
    #[test]
    fn v1_interop_roundtrips_minus_trace_context(frame in arb_frame()) {
        let mut bytes = Vec::new();
        encode_frame_v(&frame, &mut bytes, VERSION_1).unwrap();
        let (decoded, used, ver) = decode_frame_v(&bytes).unwrap().expect("complete frame");
        prop_assert_eq!((used, ver), (bytes.len(), VERSION_1));
        let expect = match frame {
            Frame::UpdateBatch { descriptors, .. } => Frame::UpdateBatch {
                descriptors,
                trace_ids: Vec::new(),
                sent_unix_ns: 0,
            },
            Frame::Notification { seq, body, .. } => Frame::Notification {
                seq,
                body,
                trace_id: 0,
                fire_unix_ns: 0,
            },
            other => other,
        };
        prop_assert_eq!(decoded, expect);
    }

    /// The version travels per frame, not per stream: v1 and v2 encodings
    /// interleave on one buffer and each decodes at its own version.
    #[test]
    fn mixed_version_frames_share_a_stream(a in arb_frame(), b in arb_frame()) {
        let mut bytes = Vec::new();
        encode_frame_v(&a, &mut bytes, VERSION_1).unwrap();
        encode_frame_v(&b, &mut bytes, VERSION).unwrap();
        let (_, used, va) = decode_frame_v(&bytes).unwrap().expect("first frame");
        let (db, used2, vb) = decode_frame_v(&bytes[used..]).unwrap().expect("second frame");
        prop_assert_eq!((va, vb), (VERSION_1, VERSION));
        prop_assert_eq!(db, b);
        prop_assert_eq!(used + used2, bytes.len());
    }

    /// A single flipped bit is never silently accepted: the decoder
    /// returns an error (magic/version/CRC/length check) or withholds
    /// judgement for more bytes — and never panics.
    #[test]
    fn bit_flips_are_rejected(
        frame in arb_frame(),
        at in any::<prop::sample::Index>(),
        bit in 0u32..8,
    ) {
        let mut bytes = encode_frame_vec(&frame).unwrap();
        let at = at.index(bytes.len());
        bytes[at] ^= 1 << bit;
        match decode_frame(&bytes) {
            Err(_) | Ok(None) => {}
            Ok(Some(_)) => prop_assert!(false, "corrupt frame decoded successfully"),
        }
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn garbage_never_panics(bytes in arb_bytes(256)) {
        let _ = decode_frame(&bytes);
    }
}

// ----- malformed input against a live server ----------------------------

fn serve() -> (Arc<TriggerMan>, WireServer) {
    let tman = TriggerMan::open_memory(Config::default()).unwrap();
    tman.execute_command("define data source s (k int, v varchar(16))")
        .unwrap();
    let server = WireServer::start(tman.clone(), "127.0.0.1:0").unwrap();
    (tman, server)
}

/// Send raw bytes and require the server to close the connection (clean
/// EOF or reset) well before the deadline — never hang, never crash.
fn expect_close(addr: SocketAddr, bytes: &[u8]) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_millis(500)))
        .unwrap();
    s.write_all(bytes).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut buf = [0u8; 1024];
    loop {
        match s.read(&mut buf) {
            Ok(0) => return,
            Ok(_) => continue, // the best-effort Error frame
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                assert!(
                    Instant::now() < deadline,
                    "server failed to close a poisoned connection"
                );
            }
            Err(_) => return, // reset counts as closed
        }
    }
}

fn wait_for(counter: &tman_telemetry::CounterHandle, at_least: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while counter.get() < at_least {
        assert!(
            Instant::now() < deadline,
            "protocol error was never counted (have {}, want {at_least})",
            counter.get()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Hand-build a frame envelope with a valid CRC around raw payload bytes.
fn raw_frame(version: u8, ftype: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.push(version);
    out.push(ftype);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out[2..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

#[test]
fn malformed_input_fails_the_connection_not_the_server() {
    let (tman, server) = serve();
    let addr = server.local_addr();
    let errors = tman
        .metrics_registry()
        .counter("tman_wire_protocol_errors_total", &[]);
    let mut expected = errors.get();

    // Bad magic.
    expect_close(addr, b"XXim not a frame at all....");
    expected += 1;
    wait_for(&errors, expected);

    // Version skew: a well-formed hello from a future protocol.
    let hello = encode_frame_vec(&Frame::Hello {
        role: ROLE_SOURCE,
        name: "s".into(),
        event: String::new(),
        resume_from: 0,
    })
    .unwrap();
    let mut skewed = hello.clone();
    skewed[2] = VERSION + 1;
    expect_close(addr, &skewed);
    expected += 1;
    wait_for(&errors, expected);

    // Oversized length prefix: rejected from the 8-byte header alone,
    // before the server buffers a single payload byte.
    let mut oversized = Vec::new();
    oversized.extend_from_slice(&MAGIC);
    oversized.push(VERSION);
    oversized.push(0);
    oversized.extend_from_slice(&((MAX_PAYLOAD as u32) + 1).to_le_bytes());
    expect_close(addr, &oversized);
    expected += 1;
    wait_for(&errors, expected);

    // CRC mismatch: flip a payload bit of a valid frame.
    let mut corrupt = hello.clone();
    corrupt[HEADER_LEN] ^= 0x40;
    expect_close(addr, &corrupt);
    expected += 1;
    wait_for(&errors, expected);

    // Unknown frame type with a *valid* CRC.
    expect_close(addr, &raw_frame(VERSION, 0xEE, b""));
    expected += 1;
    wait_for(&errors, expected);

    // Out-of-order protocol: an update batch before any hello.
    expect_close(
        addr,
        &encode_frame_vec(&Frame::UpdateBatch {
            descriptors: vec![Cow::Owned(vec![1, 2, 3])],
            trace_ids: vec![0],
            sent_unix_ns: 0,
        })
        .unwrap(),
    );
    expected += 1;
    wait_for(&errors, expected);

    // A truncated frame followed by EOF closes cleanly (no hang) without
    // poisoning anything.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&hello[..hello.len() - 3]).unwrap();
    drop(s);

    assert_eq!(
        errors.get(),
        expected,
        "truncation-then-EOF is not a protocol error"
    );

    // The server is still healthy: a real client round-trips.
    let client = RemoteClient::new(addr.to_string());
    let mut src = client.data_source("s").unwrap();
    src.insert(vec![Value::Int(1), Value::str("ok")]).unwrap();
    src.sync().unwrap();
    assert_eq!(src.acked(), 1);
    tman.shutdown();
}

/// Read whole frames off a raw socket until one decodes.
fn recv_raw(s: &mut TcpStream, got: &mut Vec<u8>) -> Frame<'static> {
    loop {
        if let Some((frame, used)) = decode_frame(got).unwrap() {
            let owned = frame.into_owned();
            got.drain(..used);
            return owned;
        }
        let mut buf = [0u8; 1024];
        let n = s.read(&mut buf).unwrap();
        assert!(n > 0, "connection closed mid-handshake");
        got.extend_from_slice(&buf[..n]);
    }
}

/// Live interop in both directions.
///
/// * New client → old server: a server capped at v1 rejects the client's
///   v2 hello by version; the client retries pinned to v1 and the feed
///   works end to end (minus trace context).
/// * Old client → new server: raw v1 frames against a v2 server complete
///   the hello, ship a batch, and get a v1-decodable `BatchAck` back —
///   the server pins the connection to the hello's version.
#[test]
fn v1_and_v2_peers_interoperate_both_directions() {
    // New client, old (v1-capped) server.
    let tman = TriggerMan::open_memory(Config::default()).unwrap();
    tman.execute_command("define data source s (k int, v varchar(16))")
        .unwrap();
    let server = WireServer::start_capped(tman.clone(), "127.0.0.1:0", VERSION_1).unwrap();
    let client = RemoteClient::new(server.local_addr().to_string());
    let mut src = client.data_source("s").unwrap();
    src.insert(vec![Value::Int(1), Value::str("old server")])
        .unwrap();
    src.sync().unwrap();
    assert_eq!(src.acked(), 1);
    tman.shutdown();

    // Old (v1-pinned) client, new server — raw frames, v1 envelope.
    let (tman, server) = serve();
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut got = Vec::new();
    let mut hello = Vec::new();
    encode_frame_v(
        &Frame::Hello {
            role: ROLE_SOURCE,
            name: "s".into(),
            event: String::new(),
            resume_from: 0,
        },
        &mut hello,
        VERSION_1,
    )
    .unwrap();
    s.write_all(&hello).unwrap();
    let source_id = match recv_raw(&mut s, &mut got) {
        Frame::HelloAck { source_id, .. } => source_id,
        other => panic!("expected hello ack, got {}", other.kind_name()),
    };
    let token = tman_common::UpdateDescriptor::insert(
        tman_common::DataSourceId(source_id),
        tman_common::Tuple::new(vec![Value::Int(2), Value::str("old client")]),
    );
    let mut batch = Vec::new();
    encode_frame_v(
        &Frame::UpdateBatch {
            descriptors: vec![Cow::Owned(token.encode())],
            trace_ids: Vec::new(),
            sent_unix_ns: 0,
        },
        &mut batch,
        VERSION_1,
    )
    .unwrap();
    s.write_all(&batch).unwrap();
    loop {
        match recv_raw(&mut s, &mut got) {
            Frame::BatchAck { through, .. } if through >= 1 => break,
            Frame::BatchAck { .. } | Frame::Credit { .. } => continue,
            other => panic!("expected batch ack, got {}", other.kind_name()),
        }
    }
    tman.shutdown();
}

#[test]
fn unknown_source_name_is_rejected_with_an_error_frame() {
    let (tman, server) = serve();
    let addr = server.local_addr();
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(
        &encode_frame_vec(&Frame::Hello {
            role: ROLE_SOURCE,
            name: "no_such_source".into(),
            event: String::new(),
            resume_from: 0,
        })
        .unwrap(),
    )
    .unwrap();
    // Read until one whole frame arrives; it must be an Error.
    let mut got = Vec::new();
    let frame = loop {
        if let Some((frame, _)) = decode_frame(&got).unwrap() {
            break frame.into_owned();
        }
        let mut buf = [0u8; 256];
        let n = s.read(&mut buf).unwrap();
        assert!(n > 0, "connection closed before the error frame");
        got.extend_from_slice(&buf[..n]);
    };
    match frame {
        Frame::Error { message, .. } => {
            assert!(message.contains("no_such_source"), "message: {message}")
        }
        other => panic!("expected error frame, got {}", other.kind_name()),
    }
    tman.shutdown();
}
