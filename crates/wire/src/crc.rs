//! CRC-32 (IEEE 802.3 polynomial, reflected), hand-rolled over a
//! compile-time table so the wire crate stays dependency-free. Every frame
//! trailer carries `crc32(version ‖ type ‖ length ‖ payload)`, which is
//! what lets the decoder reject torn or bit-flipped frames instead of
//! feeding garbage descriptors into the queue.

/// Reflected-polynomial lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 of `data` (IEEE, the `cksum`/zlib variant).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"\x00"), 0xD202_EF8D);
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = crc32(b"update descriptor payload");
        let mut flipped = b"update descriptor payload".to_vec();
        flipped[3] ^= 0x10;
        assert_ne!(crc32(&flipped), base);
    }
}
