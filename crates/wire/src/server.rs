//! The TCP tier: a poll-based event loop serving thousands of source and
//! subscriber connections in front of one [`TriggerMan`] engine.
//!
//! One ordinary thread owns a non-blocking [`TcpListener`] and every
//! accepted stream; each poll pass accepts new connections, reads and
//! decodes whatever bytes arrived, **group-commits** all decoded update
//! descriptors across all connections into the update queue (one
//! [`enqueue_batch`](triggerman::UpdateQueue::enqueue_batch) durability
//! barrier per [`Config::wire_batch_max`] tokens — the fsync amortization
//! that lets ingestion scale past per-token durability), pushes pending
//! notifications to subscribers, and flushes write buffers. No async
//! runtime: readiness is discovered by attempting the I/O, which at
//! ingestion rates keeps every pass busy; an idle server parks for ~200 µs
//! between passes.
//!
//! **Flow control is credit-based, never drop-based.** A source connection
//! is granted [`Config::wire_credits`] at hello (one credit = one
//! descriptor); every group commit returns a `BatchAck` that replenishes
//! the window — unless the engine's queue is above
//! [`Config::wire_queue_high_water`], in which case the grant is withheld
//! (counted in `tman_wire_backpressure_total`) and the client stalls on
//! zero credits until the drivers drain the backlog and a later ack (or
//! standalone `Credit` frame) reopens the window. Exceeding the window is
//! a protocol violation and closes the connection.
//!
//! Any decode failure (bad magic, CRC mismatch, oversized length, version
//! skew, malformed payload) is unrecoverable for that connection: the
//! server counts it in `tman_wire_protocol_errors_total`, sends a best-
//! effort [`Frame::Error`], and closes — other connections are unaffected.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, TryRecvError};
use tman_common::{Result, TmanError, UpdateDescriptor};
use tman_telemetry::trace::{now_ns, ROOT_SPAN};
use tman_telemetry::{CounterHandle, GaugeHandle, Registry, SpanKind};
use triggerman::TriggerMan;

use crate::delivery::DeliveryHub;
use crate::frame::{decode_frame, encode_frame, Frame, ROLE_SOURCE, ROLE_SUBSCRIBER};

/// Read chunk per connection per pass.
const READ_CHUNK: usize = 16 * 1024;
/// Notifications drained from a subscriber mailbox per pass (fairness cap).
const NOTIFY_PER_PASS: usize = 256;
/// Stop draining a subscriber's mailbox while its write buffer is above
/// this: the unflushed bytes already bound what a slow reader can pin, and
/// everything still in the mailbox is durable in the delivery log (it will
/// replay on reconnect if the hub eventually drops the stalled mailbox).
const SUB_WBUF_HIGH_WATER: usize = 256 * 1024;
/// Passes between [`DeliveryHub::gc`] sweeps that retire delivery-log rows
/// and dedup state for origins the update queue has fully processed.
const GC_PASS_INTERVAL: u64 = 256;
/// Idle park between passes when nothing moved.
const IDLE_PARK: Duration = Duration::from_micros(200);

/// Error codes carried in [`Frame::Error`].
pub mod error_code {
    /// Framing/decoding failure — the byte stream is unrecoverable.
    pub const PROTOCOL: u16 = 1;
    /// A descriptor or hello failed engine validation.
    pub const VALIDATION: u16 = 2;
    /// The client sent more descriptors than its credit window allows.
    pub const CREDIT_OVERRUN: u16 = 3;
    /// Engine-side failure (storage error during group commit).
    pub const INTERNAL: u16 = 4;
}

/// Wire-tier instruments, resolved once at startup.
struct WireMetrics {
    connections: GaugeHandle,
    frames_in: CounterHandle,
    frames_out: CounterHandle,
    protocol_errors: CounterHandle,
    backpressure: CounterHandle,
    batches: CounterHandle,
    tokens: CounterHandle,
    notifications: CounterHandle,
    acks: CounterHandle,
}

impl WireMetrics {
    fn resolve(r: &Registry) -> WireMetrics {
        WireMetrics {
            connections: r.gauge("tman_wire_connections", &[]),
            frames_in: r.counter("tman_wire_frames_total", &[("dir", "in")]),
            frames_out: r.counter("tman_wire_frames_total", &[("dir", "out")]),
            protocol_errors: r.counter("tman_wire_protocol_errors_total", &[]),
            backpressure: r.counter("tman_wire_backpressure_total", &[]),
            batches: r.counter("tman_wire_batches_total", &[]),
            tokens: r.counter("tman_wire_tokens_total", &[]),
            notifications: r.counter("tman_wire_notifications_sent_total", &[]),
            acks: r.counter("tman_wire_acks_total", &[]),
        }
    }
}

#[derive(PartialEq)]
enum Role {
    Pending,
    Source,
    Subscriber,
}

/// Per-connection state.
struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    role: Role,
    /// Remaining credit window (sources).
    credits: u32,
    /// Descriptors received over the connection's lifetime (sources).
    received: u64,
    /// Descriptors decoded this pass, awaiting the group commit (sources).
    pass_tokens: u64,
    /// Durable subscriber name and registration epoch (subscribers).
    sub_name: Option<(String, u64)>,
    /// Live delivery mailbox from the [`DeliveryHub`] (subscribers).
    mailbox: Option<Receiver<(u64, Vec<u8>)>>,
    /// Close once `wbuf` drains (clean goodbye or error sent).
    close_after_flush: bool,
    /// Close immediately (peer gone).
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            role: Role::Pending,
            credits: 0,
            received: 0,
            pass_tokens: 0,
            sub_name: None,
            mailbox: None,
            close_after_flush: false,
            dead: false,
        }
    }

    /// Queue a frame for writing (encode failures kill the connection).
    fn send(&mut self, frame: &Frame<'_>, metrics: &WireMetrics) {
        match encode_frame(frame, &mut self.wbuf) {
            Ok(()) => metrics.frames_out.bump(),
            Err(_) => self.dead = true,
        }
    }

    /// Send a fatal error frame and schedule the close.
    fn fail(&mut self, code: u16, message: String, metrics: &WireMetrics) {
        metrics.protocol_errors.bump();
        self.send(&Frame::Error { code, message }, metrics);
        self.close_after_flush = true;
    }
}

/// The embedded TCP server. Owns one I/O thread; stops (and joins) on
/// [`WireServer::stop`], on drop, or when the engine shuts down.
pub struct WireServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    hub: Arc<DeliveryHub>,
}

impl WireServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port), open the
    /// durable [`DeliveryHub`] in the engine's database, register it as a
    /// notification sink, and spawn the I/O thread.
    pub fn start(system: Arc<TriggerMan>, addr: &str) -> Result<WireServer> {
        let listener =
            TcpListener::bind(addr).map_err(|e| TmanError::Io(format!("bind {addr}: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| TmanError::Io(format!("set_nonblocking: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| TmanError::Io(format!("local_addr: {e}")))?;
        let hub = DeliveryHub::open(system.database(), system.queue_watermark())?;
        system.events().register_sink(hub.clone());
        let registry = system.metrics_registry();
        registry.register_counter(
            "tman_wire_delivery_appends_total",
            &[],
            hub.appends().clone(),
        );
        registry.register_counter(
            "tman_wire_redelivery_suppressed_total",
            &[],
            hub.suppressed().clone(),
        );
        registry.register_counter(
            "tman_wire_delivery_acked_total",
            &[],
            hub.acked_rows().clone(),
        );
        registry.register_counter("tman_wire_acks_clamped_total", &[], hub.clamped().clone());
        registry.register_counter(
            "tman_wire_subscriber_stalls_total",
            &[],
            hub.stalled().clone(),
        );
        let metrics = WireMetrics::resolve(registry);
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = stop.clone();
            let hub = hub.clone();
            std::thread::Builder::new()
                .name("tman-wire".into())
                .spawn(move || run_loop(system, listener, hub, stop, metrics))
                .map_err(|e| TmanError::Io(format!("spawn wire thread: {e}")))?
        };
        Ok(WireServer {
            addr: local,
            stop,
            thread: Some(thread),
            hub,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The durable delivery tier (watermarks, replay state).
    pub fn hub(&self) -> &Arc<DeliveryHub> {
        &self.hub
    }

    /// Stop the I/O thread and wait for it to exit. Idempotent. Durable
    /// subscriber state stays in the engine's database; clients see EOF
    /// and reconnect with their watermark after a restart.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn run_loop(
    system: Arc<TriggerMan>,
    listener: TcpListener,
    hub: Arc<DeliveryHub>,
    stop: Arc<AtomicBool>,
    metrics: WireMetrics,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let batch_max = system.config().wire_batch_max.max(1);
    let mut passes: u64 = 0;
    while !stop.load(Ordering::Relaxed) && !system.is_shutdown() {
        let mut activity = false;
        passes += 1;
        if passes % GC_PASS_INTERVAL == 0 {
            hub.gc(system.queue_watermark());
        }

        // Accept everything ready.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    conns.push(Conn::new(stream));
                    metrics.connections.inc();
                    activity = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }

        // Read + decode every connection; collect this pass's descriptors.
        let mut pass_batch: Vec<UpdateDescriptor> = Vec::new();
        let mut chunks: Vec<Vec<UpdateDescriptor>> = Vec::new();
        for conn in conns.iter_mut() {
            if conn.dead || conn.close_after_flush {
                continue;
            }
            let mut buf = [0u8; READ_CHUNK];
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.rbuf.extend_from_slice(&buf[..n]);
                        activity = true;
                        if n < buf.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            if conn.dead {
                continue;
            }
            // Decode as many complete frames as the buffer holds.
            let rbuf = std::mem::take(&mut conn.rbuf);
            let mut off = 0usize;
            while off < rbuf.len() {
                match decode_frame(&rbuf[off..]) {
                    Ok(Some((frame, used))) => {
                        off += used;
                        metrics.frames_in.bump();
                        handle_frame(conn, frame, &system, &hub, &metrics, &mut pass_batch);
                        if conn.dead || conn.close_after_flush {
                            break;
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        conn.fail(error_code::PROTOCOL, e.to_string(), &metrics);
                        break;
                    }
                }
            }
            conn.rbuf = rbuf;
            conn.rbuf.drain(..off);
            // Force a group commit mid-pass rather than letting one
            // firehose connection grow the batch without bound.
            if pass_batch.len() >= batch_max {
                chunks.push(std::mem::take(&mut pass_batch));
            }
        }
        chunks.push(pass_batch);

        // Group-commit this pass's descriptors: one enqueue_batch (one
        // durability barrier on a persistent queue) per chunk, shared by
        // every contributing connection.
        let contributors = conns.iter().filter(|c| c.pass_tokens > 0).count() as u64;
        let mut commit_failed = false;
        for tokens in chunks {
            if tokens.is_empty() {
                continue;
            }
            let n = tokens.len() as u64;
            let t0 = now_ns();
            match system.push_tokens(tokens) {
                Ok(()) => {
                    metrics.batches.bump();
                    metrics.tokens.add(n);
                    if let Some(tracer) = system.tracer() {
                        let handle = tracer.begin();
                        let t1 = now_ns();
                        handle.record_complete(
                            SpanKind::Wire,
                            ROOT_SPAN,
                            t0,
                            t1.saturating_sub(t0),
                            n,
                            contributors,
                        );
                    }
                }
                Err(_) => commit_failed = true,
            }
            activity = true;
        }
        // Acknowledge every contributing source, replenishing credits
        // unless the engine queue is over the high-water mark.
        if contributors > 0 {
            let full = system.queue_len() >= system.config().wire_queue_high_water;
            let window = system.config().wire_credits;
            for conn in conns.iter_mut().filter(|c| c.pass_tokens > 0) {
                conn.pass_tokens = 0;
                if commit_failed {
                    conn.fail(error_code::INTERNAL, "group commit failed".into(), &metrics);
                    continue;
                }
                let grant = if full {
                    metrics.backpressure.bump();
                    0
                } else {
                    window.saturating_sub(conn.credits)
                };
                conn.credits += grant;
                conn.send(
                    &Frame::BatchAck {
                        through: conn.received,
                        credits: grant,
                    },
                    &metrics,
                );
            }
        }
        // A source stalled on withheld credits gets them back as soon as
        // the queue drains, without needing to send anything first.
        if system.queue_len() < system.config().wire_queue_high_water {
            let window = system.config().wire_credits;
            for conn in conns
                .iter_mut()
                .filter(|c| c.role == Role::Source && c.credits == 0 && !c.dead)
            {
                conn.credits = window;
                conn.send(&Frame::Credit { credits: window }, &metrics);
            }
        }

        // Push pending notifications to connected subscribers. A
        // connection whose write buffer is already above the high-water
        // mark is skipped: its unflushed bytes bound server memory, and
        // everything left in the mailbox is durable in the delivery log.
        for conn in conns.iter_mut() {
            // Clone the handle so draining it can interleave with writes
            // to the same connection (crossbeam receivers are shared).
            let Some(rx) = conn.mailbox.clone() else {
                continue;
            };
            let mut sent = 0usize;
            while sent < NOTIFY_PER_PASS && conn.wbuf.len() < SUB_WBUF_HIGH_WATER {
                match rx.try_recv() {
                    Ok((seq, body)) => {
                        let frame = Frame::Notification {
                            seq,
                            body: std::borrow::Cow::Owned(body),
                        };
                        conn.send(&frame, &metrics);
                        metrics.notifications.bump();
                        sent += 1;
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        // The hub dropped the sender (stalled subscriber):
                        // close so the client reconnects and replays from
                        // its watermark off the durable log.
                        conn.mailbox = None;
                        conn.close_after_flush = true;
                        break;
                    }
                }
            }
            if sent > 0 {
                activity = true;
            }
        }

        // Flush write buffers.
        for conn in conns.iter_mut() {
            while !conn.wbuf.is_empty() && !conn.dead {
                match conn.stream.write(&conn.wbuf) {
                    Ok(0) => {
                        conn.dead = true;
                    }
                    Ok(n) => {
                        conn.wbuf.drain(..n);
                        activity = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => conn.dead = true,
                }
            }
            if conn.close_after_flush && conn.wbuf.is_empty() {
                conn.dead = true;
            }
        }

        // Retire dead connections.
        conns.retain(|c| {
            if c.dead {
                if let Some((name, epoch)) = &c.sub_name {
                    hub.detach(name, *epoch);
                }
                metrics.connections.dec();
            }
            !c.dead
        });

        if !activity {
            std::thread::park_timeout(IDLE_PARK);
        }
    }
    metrics.connections.add(-(conns.len() as i64));
}

/// Handle one decoded frame on one connection.
fn handle_frame(
    conn: &mut Conn,
    frame: Frame<'_>,
    system: &Arc<TriggerMan>,
    hub: &Arc<DeliveryHub>,
    metrics: &WireMetrics,
    pass_batch: &mut Vec<UpdateDescriptor>,
) {
    match frame {
        Frame::Hello {
            role,
            name,
            event,
            resume_from,
        } => {
            if conn.role != Role::Pending {
                conn.fail(error_code::PROTOCOL, "duplicate hello".into(), metrics);
                return;
            }
            if role == ROLE_SOURCE {
                match system.source(&name) {
                    Ok(info) => {
                        conn.role = Role::Source;
                        conn.credits = system.config().wire_credits;
                        conn.send(
                            &Frame::HelloAck {
                                credits: conn.credits,
                                source_id: info.id.raw(),
                                resume_from: 0,
                            },
                            metrics,
                        );
                    }
                    Err(e) => {
                        conn.fail(error_code::VALIDATION, e.to_string(), metrics);
                    }
                }
            } else {
                debug_assert_eq!(role, ROLE_SUBSCRIBER); // decoder rejects others
                let (tx, rx) = unbounded();
                match hub.register(&name, &event, resume_from, tx) {
                    Ok(reg) => {
                        conn.role = Role::Subscriber;
                        conn.sub_name = Some((name, reg.epoch));
                        conn.mailbox = Some(rx);
                        conn.send(
                            &Frame::HelloAck {
                                credits: 0,
                                source_id: 0,
                                resume_from: reg.watermark,
                            },
                            metrics,
                        );
                        // Exactly-once catch-up: replay every unacked log
                        // row above the effective watermark, in order,
                        // before any live delivery.
                        for (seq, body) in reg.replay {
                            conn.send(
                                &Frame::Notification {
                                    seq,
                                    body: std::borrow::Cow::Owned(body),
                                },
                                metrics,
                            );
                            metrics.notifications.bump();
                        }
                    }
                    Err(e) => {
                        conn.fail(error_code::VALIDATION, e.to_string(), metrics);
                    }
                }
            }
        }
        Frame::UpdateBatch { descriptors } => {
            if conn.role != Role::Source {
                conn.fail(
                    error_code::PROTOCOL,
                    "update batch before source hello".into(),
                    metrics,
                );
                return;
            }
            let n = descriptors.len() as u64;
            if n > conn.credits as u64 {
                conn.fail(
                    error_code::CREDIT_OVERRUN,
                    format!("{n} descriptors with {} credits", conn.credits),
                    metrics,
                );
                return;
            }
            for raw in &descriptors {
                let token = match UpdateDescriptor::decode(raw) {
                    Ok(t) => t,
                    Err(e) => {
                        conn.fail(error_code::PROTOCOL, e.to_string(), metrics);
                        return;
                    }
                };
                if let Err(e) = system.validate_token(&token) {
                    conn.fail(error_code::VALIDATION, e.to_string(), metrics);
                    return;
                }
                pass_batch.push(token);
            }
            conn.credits -= n as u32;
            conn.received += n;
            conn.pass_tokens += n;
        }
        Frame::Ack { watermark } => {
            let Some((name, _)) = conn.sub_name.clone() else {
                conn.fail(
                    error_code::PROTOCOL,
                    "ack before subscriber hello".into(),
                    metrics,
                );
                return;
            };
            match hub.ack(&name, watermark) {
                Ok(_) => metrics.acks.bump(),
                Err(e) => conn.fail(error_code::VALIDATION, e.to_string(), metrics),
            }
        }
        Frame::Goodbye => {
            conn.close_after_flush = true;
        }
        Frame::Error { .. } => {
            // Client-reported failure: close quietly.
            conn.close_after_flush = true;
        }
        // Server→client frames arriving at the server are protocol errors.
        Frame::HelloAck { .. }
        | Frame::BatchAck { .. }
        | Frame::Notification { .. }
        | Frame::Credit { .. } => {
            conn.fail(
                error_code::PROTOCOL,
                format!("unexpected {} frame", frame.kind_name()),
                metrics,
            );
        }
    }
}
