//! The TCP tier: a poll-based event loop serving thousands of source and
//! subscriber connections in front of one [`TriggerMan`] engine.
//!
//! One ordinary thread owns a non-blocking [`TcpListener`] and every
//! accepted stream; each poll pass accepts new connections, reads and
//! decodes whatever bytes arrived, **group-commits** all decoded update
//! descriptors across all connections into the update queue (one
//! [`enqueue_batch`](triggerman::UpdateQueue::enqueue_batch) durability
//! barrier per [`Config::wire_batch_max`] tokens — the fsync amortization
//! that lets ingestion scale past per-token durability), pushes pending
//! notifications to subscribers, and flushes write buffers. No async
//! runtime: readiness is discovered by attempting the I/O, which at
//! ingestion rates keeps every pass busy; an idle server parks for ~200 µs
//! between passes.
//!
//! **Flow control is credit-based, never drop-based.** A source connection
//! is granted [`Config::wire_credits`] at hello (one credit = one
//! descriptor); every group commit returns a `BatchAck` that replenishes
//! the window — unless the engine's queue is above
//! [`Config::wire_queue_high_water`], in which case the grant is withheld
//! (counted in `tman_wire_backpressure_total`) and the client stalls on
//! zero credits until the drivers drain the backlog and a later ack (or
//! standalone `Credit` frame) reopens the window. Exceeding the window is
//! a protocol violation and closes the connection.
//!
//! Any decode failure (bad magic, CRC mismatch, oversized length, version
//! skew, malformed payload) is unrecoverable for that connection: the
//! server counts it in `tman_wire_protocol_errors_total`, sends a best-
//! effort [`Frame::Error`], and closes — other connections are unaffected.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, TryRecvError};
use tman_common::{Result, TmanError, UpdateDescriptor};
use tman_telemetry::trace::{now_ns, unix_now_ns, ROOT_SPAN};
use tman_telemetry::{
    CounterHandle, GaugeHandle, HistogramHandle, Registry, SpanKind, TraceHandle,
};
use triggerman::TriggerMan;

use crate::delivery::{Delivery, DeliveryHub};
use crate::frame::{
    decode_frame_v, encode_frame_v, Frame, ROLE_SOURCE, ROLE_SUBSCRIBER, VERSION, VERSION_1,
};

/// Read chunk per connection per pass.
const READ_CHUNK: usize = 16 * 1024;
/// Notifications drained from a subscriber mailbox per pass (fairness cap).
const NOTIFY_PER_PASS: usize = 256;
/// Stop draining a subscriber's mailbox while its write buffer is above
/// this: the unflushed bytes already bound what a slow reader can pin, and
/// everything still in the mailbox is durable in the delivery log (it will
/// replay on reconnect if the hub eventually drops the stalled mailbox).
const SUB_WBUF_HIGH_WATER: usize = 256 * 1024;
/// Passes between [`DeliveryHub::gc`] sweeps that retire delivery-log rows
/// and dedup state for origins the update queue has fully processed.
const GC_PASS_INTERVAL: u64 = 256;
/// Idle park between passes when nothing moved.
const IDLE_PARK: Duration = Duration::from_micros(200);

/// Error codes carried in [`Frame::Error`].
pub mod error_code {
    /// Framing/decoding failure — the byte stream is unrecoverable.
    pub const PROTOCOL: u16 = 1;
    /// A descriptor or hello failed engine validation.
    pub const VALIDATION: u16 = 2;
    /// The client sent more descriptors than its credit window allows.
    pub const CREDIT_OVERRUN: u16 = 3;
    /// Engine-side failure (storage error during group commit).
    pub const INTERNAL: u16 = 4;
}

/// Wire-tier instruments, resolved once at startup.
struct WireMetrics {
    connections: GaugeHandle,
    frames_in: CounterHandle,
    frames_out: CounterHandle,
    protocol_errors: CounterHandle,
    backpressure: CounterHandle,
    batches: CounterHandle,
    tokens: CounterHandle,
    notifications: CounterHandle,
    acks: CounterHandle,
    /// `tman_wire_credit_stall_ns`: how long each source spent stalled on
    /// a withheld credit window (one sample per stall episode).
    credit_stall: HistogramHandle,
}

impl WireMetrics {
    fn resolve(r: &Registry) -> WireMetrics {
        WireMetrics {
            connections: r.gauge("tman_wire_connections", &[]),
            frames_in: r.counter("tman_wire_frames_total", &[("dir", "in")]),
            frames_out: r.counter("tman_wire_frames_total", &[("dir", "out")]),
            protocol_errors: r.counter("tman_wire_protocol_errors_total", &[]),
            backpressure: r.counter("tman_wire_backpressure_total", &[]),
            batches: r.counter("tman_wire_batches_total", &[]),
            tokens: r.counter("tman_wire_tokens_total", &[]),
            notifications: r.counter("tman_wire_notifications_sent_total", &[]),
            acks: r.counter("tman_wire_acks_total", &[]),
            credit_stall: r.histogram("tman_wire_credit_stall_ns", &[]),
        }
    }
}

#[derive(PartialEq)]
enum Role {
    Pending,
    Source,
    Subscriber,
}

/// Per-connection state.
struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    role: Role,
    /// Protocol version this connection is pinned to:
    /// `min(server cap, peer hello envelope version)`. Every outbound
    /// frame is encoded at this version.
    version: u8,
    /// Remaining credit window (sources).
    credits: u32,
    /// Descriptors received over the connection's lifetime (sources).
    received: u64,
    /// Descriptors decoded this pass, awaiting the group commit (sources).
    pass_tokens: u64,
    /// Monotonic stamp of the moment this source's credit window was
    /// withheld (backpressure); cleared — and the stall duration recorded —
    /// when credits are regranted.
    stall_since: Option<u64>,
    /// Durable subscriber name and registration epoch (subscribers).
    sub_name: Option<(String, u64)>,
    /// Live delivery mailbox from the [`DeliveryHub`] (subscribers).
    mailbox: Option<Receiver<Delivery>>,
    /// `tman_wire_mailbox_depth{sub=…}` gauge plus the last depth pushed
    /// into it (delta-updated each pass, zeroed at retire).
    depth_gauge: Option<(GaugeHandle, i64)>,
    /// Close once `wbuf` drains (clean goodbye or error sent).
    close_after_flush: bool,
    /// Close immediately (peer gone).
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            role: Role::Pending,
            version: VERSION,
            credits: 0,
            received: 0,
            pass_tokens: 0,
            stall_since: None,
            sub_name: None,
            mailbox: None,
            depth_gauge: None,
            close_after_flush: false,
            dead: false,
        }
    }

    /// Queue a frame for writing (encode failures kill the connection).
    fn send(&mut self, frame: &Frame<'_>, metrics: &WireMetrics) {
        match encode_frame_v(frame, &mut self.wbuf, self.version) {
            Ok(()) => metrics.frames_out.bump(),
            Err(_) => self.dead = true,
        }
    }

    /// Send a fatal error frame and schedule the close.
    fn fail(&mut self, code: u16, message: String, metrics: &WireMetrics) {
        metrics.protocol_errors.bump();
        self.send(&Frame::Error { code, message }, metrics);
        self.close_after_flush = true;
    }
}

/// The embedded TCP server. Owns one I/O thread; stops (and joins) on
/// [`WireServer::stop`], on drop, or when the engine shuts down.
pub struct WireServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    hub: Arc<DeliveryHub>,
}

impl WireServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port), open the
    /// durable [`DeliveryHub`] in the engine's database, register it as a
    /// notification sink, and spawn the I/O thread.
    pub fn start(system: Arc<TriggerMan>, addr: &str) -> Result<WireServer> {
        WireServer::start_capped(system, addr, VERSION)
    }

    /// [`start`](Self::start) with the spoken protocol capped at
    /// `max_version`: a hello above the cap is rejected the way a genuine
    /// old build rejects it (protocol error naming the version), which is
    /// what drives clients down their v1 fallback. Interop tests use this
    /// to stand in for a v1-era server.
    pub fn start_capped(
        system: Arc<TriggerMan>,
        addr: &str,
        max_version: u8,
    ) -> Result<WireServer> {
        let listener =
            TcpListener::bind(addr).map_err(|e| TmanError::Io(format!("bind {addr}: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| TmanError::Io(format!("set_nonblocking: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| TmanError::Io(format!("local_addr: {e}")))?;
        let hub = DeliveryHub::open(system.database(), system.queue_watermark())?;
        system.events().register_sink(hub.clone());
        let registry = system.metrics_registry();
        registry.register_counter(
            "tman_wire_delivery_appends_total",
            &[],
            hub.appends().clone(),
        );
        registry.register_counter(
            "tman_wire_redelivery_suppressed_total",
            &[],
            hub.suppressed().clone(),
        );
        registry.register_counter(
            "tman_wire_delivery_acked_total",
            &[],
            hub.acked_rows().clone(),
        );
        registry.register_counter("tman_wire_acks_clamped_total", &[], hub.clamped().clone());
        registry.register_counter(
            "tman_wire_subscriber_stalls_total",
            &[],
            hub.stalled().clone(),
        );
        hub.bind_instruments(registry, system.tracer().cloned());
        let metrics = WireMetrics::resolve(registry);
        let stop = Arc::new(AtomicBool::new(false));
        let max_version = max_version.clamp(VERSION_1, VERSION);
        let thread = {
            let stop = stop.clone();
            let hub = hub.clone();
            std::thread::Builder::new()
                .name("tman-wire".into())
                .spawn(move || run_loop(system, listener, hub, stop, metrics, max_version))
                .map_err(|e| TmanError::Io(format!("spawn wire thread: {e}")))?
        };
        Ok(WireServer {
            addr: local,
            stop,
            thread: Some(thread),
            hub,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The durable delivery tier (watermarks, replay state).
    pub fn hub(&self) -> &Arc<DeliveryHub> {
        &self.hub
    }

    /// Stop the I/O thread and wait for it to exit. Idempotent. Durable
    /// subscriber state stays in the engine's database; clients see EOF
    /// and reconnect with their watermark after a restart.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn run_loop(
    system: Arc<TriggerMan>,
    listener: TcpListener,
    hub: Arc<DeliveryHub>,
    stop: Arc<AtomicBool>,
    metrics: WireMetrics,
    max_version: u8,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let batch_max = system.config().wire_batch_max.max(1);
    let mut passes: u64 = 0;
    while !stop.load(Ordering::Relaxed) && !system.is_shutdown() {
        let mut activity = false;
        passes += 1;
        if passes % GC_PASS_INTERVAL == 0 {
            hub.gc(system.queue_watermark());
        }

        // Accept everything ready.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    conns.push(Conn::new(stream));
                    metrics.connections.inc();
                    activity = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }

        // Read + decode every connection; collect this pass's descriptors
        // (plus, for tokens that arrived with a propagated trace id, the
        // adopted handle and its decode stamp).
        let mut pass_batch: Vec<UpdateDescriptor> = Vec::new();
        let mut pass_traced: Vec<(TraceHandle, u64)> = Vec::new();
        let mut chunks: Vec<(Vec<UpdateDescriptor>, Vec<(TraceHandle, u64)>)> = Vec::new();
        for conn in conns.iter_mut() {
            if conn.dead || conn.close_after_flush {
                continue;
            }
            let mut buf = [0u8; READ_CHUNK];
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.rbuf.extend_from_slice(&buf[..n]);
                        activity = true;
                        if n < buf.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            if conn.dead {
                continue;
            }
            // Decode as many complete frames as the buffer holds.
            let rbuf = std::mem::take(&mut conn.rbuf);
            let mut off = 0usize;
            while off < rbuf.len() {
                match decode_frame_v(&rbuf[off..]) {
                    Ok(Some((frame, used, version))) => {
                        off += used;
                        metrics.frames_in.bump();
                        if version > max_version {
                            // Behave like a genuine old build: name the
                            // version so the client falls back to v1.
                            conn.version = max_version;
                            conn.fail(
                                error_code::PROTOCOL,
                                format!(
                                    "wire protocol version {version} (this build speaks {max_version})"
                                ),
                                &metrics,
                            );
                            break;
                        }
                        handle_frame(
                            conn,
                            frame,
                            version,
                            &system,
                            &hub,
                            &metrics,
                            &mut pass_batch,
                            &mut pass_traced,
                        );
                        if conn.dead || conn.close_after_flush {
                            break;
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        conn.fail(error_code::PROTOCOL, e.to_string(), &metrics);
                        break;
                    }
                }
            }
            conn.rbuf = rbuf;
            conn.rbuf.drain(..off);
            // Force a group commit mid-pass rather than letting one
            // firehose connection grow the batch without bound.
            if pass_batch.len() >= batch_max {
                chunks.push((
                    std::mem::take(&mut pass_batch),
                    std::mem::take(&mut pass_traced),
                ));
            }
        }
        chunks.push((pass_batch, pass_traced));

        // Group-commit this pass's descriptors: one enqueue_batch (one
        // durability barrier on a persistent queue) per chunk, shared by
        // every contributing connection.
        let contributors = conns.iter().filter(|c| c.pass_tokens > 0).count() as u64;
        let mut commit_failed = false;
        for (tokens, traced) in chunks {
            if tokens.is_empty() {
                continue;
            }
            let n = tokens.len() as u64;
            let t0 = now_ns();
            match system.push_tokens(tokens) {
                Ok(()) => {
                    metrics.batches.bump();
                    metrics.tokens.add(n);
                    let t1 = now_ns();
                    if traced.is_empty() {
                        // No propagated trace context in this chunk: keep
                        // the per-batch sample on a fresh trace.
                        if let Some(tracer) = system.tracer() {
                            let handle = tracer.begin();
                            handle.record_complete(
                                SpanKind::Wire,
                                ROOT_SPAN,
                                t0,
                                t1.saturating_sub(t0),
                                n,
                                contributors,
                            );
                        }
                    } else {
                        // Close each propagated token's wire span: decode
                        // through group-commit, on the token's own trace.
                        for (handle, decoded_ns) in traced {
                            handle.record_complete(
                                SpanKind::Wire,
                                ROOT_SPAN,
                                decoded_ns,
                                t1.saturating_sub(decoded_ns),
                                n,
                                contributors,
                            );
                        }
                    }
                }
                Err(_) => commit_failed = true,
            }
            activity = true;
        }
        // Acknowledge every contributing source, replenishing credits
        // unless the engine queue is over the high-water mark.
        if contributors > 0 {
            let full = system.queue_len() >= system.config().wire_queue_high_water;
            let window = system.config().wire_credits;
            for conn in conns.iter_mut().filter(|c| c.pass_tokens > 0) {
                conn.pass_tokens = 0;
                if commit_failed {
                    conn.fail(error_code::INTERNAL, "group commit failed".into(), &metrics);
                    continue;
                }
                let grant = if full {
                    metrics.backpressure.bump();
                    // Start (or continue) this source's stall episode.
                    conn.stall_since.get_or_insert_with(now_ns);
                    0
                } else {
                    window.saturating_sub(conn.credits)
                };
                conn.credits += grant;
                if grant > 0 {
                    if let Some(t0) = conn.stall_since.take() {
                        metrics.credit_stall.record(now_ns().saturating_sub(t0));
                    }
                }
                conn.send(
                    &Frame::BatchAck {
                        through: conn.received,
                        credits: grant,
                    },
                    &metrics,
                );
            }
        }
        // A source stalled on withheld credits gets them back as soon as
        // the queue drains, without needing to send anything first.
        if system.queue_len() < system.config().wire_queue_high_water {
            let window = system.config().wire_credits;
            for conn in conns
                .iter_mut()
                .filter(|c| c.role == Role::Source && c.credits == 0 && !c.dead)
            {
                conn.credits = window;
                if let Some(t0) = conn.stall_since.take() {
                    metrics.credit_stall.record(now_ns().saturating_sub(t0));
                }
                conn.send(&Frame::Credit { credits: window }, &metrics);
            }
        }

        // Push pending notifications to connected subscribers. A
        // connection whose write buffer is already above the high-water
        // mark is skipped: its unflushed bytes bound server memory, and
        // everything left in the mailbox is durable in the delivery log.
        for conn in conns.iter_mut() {
            // Clone the handle so draining it can interleave with writes
            // to the same connection (crossbeam receivers are shared).
            let Some(rx) = conn.mailbox.clone() else {
                continue;
            };
            let mut sent = 0usize;
            while sent < NOTIFY_PER_PASS && conn.wbuf.len() < SUB_WBUF_HIGH_WATER {
                match rx.try_recv() {
                    Ok(d) => {
                        let frame = Frame::Notification {
                            seq: d.seq,
                            body: std::borrow::Cow::Owned(d.body),
                            trace_id: d.trace_id,
                            fire_unix_ns: d.fire_unix_ns,
                        };
                        conn.send(&frame, &metrics);
                        metrics.notifications.bump();
                        sent += 1;
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        // The hub dropped the sender (stalled subscriber):
                        // close so the client reconnects and replays from
                        // its watermark off the durable log.
                        conn.mailbox = None;
                        conn.close_after_flush = true;
                        break;
                    }
                }
            }
            // Publish the post-drain backlog into the subscriber's
            // mailbox-depth gauge (delta-updated).
            if let Some((gauge, last)) = conn.depth_gauge.as_mut() {
                let depth = conn.mailbox.as_ref().map(|rx| rx.len()).unwrap_or(0) as i64;
                gauge.add(depth - *last);
                *last = depth;
            }
            if sent > 0 {
                activity = true;
            }
        }

        // Flush write buffers.
        for conn in conns.iter_mut() {
            while !conn.wbuf.is_empty() && !conn.dead {
                match conn.stream.write(&conn.wbuf) {
                    Ok(0) => {
                        conn.dead = true;
                    }
                    Ok(n) => {
                        conn.wbuf.drain(..n);
                        activity = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => conn.dead = true,
                }
            }
            if conn.close_after_flush && conn.wbuf.is_empty() {
                conn.dead = true;
            }
        }

        // Retire dead connections.
        conns.retain(|c| {
            if c.dead {
                if let Some((name, epoch)) = &c.sub_name {
                    hub.detach(name, *epoch);
                }
                if let Some((gauge, last)) = &c.depth_gauge {
                    gauge.add(-*last);
                }
                metrics.connections.dec();
            }
            !c.dead
        });

        if !activity {
            std::thread::park_timeout(IDLE_PARK);
        }
    }
    metrics.connections.add(-(conns.len() as i64));
}

/// Handle one decoded frame on one connection. `version` is the frame's
/// envelope version (a hello pins the connection to it).
#[allow(clippy::too_many_arguments)]
fn handle_frame(
    conn: &mut Conn,
    frame: Frame<'_>,
    version: u8,
    system: &Arc<TriggerMan>,
    hub: &Arc<DeliveryHub>,
    metrics: &WireMetrics,
    pass_batch: &mut Vec<UpdateDescriptor>,
    pass_traced: &mut Vec<(TraceHandle, u64)>,
) {
    match frame {
        Frame::Hello {
            role,
            name,
            event,
            resume_from,
        } => {
            if conn.role != Role::Pending {
                conn.fail(error_code::PROTOCOL, "duplicate hello".into(), metrics);
                return;
            }
            // Pin the connection to the peer's hello version; every
            // outbound frame from here on is encoded at it.
            conn.version = version.min(VERSION);
            if role == ROLE_SOURCE {
                match system.source(&name) {
                    Ok(info) => {
                        conn.role = Role::Source;
                        conn.credits = system.config().wire_credits;
                        conn.send(
                            &Frame::HelloAck {
                                credits: conn.credits,
                                source_id: info.id.raw(),
                                resume_from: 0,
                            },
                            metrics,
                        );
                    }
                    Err(e) => {
                        conn.fail(error_code::VALIDATION, e.to_string(), metrics);
                    }
                }
            } else {
                debug_assert_eq!(role, ROLE_SUBSCRIBER); // decoder rejects others
                let (tx, rx) = unbounded();
                match hub.register(&name, &event, resume_from, tx) {
                    Ok(reg) => {
                        conn.role = Role::Subscriber;
                        conn.depth_gauge = Some((
                            system
                                .metrics_registry()
                                .gauge("tman_wire_mailbox_depth", &[("sub", &name)]),
                            0,
                        ));
                        conn.sub_name = Some((name, reg.epoch));
                        conn.mailbox = Some(rx);
                        conn.send(
                            &Frame::HelloAck {
                                credits: 0,
                                source_id: 0,
                                resume_from: reg.watermark,
                            },
                            metrics,
                        );
                        // Exactly-once catch-up: replay every unacked log
                        // row above the effective watermark, in order,
                        // before any live delivery.
                        for d in reg.replay {
                            conn.send(
                                &Frame::Notification {
                                    seq: d.seq,
                                    body: std::borrow::Cow::Owned(d.body),
                                    trace_id: d.trace_id,
                                    fire_unix_ns: d.fire_unix_ns,
                                },
                                metrics,
                            );
                            metrics.notifications.bump();
                        }
                    }
                    Err(e) => {
                        conn.fail(error_code::VALIDATION, e.to_string(), metrics);
                    }
                }
            }
        }
        Frame::UpdateBatch {
            descriptors,
            trace_ids,
            sent_unix_ns,
        } => {
            if conn.role != Role::Source {
                conn.fail(
                    error_code::PROTOCOL,
                    "update batch before source hello".into(),
                    metrics,
                );
                return;
            }
            let n = descriptors.len() as u64;
            if n > conn.credits as u64 {
                conn.fail(
                    error_code::CREDIT_OVERRUN,
                    format!("{n} descriptors with {} credits", conn.credits),
                    metrics,
                );
                return;
            }
            // Wall-clock ingest stamp: the client's v2 send stamp when
            // present, else now — either way every wire token gets one, so
            // the ingest→fire SLI covers v1 sources too (minus the network
            // hop).
            let ingest_unix = if sent_unix_ns != 0 {
                sent_unix_ns
            } else {
                unix_now_ns()
            };
            // Map the client's wall-clock send stamp onto the process-
            // local trace clock: the batch's send "happened" `age` ns ago.
            let age = unix_now_ns().saturating_sub(sent_unix_ns);
            for (i, raw) in descriptors.iter().enumerate() {
                let mut token = match UpdateDescriptor::decode(raw) {
                    Ok(t) => t,
                    Err(e) => {
                        conn.fail(error_code::PROTOCOL, e.to_string(), metrics);
                        return;
                    }
                };
                if let Err(e) = system.validate_token(&token) {
                    conn.fail(error_code::VALIDATION, e.to_string(), metrics);
                    return;
                }
                token.ingest_unix_ns = ingest_unix;
                let trace_id = trace_ids.get(i).copied().unwrap_or(0);
                if trace_id != 0 {
                    if let Some(tracer) = system.tracer() {
                        // Adopt the client's trace id (normal tail
                        // sampling applies) and synthesize the client-side
                        // send span from the batch stamp.
                        let decoded_ns = now_ns();
                        let handle = tracer.begin_with_id(trace_id);
                        if sent_unix_ns != 0 {
                            handle.record_complete(
                                SpanKind::WireSend,
                                ROOT_SPAN,
                                decoded_ns.saturating_sub(age),
                                age,
                                n,
                                0,
                            );
                        }
                        pass_traced.push((handle.clone(), decoded_ns));
                        token.trace = handle;
                    }
                }
                pass_batch.push(token);
            }
            conn.credits -= n as u32;
            conn.received += n;
            conn.pass_tokens += n;
        }
        Frame::Ack { watermark } => {
            let Some((name, _)) = conn.sub_name.clone() else {
                conn.fail(
                    error_code::PROTOCOL,
                    "ack before subscriber hello".into(),
                    metrics,
                );
                return;
            };
            match hub.ack(&name, watermark) {
                Ok(_) => metrics.acks.bump(),
                Err(e) => conn.fail(error_code::VALIDATION, e.to_string(), metrics),
            }
        }
        Frame::Goodbye => {
            conn.close_after_flush = true;
        }
        Frame::Error { .. } => {
            // Client-reported failure: close quietly.
            conn.close_after_flush = true;
        }
        // Server→client frames arriving at the server are protocol errors.
        Frame::HelloAck { .. }
        | Frame::BatchAck { .. }
        | Frame::Notification { .. }
        | Frame::Credit { .. } => {
            conn.fail(
                error_code::PROTOCOL,
                format!("unexpected {} frame", frame.kind_name()),
                metrics,
            );
        }
    }
}
