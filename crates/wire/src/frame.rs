//! The length-framed binary protocol.
//!
//! Every frame on a TriggerMan wire connection has the same envelope:
//!
//! ```text
//! offset  size  field
//! 0       2     magic  0x54 0x4D ("TM")
//! 2       1     version (1 or 2)
//! 3       1     frame type
//! 4       4     payload length, u32 LE (≤ MAX_PAYLOAD)
//! 8       n     payload
//! 8+n     4     CRC-32 (IEEE) over bytes 2..8+n, u32 LE
//! ```
//!
//! [`decode_frame`] is incremental: fed the front of a receive buffer it
//! returns `Ok(None)` ("need more bytes"), `Ok(Some((frame, consumed)))`,
//! or an error — bad magic, version skew, an oversized length prefix, a
//! CRC mismatch, an unknown type, or a malformed payload. Any error is a
//! protocol error: the connection must send [`Frame::Error`] and close,
//! because framing can no longer be trusted.
//!
//! # Version 2: trace context on the wire
//!
//! Version 2 keeps every frame type and the envelope unchanged but widens
//! two payloads so a token's trace survives the network hop:
//!
//! * [`Frame::UpdateBatch`] carries a per-descriptor `trace_id` (0 = not
//!   traced) and one wall-clock `sent_unix_ns` send stamp for the batch.
//! * [`Frame::Notification`] carries the originating token's `trace_id`
//!   and the wall-clock `fire_unix_ns` at which the delivery row was
//!   appended.
//!
//! The extra fields sit *inside* the versioned payload: a v1 encoder
//! simply omits them and a v1 decoder never sees them, so mixed-version
//! peers interoperate — each connection is pinned to
//! `min(client max, server max)` at hello time and the trace fields
//! decode as zero/absent on v1 connections.
//!
//! The bulk payloads ([`Frame::UpdateBatch`] descriptor bodies and
//! [`Frame::Notification`] bodies) are [`Cow`] slices: decoding borrows
//! straight out of the receive buffer (zero-copy — the server hands the
//! borrowed bytes to [`UpdateDescriptor::decode`] without an intermediate
//! allocation), while senders build `'static` owned frames.

use crate::crc::crc32;
use std::borrow::Cow;
use tman_common::{Result, TmanError, Tuple};
use triggerman::EventNotification;

/// Frame magic: "TM".
pub const MAGIC: [u8; 2] = [0x54, 0x4D];
/// Highest protocol version this build speaks (and the default for
/// [`encode_frame`]). [`decode_frame`] also accepts [`VERSION_1`] frames.
pub const VERSION: u8 = 2;
/// The original trace-less protocol version.
pub const VERSION_1: u8 = 1;
/// Envelope bytes before the payload.
pub const HEADER_LEN: usize = 8;
/// CRC trailer bytes.
pub const TRAILER_LEN: usize = 4;
/// Largest accepted payload. A length prefix above this is rejected
/// *before* buffering, so a corrupt length cannot make the server allocate
/// gigabytes.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Connection role declared in [`Frame::Hello`].
pub const ROLE_SOURCE: u8 = 0;
/// See [`ROLE_SOURCE`].
pub const ROLE_SUBSCRIBER: u8 = 1;

/// One protocol frame. Lifetime `'a` borrows bulk payloads from the
/// receive buffer on decode; owned (`'static`) frames are built for
/// sending.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame<'a> {
    /// Connection opener. `role` is [`ROLE_SOURCE`] or [`ROLE_SUBSCRIBER`];
    /// `name` is the data-source name (sources) or the durable subscriber
    /// name (subscribers); `event` is the subscribed event (subscribers;
    /// empty for sources); `resume_from` is the subscriber's last durably
    /// acked sequence number (0 for a fresh subscriber, ignored for
    /// sources).
    Hello {
        role: u8,
        name: String,
        event: String,
        resume_from: u64,
    },
    /// Server reply to [`Frame::Hello`]. For sources: `credits` descriptors
    /// may be sent before waiting for an ack, and `source_id` is the
    /// catalog id to stamp into descriptors. For subscribers: `resume_from`
    /// is the server's durable watermark (delivery resumes above the max of
    /// both sides' watermarks).
    HelloAck {
        credits: u32,
        source_id: u32,
        resume_from: u64,
    },
    /// A batch of encoded update descriptors from a source connection.
    /// Each element of `descriptors` is one [`UpdateDescriptor::encode`]
    /// body. On v2 connections `trace_ids[i]` is descriptor `i`'s trace id
    /// (0 = untraced) and `sent_unix_ns` is the client's wall clock when
    /// the batch was flushed; on v1 connections both are absent on the
    /// wire and decode to empty/0.
    UpdateBatch {
        descriptors: Vec<Cow<'a, [u8]>>,
        trace_ids: Vec<u64>,
        sent_unix_ns: u64,
    },
    /// Server acknowledgement of ingested descriptors: everything up to
    /// the `through`-th descriptor on this connection has been group-
    /// committed; `credits` replenishes the sender's window (0 = engine
    /// backpressure, wait for a later [`Frame::Credit`]).
    BatchAck { through: u64, credits: u32 },
    /// One event notification pushed to a subscriber: per-subscriber
    /// sequence number plus an encoded body (see
    /// [`encode_notification_body`]). On v2 connections `trace_id` is the
    /// originating token's trace id (0 = untraced) and `fire_unix_ns` is
    /// the server wall clock when the delivery row was appended; on v1
    /// connections both are absent on the wire and decode to 0.
    Notification {
        seq: u64,
        body: Cow<'a, [u8]>,
        trace_id: u64,
        fire_unix_ns: u64,
    },
    /// Subscriber → server: every notification with sequence number at or
    /// below `watermark` is fully processed and need never be redelivered.
    Ack { watermark: u64 },
    /// Standalone credit grant (backpressure release).
    Credit { credits: u32 },
    /// Fatal protocol or validation error; the sender closes after this.
    Error { code: u16, message: String },
    /// Clean shutdown of one direction.
    Goodbye,
}

const FT_HELLO: u8 = 0;
const FT_HELLO_ACK: u8 = 1;
const FT_UPDATE_BATCH: u8 = 2;
const FT_BATCH_ACK: u8 = 3;
const FT_NOTIFICATION: u8 = 4;
const FT_ACK: u8 = 5;
const FT_CREDIT: u8 = 6;
const FT_ERROR: u8 = 7;
const FT_GOODBYE: u8 = 8;

impl Frame<'_> {
    fn type_code(&self) -> u8 {
        match self {
            Frame::Hello { .. } => FT_HELLO,
            Frame::HelloAck { .. } => FT_HELLO_ACK,
            Frame::UpdateBatch { .. } => FT_UPDATE_BATCH,
            Frame::BatchAck { .. } => FT_BATCH_ACK,
            Frame::Notification { .. } => FT_NOTIFICATION,
            Frame::Ack { .. } => FT_ACK,
            Frame::Credit { .. } => FT_CREDIT,
            Frame::Error { .. } => FT_ERROR,
            Frame::Goodbye => FT_GOODBYE,
        }
    }

    /// Detach the frame from the receive buffer it was decoded out of
    /// (clients that buffer frames across reads need owned payloads; the
    /// server consumes borrowed frames in place and never pays this copy).
    pub fn into_owned(self) -> Frame<'static> {
        match self {
            Frame::Hello {
                role,
                name,
                event,
                resume_from,
            } => Frame::Hello {
                role,
                name,
                event,
                resume_from,
            },
            Frame::HelloAck {
                credits,
                source_id,
                resume_from,
            } => Frame::HelloAck {
                credits,
                source_id,
                resume_from,
            },
            Frame::UpdateBatch {
                descriptors,
                trace_ids,
                sent_unix_ns,
            } => Frame::UpdateBatch {
                descriptors: descriptors
                    .into_iter()
                    .map(|d| Cow::Owned(d.into_owned()))
                    .collect(),
                trace_ids,
                sent_unix_ns,
            },
            Frame::BatchAck { through, credits } => Frame::BatchAck { through, credits },
            Frame::Notification {
                seq,
                body,
                trace_id,
                fire_unix_ns,
            } => Frame::Notification {
                seq,
                body: Cow::Owned(body.into_owned()),
                trace_id,
                fire_unix_ns,
            },
            Frame::Ack { watermark } => Frame::Ack { watermark },
            Frame::Credit { credits } => Frame::Credit { credits },
            Frame::Error { code, message } => Frame::Error { code, message },
            Frame::Goodbye => Frame::Goodbye,
        }
    }

    /// Human label for logs/metrics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "hello",
            Frame::HelloAck { .. } => "hello_ack",
            Frame::UpdateBatch { .. } => "update_batch",
            Frame::BatchAck { .. } => "batch_ack",
            Frame::Notification { .. } => "notification",
            Frame::Ack { .. } => "ack",
            Frame::Credit { .. } => "credit",
            Frame::Error { .. } => "error",
            Frame::Goodbye => "goodbye",
        }
    }
}

// ----- little-endian payload helpers ------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}
/// Length-prefixed (u16) UTF-8 string.
fn put_str(out: &mut Vec<u8>, s: &str) -> Result<()> {
    if s.len() > u16::MAX as usize {
        return Err(TmanError::Invalid("wire string too long".into()));
    }
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

/// Bounds-checked cursor over a payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| TmanError::Corrupt("wire payload truncated".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn str(&mut self) -> Result<String> {
        let n = self.u16()? as usize;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| TmanError::Corrupt("wire string is not UTF-8".into()))
    }
    fn done(&self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(TmanError::Corrupt("trailing bytes in wire payload".into()));
        }
        Ok(())
    }
}

// ----- frame encode ------------------------------------------------------

/// Append one encoded frame (envelope + payload + CRC) to `out`, speaking
/// the current [`VERSION`].
pub fn encode_frame(frame: &Frame<'_>, out: &mut Vec<u8>) -> Result<()> {
    encode_frame_v(frame, out, VERSION)
}

/// Append one encoded frame at an explicit protocol `version` (a
/// connection pinned to a v1 peer keeps speaking v1; the trace fields are
/// simply dropped from the encoding).
pub fn encode_frame_v(frame: &Frame<'_>, out: &mut Vec<u8>, version: u8) -> Result<()> {
    if version != VERSION_1 && version != VERSION {
        return Err(TmanError::Invalid(format!(
            "cannot encode wire protocol version {version}"
        )));
    }
    let start = out.len();
    out.extend_from_slice(&MAGIC);
    out.push(version);
    out.push(frame.type_code());
    put_u32(out, 0); // length backpatched below
    let payload_start = out.len();
    match frame {
        Frame::Hello {
            role,
            name,
            event,
            resume_from,
        } => {
            out.push(*role);
            put_str(out, name)?;
            put_str(out, event)?;
            put_u64(out, *resume_from);
        }
        Frame::HelloAck {
            credits,
            source_id,
            resume_from,
        } => {
            put_u32(out, *credits);
            put_u32(out, *source_id);
            put_u64(out, *resume_from);
        }
        Frame::UpdateBatch {
            descriptors,
            trace_ids,
            sent_unix_ns,
        } => {
            if descriptors.len() > u32::MAX as usize {
                return Err(TmanError::Invalid("update batch too large".into()));
            }
            if trace_ids.len() > descriptors.len() {
                return Err(TmanError::Invalid(
                    "more trace ids than descriptors in update batch".into(),
                ));
            }
            put_u32(out, descriptors.len() as u32);
            if version >= 2 {
                put_u64(out, *sent_unix_ns);
            }
            for (i, d) in descriptors.iter().enumerate() {
                if d.len() > u32::MAX as usize {
                    return Err(TmanError::Invalid("descriptor too large".into()));
                }
                if version >= 2 {
                    put_u64(out, trace_ids.get(i).copied().unwrap_or(0));
                }
                put_u32(out, d.len() as u32);
                out.extend_from_slice(d);
            }
        }
        Frame::BatchAck { through, credits } => {
            put_u64(out, *through);
            put_u32(out, *credits);
        }
        Frame::Notification {
            seq,
            body,
            trace_id,
            fire_unix_ns,
        } => {
            put_u64(out, *seq);
            if version >= 2 {
                put_u64(out, *trace_id);
                put_u64(out, *fire_unix_ns);
            }
            out.extend_from_slice(body);
        }
        Frame::Ack { watermark } => put_u64(out, *watermark),
        Frame::Credit { credits } => put_u32(out, *credits),
        Frame::Error { code, message } => {
            put_u16(out, *code);
            put_str(out, message)?;
        }
        Frame::Goodbye => {}
    }
    let payload_len = out.len() - payload_start;
    if payload_len > MAX_PAYLOAD {
        out.truncate(start);
        return Err(TmanError::Invalid(format!(
            "frame payload {payload_len} exceeds MAX_PAYLOAD"
        )));
    }
    out[start + 4..start + 8].copy_from_slice(&(payload_len as u32).to_le_bytes());
    let crc = crc32(&out[start + 2..]);
    put_u32(out, crc);
    Ok(())
}

/// Encode a frame into a fresh buffer (tests, simple clients).
pub fn encode_frame_vec(frame: &Frame<'_>) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(64);
    encode_frame(frame, &mut out)?;
    Ok(out)
}

// ----- frame decode ------------------------------------------------------

/// Try to decode one frame from the front of `buf`.
///
/// * `Ok(None)` — `buf` holds only a prefix of a frame; read more bytes.
/// * `Ok(Some((frame, consumed)))` — one complete frame; the caller drops
///   the first `consumed` bytes.
/// * `Err(_)` — the stream is unrecoverable (bad magic, version skew,
///   oversized length, CRC mismatch, unknown type, malformed payload);
///   close the connection.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Frame<'_>, usize)>> {
    Ok(decode_frame_v(buf)?.map(|(frame, used, _version)| (frame, used)))
}

/// Like [`decode_frame`] but also reports the envelope version of the
/// decoded frame, so a server can pin each connection to the version its
/// peer's `Hello` arrived at.
pub fn decode_frame_v(buf: &[u8]) -> Result<Option<(Frame<'_>, usize, u8)>> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    if buf[0..2] != MAGIC {
        return Err(TmanError::Corrupt("bad frame magic".into()));
    }
    let version = buf[2];
    if version != VERSION_1 && version != VERSION {
        return Err(TmanError::Unsupported(format!(
            "wire protocol version {version} (this build speaks {VERSION})"
        )));
    }
    let ftype = buf[3];
    let len = u32::from_le_bytes(buf[4..8].try_into().unwrap()) as usize;
    if len > MAX_PAYLOAD {
        return Err(TmanError::Corrupt(format!(
            "frame length {len} exceeds MAX_PAYLOAD"
        )));
    }
    let total = HEADER_LEN + len + TRAILER_LEN;
    if buf.len() < total {
        return Ok(None);
    }
    let crc_stored = u32::from_le_bytes(buf[total - 4..total].try_into().unwrap());
    let crc_actual = crc32(&buf[2..HEADER_LEN + len]);
    if crc_stored != crc_actual {
        return Err(TmanError::Corrupt(format!(
            "frame CRC mismatch (stored {crc_stored:08x}, computed {crc_actual:08x})"
        )));
    }
    let payload = &buf[HEADER_LEN..HEADER_LEN + len];
    let mut c = Cursor::new(payload);
    let frame = match ftype {
        FT_HELLO => {
            let role = c.u8()?;
            if role != ROLE_SOURCE && role != ROLE_SUBSCRIBER {
                return Err(TmanError::Corrupt(format!("unknown hello role {role}")));
            }
            let name = c.str()?;
            let event = c.str()?;
            let resume_from = c.u64()?;
            Frame::Hello {
                role,
                name,
                event,
                resume_from,
            }
        }
        FT_HELLO_ACK => Frame::HelloAck {
            credits: c.u32()?,
            source_id: c.u32()?,
            resume_from: c.u64()?,
        },
        FT_UPDATE_BATCH => {
            let n = c.u32()? as usize;
            // Each descriptor needs at least its own length prefix (plus a
            // trace id on v2), so a hostile count cannot force a huge
            // allocation.
            let per_desc = if version >= 2 { 12 } else { 4 };
            if n > len / per_desc {
                return Err(TmanError::Corrupt(
                    "descriptor count exceeds payload".into(),
                ));
            }
            let sent_unix_ns = if version >= 2 { c.u64()? } else { 0 };
            let mut descriptors = Vec::with_capacity(n);
            let mut trace_ids = Vec::with_capacity(if version >= 2 { n } else { 0 });
            for _ in 0..n {
                if version >= 2 {
                    trace_ids.push(c.u64()?);
                }
                let dn = c.u32()? as usize;
                descriptors.push(Cow::Borrowed(c.take(dn)?));
            }
            Frame::UpdateBatch {
                descriptors,
                trace_ids,
                sent_unix_ns,
            }
        }
        FT_BATCH_ACK => Frame::BatchAck {
            through: c.u64()?,
            credits: c.u32()?,
        },
        FT_NOTIFICATION => {
            let seq = c.u64()?;
            let (trace_id, fire_unix_ns) = if version >= 2 {
                (c.u64()?, c.u64()?)
            } else {
                (0, 0)
            };
            let body = c.take(payload.len() - c.pos)?;
            Frame::Notification {
                seq,
                body: Cow::Borrowed(body),
                trace_id,
                fire_unix_ns,
            }
        }
        FT_ACK => Frame::Ack {
            watermark: c.u64()?,
        },
        FT_CREDIT => Frame::Credit { credits: c.u32()? },
        FT_ERROR => Frame::Error {
            code: c.u16()?,
            message: c.str()?,
        },
        FT_GOODBYE => Frame::Goodbye,
        other => {
            return Err(TmanError::Corrupt(format!("unknown frame type {other}")));
        }
    };
    c.done()?;
    Ok(Some((frame, total, version)))
}

// ----- notification bodies ----------------------------------------------

/// Encode a notification *body* (everything except the per-subscriber
/// sequence number, which lives in the [`Frame::Notification`] envelope —
/// the same body is stored in the durable delivery log and replayed to any
/// reconnecting subscriber):
///
/// ```text
/// event    u16 len + UTF-8
/// trigger  u16 len + UTF-8
/// flags    u8 (bit0 = message present, bit1 = token_seq present)
/// [message u16 len + UTF-8]
/// [token_seq i64 LE]
/// values   Tuple encoding
/// ```
pub fn encode_notification_body(n: &EventNotification) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(64);
    put_str(&mut out, &n.event)?;
    put_str(&mut out, &n.trigger)?;
    let mut flags = 0u8;
    if n.message.is_some() {
        flags |= 1;
    }
    if n.token_seq.is_some() {
        flags |= 2;
    }
    out.push(flags);
    if let Some(m) = &n.message {
        put_str(&mut out, m)?;
    }
    if let Some(o) = n.token_seq {
        put_i64(&mut out, o);
    }
    Tuple::new(n.values.clone()).encode_into(&mut out);
    Ok(out)
}

/// Inverse of [`encode_notification_body`].
pub fn decode_notification_body(buf: &[u8]) -> Result<EventNotification> {
    let mut c = Cursor::new(buf);
    let event = c.str()?;
    let trigger = c.str()?;
    let flags = c.u8()?;
    let message = if flags & 1 != 0 { Some(c.str()?) } else { None };
    let token_seq = if flags & 2 != 0 { Some(c.i64()?) } else { None };
    let mut pos = c.pos;
    let tuple = Tuple::decode_from(buf, &mut pos)
        .map_err(|e| TmanError::Corrupt(format!("notification values invalid: {e}")))?;
    if pos != buf.len() {
        return Err(TmanError::Corrupt(
            "trailing bytes in notification body".into(),
        ));
    }
    Ok(EventNotification {
        event,
        trigger,
        values: tuple.values().to_vec(),
        message,
        token_seq,
        // Trace context rides the v2 `Notification` envelope, not the
        // durable body; a decoded notification starts trace-less.
        trace: tman_telemetry::TraceHandle::none(),
        ingest_unix_ns: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tman_common::Value;

    #[test]
    fn envelope_roundtrip() {
        let f = Frame::Hello {
            role: ROLE_SUBSCRIBER,
            name: "dash-1".into(),
            event: "Fired".into(),
            resume_from: 42,
        };
        let bytes = encode_frame_vec(&f).unwrap();
        let (got, used) = decode_frame(&bytes).unwrap().unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(got, f);
        // A prefix decodes to "need more".
        assert!(decode_frame(&bytes[..bytes.len() - 1]).unwrap().is_none());
    }

    #[test]
    fn crc_flip_is_rejected() {
        let f = Frame::Ack { watermark: 7 };
        let mut bytes = encode_frame_vec(&f).unwrap();
        let idx = bytes.len() - TRAILER_LEN - 1;
        bytes[idx] ^= 0x01;
        assert!(decode_frame(&bytes).is_err());
    }

    #[test]
    fn notification_body_roundtrip() {
        let n = EventNotification {
            event: "Spike".into(),
            trigger: "t9".into(),
            values: vec![Value::str("AA"), Value::Float(1.5), Value::Null],
            message: Some("hello".into()),
            token_seq: Some(88),
            trace: tman_telemetry::TraceHandle::none(),
            ingest_unix_ns: 0,
        };
        let body = encode_notification_body(&n).unwrap();
        assert_eq!(decode_notification_body(&body).unwrap(), n);
    }

    #[test]
    fn v2_batch_and_notification_carry_trace_context() {
        let batch = Frame::UpdateBatch {
            descriptors: vec![Cow::Owned(vec![1, 2, 3]), Cow::Owned(vec![4])],
            trace_ids: vec![0x8000_0000_0000_0001, 0],
            sent_unix_ns: 1_700_000_000_000_000_000,
        };
        let bytes = encode_frame_vec(&batch).unwrap();
        let (got, used, ver) = decode_frame_v(&bytes).unwrap().unwrap();
        assert_eq!((used, ver), (bytes.len(), VERSION));
        assert_eq!(got, batch);

        let note = Frame::Notification {
            seq: 9,
            body: Cow::Owned(vec![7, 7]),
            trace_id: 42,
            fire_unix_ns: 1_700_000_000_000_000_123,
        };
        let bytes = encode_frame_vec(&note).unwrap();
        let (got, _, _) = decode_frame_v(&bytes).unwrap().unwrap();
        assert_eq!(got, note);
    }

    #[test]
    fn v1_encoding_drops_trace_context_and_still_decodes() {
        let batch = Frame::UpdateBatch {
            descriptors: vec![Cow::Owned(vec![1, 2, 3])],
            trace_ids: vec![55],
            sent_unix_ns: 99,
        };
        let mut bytes = Vec::new();
        encode_frame_v(&batch, &mut bytes, VERSION_1).unwrap();
        let (got, used, ver) = decode_frame_v(&bytes).unwrap().unwrap();
        assert_eq!((used, ver), (bytes.len(), VERSION_1));
        match got {
            Frame::UpdateBatch {
                descriptors,
                trace_ids,
                sent_unix_ns,
            } => {
                assert_eq!(descriptors, vec![Cow::Borrowed(&[1u8, 2, 3][..])]);
                assert!(trace_ids.is_empty());
                assert_eq!(sent_unix_ns, 0);
            }
            other => panic!("wrong frame {other:?}"),
        }

        let note = Frame::Notification {
            seq: 3,
            body: Cow::Owned(vec![9]),
            trace_id: 77,
            fire_unix_ns: 88,
        };
        let mut bytes = Vec::new();
        encode_frame_v(&note, &mut bytes, VERSION_1).unwrap();
        let (got, _, ver) = decode_frame_v(&bytes).unwrap().unwrap();
        assert_eq!(ver, VERSION_1);
        match got {
            Frame::Notification {
                seq,
                body,
                trace_id,
                fire_unix_ns,
            } => {
                assert_eq!((seq, trace_id, fire_unix_ns), (3, 0, 0));
                assert_eq!(&body[..], &[9]);
            }
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn unknown_versions_are_rejected() {
        let f = Frame::Ack { watermark: 1 };
        let mut bytes = encode_frame_vec(&f).unwrap();
        bytes[2] = VERSION + 1;
        assert!(decode_frame(&bytes).is_err());
        let mut out = Vec::new();
        assert!(encode_frame_v(&f, &mut out, VERSION + 1).is_err());
    }
}
