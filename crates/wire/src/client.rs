//! Blocking client side of the wire protocol: [`RemoteDataSource`] feeds
//! update descriptors into a remote engine under credit-based flow
//! control, and [`RemoteSubscriber`] receives durable notification
//! streams with watermark acks.
//!
//! Both are deliberately simple synchronous `TcpStream` wrappers — the
//! scale lives on the server, which multiplexes thousands of these on one
//! poll loop. A data-source program buffers locally and [`flush`]es in
//! credit-window chunks, blocking only when the server withholds credits
//! (engine backpressure); [`sync`] additionally waits until every sent
//! descriptor has been group-committed. A subscriber processes
//! notifications and periodically [`ack`]s its watermark; after a crash on
//! either side it reconnects with that watermark and receives every fire
//! above it exactly once — the replay comes from the server's durable
//! delivery log.
//!
//! [`flush`]: RemoteDataSource::flush
//! [`sync`]: RemoteDataSource::sync
//! [`ack`]: RemoteSubscriber::ack

use std::borrow::Cow;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use tman_common::{DataSourceId, Result, TmanError, Tuple, UpdateDescriptor, Value};
use tman_telemetry::unix_now_ns;
use triggerman::EventNotification;

use crate::frame::{
    decode_frame, decode_notification_body, encode_frame_v, Frame, ROLE_SOURCE, ROLE_SUBSCRIBER,
    VERSION, VERSION_1,
};

/// One framed, blocking TCP connection, pinned to a protocol version.
struct FrameStream {
    stream: TcpStream,
    rbuf: Vec<u8>,
    version: u8,
}

impl FrameStream {
    fn connect(addr: &str, version: u8) -> Result<FrameStream> {
        let stream =
            TcpStream::connect(addr).map_err(|e| TmanError::Io(format!("connect {addr}: {e}")))?;
        let _ = stream.set_nodelay(true);
        Ok(FrameStream {
            stream,
            rbuf: Vec::new(),
            version,
        })
    }

    fn send(&mut self, frame: &Frame<'_>) -> Result<()> {
        let mut out = Vec::with_capacity(64);
        encode_frame_v(frame, &mut out, self.version)?;
        self.stream
            .write_all(&out)
            .map_err(|e| TmanError::Io(format!("wire send: {e}")))
    }

    /// Receive one frame. `timeout: None` blocks until a frame or EOF;
    /// with a timeout, `Ok(None)` means it elapsed first.
    fn recv(&mut self, timeout: Option<Duration>) -> Result<Option<Frame<'static>>> {
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            if let Some((frame, used)) = decode_frame(&self.rbuf)? {
                let owned = frame.into_owned();
                self.rbuf.drain(..used);
                return Ok(Some(owned));
            }
            match deadline {
                Some(dl) => {
                    let now = Instant::now();
                    if now >= dl {
                        return Ok(None);
                    }
                    let _ = self.stream.set_read_timeout(Some(dl - now));
                }
                None => {
                    let _ = self.stream.set_read_timeout(None);
                }
            }
            let mut buf = [0u8; 8192];
            match self.stream.read(&mut buf) {
                Ok(0) => return Err(TmanError::Io("wire connection closed".into())),
                Ok(n) => self.rbuf.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(None)
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(TmanError::Io(format!("wire recv: {e}"))),
            }
        }
    }

    /// Block for a frame (no timeout).
    fn recv_blocking(&mut self) -> Result<Frame<'static>> {
        match self.recv(None)? {
            Some(f) => Ok(f),
            None => Err(TmanError::Io("wire connection closed".into())),
        }
    }
}

fn server_error(code: u16, message: &str) -> TmanError {
    TmanError::Io(format!("server error {code}: {message}"))
}

/// Open a connection and complete the hello handshake. The first attempt
/// speaks the current [`VERSION`]; a server that rejects it by version
/// (an older build names the version in its error message) gets one
/// retry on a fresh connection pinned to [`VERSION_1`], so new clients
/// keep working against old servers — minus the trace fields, which v1
/// framing simply cannot carry.
fn connect_hello(addr: &str, hello: &Frame<'static>) -> Result<(FrameStream, Frame<'static>)> {
    let mut version = VERSION;
    loop {
        let mut fs = FrameStream::connect(addr, version)?;
        fs.send(hello)?;
        match fs.recv_blocking()? {
            Frame::Error { message, .. }
                if version > VERSION_1 && message.contains("wire protocol version") =>
            {
                version = VERSION_1;
            }
            Frame::Error { code, message } => return Err(server_error(code, &message)),
            ack => return Ok((fs, ack)),
        }
    }
}

/// Handle to a remote TriggerMan wire endpoint. Cheap; each
/// [`data_source`](RemoteClient::data_source) /
/// [`subscribe`](RemoteClient::subscribe) call opens its own connection.
pub struct RemoteClient {
    addr: String,
}

impl RemoteClient {
    /// Point at a server address (e.g. `"127.0.0.1:7070"`). No I/O yet.
    pub fn new(addr: impl Into<String>) -> RemoteClient {
        RemoteClient { addr: addr.into() }
    }

    /// The configured server address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Open a feeding connection for the named (already-created) data
    /// source.
    pub fn data_source(&self, source: &str) -> Result<RemoteDataSource> {
        RemoteDataSource::connect(&self.addr, source)
    }

    /// Open a durable subscription. `name` identifies the subscriber
    /// across reconnects; `event` filters (empty or `"*"` for all);
    /// `resume_from` is the client's own watermark — `0` for a fresh
    /// subscriber.
    pub fn subscribe(&self, name: &str, event: &str, resume_from: u64) -> Result<RemoteSubscriber> {
        RemoteSubscriber::connect(&self.addr, name, event, resume_from)
    }
}

/// A source-role connection: buffers descriptors locally and ships them in
/// credit-window batches.
pub struct RemoteDataSource {
    fs: FrameStream,
    source_id: DataSourceId,
    credits: u32,
    /// Descriptors sent over the connection's lifetime.
    sent: u64,
    /// Descriptors the server has group-committed (from `BatchAck`s).
    acked: u64,
    /// Encoded descriptors (plus their trace ids) not yet sent.
    buffer: Vec<(Vec<u8>, u64)>,
    /// Next client-originated trace id. Client ids live in the high-bit
    /// half of the id space (seeded from pid + wall clock), disjoint from
    /// server-originated ids, so adopting one on the server can't collide
    /// with the server tracer's own counter.
    next_trace: u64,
}

impl RemoteDataSource {
    fn connect(addr: &str, source: &str) -> Result<RemoteDataSource> {
        let hello = Frame::Hello {
            role: ROLE_SOURCE,
            name: source.to_string(),
            event: String::new(),
            resume_from: 0,
        };
        let (fs, ack) = connect_hello(addr, &hello)?;
        match ack {
            Frame::HelloAck {
                credits, source_id, ..
            } => Ok(RemoteDataSource {
                fs,
                source_id: DataSourceId(source_id),
                credits,
                sent: 0,
                acked: 0,
                buffer: Vec::new(),
                next_trace: (u64::from(std::process::id()) << 32) ^ unix_now_ns(),
            }),
            other => Err(TmanError::Io(format!(
                "expected hello ack, got {}",
                other.kind_name()
            ))),
        }
    }

    /// The server-resolved catalog id of this source.
    pub fn source_id(&self) -> DataSourceId {
        self.source_id
    }

    /// Buffer an insert of `values` (call [`flush`](Self::flush) to ship).
    /// Returns the descriptor's trace id.
    pub fn insert(&mut self, values: Vec<Value>) -> Result<u64> {
        self.push(UpdateDescriptor::insert(self.source_id, Tuple::new(values)))
    }

    /// Buffer an arbitrary pre-built descriptor. Returns the trace id the
    /// descriptor will carry on the wire (a v2 server with tracing enabled
    /// adopts it, so the client can correlate its sends with server-side
    /// span trees; a v1 connection silently drops it).
    pub fn push(&mut self, token: UpdateDescriptor) -> Result<u64> {
        self.next_trace = self.next_trace.wrapping_add(1);
        let trace_id = (1 << 63) | (self.next_trace & (u64::MAX >> 1));
        self.buffer.push((token.encode(), trace_id));
        Ok(trace_id)
    }

    /// Descriptors buffered but not yet sent.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Ship everything buffered, in chunks no larger than the current
    /// credit window. Blocks while the server withholds credits
    /// (backpressure) — never drops.
    pub fn flush(&mut self) -> Result<()> {
        while !self.buffer.is_empty() {
            while self.credits == 0 {
                self.pump(None)?;
            }
            let take = (self.credits as usize).min(self.buffer.len());
            let descriptors: Vec<Cow<'_, [u8]>> = self.buffer[..take]
                .iter()
                .map(|(d, _)| Cow::Borrowed(d.as_slice()))
                .collect();
            let trace_ids: Vec<u64> = self.buffer[..take].iter().map(|(_, t)| *t).collect();
            self.fs.send(&Frame::UpdateBatch {
                descriptors,
                trace_ids,
                sent_unix_ns: unix_now_ns(),
            })?;
            self.buffer.drain(..take);
            self.credits -= take as u32;
            self.sent += take as u64;
        }
        Ok(())
    }

    /// [`flush`](Self::flush), then block until the server has group-
    /// committed every descriptor sent on this connection. After `sync`
    /// returns, the updates are as durable as the engine's queue mode
    /// makes them.
    pub fn sync(&mut self) -> Result<()> {
        self.flush()?;
        while self.acked < self.sent {
            self.pump(None)?;
        }
        Ok(())
    }

    /// Descriptors acknowledged as committed so far.
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Process one server frame (acks, credit grants, errors).
    fn pump(&mut self, timeout: Option<Duration>) -> Result<()> {
        let Some(frame) = self.fs.recv(timeout)? else {
            return Ok(());
        };
        match frame {
            Frame::BatchAck { through, credits } => {
                self.acked = self.acked.max(through);
                self.credits += credits;
            }
            Frame::Credit { credits } => self.credits += credits,
            Frame::Error { code, message } => return Err(server_error(code, &message)),
            _ => {} // nothing else is meaningful on a source connection
        }
        Ok(())
    }

    /// Polite close (flushes first).
    pub fn close(mut self) -> Result<()> {
        self.flush()?;
        self.fs.send(&Frame::Goodbye)
    }
}

/// One delivery as received by a subscriber, including the wire-level
/// trace context a v2 server attaches (zeroes over a v1 connection).
#[derive(Debug, Clone)]
pub struct ReceivedNotification {
    /// Per-subscriber sequence number; pass to [`RemoteSubscriber::ack`].
    pub seq: u64,
    /// Trace id of the originating token (0 if untraced or v1 peer).
    pub trace_id: u64,
    /// Server wall clock (unix ns) when the fire was published.
    pub fire_unix_ns: u64,
    /// The decoded notification body.
    pub note: EventNotification,
}

/// A subscriber-role connection: a durable, watermark-acked notification
/// stream.
pub struct RemoteSubscriber {
    fs: FrameStream,
    watermark: u64,
}

impl RemoteSubscriber {
    fn connect(addr: &str, name: &str, event: &str, resume_from: u64) -> Result<RemoteSubscriber> {
        let hello = Frame::Hello {
            role: ROLE_SUBSCRIBER,
            name: name.to_string(),
            event: event.to_string(),
            resume_from,
        };
        let (fs, ack) = connect_hello(addr, &hello)?;
        match ack {
            Frame::HelloAck { resume_from, .. } => Ok(RemoteSubscriber {
                fs,
                watermark: resume_from,
            }),
            other => Err(TmanError::Io(format!(
                "expected hello ack, got {}",
                other.kind_name()
            ))),
        }
    }

    /// The effective watermark negotiated at connect time (max of the
    /// server's durable row and the `resume_from` this client presented):
    /// the first delivery will have sequence number above it.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Receive the next notification, waiting up to `timeout`. Returns the
    /// per-subscriber sequence number (pass it to [`ack`](Self::ack) once
    /// processed) and the decoded notification.
    pub fn next(&mut self, timeout: Duration) -> Result<Option<(u64, EventNotification)>> {
        Ok(self.next_full(timeout)?.map(|r| (r.seq, r.note)))
    }

    /// Like [`next`](Self::next) but exposes the wire trace context
    /// (trace id + server fire timestamp) alongside the notification.
    pub fn next_full(&mut self, timeout: Duration) -> Result<Option<ReceivedNotification>> {
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            match self.fs.recv(Some(deadline - now))? {
                Some(Frame::Notification {
                    seq,
                    body,
                    trace_id,
                    fire_unix_ns,
                }) => {
                    let note = decode_notification_body(&body)?;
                    return Ok(Some(ReceivedNotification {
                        seq,
                        trace_id,
                        fire_unix_ns,
                        note,
                    }));
                }
                Some(Frame::Error { code, message }) => return Err(server_error(code, &message)),
                Some(_) | None => continue,
            }
        }
    }

    /// Acknowledge every delivery with sequence number at or below
    /// `through`. The server advances the durable watermark; after a crash
    /// and reconnect, delivery resumes strictly above it.
    pub fn ack(&mut self, through: u64) -> Result<()> {
        self.fs.send(&Frame::Ack { watermark: through })
    }

    /// Polite close.
    pub fn close(mut self) -> Result<()> {
        self.fs.send(&Frame::Goodbye)
    }
}
