//! Blocking client side of the wire protocol: [`RemoteDataSource`] feeds
//! update descriptors into a remote engine under credit-based flow
//! control, and [`RemoteSubscriber`] receives durable notification
//! streams with watermark acks.
//!
//! Both are deliberately simple synchronous `TcpStream` wrappers — the
//! scale lives on the server, which multiplexes thousands of these on one
//! poll loop. A data-source program buffers locally and [`flush`]es in
//! credit-window chunks, blocking only when the server withholds credits
//! (engine backpressure); [`sync`] additionally waits until every sent
//! descriptor has been group-committed. A subscriber processes
//! notifications and periodically [`ack`]s its watermark; after a crash on
//! either side it reconnects with that watermark and receives every fire
//! above it exactly once — the replay comes from the server's durable
//! delivery log.
//!
//! [`flush`]: RemoteDataSource::flush
//! [`sync`]: RemoteDataSource::sync
//! [`ack`]: RemoteSubscriber::ack

use std::borrow::Cow;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use tman_common::{DataSourceId, Result, TmanError, Tuple, UpdateDescriptor, Value};
use triggerman::EventNotification;

use crate::frame::{
    decode_frame, decode_notification_body, encode_frame, Frame, ROLE_SOURCE, ROLE_SUBSCRIBER,
};

/// One framed, blocking TCP connection.
struct FrameStream {
    stream: TcpStream,
    rbuf: Vec<u8>,
}

impl FrameStream {
    fn connect(addr: &str) -> Result<FrameStream> {
        let stream =
            TcpStream::connect(addr).map_err(|e| TmanError::Io(format!("connect {addr}: {e}")))?;
        let _ = stream.set_nodelay(true);
        Ok(FrameStream {
            stream,
            rbuf: Vec::new(),
        })
    }

    fn send(&mut self, frame: &Frame<'_>) -> Result<()> {
        let mut out = Vec::with_capacity(64);
        encode_frame(frame, &mut out)?;
        self.stream
            .write_all(&out)
            .map_err(|e| TmanError::Io(format!("wire send: {e}")))
    }

    /// Receive one frame. `timeout: None` blocks until a frame or EOF;
    /// with a timeout, `Ok(None)` means it elapsed first.
    fn recv(&mut self, timeout: Option<Duration>) -> Result<Option<Frame<'static>>> {
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            if let Some((frame, used)) = decode_frame(&self.rbuf)? {
                let owned = frame.into_owned();
                self.rbuf.drain(..used);
                return Ok(Some(owned));
            }
            match deadline {
                Some(dl) => {
                    let now = Instant::now();
                    if now >= dl {
                        return Ok(None);
                    }
                    let _ = self.stream.set_read_timeout(Some(dl - now));
                }
                None => {
                    let _ = self.stream.set_read_timeout(None);
                }
            }
            let mut buf = [0u8; 8192];
            match self.stream.read(&mut buf) {
                Ok(0) => return Err(TmanError::Io("wire connection closed".into())),
                Ok(n) => self.rbuf.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(None)
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(TmanError::Io(format!("wire recv: {e}"))),
            }
        }
    }

    /// Block for a frame (no timeout).
    fn recv_blocking(&mut self) -> Result<Frame<'static>> {
        match self.recv(None)? {
            Some(f) => Ok(f),
            None => Err(TmanError::Io("wire connection closed".into())),
        }
    }
}

fn server_error(code: u16, message: &str) -> TmanError {
    TmanError::Io(format!("server error {code}: {message}"))
}

/// Handle to a remote TriggerMan wire endpoint. Cheap; each
/// [`data_source`](RemoteClient::data_source) /
/// [`subscribe`](RemoteClient::subscribe) call opens its own connection.
pub struct RemoteClient {
    addr: String,
}

impl RemoteClient {
    /// Point at a server address (e.g. `"127.0.0.1:7070"`). No I/O yet.
    pub fn new(addr: impl Into<String>) -> RemoteClient {
        RemoteClient { addr: addr.into() }
    }

    /// The configured server address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Open a feeding connection for the named (already-created) data
    /// source.
    pub fn data_source(&self, source: &str) -> Result<RemoteDataSource> {
        RemoteDataSource::connect(&self.addr, source)
    }

    /// Open a durable subscription. `name` identifies the subscriber
    /// across reconnects; `event` filters (empty or `"*"` for all);
    /// `resume_from` is the client's own watermark — `0` for a fresh
    /// subscriber.
    pub fn subscribe(&self, name: &str, event: &str, resume_from: u64) -> Result<RemoteSubscriber> {
        RemoteSubscriber::connect(&self.addr, name, event, resume_from)
    }
}

/// A source-role connection: buffers descriptors locally and ships them in
/// credit-window batches.
pub struct RemoteDataSource {
    fs: FrameStream,
    source_id: DataSourceId,
    credits: u32,
    /// Descriptors sent over the connection's lifetime.
    sent: u64,
    /// Descriptors the server has group-committed (from `BatchAck`s).
    acked: u64,
    /// Encoded descriptors not yet sent.
    buffer: Vec<Vec<u8>>,
}

impl RemoteDataSource {
    fn connect(addr: &str, source: &str) -> Result<RemoteDataSource> {
        let mut fs = FrameStream::connect(addr)?;
        fs.send(&Frame::Hello {
            role: ROLE_SOURCE,
            name: source.to_string(),
            event: String::new(),
            resume_from: 0,
        })?;
        match fs.recv_blocking()? {
            Frame::HelloAck {
                credits, source_id, ..
            } => Ok(RemoteDataSource {
                fs,
                source_id: DataSourceId(source_id),
                credits,
                sent: 0,
                acked: 0,
                buffer: Vec::new(),
            }),
            Frame::Error { code, message } => Err(server_error(code, &message)),
            other => Err(TmanError::Io(format!(
                "expected hello ack, got {}",
                other.kind_name()
            ))),
        }
    }

    /// The server-resolved catalog id of this source.
    pub fn source_id(&self) -> DataSourceId {
        self.source_id
    }

    /// Buffer an insert of `values` (call [`flush`](Self::flush) to ship).
    pub fn insert(&mut self, values: Vec<Value>) -> Result<()> {
        self.push(UpdateDescriptor::insert(self.source_id, Tuple::new(values)))
    }

    /// Buffer an arbitrary pre-built descriptor.
    pub fn push(&mut self, token: UpdateDescriptor) -> Result<()> {
        self.buffer.push(token.encode());
        Ok(())
    }

    /// Descriptors buffered but not yet sent.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Ship everything buffered, in chunks no larger than the current
    /// credit window. Blocks while the server withholds credits
    /// (backpressure) — never drops.
    pub fn flush(&mut self) -> Result<()> {
        while !self.buffer.is_empty() {
            while self.credits == 0 {
                self.pump(None)?;
            }
            let take = (self.credits as usize).min(self.buffer.len());
            let descriptors: Vec<Cow<'_, [u8]>> = self.buffer[..take]
                .iter()
                .map(|d| Cow::Borrowed(d.as_slice()))
                .collect();
            self.fs.send(&Frame::UpdateBatch { descriptors })?;
            self.buffer.drain(..take);
            self.credits -= take as u32;
            self.sent += take as u64;
        }
        Ok(())
    }

    /// [`flush`](Self::flush), then block until the server has group-
    /// committed every descriptor sent on this connection. After `sync`
    /// returns, the updates are as durable as the engine's queue mode
    /// makes them.
    pub fn sync(&mut self) -> Result<()> {
        self.flush()?;
        while self.acked < self.sent {
            self.pump(None)?;
        }
        Ok(())
    }

    /// Descriptors acknowledged as committed so far.
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Process one server frame (acks, credit grants, errors).
    fn pump(&mut self, timeout: Option<Duration>) -> Result<()> {
        let Some(frame) = self.fs.recv(timeout)? else {
            return Ok(());
        };
        match frame {
            Frame::BatchAck { through, credits } => {
                self.acked = self.acked.max(through);
                self.credits += credits;
            }
            Frame::Credit { credits } => self.credits += credits,
            Frame::Error { code, message } => return Err(server_error(code, &message)),
            _ => {} // nothing else is meaningful on a source connection
        }
        Ok(())
    }

    /// Polite close (flushes first).
    pub fn close(mut self) -> Result<()> {
        self.flush()?;
        self.fs.send(&Frame::Goodbye)
    }
}

/// A subscriber-role connection: a durable, watermark-acked notification
/// stream.
pub struct RemoteSubscriber {
    fs: FrameStream,
    watermark: u64,
}

impl RemoteSubscriber {
    fn connect(addr: &str, name: &str, event: &str, resume_from: u64) -> Result<RemoteSubscriber> {
        let mut fs = FrameStream::connect(addr)?;
        fs.send(&Frame::Hello {
            role: ROLE_SUBSCRIBER,
            name: name.to_string(),
            event: event.to_string(),
            resume_from,
        })?;
        match fs.recv_blocking()? {
            Frame::HelloAck { resume_from, .. } => Ok(RemoteSubscriber {
                fs,
                watermark: resume_from,
            }),
            Frame::Error { code, message } => Err(server_error(code, &message)),
            other => Err(TmanError::Io(format!(
                "expected hello ack, got {}",
                other.kind_name()
            ))),
        }
    }

    /// The effective watermark negotiated at connect time (max of the
    /// server's durable row and the `resume_from` this client presented):
    /// the first delivery will have sequence number above it.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Receive the next notification, waiting up to `timeout`. Returns the
    /// per-subscriber sequence number (pass it to [`ack`](Self::ack) once
    /// processed) and the decoded notification.
    pub fn next(&mut self, timeout: Duration) -> Result<Option<(u64, EventNotification)>> {
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            match self.fs.recv(Some(deadline - now))? {
                Some(Frame::Notification { seq, body }) => {
                    let n = decode_notification_body(&body)?;
                    return Ok(Some((seq, n)));
                }
                Some(Frame::Error { code, message }) => return Err(server_error(code, &message)),
                Some(_) | None => continue,
            }
        }
    }

    /// Acknowledge every delivery with sequence number at or below
    /// `through`. The server advances the durable watermark; after a crash
    /// and reconnect, delivery resumes strictly above it.
    pub fn ack(&mut self, through: u64) -> Result<()> {
        self.fs.send(&Frame::Ack { watermark: through })
    }

    /// Polite close.
    pub fn close(mut self) -> Result<()> {
        self.fs.send(&Frame::Goodbye)
    }
}
