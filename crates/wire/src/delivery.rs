//! Durable subscriber delivery: the server side of the end-to-end
//! watermark/ack protocol.
//!
//! The engine's update queue already gives *token* processing an
//! at-least-once contract (PR 5): un-acked tokens are re-processed after a
//! crash. That re-processing re-runs rule actions, which re-publishes
//! their notifications — so a naive delivery tier would double-deliver
//! every fire in the redelivery window. The [`DeliveryHub`] closes that
//! window and extends the watermark protocol out to remote subscribers:
//!
//! * It registers as a synchronous [`NotificationSink`] on the engine's
//!   [`EventBus`](triggerman::EventBus), so every notification is appended
//!   to a durable *delivery log* (`wire_delivery_log`) **before** the token
//!   that produced it can be acknowledged back to the update queue.
//! * Each subscriber owns a row in `wire_subscriber` holding its durable
//!   ack **watermark** (highest fully-processed per-subscriber sequence
//!   number) and **origin high-water** (highest token qid whose
//!   notifications were all acked). Acks advance the row *first*, then
//!   delete the covered log rows — the same advance-then-delete ordering
//!   the queue uses, so a crash leaves a duplicate row behind the
//!   watermark, never a lost one (duplicates are dropped at open).
//! * When a crashed engine re-processes a token, the re-published
//!   notifications are deduplicated against the recovered log: a token
//!   origin at or below the subscriber's origin high-water appends
//!   nothing, and for a partially-durable origin the first
//!   `recovered_count` re-publishes are suppressed (those rows are already
//!   in the log and will be replayed from it).
//! * A subscriber reconnecting after a crash presents its own watermark
//!   (`resume_from`), which is applied as an implicit ack; the hub then
//!   replays every resident log row above the effective watermark in
//!   sequence order. The subscriber therefore receives every fire above
//!   its watermark exactly once.
//!
//! Sequence numbers are reproducible across crash incarnations because
//! per-subscriber appends are origin-ordered (tokens are processed in qid
//! order on the redelivery path) and a token's action order is
//! deterministic — which is what makes a client-side watermark meaningful
//! against a recovered server. Durability granularity is the engine
//! checkpoint, shared with the update queue: both live in the same
//! buffer pool, so a checkpoint captures queue state and delivery log
//! consistently.

use crossbeam::channel::Sender;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use tman_common::fxhash::FxHashMap;
use tman_common::hex::{hex_decode, hex_encode};
use tman_common::stats::Counter;
use tman_common::{Column, DataType, Result, Schema, TmanError, Value};
use tman_sql::{Database, Table};
use tman_storage::RecordId;
use triggerman::{EventNotification, NotificationSink};

use crate::frame::encode_notification_body;

/// Durable subscriber registry: `(name, event, watermark, origin_high)`.
pub const SUBSCRIBER_TABLE: &str = "wire_subscriber";
/// Durable delivery log: `(sub, seq, origin, body)`.
pub const DELIVERY_LOG_TABLE: &str = "wire_delivery_log";

/// One undelivered (or unacked) log row held resident for replay.
struct LogRow {
    /// Token origin qid (`-1` for volatile/untracked tokens).
    origin: i64,
    /// Record id of the durable row (for deletion on ack).
    rid: RecordId,
    /// Encoded notification body (see
    /// [`encode_notification_body`](crate::frame::encode_notification_body)).
    body: Vec<u8>,
}

/// Per-subscriber delivery state. Resident rows are bounded by how far the
/// subscriber's acks lag its deliveries — the same back-of-queue bound the
/// update queue's in-flight map has.
struct SubState {
    /// Event filter, lowercased; empty or `"*"` matches every event.
    event: String,
    /// Highest per-subscriber sequence number durably acked.
    watermark: u64,
    /// Highest token origin all of whose notifications have been acked;
    /// re-publishes of origins at or below it append nothing.
    origin_high: i64,
    /// Next sequence number to assign.
    next_seq: u64,
    /// Record id of this subscriber's `wire_subscriber` row.
    row_rid: RecordId,
    /// Unacked log rows by sequence number, ready for replay.
    resident: BTreeMap<u64, LogRow>,
    /// Log rows per origin found durable at open — re-publishes of that
    /// origin skip this many appends (they are already in `resident`).
    recovered: FxHashMap<i64, u32>,
    /// Appends observed per origin in this incarnation (the `j` index the
    /// recovered counts are compared against).
    replayed: FxHashMap<i64, u32>,
    /// Live outbound channel to the connected subscriber, if any. Carries
    /// `(seq, body)`; dropped on send failure (connection gone).
    mailbox: Option<Sender<(u64, Vec<u8>)>>,
    /// Registration epoch, bumped on every [`DeliveryHub::register`]: a
    /// detach from a stale connection (reconnect raced the old socket's
    /// EOF) must not clear the new registration's mailbox.
    epoch: u64,
}

impl SubState {
    fn matches(&self, event: &str) -> bool {
        self.event.is_empty() || self.event == "*" || self.event.eq_ignore_ascii_case(event)
    }
}

fn normalize_event(event: &str) -> String {
    let e = event.trim().to_ascii_lowercase();
    if e == "*" {
        String::new()
    } else {
        e
    }
}

/// Result of [`DeliveryHub::register`].
pub struct Registration {
    /// Effective watermark: max of the server's durable row and the
    /// client's `resume_from`. Deliveries resume strictly above it.
    pub watermark: u64,
    /// Registration epoch to pass back to [`DeliveryHub::detach`].
    pub epoch: u64,
    /// Unacked `(seq, body)` log rows above the watermark, in order —
    /// the exactly-once catch-up stream.
    pub replay: Vec<(u64, Vec<u8>)>,
}

/// The durable delivery tier. One per engine; shared between the
/// [`EventBus`](triggerman::EventBus) sink registration and the wire
/// server's subscriber connections.
pub struct DeliveryHub {
    subs_table: Arc<Table>,
    log_table: Arc<Table>,
    state: Mutex<FxHashMap<String, SubState>>,
    /// `tman_wire_delivery_appends_total`: log rows written.
    appends: Arc<Counter>,
    /// `tman_wire_redelivery_suppressed_total`: re-published notifications
    /// deduplicated against the recovered log.
    suppressed: Arc<Counter>,
    /// `tman_wire_delivery_acked_total`: log rows retired by acks.
    acked_rows: Arc<Counter>,
    /// Log rows dropped at open (acked in the crash window, orphaned, or
    /// corrupt).
    dedup_dropped: Arc<Counter>,
    /// Append/encode failures (the volatile fanout still delivers; durable
    /// replay for that notification is lost).
    errors: Arc<Counter>,
}

impl DeliveryHub {
    /// Open (or create) the delivery tables in `db` and recover
    /// subscriber state: load watermarks, drop log rows at or below them
    /// (the ack-then-delete crash window), and index the surviving rows
    /// for replay and redelivery dedup.
    pub fn open(db: &Database) -> Result<Arc<DeliveryHub>> {
        let subs_table = if db.has_table(SUBSCRIBER_TABLE) {
            db.table(SUBSCRIBER_TABLE)?
        } else {
            db.create_table(
                SUBSCRIBER_TABLE,
                Schema::new(vec![
                    Column::new("name", DataType::Varchar(255)),
                    Column::new("event", DataType::Varchar(255)),
                    Column::new("watermark", DataType::Int),
                    Column::new("origin_high", DataType::Int),
                ])?,
            )?
        };
        let log_table = if db.has_table(DELIVERY_LOG_TABLE) {
            db.table(DELIVERY_LOG_TABLE)?
        } else {
            db.create_table(
                DELIVERY_LOG_TABLE,
                Schema::new(vec![
                    Column::new("sub", DataType::Varchar(255)),
                    Column::new("seq", DataType::Int),
                    Column::new("origin", DataType::Int),
                    Column::new("body", DataType::Varchar(65535)),
                ])?,
            )?
        };
        let dedup_dropped = Arc::new(Counter::default());
        let mut subs: FxHashMap<String, SubState> = FxHashMap::default();
        subs_table.scan(|rid, row| {
            let name = row.get(0).as_str().unwrap_or("").to_string();
            if name.is_empty() {
                return Ok(true);
            }
            let watermark = row.get(2).as_i64().unwrap_or(0).max(0) as u64;
            subs.insert(
                name,
                SubState {
                    event: normalize_event(row.get(1).as_str().unwrap_or("")),
                    watermark,
                    origin_high: row.get(3).as_i64().unwrap_or(-1),
                    next_seq: watermark + 1,
                    row_rid: rid,
                    resident: BTreeMap::new(),
                    recovered: FxHashMap::default(),
                    replayed: FxHashMap::default(),
                    mailbox: None,
                    epoch: 0,
                },
            );
            Ok(true)
        })?;
        // Recover the log. Rows at or below a subscriber's watermark were
        // acked before the crash but their deletion never reached disk;
        // rows for unknown subscribers are orphans; undecodable bodies are
        // torn. All three are dropped, counted, never redelivered.
        let mut stale: Vec<RecordId> = Vec::new();
        log_table.scan(|rid, row| {
            let sub = row.get(0).as_str().unwrap_or("").to_string();
            let seq = row.get(1).as_i64().unwrap_or(0).max(0) as u64;
            let origin = row.get(2).as_i64().unwrap_or(-1);
            let body = row.get(3).as_str().and_then(|s| hex_decode(s).ok());
            match (subs.get_mut(&sub), body) {
                (Some(st), Some(body)) if seq > st.watermark => {
                    if origin >= 0 {
                        *st.recovered.entry(origin).or_insert(0) += 1;
                    }
                    st.resident.insert(seq, LogRow { origin, rid, body });
                }
                _ => stale.push(rid),
            }
            Ok(true)
        })?;
        for rid in stale {
            log_table.delete(rid)?;
            dedup_dropped.bump();
        }
        for st in subs.values_mut() {
            if let Some((&max_seq, _)) = st.resident.iter().next_back() {
                st.next_seq = max_seq + 1;
            }
        }
        Ok(Arc::new(DeliveryHub {
            subs_table,
            log_table,
            state: Mutex::new(subs),
            appends: Arc::new(Counter::default()),
            suppressed: Arc::new(Counter::default()),
            acked_rows: Arc::new(Counter::default()),
            dedup_dropped,
            errors: Arc::new(Counter::default()),
        }))
    }

    /// Register (or re-register after reconnect) a durable subscriber.
    /// `resume_from` is the client's own watermark and is applied as an
    /// implicit ack, so the effective watermark is the max of both sides'.
    /// Live deliveries arrive on `mailbox`'s receiver end after the
    /// returned [`Registration::replay`] has been consumed.
    pub fn register(
        &self,
        name: &str,
        event: &str,
        resume_from: u64,
        mailbox: Sender<(u64, Vec<u8>)>,
    ) -> Result<Registration> {
        if name.trim().is_empty() {
            return Err(TmanError::Invalid("subscriber name is empty".into()));
        }
        {
            let mut state = self.state.lock();
            if !state.contains_key(name) {
                let rid = self.subs_table.insert(vec![
                    Value::str(name),
                    Value::str(event),
                    Value::Int(0),
                    Value::Int(-1),
                ])?;
                state.insert(
                    name.to_string(),
                    SubState {
                        event: normalize_event(event),
                        watermark: 0,
                        origin_high: -1,
                        next_seq: 1,
                        row_rid: rid,
                        resident: BTreeMap::new(),
                        recovered: FxHashMap::default(),
                        replayed: FxHashMap::default(),
                        mailbox: None,
                        epoch: 0,
                    },
                );
            }
        }
        if resume_from > 0 {
            self.ack(name, resume_from)?;
        }
        let mut state = self.state.lock();
        let st = state.get_mut(name).expect("registered above");
        st.event = normalize_event(event);
        st.mailbox = Some(mailbox);
        st.epoch += 1;
        let replay: Vec<(u64, Vec<u8>)> = st
            .resident
            .iter()
            .map(|(&seq, row)| (seq, row.body.clone()))
            .collect();
        Ok(Registration {
            watermark: st.watermark,
            epoch: st.epoch,
            replay,
        })
    }

    /// Drop a subscriber's live mailbox (connection closed). Durable state
    /// is untouched; deliveries keep accumulating in the log for replay at
    /// the next [`register`](Self::register). A stale `epoch` (the
    /// subscriber already re-registered) is a no-op.
    pub fn detach(&self, name: &str, epoch: u64) {
        if let Some(st) = self.state.lock().get_mut(name) {
            if st.epoch == epoch {
                st.mailbox = None;
            }
        }
    }

    /// Acknowledge every delivery with sequence number at or below
    /// `through`: advance the durable subscriber row (watermark and origin
    /// high-water) *first*, then delete the covered log rows. Idempotent;
    /// returns the new watermark.
    pub fn ack(&self, name: &str, through: u64) -> Result<u64> {
        let mut state = self.state.lock();
        let st = state
            .get_mut(name)
            .ok_or_else(|| TmanError::NotFound(format!("unknown subscriber '{name}'")))?;
        if through <= st.watermark {
            return Ok(st.watermark);
        }
        let covered: Vec<u64> = st.resident.range(..=through).map(|(&s, _)| s).collect();
        let mut origin_high = st.origin_high;
        for seq in &covered {
            origin_high = origin_high.max(st.resident[seq].origin);
        }
        st.watermark = through;
        st.origin_high = origin_high;
        let (_, new_rid) = self.subs_table.update(
            st.row_rid,
            vec![
                Value::str(name),
                Value::str(st.event.clone()),
                Value::Int(st.watermark as i64),
                Value::Int(st.origin_high),
            ],
        )?;
        st.row_rid = new_rid;
        for seq in covered {
            let row = st.resident.remove(&seq).expect("collected above");
            self.log_table.delete(row.rid)?;
            self.acked_rows.bump();
        }
        Ok(st.watermark)
    }

    /// A subscriber's durable watermark (`None` if unknown).
    pub fn watermark(&self, name: &str) -> Option<u64> {
        self.state.lock().get(name).map(|st| st.watermark)
    }

    /// Unacked resident log rows for a subscriber (`None` if unknown).
    pub fn resident_len(&self, name: &str) -> Option<usize> {
        self.state.lock().get(name).map(|st| st.resident.len())
    }

    /// Log rows written.
    pub fn appends(&self) -> &Arc<Counter> {
        &self.appends
    }
    /// Re-published notifications suppressed by redelivery dedup.
    pub fn suppressed(&self) -> &Arc<Counter> {
        &self.suppressed
    }
    /// Log rows retired by acks.
    pub fn acked_rows(&self) -> &Arc<Counter> {
        &self.acked_rows
    }
    /// Log rows dropped at open.
    pub fn dedup_dropped(&self) -> &Arc<Counter> {
        &self.dedup_dropped
    }
    /// Append/encode failures.
    pub fn errors(&self) -> &Arc<Counter> {
        &self.errors
    }
}

impl NotificationSink for DeliveryHub {
    /// Append the notification to every matching subscriber's delivery
    /// log (deduplicating re-publishes of recovered origins), then push it
    /// down any live mailbox. Runs synchronously inside
    /// [`EventBus::publish`](triggerman::EventBus::publish), before the
    /// producing token can be acked to the update queue.
    fn on_publish(&self, n: &EventNotification) {
        let mut state = self.state.lock();
        if !state.values().any(|st| st.matches(&n.event)) {
            return;
        }
        let body = match encode_notification_body(n) {
            Ok(b) => b,
            Err(_) => {
                self.errors.bump();
                return;
            }
        };
        let origin = n.token_seq.unwrap_or(-1);
        for (name, st) in state.iter_mut() {
            if !st.matches(&n.event) {
                continue;
            }
            if origin >= 0 {
                let j = st.replayed.entry(origin).or_insert(0);
                let seen = *j;
                *j += 1;
                if origin <= st.origin_high {
                    self.suppressed.bump();
                    continue;
                }
                if seen < st.recovered.get(&origin).copied().unwrap_or(0) {
                    // Already durable from before the crash; the reconnect
                    // replay delivers it from `resident`.
                    self.suppressed.bump();
                    continue;
                }
            }
            let seq = st.next_seq;
            match self.log_table.insert(vec![
                Value::str(name.as_str()),
                Value::Int(seq as i64),
                Value::Int(origin),
                Value::str(hex_encode(&body)),
            ]) {
                Ok(rid) => {
                    st.next_seq = seq + 1;
                    st.resident.insert(
                        seq,
                        LogRow {
                            origin,
                            rid,
                            body: body.clone(),
                        },
                    );
                    self.appends.bump();
                    let dead = st
                        .mailbox
                        .as_ref()
                        .map(|tx| tx.send((seq, body.clone())).is_err())
                        .unwrap_or(false);
                    if dead {
                        st.mailbox = None;
                    }
                }
                Err(_) => self.errors.bump(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::decode_notification_body;
    use crossbeam::channel::unbounded;

    fn note(event: &str, origin: Option<i64>, tag: i64) -> EventNotification {
        EventNotification {
            event: event.into(),
            trigger: "t".into(),
            values: vec![Value::Int(tag)],
            message: None,
            token_seq: origin,
        }
    }

    #[test]
    fn deliver_ack_and_replay() {
        let db = Database::open_memory(256);
        let hub = DeliveryHub::open(&db).unwrap();
        let (tx, rx) = unbounded();
        let reg = hub.register("dash", "Spike", 0, tx).unwrap();
        assert_eq!((reg.watermark, reg.replay.len()), (0, 0));
        hub.on_publish(&note("Spike", Some(1), 10));
        hub.on_publish(&note("Other", Some(1), 11)); // filtered out
        hub.on_publish(&note("spike", Some(2), 12)); // case-insensitive
        let got: Vec<_> = rx.try_iter().collect();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, 1);
        assert_eq!(
            decode_notification_body(&got[0].1).unwrap().values,
            vec![Value::Int(10)]
        );
        // Ack the first; the second survives a reopen and is replayed.
        assert_eq!(hub.ack("dash", 1).unwrap(), 1);
        assert_eq!(hub.resident_len("dash"), Some(1));
        drop(hub);
        let hub2 = DeliveryHub::open(&db).unwrap();
        let (tx2, _rx2) = unbounded();
        let reg = hub2.register("dash", "Spike", 0, tx2).unwrap();
        assert_eq!(reg.watermark, 1);
        assert_eq!(reg.replay.len(), 1);
        assert_eq!(reg.replay[0].0, 2);
        assert_eq!(
            decode_notification_body(&reg.replay[0].1).unwrap().values,
            vec![Value::Int(12)]
        );
    }

    #[test]
    fn republished_origins_are_deduplicated_after_reopen() {
        let db = Database::open_memory(256);
        let hub = DeliveryHub::open(&db).unwrap();
        let (tx, _rx) = unbounded();
        hub.register("s", "*", 0, tx).unwrap();
        // Token 1 fires twice (two triggers); token 2 fires once. Subscriber
        // acks through token 1's fires only.
        hub.on_publish(&note("A", Some(1), 1));
        hub.on_publish(&note("B", Some(1), 2));
        hub.on_publish(&note("A", Some(2), 3));
        hub.ack("s", 2).unwrap();
        drop(hub);
        // "Crash": the queue redelivers both tokens, so every notification
        // is re-published. Origin 1 is behind origin_high; origin 2's one
        // recovered row suppresses the first re-publish.
        let hub2 = DeliveryHub::open(&db).unwrap();
        let (tx2, rx2) = unbounded();
        let reg = hub2.register("s", "*", 0, tx2).unwrap();
        assert_eq!(reg.watermark, 2);
        assert_eq!(reg.replay.len(), 1); // token 2's fire, from the log
        hub2.on_publish(&note("A", Some(1), 1));
        hub2.on_publish(&note("B", Some(1), 2));
        hub2.on_publish(&note("A", Some(2), 3));
        assert_eq!(rx2.try_iter().count(), 0); // nothing double-delivered
        assert_eq!(hub2.suppressed().get(), 3);
        // A genuinely new token still flows.
        hub2.on_publish(&note("A", Some(3), 4));
        let fresh: Vec<_> = rx2.try_iter().collect();
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].0, 4); // seq continues above the recovered log
    }

    #[test]
    fn client_resume_from_acts_as_implicit_ack() {
        let db = Database::open_memory(256);
        let hub = DeliveryHub::open(&db).unwrap();
        let (tx, _rx) = unbounded();
        hub.register("s", "*", 0, tx).unwrap();
        for i in 1..=4 {
            hub.on_publish(&note("A", Some(i), i));
        }
        drop(hub);
        // The server never saw an ack, but the client processed through
        // seq 3 before the crash: reconnecting with resume_from=3 replays
        // only seq 4.
        let hub2 = DeliveryHub::open(&db).unwrap();
        let (tx2, _rx2) = unbounded();
        let reg = hub2.register("s", "*", 3, tx2).unwrap();
        assert_eq!(reg.watermark, 3);
        assert_eq!(reg.replay.len(), 1);
        assert_eq!(reg.replay[0].0, 4);
        assert_eq!(hub2.watermark("s"), Some(3));
    }

    #[test]
    fn acked_rows_resurrected_by_crash_are_dropped_at_open() {
        let db = Database::open_memory(256);
        let hub = DeliveryHub::open(&db).unwrap();
        let (tx, _rx) = unbounded();
        hub.register("s", "*", 0, tx).unwrap();
        hub.on_publish(&note("A", Some(1), 1));
        hub.ack("s", 1).unwrap();
        // Simulate the ack-then-delete crash window: the watermark update
        // was durable but the row deletion was not.
        hub.log_table
            .insert(vec![
                Value::str("s"),
                Value::Int(1),
                Value::Int(1),
                Value::str(hex_encode(b"stale")),
            ])
            .unwrap();
        // Plus an orphan row for a subscriber that no longer exists.
        hub.log_table
            .insert(vec![
                Value::str("ghost"),
                Value::Int(5),
                Value::Int(2),
                Value::str(hex_encode(b"orphan")),
            ])
            .unwrap();
        drop(hub);
        let hub2 = DeliveryHub::open(&db).unwrap();
        assert_eq!(hub2.dedup_dropped().get(), 2);
        let (tx2, _rx2) = unbounded();
        let reg = hub2.register("s", "*", 0, tx2).unwrap();
        assert_eq!((reg.watermark, reg.replay.len()), (1, 0));
    }

    #[test]
    fn stale_detach_does_not_clobber_a_reconnect() {
        let db = Database::open_memory(256);
        let hub = DeliveryHub::open(&db).unwrap();
        let (tx1, _rx1) = unbounded();
        let old = hub.register("s", "*", 0, tx1).unwrap();
        let (tx2, rx2) = unbounded();
        let new = hub.register("s", "*", 0, tx2).unwrap();
        // The old connection's EOF lands after the reconnect: no-op.
        hub.detach("s", old.epoch);
        hub.on_publish(&note("A", Some(1), 1));
        assert_eq!(rx2.try_iter().count(), 1);
        // Detaching the live epoch does clear the mailbox.
        hub.detach("s", new.epoch);
        hub.on_publish(&note("A", Some(2), 2));
        assert_eq!(rx2.try_iter().count(), 0);
    }

    #[test]
    fn volatile_origins_always_deliver() {
        let db = Database::open_memory(256);
        let hub = DeliveryHub::open(&db).unwrap();
        let (tx, rx) = unbounded();
        hub.register("s", "*", 0, tx).unwrap();
        hub.on_publish(&note("A", None, 1));
        hub.on_publish(&note("A", None, 2));
        assert_eq!(rx.try_iter().count(), 2);
        assert_eq!(hub.suppressed().get(), 0);
    }
}
