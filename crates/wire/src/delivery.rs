//! Durable subscriber delivery: the server side of the end-to-end
//! watermark/ack protocol.
//!
//! The engine's update queue already gives *token* processing an
//! at-least-once contract (PR 5): un-acked tokens are re-processed after a
//! crash. That re-processing re-runs rule actions, which re-publishes
//! their notifications — so a naive delivery tier would double-deliver
//! every fire in the redelivery window. The [`DeliveryHub`] closes that
//! window and extends the watermark protocol out to remote subscribers:
//!
//! * It registers as a synchronous [`NotificationSink`] on the engine's
//!   [`EventBus`](triggerman::EventBus), so every notification is appended
//!   to a durable *delivery log* (`wire_delivery_log`) **before** the token
//!   that produced it can be acknowledged back to the update queue.
//! * Each subscriber owns a row in `wire_subscriber` holding its durable
//!   ack **watermark** (highest fully-processed per-subscriber sequence
//!   number). Acks advance the row *first*, then retire the covered log
//!   rows — the same advance-then-delete ordering the queue uses, so a
//!   crash leaves a duplicate row behind the watermark, never a lost one.
//! * An acked log row whose token origin might still be **redelivered**
//!   by the update queue (origin above the queue's processed watermark) is
//!   *retained* in the log rather than deleted: the retained rows are the
//!   durable record of how many of that origin's fires were already
//!   delivered and acked. [`DeliveryHub::gc`] deletes them once the queue
//!   watermark passes the origin — at which point the queue can never
//!   redeliver it.
//! * When a crashed engine re-processes a token, the re-published
//!   notifications are deduplicated by position: for each origin the first
//!   `acked + recovered` re-publishes are suppressed (`acked` rows were
//!   delivered and acked before the crash; `recovered` rows are resident
//!   and will be replayed from the log). Anything beyond that count is a
//!   fire that never reached the log — it is appended and delivered. An
//!   origin is therefore never suppressed wholesale: an ack that lands
//!   between a token's fires, or that covers only a prefix of an origin
//!   before a crash, suppresses exactly the covered fires and no more.
//! * A subscriber reconnecting after a crash presents its own watermark
//!   (`resume_from`), which is applied as an implicit ack — clamped to the
//!   highest sequence number the server ever assigned, so stale client
//!   state can neither wedge the stream nor wrap the durable row. The hub
//!   then replays every resident log row above the effective watermark in
//!   sequence order. The subscriber therefore receives every fire above
//!   its watermark exactly once.
//!
//! A subscriber whose live mailbox backlog exceeds
//! [`MAILBOX_STALL_DEPTH`] is treated as stalled: the mailbox is dropped
//! (bounding server memory) and the wire server closes the connection, so
//! the client reconnects and catches up from the durable log — the same
//! path a crashed subscriber takes.
//!
//! Sequence numbers are reproducible across crash incarnations because
//! per-subscriber appends are origin-ordered (tokens are processed in qid
//! order on the redelivery path) and a token's action order is
//! deterministic — which is what makes a client-side watermark meaningful
//! against a recovered server. Durability granularity is the engine
//! checkpoint, shared with the update queue in one buffer pool.
//!
//! Two ordering hazards shape the contract: (1) a token's queue ack must
//! never become durable before the delivery-log append that preceded it,
//! or the queue never redelivers and the fire is lost. The storage-layer
//! write-ahead log closes this by construction — dirty pages become redo
//! records whose durability is atomic at commit boundaries, and the page
//! file is only written at checkpoint from already-durable records — so a
//! crash either keeps both the ack and the append or neither (pinned by
//! `wal_closes_ack_before_append_gap`, the once-failing
//! `wire_crash_reconnect_full` case 12). (2) With `Config::async_actions`
//! the engine may ack a token to the queue before its detached actions
//! publish; the delivery tier then inherits that weaker contract, exactly
//! as in-process subscribers do — this one is still open.

use crossbeam::channel::Sender;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, OnceLock};
use tman_common::fxhash::FxHashMap;
use tman_common::hex::{hex_decode, hex_encode};
use tman_common::stats::Counter;
use tman_common::{Column, DataType, Result, Schema, TmanError, Value};
use tman_sql::{Database, Table};
use tman_storage::RecordId;
use tman_telemetry::trace::{now_ns, thread_tag, unix_now_ns, ROOT_SPAN};
use tman_telemetry::{GaugeHandle, HistogramHandle, Registry, SpanKind, TraceEvent, Tracer};
use triggerman::{EventNotification, NotificationSink};

use crate::frame::encode_notification_body;

/// Durable subscriber registry: `(name, event, watermark)`.
pub const SUBSCRIBER_TABLE: &str = "wire_subscriber";
/// Durable delivery log: `(sub, seq, origin, body)`.
pub const DELIVERY_LOG_TABLE: &str = "wire_delivery_log";

/// Live-mailbox backlog past which a subscriber is considered stalled:
/// the mailbox is dropped (deliveries stay durable in the log) and the
/// connection is closed so the client reconnects and replays. Mirrors the
/// in-process [`SLOW_CHANNEL_DEPTH`](triggerman::SLOW_CHANNEL_DEPTH)
/// policy: unbounded channels made bounded by convention.
pub const MAILBOX_STALL_DEPTH: usize = 16_384;

/// One undelivered (or unacked) log row held resident for replay.
struct LogRow {
    /// Token origin qid (`-1` for volatile/untracked tokens).
    origin: i64,
    /// Record id of the durable row (for deletion on ack/gc).
    rid: RecordId,
    /// Encoded notification body (see
    /// [`encode_notification_body`](crate::frame::encode_notification_body)).
    body: Vec<u8>,
    /// Originating token's trace id (0 = untraced, and always 0 for rows
    /// recovered from the durable log — trace context is process-local and
    /// does not survive a restart).
    trace_id: u64,
    /// Wall clock at append, carried to v2 subscribers on the
    /// `Notification` frame (0 for recovered rows).
    fire_unix_ns: u64,
    /// Monotonic stamp at append for the fire→ack latency SLI (0 for
    /// recovered rows, which skip the SLI — their fire predates this
    /// process).
    fire_mono_ns: u64,
}

/// One delivery handed to the wire server (live mailbox or
/// [`Registration::replay`]): the per-subscriber sequence number, the
/// encoded body, and the v2 trace context (`trace_id` / `fire_unix_ns`
/// are 0 when the token was untraced or the row was recovered from the
/// durable log).
#[derive(Debug, Clone)]
pub struct Delivery {
    /// Per-subscriber sequence number.
    pub seq: u64,
    /// Encoded notification body.
    pub body: Vec<u8>,
    /// Originating token's trace id (0 = untraced).
    pub trace_id: u64,
    /// Wall clock at delivery-log append (0 = unknown).
    pub fire_unix_ns: u64,
}

/// Wire-observability bindings, installed once by the server at startup
/// ([`DeliveryHub::bind_instruments`]). The hub's own counters exist from
/// `open` so the unit-testable core never needs a registry; the SLI
/// histograms, per-subscriber lag gauges, and trace ring only exist when
/// a server fronts the hub.
struct WireObs {
    registry: Arc<Registry>,
    tracer: Option<Arc<Tracer>>,
    /// `tman_wire_ingest_to_fire_ns`: source-side ingest stamp → delivery-
    /// log append, recorded once per published notification that carries a
    /// v2 ingest stamp.
    ingest_to_fire: HistogramHandle,
    /// `tman_wire_fire_to_ack_ns`: delivery-log append → durable
    /// subscriber ack, recorded per acked resident row.
    fire_to_ack: HistogramHandle,
}

/// Acked-but-retained log rows of one origin: the durable proof of how
/// many of that origin's fires were already delivered and acked, kept
/// until the queue watermark retires the origin (it can then never be
/// redelivered, so the proof is no longer needed).
#[derive(Default)]
struct AckedOrigin {
    /// Number of acked fires of this origin (suppression prefix length).
    count: u32,
    /// Record ids of the retained rows, deleted by [`DeliveryHub::gc`].
    rids: Vec<RecordId>,
}

/// Per-subscriber delivery state. Resident rows are bounded by how far the
/// subscriber's acks lag its deliveries — the same back-of-queue bound the
/// update queue's in-flight map has. Per-origin maps (`acked`,
/// `recovered`, `replayed`) are bounded by the queue's redelivery window:
/// [`DeliveryHub::gc`] prunes every entry at or below the queue's
/// processed watermark.
struct SubState {
    /// Event filter, lowercased; empty or `"*"` matches every event.
    event: String,
    /// Highest per-subscriber sequence number durably acked.
    watermark: u64,
    /// Next sequence number to assign.
    next_seq: u64,
    /// Record id of this subscriber's `wire_subscriber` row.
    row_rid: RecordId,
    /// Unacked log rows by sequence number, ready for replay.
    resident: BTreeMap<u64, LogRow>,
    /// Acked rows retained per origin until the origin is retired.
    acked: FxHashMap<i64, AckedOrigin>,
    /// Unacked log rows per origin found durable at open — re-publishes of
    /// that origin skip these after the acked prefix (they are already in
    /// `resident` and replay from there).
    recovered: FxHashMap<i64, u32>,
    /// Publishes observed per origin in this incarnation (the `j` index
    /// the acked/recovered counts are compared against).
    replayed: FxHashMap<i64, u32>,
    /// Live outbound channel to the connected subscriber, if any. Dropped
    /// on send failure (connection gone) or when the backlog passes
    /// [`MAILBOX_STALL_DEPTH`] (subscriber stalled).
    mailbox: Option<Sender<Delivery>>,
    /// Registration epoch, bumped on every [`DeliveryHub::register`]: a
    /// detach from a stale connection (reconnect raced the old socket's
    /// EOF) must not clear the new registration's mailbox.
    epoch: u64,
    /// `tman_wire_watermark_lag{sub=…}` gauge, resolved lazily once
    /// instruments are bound.
    lag_gauge: Option<GaugeHandle>,
    /// Last lag value pushed into the gauge (gauges are delta-updated).
    lag_reported: i64,
}

impl SubState {
    fn matches(&self, event: &str) -> bool {
        self.event.is_empty() || self.event == "*" || self.event.eq_ignore_ascii_case(event)
    }

    /// Fires of `origin` already appended to the log in a *previous*
    /// incarnation: the acked prefix plus the recovered resident rows.
    /// Re-publishes up to this count are suppressed.
    fn logged_before(&self, origin: i64) -> u32 {
        self.acked.get(&origin).map(|a| a.count).unwrap_or(0)
            + self.recovered.get(&origin).copied().unwrap_or(0)
    }
}

fn normalize_event(event: &str) -> String {
    let e = event.trim().to_ascii_lowercase();
    if e == "*" {
        String::new()
    } else {
        e
    }
}

/// Result of [`DeliveryHub::register`].
pub struct Registration {
    /// Effective watermark: max of the server's durable row and the
    /// client's `resume_from` (clamped to the highest assigned sequence
    /// number). Deliveries resume strictly above it.
    pub watermark: u64,
    /// Registration epoch to pass back to [`DeliveryHub::detach`].
    pub epoch: u64,
    /// Unacked log rows above the watermark, in order — the exactly-once
    /// catch-up stream.
    pub replay: Vec<Delivery>,
}

/// The durable delivery tier. One per engine; shared between the
/// [`EventBus`](triggerman::EventBus) sink registration and the wire
/// server's subscriber connections.
pub struct DeliveryHub {
    subs_table: Arc<Table>,
    log_table: Arc<Table>,
    state: Mutex<FxHashMap<String, SubState>>,
    /// Highest queue origin known retired: the update queue has processed
    /// it, so it can never be redelivered and its retained rows / dedup
    /// state can be reclaimed. Advanced by [`DeliveryHub::gc`].
    retired_floor: AtomicI64,
    /// `tman_wire_delivery_appends_total`: log rows written.
    appends: Arc<Counter>,
    /// `tman_wire_redelivery_suppressed_total`: re-published notifications
    /// deduplicated against the pre-crash log.
    suppressed: Arc<Counter>,
    /// `tman_wire_delivery_acked_total`: log rows retired by acks.
    acked_rows: Arc<Counter>,
    /// Log rows dropped at open (retired origins, orphaned, or corrupt).
    dedup_dropped: Arc<Counter>,
    /// `tman_wire_acks_clamped_total`: acks (including `resume_from`)
    /// above the highest assigned sequence, clamped instead of applied.
    clamped: Arc<Counter>,
    /// `tman_wire_subscriber_stalls_total`: mailboxes dropped because the
    /// subscriber stopped draining them.
    stalled: Arc<Counter>,
    /// Append/encode failures (the volatile fanout still delivers; durable
    /// replay for that notification is lost).
    errors: Arc<Counter>,
    /// SLI histograms, lag gauges, and trace ring; bound once by the wire
    /// server ([`bind_instruments`](Self::bind_instruments)), absent in
    /// bare unit-test hubs.
    wire: OnceLock<WireObs>,
}

impl DeliveryHub {
    /// Open (or create) the delivery tables in `db` and recover
    /// subscriber state. `queue_watermark` is the update queue's durable
    /// processed watermark (`None` on a volatile queue): origins at or
    /// below it can never be redelivered.
    ///
    /// Log rows at or below a subscriber's ack watermark were acked before
    /// the crash; those whose origin is still redeliverable are kept as
    /// the origin's acked prefix (suppressing exactly that many
    /// re-publishes), the rest — retired origins, untracked tokens,
    /// orphans, torn bodies — are dropped and counted. Rows above the
    /// watermark are indexed for replay and redelivery dedup.
    pub fn open(db: &Database, queue_watermark: Option<i64>) -> Result<Arc<DeliveryHub>> {
        let floor = queue_watermark.unwrap_or(-1);
        let subs_table = if db.has_table(SUBSCRIBER_TABLE) {
            db.table(SUBSCRIBER_TABLE)?
        } else {
            db.create_table(
                SUBSCRIBER_TABLE,
                Schema::new(vec![
                    Column::new("name", DataType::Varchar(255)),
                    Column::new("event", DataType::Varchar(255)),
                    Column::new("watermark", DataType::Int),
                ])?,
            )?
        };
        let log_table = if db.has_table(DELIVERY_LOG_TABLE) {
            db.table(DELIVERY_LOG_TABLE)?
        } else {
            db.create_table(
                DELIVERY_LOG_TABLE,
                Schema::new(vec![
                    Column::new("sub", DataType::Varchar(255)),
                    Column::new("seq", DataType::Int),
                    Column::new("origin", DataType::Int),
                    Column::new("body", DataType::Varchar(65535)),
                ])?,
            )?
        };
        let dedup_dropped = Arc::new(Counter::default());
        let mut subs: FxHashMap<String, SubState> = FxHashMap::default();
        subs_table.scan(|rid, row| {
            let name = row.get(0).as_str().unwrap_or("").to_string();
            if name.is_empty() {
                return Ok(true);
            }
            let watermark = row.get(2).as_i64().unwrap_or(0).max(0) as u64;
            subs.insert(
                name,
                SubState {
                    event: normalize_event(row.get(1).as_str().unwrap_or("")),
                    watermark,
                    next_seq: watermark + 1,
                    row_rid: rid,
                    resident: BTreeMap::new(),
                    acked: FxHashMap::default(),
                    recovered: FxHashMap::default(),
                    replayed: FxHashMap::default(),
                    mailbox: None,
                    epoch: 0,
                    lag_gauge: None,
                    lag_reported: 0,
                },
            );
            Ok(true)
        })?;
        let mut stale: Vec<RecordId> = Vec::new();
        log_table.scan(|rid, row| {
            let sub = row.get(0).as_str().unwrap_or("").to_string();
            let seq = row.get(1).as_i64().unwrap_or(0).max(0) as u64;
            let origin = row.get(2).as_i64().unwrap_or(-1);
            let body = row.get(3).as_str().and_then(|s| hex_decode(s).ok());
            match (subs.get_mut(&sub), body) {
                (Some(st), Some(body)) if seq > st.watermark => {
                    if origin >= 0 {
                        *st.recovered.entry(origin).or_insert(0) += 1;
                    }
                    st.resident.insert(
                        seq,
                        LogRow {
                            origin,
                            rid,
                            body,
                            trace_id: 0,
                            fire_unix_ns: 0,
                            fire_mono_ns: 0,
                        },
                    );
                }
                (Some(st), Some(_)) if origin > floor => {
                    // Acked before the crash, origin still redeliverable:
                    // retain as the origin's acked prefix.
                    let a = st.acked.entry(origin).or_default();
                    a.count += 1;
                    a.rids.push(rid);
                }
                _ => stale.push(rid),
            }
            Ok(true)
        })?;
        for rid in stale {
            log_table.delete(rid)?;
            dedup_dropped.bump();
        }
        for st in subs.values_mut() {
            if let Some((&max_seq, _)) = st.resident.iter().next_back() {
                st.next_seq = max_seq + 1;
            }
        }
        Ok(Arc::new(DeliveryHub {
            subs_table,
            log_table,
            state: Mutex::new(subs),
            retired_floor: AtomicI64::new(floor),
            appends: Arc::new(Counter::default()),
            suppressed: Arc::new(Counter::default()),
            acked_rows: Arc::new(Counter::default()),
            dedup_dropped,
            clamped: Arc::new(Counter::default()),
            stalled: Arc::new(Counter::default()),
            errors: Arc::new(Counter::default()),
            wire: OnceLock::new(),
        }))
    }

    /// Bind the hub to a metrics registry (SLI histograms, per-subscriber
    /// watermark-lag gauges) and optionally the engine's tracer (wire
    /// delivery/ack spans). Called once by [`WireServer::start`]
    /// (crate::WireServer::start); later calls are no-ops, and a hub that
    /// is never bound records nothing extra.
    pub fn bind_instruments(&self, registry: &Arc<Registry>, tracer: Option<Arc<Tracer>>) {
        let _ = self.wire.set(WireObs {
            registry: registry.clone(),
            tracer,
            ingest_to_fire: registry.histogram("tman_wire_ingest_to_fire_ns", &[]),
            fire_to_ack: registry.histogram("tman_wire_fire_to_ack_ns", &[]),
        });
    }

    /// Push the subscriber's current watermark lag (assigned frontier
    /// minus durable watermark) into its `tman_wire_watermark_lag{sub=…}`
    /// gauge. Gauges are delta-updated, so the last reported value is
    /// shadowed in the sub state. No-op until instruments are bound.
    fn update_lag(wire: Option<&WireObs>, name: &str, st: &mut SubState) {
        let Some(w) = wire else { return };
        let lag = st.next_seq.saturating_sub(1).saturating_sub(st.watermark) as i64;
        let gauge = st.lag_gauge.get_or_insert_with(|| {
            w.registry
                .gauge("tman_wire_watermark_lag", &[("sub", name)])
        });
        gauge.add(lag - st.lag_reported);
        st.lag_reported = lag;
    }

    /// Register (or re-register after reconnect) a durable subscriber.
    /// `resume_from` is the client's own watermark and is applied as an
    /// implicit ack (clamped to the highest assigned sequence number), so
    /// the effective watermark is the max of both sides'. Live deliveries
    /// arrive on `mailbox`'s receiver end after the returned
    /// [`Registration::replay`] has been consumed.
    pub fn register(
        &self,
        name: &str,
        event: &str,
        resume_from: u64,
        mailbox: Sender<Delivery>,
    ) -> Result<Registration> {
        if name.trim().is_empty() {
            return Err(TmanError::Invalid("subscriber name is empty".into()));
        }
        {
            let mut state = self.state.lock();
            if !state.contains_key(name) {
                let rid = self.subs_table.insert(vec![
                    Value::str(name),
                    Value::str(event),
                    Value::Int(0),
                ])?;
                state.insert(
                    name.to_string(),
                    SubState {
                        event: normalize_event(event),
                        watermark: 0,
                        next_seq: 1,
                        row_rid: rid,
                        resident: BTreeMap::new(),
                        acked: FxHashMap::default(),
                        recovered: FxHashMap::default(),
                        replayed: FxHashMap::default(),
                        mailbox: None,
                        epoch: 0,
                        lag_gauge: None,
                        lag_reported: 0,
                    },
                );
            }
        }
        if resume_from > 0 {
            self.ack(name, resume_from)?;
        }
        let mut state = self.state.lock();
        let st = state.get_mut(name).expect("registered above");
        st.event = normalize_event(event);
        st.mailbox = Some(mailbox);
        st.epoch += 1;
        let replay: Vec<Delivery> = st
            .resident
            .iter()
            .map(|(&seq, row)| Delivery {
                seq,
                body: row.body.clone(),
                trace_id: row.trace_id,
                fire_unix_ns: row.fire_unix_ns,
            })
            .collect();
        Self::update_lag(self.wire.get(), name, st);
        Ok(Registration {
            watermark: st.watermark,
            epoch: st.epoch,
            replay,
        })
    }

    /// Drop a subscriber's live mailbox (connection closed). Durable state
    /// is untouched; deliveries keep accumulating in the log for replay at
    /// the next [`register`](Self::register). A stale `epoch` (the
    /// subscriber already re-registered) is a no-op.
    pub fn detach(&self, name: &str, epoch: u64) {
        if let Some(st) = self.state.lock().get_mut(name) {
            if st.epoch == epoch {
                st.mailbox = None;
            }
        }
    }

    /// Acknowledge every delivery with sequence number at or below
    /// `through`: advance the durable subscriber row *first*, then retire
    /// the covered log rows. `through` is clamped to the highest sequence
    /// number ever assigned (a stale or corrupt client watermark must not
    /// wedge the stream above sequences that do not exist yet). Covered
    /// rows whose origin may still be redelivered are retained in the log
    /// as that origin's acked prefix (see [`gc`](Self::gc)); the rest are
    /// deleted. Idempotent; returns the new watermark.
    pub fn ack(&self, name: &str, through: u64) -> Result<u64> {
        let mut state = self.state.lock();
        let st = state
            .get_mut(name)
            .ok_or_else(|| TmanError::NotFound(format!("unknown subscriber '{name}'")))?;
        let highest = st.next_seq.saturating_sub(1);
        let through = if through > highest {
            self.clamped.bump();
            highest
        } else {
            through
        };
        if through <= st.watermark {
            return Ok(st.watermark);
        }
        let covered: Vec<u64> = st.resident.range(..=through).map(|(&s, _)| s).collect();
        st.watermark = through;
        let (_, new_rid) = self.subs_table.update(
            st.row_rid,
            vec![
                Value::str(name),
                Value::str(st.event.clone()),
                Value::Int(st.watermark as i64),
            ],
        )?;
        st.row_rid = new_rid;
        let floor = self.retired_floor.load(Ordering::Relaxed);
        let wire = self.wire.get();
        let ack_mono = now_ns();
        for seq in covered {
            let row = st.resident.remove(&seq).expect("collected above");
            if let Some(w) = wire {
                if row.fire_mono_ns != 0 {
                    let dur = ack_mono.saturating_sub(row.fire_mono_ns);
                    w.fire_to_ack.record(dur);
                    if row.trace_id != 0 {
                        if let Some(tracer) = &w.tracer {
                            // The producing token's trace context is long
                            // finalized by ack time; close the delivery
                            // span by pushing a foreign event under the
                            // same trace id.
                            tracer.push_foreign(&TraceEvent {
                                trace_id: row.trace_id,
                                span_id: tracer.foreign_span_id(),
                                parent_id: ROOT_SPAN,
                                kind: SpanKind::WireAck,
                                thread: thread_tag(),
                                start_ns: row.fire_mono_ns,
                                dur_ns: dur,
                                arg_a: seq,
                                arg_b: 0,
                            });
                        }
                    }
                }
            }
            if row.origin > floor {
                // The origin can still be redelivered: keep the row as
                // durable proof this fire was already delivered and acked.
                let a = st.acked.entry(row.origin).or_default();
                a.count += 1;
                a.rids.push(row.rid);
            } else {
                self.log_table.delete(row.rid)?;
            }
            self.acked_rows.bump();
        }
        Self::update_lag(wire, name, st);
        Ok(st.watermark)
    }

    /// Reclaim state for retired origins: every origin at or below
    /// `queue_watermark` has been fully processed by the update queue and
    /// can never be redelivered, so its retained acked rows are deleted
    /// and its dedup counters (`acked`/`recovered`/`replayed`) pruned.
    /// Called periodically by the wire server; bounds both the log and the
    /// per-origin maps on a long-running server. Returns the number of
    /// log rows deleted.
    pub fn gc(&self, queue_watermark: Option<i64>) -> usize {
        let Some(wm) = queue_watermark else {
            return 0;
        };
        let floor = self.retired_floor.fetch_max(wm, Ordering::Relaxed).max(wm);
        let mut deleted = 0usize;
        let mut state = self.state.lock();
        for st in state.values_mut() {
            let retired: Vec<i64> = st.acked.keys().copied().filter(|&o| o <= floor).collect();
            for origin in retired {
                let a = st.acked.remove(&origin).expect("collected above");
                for rid in a.rids {
                    match self.log_table.delete(rid) {
                        // A failed delete leaves an orphan row; it is
                        // retired, so the next open drops it as stale.
                        Ok(_) => deleted += 1,
                        Err(_) => self.errors.bump(),
                    }
                }
            }
            st.recovered.retain(|&o, _| o > floor);
            st.replayed.retain(|&o, _| o > floor);
        }
        deleted
    }

    /// A subscriber's durable watermark (`None` if unknown).
    pub fn watermark(&self, name: &str) -> Option<u64> {
        self.state.lock().get(name).map(|st| st.watermark)
    }

    /// Unacked resident log rows for a subscriber (`None` if unknown).
    pub fn resident_len(&self, name: &str) -> Option<usize> {
        self.state.lock().get(name).map(|st| st.resident.len())
    }

    /// Acked log rows retained for possible redelivery dedup (`None` if
    /// the subscriber is unknown). Drains to zero as [`gc`](Self::gc)
    /// retires origins.
    pub fn retained_len(&self, name: &str) -> Option<usize> {
        self.state
            .lock()
            .get(name)
            .map(|st| st.acked.values().map(|a| a.rids.len()).sum())
    }

    /// Log rows written.
    pub fn appends(&self) -> &Arc<Counter> {
        &self.appends
    }
    /// Re-published notifications suppressed by redelivery dedup.
    pub fn suppressed(&self) -> &Arc<Counter> {
        &self.suppressed
    }
    /// Log rows retired by acks.
    pub fn acked_rows(&self) -> &Arc<Counter> {
        &self.acked_rows
    }
    /// Log rows dropped at open.
    pub fn dedup_dropped(&self) -> &Arc<Counter> {
        &self.dedup_dropped
    }
    /// Acks clamped to the highest assigned sequence number.
    pub fn clamped(&self) -> &Arc<Counter> {
        &self.clamped
    }
    /// Mailboxes dropped on stalled subscribers.
    pub fn stalled(&self) -> &Arc<Counter> {
        &self.stalled
    }
    /// Append/encode failures.
    pub fn errors(&self) -> &Arc<Counter> {
        &self.errors
    }
}

impl NotificationSink for DeliveryHub {
    /// Append the notification to every matching subscriber's delivery
    /// log (deduplicating re-publishes of pre-crash origins), then push it
    /// down any live mailbox. Runs synchronously inside
    /// [`EventBus::publish`](triggerman::EventBus::publish), before the
    /// producing token can be acked to the update queue.
    fn on_publish(&self, n: &EventNotification) {
        let mut state = self.state.lock();
        if !state.values().any(|st| st.matches(&n.event)) {
            return;
        }
        let body = match encode_notification_body(n) {
            Ok(b) => b,
            Err(_) => {
                self.errors.bump();
                return;
            }
        };
        let origin = n.token_seq.unwrap_or(-1);
        let wire = self.wire.get();
        let fire_mono = now_ns();
        let fire_unix = unix_now_ns();
        let trace_id = n.trace.trace_id().unwrap_or(0);
        if let Some(w) = wire {
            // Ingest→fire SLI: wall-clock span from the source-side stamp
            // (carried on v2 `UpdateBatch` frames, or stamped at server
            // decode for v1 sources) to this delivery-log append. One
            // sample per published notification.
            if n.ingest_unix_ns != 0 {
                w.ingest_to_fire
                    .record(fire_unix.saturating_sub(n.ingest_unix_ns));
            }
        }
        for (name, st) in state.iter_mut() {
            if !st.matches(&n.event) {
                continue;
            }
            if origin >= 0 {
                let j = st.replayed.entry(origin).or_insert(0);
                let seen = *j;
                *j += 1;
                if seen < st.logged_before(origin) {
                    // This fire was already appended before the crash:
                    // acked fires were delivered, resident ones replay
                    // from the log. Later fires of the same origin fall
                    // through and append normally.
                    self.suppressed.bump();
                    continue;
                }
            }
            let seq = st.next_seq;
            match self.log_table.insert(vec![
                Value::str(name.as_str()),
                Value::Int(seq as i64),
                Value::Int(origin),
                Value::str(hex_encode(&body)),
            ]) {
                Ok(rid) => {
                    st.next_seq = seq + 1;
                    st.resident.insert(
                        seq,
                        LogRow {
                            origin,
                            rid,
                            body: body.clone(),
                            trace_id,
                            fire_unix_ns: fire_unix,
                            fire_mono_ns: fire_mono,
                        },
                    );
                    self.appends.bump();
                    let mut live = 0u64;
                    if let Some(tx) = st.mailbox.as_ref() {
                        if tx.len() >= MAILBOX_STALL_DEPTH {
                            // Stalled subscriber: stop feeding the
                            // mailbox. The rows are durable; the server
                            // closes the connection and the client
                            // reconnects and replays.
                            self.stalled.bump();
                            st.mailbox = None;
                        } else if tx
                            .send(Delivery {
                                seq,
                                body: body.clone(),
                                trace_id,
                                fire_unix_ns: fire_unix,
                            })
                            .is_err()
                        {
                            st.mailbox = None;
                        } else {
                            live = 1;
                        }
                    }
                    // Per-subscriber delivery span on the producing
                    // token's trace: durable append (+ mailbox handoff).
                    // arg_a = assigned sequence, arg_b = 1 if a live
                    // mailbox took it.
                    n.trace.record_complete(
                        SpanKind::WireDeliver,
                        ROOT_SPAN,
                        fire_mono,
                        now_ns().saturating_sub(fire_mono),
                        seq,
                        live,
                    );
                    Self::update_lag(wire, name, st);
                }
                Err(_) => self.errors.bump(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::decode_notification_body;
    use crossbeam::channel::unbounded;

    fn note(event: &str, origin: Option<i64>, tag: i64) -> EventNotification {
        EventNotification {
            event: event.into(),
            trigger: "t".into(),
            values: vec![Value::Int(tag)],
            message: None,
            token_seq: origin,
            trace: tman_telemetry::TraceHandle::none(),
            ingest_unix_ns: 0,
        }
    }

    #[test]
    fn deliver_ack_and_replay() {
        let db = Database::open_memory(256);
        let hub = DeliveryHub::open(&db, None).unwrap();
        let (tx, rx) = unbounded();
        let reg = hub.register("dash", "Spike", 0, tx).unwrap();
        assert_eq!((reg.watermark, reg.replay.len()), (0, 0));
        hub.on_publish(&note("Spike", Some(1), 10));
        hub.on_publish(&note("Other", Some(1), 11)); // filtered out
        hub.on_publish(&note("spike", Some(2), 12)); // case-insensitive
        let got: Vec<_> = rx.try_iter().collect();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].seq, 1);
        assert_eq!(
            decode_notification_body(&got[0].body).unwrap().values,
            vec![Value::Int(10)]
        );
        // Ack the first; the second survives a reopen and is replayed.
        assert_eq!(hub.ack("dash", 1).unwrap(), 1);
        assert_eq!(hub.resident_len("dash"), Some(1));
        assert_eq!(hub.retained_len("dash"), Some(1)); // origin 1 not retired
        drop(hub);
        let hub2 = DeliveryHub::open(&db, None).unwrap();
        let (tx2, _rx2) = unbounded();
        let reg = hub2.register("dash", "Spike", 0, tx2).unwrap();
        assert_eq!(reg.watermark, 1);
        assert_eq!(reg.replay.len(), 1);
        assert_eq!(reg.replay[0].seq, 2);
        assert_eq!(
            decode_notification_body(&reg.replay[0].body)
                .unwrap()
                .values,
            vec![Value::Int(12)]
        );
    }

    #[test]
    fn republished_origins_are_deduplicated_after_reopen() {
        let db = Database::open_memory(256);
        let hub = DeliveryHub::open(&db, None).unwrap();
        let (tx, _rx) = unbounded();
        hub.register("s", "*", 0, tx).unwrap();
        // Token 1 fires twice (two triggers); token 2 fires once. Subscriber
        // acks through token 1's fires only.
        hub.on_publish(&note("A", Some(1), 1));
        hub.on_publish(&note("B", Some(1), 2));
        hub.on_publish(&note("A", Some(2), 3));
        hub.ack("s", 2).unwrap();
        drop(hub);
        // "Crash": the queue redelivers both tokens, so every notification
        // is re-published. Origin 1's two fires are its retained acked
        // prefix; origin 2's one recovered row suppresses the first
        // re-publish.
        let hub2 = DeliveryHub::open(&db, None).unwrap();
        let (tx2, rx2) = unbounded();
        let reg = hub2.register("s", "*", 0, tx2).unwrap();
        assert_eq!(reg.watermark, 2);
        assert_eq!(reg.replay.len(), 1); // token 2's fire, from the log
        hub2.on_publish(&note("A", Some(1), 1));
        hub2.on_publish(&note("B", Some(1), 2));
        hub2.on_publish(&note("A", Some(2), 3));
        assert_eq!(rx2.try_iter().count(), 0); // nothing double-delivered
        assert_eq!(hub2.suppressed().get(), 3);
        // A genuinely new token still flows.
        hub2.on_publish(&note("A", Some(3), 4));
        let fresh: Vec<_> = rx2.try_iter().collect();
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].seq, 4); // seq continues above the recovered log
    }

    #[test]
    fn ack_between_fires_of_one_origin_does_not_suppress() {
        // Regression: an ack that lands between a token's fires must not
        // suppress the fires that come after it.
        let db = Database::open_memory(256);
        let hub = DeliveryHub::open(&db, None).unwrap();
        let (tx, rx) = unbounded();
        hub.register("s", "*", 0, tx).unwrap();
        hub.on_publish(&note("A", Some(1), 1)); // fire 0 of origin 1
        assert_eq!(rx.try_iter().count(), 1);
        hub.ack("s", 1).unwrap(); // ack lands mid-token
        hub.on_publish(&note("A", Some(1), 2)); // fire 1 of origin 1
        hub.on_publish(&note("A", Some(1), 3)); // fire 2 of origin 1
        let got: Vec<_> = rx.try_iter().collect();
        assert_eq!(got.iter().map(|d| d.seq).collect::<Vec<_>>(), [2, 3]);
        assert_eq!(hub.suppressed().get(), 0);
        assert_eq!(hub.resident_len("s"), Some(2));
    }

    #[test]
    fn partial_origin_ack_survives_a_crash_without_losing_fires() {
        // Origin 1 fires twice; only the first fire is acked before the
        // crash. Redelivery must suppress exactly those two appends (one
        // acked, one resident) — and a third, never-logged fire of the
        // same origin must come through.
        let db = Database::open_memory(256);
        let hub = DeliveryHub::open(&db, None).unwrap();
        let (tx, _rx) = unbounded();
        hub.register("s", "*", 0, tx).unwrap();
        hub.on_publish(&note("A", Some(1), 1));
        hub.on_publish(&note("A", Some(1), 2));
        hub.ack("s", 1).unwrap(); // prefix of origin 1 only
        drop(hub);
        let hub2 = DeliveryHub::open(&db, None).unwrap();
        let (tx2, rx2) = unbounded();
        let reg = hub2.register("s", "*", 0, tx2).unwrap();
        assert_eq!(reg.watermark, 1);
        assert_eq!(reg.replay.len(), 1); // the unacked second fire
        assert_eq!(reg.replay[0].seq, 2);
        hub2.on_publish(&note("A", Some(1), 1)); // re-publish, acked
        hub2.on_publish(&note("A", Some(1), 2)); // re-publish, resident
        hub2.on_publish(&note("A", Some(1), 3)); // new fire, never logged
        let got: Vec<_> = rx2.try_iter().collect();
        assert_eq!(got.iter().map(|d| d.seq).collect::<Vec<_>>(), [3]);
        assert_eq!(hub2.suppressed().get(), 2);
    }

    #[test]
    fn client_resume_from_acts_as_implicit_ack() {
        let db = Database::open_memory(256);
        let hub = DeliveryHub::open(&db, None).unwrap();
        let (tx, _rx) = unbounded();
        hub.register("s", "*", 0, tx).unwrap();
        for i in 1..=4 {
            hub.on_publish(&note("A", Some(i), i));
        }
        drop(hub);
        // The server never saw an ack, but the client processed through
        // seq 3 before the crash: reconnecting with resume_from=3 replays
        // only seq 4.
        let hub2 = DeliveryHub::open(&db, None).unwrap();
        let (tx2, _rx2) = unbounded();
        let reg = hub2.register("s", "*", 3, tx2).unwrap();
        assert_eq!(reg.watermark, 3);
        assert_eq!(reg.replay.len(), 1);
        assert_eq!(reg.replay[0].seq, 4);
        assert_eq!(hub2.watermark("s"), Some(3));
    }

    #[test]
    fn resume_from_above_assigned_sequences_is_clamped() {
        let db = Database::open_memory(256);
        let hub = DeliveryHub::open(&db, None).unwrap();
        let (tx, _rx) = unbounded();
        hub.register("s", "*", 0, tx).unwrap();
        for i in 1..=2 {
            hub.on_publish(&note("A", Some(i), i));
        }
        // A stale client (or a restored server database) presents a
        // watermark the server never assigned: clamp to the real frontier
        // instead of wedging every future delivery below the watermark.
        let (tx2, _rx2) = unbounded();
        let reg = hub.register("s", "*", u64::MAX, tx2).unwrap();
        assert_eq!(reg.watermark, 2);
        assert_eq!(hub.clamped().get(), 1);
        assert_eq!(hub.watermark("s"), Some(2));
        // New fires keep flowing above the clamped watermark.
        hub.on_publish(&note("A", Some(3), 3));
        assert_eq!(hub.resident_len("s"), Some(1));
        drop(hub);
        // The clamped (not wrapped) watermark is what went durable.
        let hub2 = DeliveryHub::open(&db, None).unwrap();
        assert_eq!(hub2.watermark("s"), Some(2));
        let (tx3, _rx3) = unbounded();
        let reg = hub2.register("s", "*", 0, tx3).unwrap();
        assert_eq!(reg.replay.len(), 1);
        assert_eq!(reg.replay[0].seq, 3);
    }

    #[test]
    fn retired_and_orphaned_rows_are_dropped_at_open() {
        let db = Database::open_memory(256);
        let hub = DeliveryHub::open(&db, None).unwrap();
        let (tx, _rx) = unbounded();
        hub.register("s", "*", 0, tx).unwrap();
        hub.on_publish(&note("A", Some(1), 1));
        // Ack (origin 1 not yet retired, so the row is retained), then add
        // an orphan row for a subscriber that no longer exists.
        hub.ack("s", 1).unwrap();
        hub.log_table
            .insert(vec![
                Value::str("ghost"),
                Value::Int(5),
                Value::Int(2),
                Value::str(hex_encode(b"orphan")),
            ])
            .unwrap();
        drop(hub);
        // Reopen with the queue watermark past origin 1: the retained row
        // is retired (the queue can never redeliver it) and dropped along
        // with the orphan.
        let hub2 = DeliveryHub::open(&db, Some(1)).unwrap();
        assert_eq!(hub2.dedup_dropped().get(), 2);
        assert_eq!(hub2.retained_len("s"), Some(0));
        let (tx2, _rx2) = unbounded();
        let reg = hub2.register("s", "*", 0, tx2).unwrap();
        assert_eq!((reg.watermark, reg.replay.len()), (1, 0));
    }

    #[test]
    fn gc_retires_acked_rows_and_prunes_origin_state() {
        let db = Database::open_memory(256);
        let hub = DeliveryHub::open(&db, Some(0)).unwrap();
        let (tx, _rx) = unbounded();
        hub.register("s", "*", 0, tx).unwrap();
        for i in 1..=3 {
            hub.on_publish(&note("A", Some(i), i));
        }
        hub.ack("s", 3).unwrap();
        assert_eq!(hub.retained_len("s"), Some(3));
        // Origins 1 and 2 processed by the queue: their rows and counters
        // go; origin 3 is still redeliverable and stays.
        assert_eq!(hub.gc(Some(2)), 2);
        assert_eq!(hub.retained_len("s"), Some(1));
        {
            let state = hub.state.lock();
            let st = state.get("s").unwrap();
            assert_eq!(st.acked.len(), 1);
            assert_eq!(st.replayed.len(), 1); // only origin 3 survives
        }
        assert_eq!(hub.gc(Some(3)), 1);
        assert_eq!(hub.retained_len("s"), Some(0));
        {
            let state = hub.state.lock();
            let st = state.get("s").unwrap();
            assert!(st.acked.is_empty() && st.replayed.is_empty());
        }
        // A volatile queue (no watermark) never retires anything.
        assert_eq!(hub.gc(None), 0);
        // After gc nothing of the retired origins survives a reopen.
        drop(hub);
        let hub2 = DeliveryHub::open(&db, Some(3)).unwrap();
        assert_eq!(hub2.dedup_dropped().get(), 0);
        let (tx2, _rx2) = unbounded();
        let reg = hub2.register("s", "*", 0, tx2).unwrap();
        assert_eq!((reg.watermark, reg.replay.len()), (3, 0));
    }

    #[test]
    fn acks_behind_the_retired_floor_delete_immediately() {
        let db = Database::open_memory(256);
        let hub = DeliveryHub::open(&db, Some(0)).unwrap();
        let (tx, _rx) = unbounded();
        hub.register("s", "*", 0, tx).unwrap();
        hub.on_publish(&note("A", Some(1), 1));
        hub.on_publish(&note("A", None, 2)); // volatile fire, origin -1
        hub.gc(Some(5)); // queue already past origin 1
        hub.ack("s", 2).unwrap();
        // Neither row needs retention: origin 1 is retired, origin -1 is
        // untracked. The log is empty on reopen.
        assert_eq!(hub.retained_len("s"), Some(0));
        drop(hub);
        let hub2 = DeliveryHub::open(&db, Some(5)).unwrap();
        assert_eq!(hub2.dedup_dropped().get(), 0);
        let (tx2, _rx2) = unbounded();
        let reg = hub2.register("s", "*", 0, tx2).unwrap();
        assert_eq!((reg.watermark, reg.replay.len()), (2, 0));
    }

    #[test]
    fn stalled_mailboxes_are_dropped_but_rows_stay_durable() {
        let db = Database::open_memory(4096);
        let hub = DeliveryHub::open(&db, None).unwrap();
        let (tx, rx) = unbounded();
        hub.register("s", "*", 0, tx).unwrap();
        let n = MAILBOX_STALL_DEPTH + 5;
        for i in 0..n {
            hub.on_publish(&note("A", None, i as i64));
        }
        // The mailbox stopped at the stall depth; everything is still in
        // the durable log for replay.
        assert_eq!(rx.len(), MAILBOX_STALL_DEPTH);
        assert!(hub.stalled().get() >= 1);
        assert_eq!(hub.resident_len("s"), Some(n));
        // Once dropped, the mailbox is not resurrected by later publishes.
        let backlog = rx.len();
        hub.on_publish(&note("A", None, -1));
        assert_eq!(rx.len(), backlog);
        // A reconnect replays the full unacked stream.
        let (tx2, _rx2) = unbounded();
        let reg = hub.register("s", "*", 0, tx2).unwrap();
        assert_eq!(reg.replay.len(), n + 1);
    }

    #[test]
    fn stale_detach_does_not_clobber_a_reconnect() {
        let db = Database::open_memory(256);
        let hub = DeliveryHub::open(&db, None).unwrap();
        let (tx1, _rx1) = unbounded();
        let old = hub.register("s", "*", 0, tx1).unwrap();
        let (tx2, rx2) = unbounded();
        let new = hub.register("s", "*", 0, tx2).unwrap();
        // The old connection's EOF lands after the reconnect: no-op.
        hub.detach("s", old.epoch);
        hub.on_publish(&note("A", Some(1), 1));
        assert_eq!(rx2.try_iter().count(), 1);
        // Detaching the live epoch does clear the mailbox.
        hub.detach("s", new.epoch);
        hub.on_publish(&note("A", Some(2), 2));
        assert_eq!(rx2.try_iter().count(), 0);
    }

    #[test]
    fn volatile_origins_always_deliver() {
        let db = Database::open_memory(256);
        let hub = DeliveryHub::open(&db, None).unwrap();
        let (tx, rx) = unbounded();
        hub.register("s", "*", 0, tx).unwrap();
        hub.on_publish(&note("A", None, 1));
        hub.on_publish(&note("A", None, 2));
        assert_eq!(rx.try_iter().count(), 2);
        assert_eq!(hub.suppressed().get(), 0);
    }
}
