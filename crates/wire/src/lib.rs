//! `tman-wire` — the TCP tier in front of a TriggerMan engine (§3's
//! "data source programs" and "client applications", made remote).
//!
//! The paper's architecture captures updates from data sources into a
//! queue and pushes trigger firings to interested clients. Inside one
//! process that is [`DataSourceClient`](triggerman::DataSourceClient) and
//! the [`EventBus`](triggerman::EventBus); this crate extends both ends
//! over TCP without giving up the scalability story or the crash-safety
//! story:
//!
//! * [`frame`] — a length-framed binary protocol (magic, version, type,
//!   CRC-32 trailer) with a zero-copy incremental decoder. Malformed input
//!   of any kind fails the connection cleanly, never the server.
//! * [`server`] — [`WireServer`]: one poll-based I/O thread multiplexing
//!   thousands of non-blocking connections; decoded descriptors from all
//!   source connections are **group-committed** into the update queue (one
//!   durability barrier per batch) and flow control is credit-based
//!   against queue depth — backpressure, not drops.
//! * [`delivery`] — [`DeliveryHub`]: durable per-subscriber delivery logs
//!   and watermarks, extending the engine's PR-5 queue watermark protocol
//!   end-to-end: a subscriber that reconnects after a crash (its own or
//!   the server's) resumes from its durable ack watermark and receives
//!   every fire above it exactly once.
//! * [`client`] — [`RemoteClient`] / [`RemoteDataSource`] /
//!   [`RemoteSubscriber`]: blocking client wrappers for feeders and
//!   dashboards.
//! * [`crc`] — the CRC-32 kernel the framing uses.

pub mod client;
pub mod crc;
pub mod delivery;
pub mod frame;
pub mod server;

pub use client::{ReceivedNotification, RemoteClient, RemoteDataSource, RemoteSubscriber};
pub use delivery::{Delivery, DeliveryHub, Registration};
pub use frame::{
    decode_frame, decode_frame_v, decode_notification_body, encode_frame, encode_frame_v,
    encode_notification_body, Frame, VERSION, VERSION_1,
};
pub use server::WireServer;
