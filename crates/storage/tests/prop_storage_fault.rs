//! Property test: the storage layer under seeded write-fault schedules.
//!
//! Drives a heap + B+tree workload on a file-backed store while a
//! [`FaultPlan`] injects torn writes, short writes, and transient I/O
//! errors (the non-lying faults: every failed write reports failure, so
//! "committed" is well defined). File-backed stores are WAL-backed, so
//! the schedule lands on log appends and group-commit fsyncs as well as
//! on checkpoint write-back, and every reopen runs recovery-time replay
//! of the committed log tail (the log-level mirror of these properties
//! lives in `prop_wal.rs`). Two properties:
//!
//! * **Committed rows survive** — after a clean final checkpoint and a
//!   reopen, every row whose insert reported success reads back
//!   byte-identically, and index entries that reported success are found.
//! * **No garbage after recovery** — a heap scan after reopen returns only
//!   payloads the test actually wrote, even when the reopen's scavenge
//!   pass had to salvage torn slots; the same holds after a hard crash
//!   point froze the disk mid-workload.

use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use tman_storage::{FaultConfig, FaultPlan, Storage};

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmpfile(tag: &str) -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "tman_prop_fault_{tag}_{}_{n}.db",
        std::process::id()
    ))
}

/// Remove a database file and its write-ahead-log sidecar.
fn cleanup(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
    let mut wal = path.as_os_str().to_owned();
    wal.push(".wal");
    let _ = std::fs::remove_file(PathBuf::from(wal));
}

/// Self-describing payload: the row number, then a derived fill pattern a
/// verifier can reconstruct from the first 8 bytes alone.
fn payload(i: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(24);
    out.extend_from_slice(&i.to_le_bytes());
    out.extend_from_slice(&(i.wrapping_mul(0x9E37_79B9)).to_le_bytes());
    out.extend_from_slice(&[(i % 251) as u8; 8]);
    out
}

fn payload_is_wellformed(rec: &[u8]) -> bool {
    if rec.len() != 24 {
        return false;
    }
    let i = u64::from_le_bytes(rec[..8].try_into().unwrap());
    rec == payload(i).as_slice()
}

fn key(i: u64) -> [u8; 8] {
    i.to_be_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Torn/short/transient schedules: nothing acknowledged is ever lost,
    /// and a clean final checkpoint makes the whole surviving state
    /// readable after reopen.
    #[test]
    fn committed_rows_survive_write_faults(
        seed in 0u64..1_000_000,
        torn in 0u32..120,
        short in 0u32..80,
        transient in 0u32..200,
        rows_a in 8usize..40,
        rows_b in 20usize..140,
        checkpoint_every in 5usize..25,
    ) {
        let path = tmpfile("mixed");
        cleanup(&path);
        let plan = FaultPlan::new(FaultConfig {
            seed,
            torn_per_mille: torn,
            short_per_mille: short,
            transient_per_mille: transient,
            ..Default::default()
        });
        // rid -> (row number, did the index insert succeed)
        let mut committed: HashMap<u64, (u64, bool)> = HashMap::new();
        {
            let s = Storage::open_file_with(&path, 16, Some(plan.clone())).unwrap();
            let heap = s.create_heap("rows").unwrap();
            let tree = s.create_btree("idx").unwrap();
            // Phase A on a reliable disk: all of this is durable.
            for i in 0..rows_a as u64 {
                let rid = heap.insert(&payload(i)).unwrap();
                tree.insert(&key(i), rid.to_u64()).unwrap();
                committed.insert(rid.to_u64(), (i, true));
            }
            s.checkpoint().unwrap();
            // Phase B under fire: failures are tolerated, successes are
            // promises.
            plan.arm();
            for i in rows_a as u64..(rows_a + rows_b) as u64 {
                if let Ok(rid) = heap.insert(&payload(i)) {
                    let indexed = tree.insert(&key(i), rid.to_u64()).is_ok();
                    committed.insert(rid.to_u64(), (i, indexed));
                }
                if i as usize % checkpoint_every == 0 {
                    let _ = s.checkpoint();
                }
            }
            // Back on a reliable disk, a checkpoint must succeed and make
            // every acknowledged operation durable.
            plan.disarm();
            s.checkpoint().unwrap();
        }
        let s = Storage::open_file(&path, 16).unwrap();
        let heap = s.open_heap("rows").unwrap();
        let tree = s.open_btree("idx").unwrap();
        for (&rid, &(i, indexed)) in &committed {
            let rec = heap
                .get(tman_storage::RecordId::from_u64(rid))
                .unwrap_or_else(|e| panic!("committed row {i} lost: {e}"));
            prop_assert_eq!(&rec, &payload(i), "row {} corrupted", i);
            if indexed {
                let hits = tree.lookup(&key(i)).unwrap();
                prop_assert!(hits.contains(&rid), "index entry for row {} lost", i);
            }
        }
        // Nothing the test never wrote may appear.
        let mut scanned = 0usize;
        let mut garbage = 0usize;
        heap.scan(|_, rec| {
            if !payload_is_wellformed(rec) {
                garbage += 1;
            }
            scanned += 1;
            Ok(true)
        })
        .unwrap();
        prop_assert_eq!(garbage, 0, "garbage rows after recovery");
        prop_assert_eq!(scanned, committed.len());
        cleanup(&path);
    }

    /// Hard crash points: freeze the disk at the Nth armed write, reopen,
    /// and check that phase-A rows survive and no read returns garbage.
    #[test]
    fn crash_point_never_loses_checkpointed_rows(
        seed in 0u64..1_000_000,
        crash_after in 1u64..60,
        rows_a in 8usize..40,
    ) {
        let path = tmpfile("crash");
        cleanup(&path);
        let plan = FaultPlan::new(FaultConfig {
            seed,
            crash_after_writes: Some(crash_after),
            ..Default::default()
        });
        let mut durable: Vec<(u64, u64)> = Vec::new(); // (rid, row number)
        {
            let s = Storage::open_file_with(&path, 16, Some(plan.clone())).unwrap();
            let heap = s.create_heap("rows").unwrap();
            for i in 0..rows_a as u64 {
                let rid = heap.insert(&payload(i)).unwrap();
                durable.push((rid.to_u64(), i));
            }
            s.checkpoint().unwrap();
            plan.arm();
            // Hammer inserts and checkpoints until the crash point fires
            // (every armed write counts toward it).
            let mut i = rows_a as u64;
            while !plan.crashed() && i < rows_a as u64 + 10_000 {
                let _ = heap.insert(&payload(i));
                let _ = s.checkpoint();
                i += 1;
            }
            prop_assert!(plan.crashed(), "crash point never fired");
        }
        // "Restart": thaw the disk and reopen without the plan.
        plan.reset_crash();
        plan.disarm();
        let s = Storage::open_file(&path, 16).unwrap();
        let heap = s.open_heap("rows").unwrap();
        for &(rid, i) in &durable {
            let rec = heap
                .get(tman_storage::RecordId::from_u64(rid))
                .unwrap_or_else(|e| panic!("checkpointed row {i} lost after crash: {e}"));
            prop_assert_eq!(&rec, &payload(i), "row {} corrupted after crash", i);
        }
        let mut garbage = 0usize;
        heap.scan(|_, rec| {
            if !payload_is_wellformed(rec) {
                garbage += 1;
            }
            Ok(true)
        })
        .unwrap();
        prop_assert_eq!(garbage, 0, "garbage rows after crash recovery");
        cleanup(&path);
    }
}
