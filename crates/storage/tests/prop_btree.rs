//! Model-based property test for the B+tree: a random operation sequence
//! against a `BTreeMap<(key, value)>` reference model, checking lookups,
//! range scans and counts after every batch.

use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;
use tman_storage::{BTree, BufferPool, DiskManager};

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>, u64),
    Delete(Vec<u8>, u64),
    Lookup(Vec<u8>),
    Range(Vec<u8>, Vec<u8>),
}

fn small_key() -> impl Strategy<Value = Vec<u8>> {
    // Small alphabet so keys collide often (duplicates exercised).
    proptest::collection::vec(0u8..4, 0..5)
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (small_key(), 0u64..6).prop_map(|(k, v)| Op::Insert(k, v)),
        (small_key(), 0u64..6).prop_map(|(k, v)| Op::Delete(k, v)),
        small_key().prop_map(Op::Lookup),
        (small_key(), small_key()).prop_map(|(a, b)| Op::Range(a, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn btree_matches_model(ops in proptest::collection::vec(op(), 1..300)) {
        let pool = Arc::new(BufferPool::new(Arc::new(DiskManager::open_memory()), 64));
        let tree = BTree::create(pool).unwrap();
        let mut model: BTreeSet<(Vec<u8>, u64)> = BTreeSet::new();

        for op in &ops {
            match op {
                Op::Insert(k, v) => {
                    tree.insert(k, *v).unwrap();
                    model.insert((k.clone(), *v));
                }
                Op::Delete(k, v) => {
                    let expect = model.remove(&(k.clone(), *v));
                    prop_assert_eq!(tree.delete(k, *v).unwrap(), expect);
                }
                Op::Lookup(k) => {
                    let got = tree.lookup(k).unwrap();
                    let want: Vec<u64> = model
                        .iter()
                        .filter(|(mk, _)| mk == k)
                        .map(|(_, v)| *v)
                        .collect();
                    prop_assert_eq!(got, want);
                }
                Op::Range(a, b) => {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    let mut got = Vec::new();
                    tree.scan_range(lo, hi, |k, v| {
                        got.push((k.to_vec(), v));
                        Ok(true)
                    })
                    .unwrap();
                    let want: Vec<(Vec<u8>, u64)> = model
                        .iter()
                        .filter(|(mk, _)| mk >= lo && mk < hi)
                        .cloned()
                        .collect();
                    prop_assert_eq!(got, want);
                }
            }
        }
        prop_assert_eq!(tree.count().unwrap(), model.len());
    }
}
