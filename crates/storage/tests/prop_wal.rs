//! Property tests: the write-ahead log under seeded fault schedules.
//!
//! Drives [`Wal`] directly — append / commit / group-commit / checkpoint —
//! while a [`FaultPlan`] injects torn writes, short writes, transient
//! errors, dropped syncs, and crash points into the log file. Four
//! properties:
//!
//! * **Committed records replay byte-exact** — under the non-lying faults
//!   (every failed write reports failure), any page sealed by a commit
//!   frame that reported success reads back byte-identically after a
//!   replay into a fresh page file.
//! * **Replay is idempotent** — replaying a byte-copy of the same log into
//!   a second page file produces identical pages, and reopening the
//!   truncated log after replay replays nothing and changes nothing.
//! * **A lying tail is discarded cleanly** — with dropped syncs in the
//!   schedule, "committed" is no longer a promise, but replay must still
//!   never panic, never error, and never surface a page image the workload
//!   didn't write (each replayed page is byte-identical to *some*
//!   acknowledged append of that page).
//! * **Checkpoints under fire converge** — write-back faults may abort a
//!   checkpoint, but the log keeps the records; once the disk behaves, one
//!   clean checkpoint lands every committed page in the page file and
//!   truncates the log.
//!
//! The engine-level mirror of these properties (heap/B+tree workloads over
//! the WAL-backed buffer pool) lives in `prop_storage_fault.rs` and
//! `tests/crash_recovery.rs`.

use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tman_storage::{DiskManager, FaultConfig, FaultPlan, PageId, Wal, WalConfig, PAGE_SIZE};

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmplog(tag: &str) -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "tman_prop_wal_{tag}_{}_{n}.wal",
        std::process::id()
    ))
}

/// Deterministic page image for version `v` of page `pid`: a stamped
/// header plus a fill pattern, with only a small window changed between
/// consecutive versions so repeated appends exercise the delta encoder.
fn image(pid: u32, v: u32) -> Box<[u8; PAGE_SIZE]> {
    let mut buf = Box::new([0u8; PAGE_SIZE]);
    let fill = (pid.wrapping_mul(31) ^ 0xA5) as u8;
    buf[16..].iter_mut().for_each(|b| *b = fill);
    for step in 0..=v {
        let off = 16 + (step as usize * 96) % (PAGE_SIZE - 64);
        buf[off..off + 32].iter_mut().for_each(|b| {
            *b = (step.wrapping_mul(131).wrapping_add(pid)) as u8;
        });
    }
    buf[..8].copy_from_slice(&(pid as u64).to_le_bytes());
    buf[8..16].copy_from_slice(&(v as u64).to_le_bytes());
    buf
}

/// Replay `path` into a fresh in-memory page file.
fn replay_fresh(path: &std::path::Path) -> (DiskManager, u64) {
    let wal = Wal::open(path, None, WalConfig::default()).expect("reopen after faults");
    let disk = DiskManager::open_memory();
    let replayed = wal.replay_into(&disk).expect("replay must not error");
    (disk, replayed)
}

fn read(disk: &DiskManager, pid: u32) -> Option<Box<[u8; PAGE_SIZE]>> {
    if pid >= disk.num_pages() {
        return None;
    }
    let mut buf = Box::new([0u8; PAGE_SIZE]);
    disk.read_page(PageId(pid), &mut buf).ok()?;
    Some(buf)
}

/// Append with bounded retries (the buffer pool retries transient and torn
/// failures the same way). Returns true if the append was acknowledged.
fn append_retry(wal: &Wal, pid: u32, img: &[u8; PAGE_SIZE]) -> bool {
    (0..16).any(|_| wal.append_page(PageId(pid), img).is_ok())
}

/// Commit with bounded retries; `Some(seq)` once a commit frame lands.
fn commit_retry(wal: &Wal) -> Option<u64> {
    (0..16).find_map(|_| wal.commit_stage().ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Non-lying faults at append and commit boundaries: every page sealed
    /// by an acknowledged commit replays byte-exact, and replay is
    /// idempotent across a byte-copy of the log.
    #[test]
    fn committed_records_replay_byte_exact(
        seed in 0u64..1_000_000,
        torn in 0u32..120,
        short in 0u32..80,
        transient in 0u32..200,
        rounds in 4usize..20,
        pages_per_round in 1usize..6,
        crash_after in 0u64..400,
    ) {
        let path = tmplog("exact");
        let _ = std::fs::remove_file(&path);
        let plan = FaultPlan::new(FaultConfig {
            seed,
            torn_per_mille: torn,
            short_per_mille: short,
            transient_per_mille: transient,
            // Low draws mean "no crash point" so both shapes are covered.
            crash_after_writes: (crash_after >= 40).then_some(crash_after),
            ..Default::default()
        });
        // pid -> image promised durable by an acknowledged commit frame.
        // Each round uses fresh pids, so an uncommitted tail that happens
        // to survive in the file never shadows a committed image.
        let mut expected: HashMap<u32, Box<[u8; PAGE_SIZE]>> = HashMap::new();
        {
            let wal = Wal::open(&path, Some(plan.clone()), WalConfig::default()).unwrap();
            plan.arm();
            let mut staged: HashMap<u32, Box<[u8; PAGE_SIZE]>> = HashMap::new();
            let mut next_pid = 1u32;
            for round in 0..rounds {
                for _ in 0..pages_per_round {
                    let pid = next_pid;
                    next_pid += 1;
                    // Two versions per page: image append, then a small
                    // edit that goes down the delta path.
                    for v in 0..=(round % 2) as u32 {
                        let img = image(pid, v);
                        if append_retry(&wal, pid, &img) {
                            staged.insert(pid, img);
                        }
                    }
                }
                if let Some(seq) = commit_retry(&wal) {
                    // The commit frame is in the file: it seals every
                    // acknowledged append so far, including strays from
                    // rounds whose own commit failed.
                    for (pid, img) in staged.drain() {
                        expected.insert(pid, img);
                    }
                    // Durability is best-effort under fire; Ok or not, the
                    // sealed records are already covered by the frame.
                    let _ = wal.make_durable(seq);
                }
                if plan.crashed() {
                    break; // frozen until "restart"
                }
            }
        }
        plan.reset_crash();
        plan.disarm();

        let copy = path.with_extension("wal-copy");
        std::fs::copy(&path, &copy).unwrap();

        let (disk, _) = replay_fresh(&path);
        for (&pid, img) in &expected {
            let got = read(&disk, pid)
                .unwrap_or_else(|| panic!("committed page {pid} missing after replay"));
            prop_assert_eq!(&got[..], &img[..], "page {} not byte-exact", pid);
        }

        // Idempotence 1: a byte-copy of the log replays to identical pages.
        let (disk2, _) = replay_fresh(&copy);
        prop_assert_eq!(disk.num_pages(), disk2.num_pages());
        for pid in 0..disk.num_pages() {
            prop_assert_eq!(
                read(&disk, pid).map(|b| b.to_vec()),
                read(&disk2, pid).map(|b| b.to_vec()),
                "replay of a log copy diverged at page {}", pid
            );
        }
        // Idempotence 2: replay truncated the log, so a second recovery
        // replays nothing and leaves the page file untouched.
        let wal2 = Wal::open(&path, None, WalConfig::default()).unwrap();
        prop_assert_eq!(wal2.replay_into(&disk).unwrap(), 0);
        for (&pid, img) in &expected {
            prop_assert_eq!(&read(&disk, pid).unwrap()[..], &img[..]);
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&copy);
    }

    /// Dropped syncs make the log lie (acknowledged frames may be missing
    /// from disk), so durability is off the table — but replay must still
    /// discard the damaged or missing tail cleanly: no panic, no error,
    /// and no page image the workload never wrote.
    #[test]
    fn lying_tail_is_discarded_without_garbage(
        seed in 0u64..1_000_000,
        dropped in 50u32..400,
        torn in 0u32..120,
        rounds in 4usize..20,
    ) {
        let path = tmplog("lying");
        let _ = std::fs::remove_file(&path);
        let plan = FaultPlan::new(FaultConfig {
            seed,
            dropped_sync_per_mille: dropped,
            torn_per_mille: torn,
            ..Default::default()
        });
        // Every acknowledged image of every page; replay may resurface any
        // one of them (or none), depending on which frames really landed.
        let mut history: HashMap<u32, Vec<Box<[u8; PAGE_SIZE]>>> = HashMap::new();
        {
            let wal = Wal::open(&path, Some(plan.clone()), WalConfig::default()).unwrap();
            plan.arm();
            for round in 0..rounds as u32 {
                for pid in 1..5u32 {
                    let img = image(pid, round);
                    if append_retry(&wal, pid, &img) {
                        history.entry(pid).or_default().push(img);
                    }
                }
                if let Some(seq) = commit_retry(&wal) {
                    let _ = wal.make_durable(seq);
                }
            }
        }
        plan.disarm();
        let (disk, _) = replay_fresh(&path);
        for pid in 0..disk.num_pages() {
            let Some(got) = read(&disk, pid) else { continue };
            if got.iter().all(|&b| b == 0) {
                continue; // allocate-extend padding, never replayed into
            }
            let known = history
                .get(&pid)
                .map(|v| v.iter().any(|img| img[..] == got[..]))
                .unwrap_or(false);
            prop_assert!(known, "page {} replayed to an image never written", pid);
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Faults at checkpoint boundaries: aborted checkpoints lose nothing
    /// (the log still covers every committed page), and one clean
    /// checkpoint writes everything back and truncates the log.
    #[test]
    fn checkpoint_under_faults_converges(
        seed in 0u64..1_000_000,
        torn in 0u32..150,
        transient in 0u32..250,
        rounds in 4usize..16,
        checkpoint_every in 2usize..6,
    ) {
        let path = tmplog("ckpt");
        let _ = std::fs::remove_file(&path);
        let plan = FaultPlan::new(FaultConfig {
            seed,
            torn_per_mille: torn,
            transient_per_mille: transient,
            ..Default::default()
        });
        let disk = DiskManager::open_memory();
        let wal = Wal::open(&path, Some(plan.clone()), WalConfig::default()).unwrap();
        let mut expected: HashMap<u32, Box<[u8; PAGE_SIZE]>> = HashMap::new();
        plan.arm();
        for round in 0..rounds as u32 {
            for pid in 1..6u32 {
                let img = image(pid, round);
                if append_retry(&wal, pid, &img) {
                    // Commits below retry until a frame lands, so on this
                    // no-crash schedule every acknowledged append seals.
                    expected.insert(pid, img);
                }
            }
            let seq = commit_retry(&wal).expect("commit retries exhausted");
            let _ = wal.make_durable(seq);
            // Checkpoints may abort mid-write-back; that must be harmless.
            if round as usize % checkpoint_every == 0 {
                let _ = wal.checkpoint_into(&disk);
            }
        }
        plan.disarm();
        wal.checkpoint_into(&disk).expect("clean checkpoint");
        prop_assert_eq!(wal.bytes(), 0, "checkpoint left records in the log");
        for (&pid, img) in &expected {
            let got = read(&disk, pid)
                .unwrap_or_else(|| panic!("page {pid} missing from the page file"));
            prop_assert_eq!(&got[..], &img[..], "page {} diverged after write-back", pid);
        }
        // Nothing left to replay: recovery from here is a no-op. (A fresh
        // memory disk holds only the pre-allocated superblock page.)
        drop(wal);
        let (fresh, replayed) = replay_fresh(&path);
        prop_assert_eq!(replayed, 0);
        prop_assert_eq!(fresh.num_pages(), DiskManager::open_memory().num_pages());
        let _ = std::fs::remove_file(&path);
    }
}

/// Snapshot isolation across a concurrent group commit: a writer stamps
/// the same round number into four pages and commits them as one batch; a
/// reader that opens a snapshot at any instant must see all four pages
/// carrying one round — never a torn mix, and never an uncommitted stamp.
#[test]
fn snapshot_never_sees_torn_multi_page_update() {
    let path = tmplog("snap");
    let _ = std::fs::remove_file(&path);
    let disk = Arc::new(DiskManager::open_memory());
    let wal = Arc::new(Wal::open(&path, None, WalConfig::default()).unwrap());
    const PIDS: [u32; 4] = [1, 2, 3, 4];
    const ROUNDS: u32 = 200;

    // Round 0 committed up front so every snapshot has a full version set.
    for &pid in &PIDS {
        wal.append_page(PageId(pid), &image(pid, 0)).unwrap();
    }
    let seq0 = wal.commit_stage().unwrap();
    wal.make_durable(seq0).unwrap();

    let writer = {
        let (wal, disk) = (Arc::clone(&wal), Arc::clone(&disk));
        std::thread::spawn(move || {
            for round in 1..=ROUNDS {
                for &pid in &PIDS {
                    wal.append_page(PageId(pid), &image(pid, round)).unwrap();
                }
                let seq = wal.commit_stage().unwrap();
                wal.make_durable(seq).unwrap();
                if round % 32 == 0 {
                    wal.checkpoint_into(&disk).unwrap();
                }
            }
        })
    };
    let reader = {
        let (wal, disk) = (Arc::clone(&wal), Arc::clone(&disk));
        std::thread::spawn(move || {
            let mut seen = HashSet::new();
            let mut buf = Box::new([0u8; PAGE_SIZE]);
            loop {
                let snap = wal.snapshot(Arc::clone(&disk));
                let mut rounds = [0u64; PIDS.len()];
                for (i, &pid) in PIDS.iter().enumerate() {
                    snap.read_page(PageId(pid), &mut buf).unwrap();
                    assert_eq!(u64::from_le_bytes(buf[..8].try_into().unwrap()), pid as u64);
                    rounds[i] = u64::from_le_bytes(buf[8..16].try_into().unwrap());
                }
                assert!(
                    rounds.iter().all(|&r| r == rounds[0]),
                    "snapshot saw a torn multi-page update: {rounds:?}"
                );
                seen.insert(rounds[0]);
                if rounds[0] >= ROUNDS as u64 {
                    break;
                }
            }
            seen.len()
        })
    };
    writer.join().unwrap();
    let distinct = reader.join().unwrap();
    assert!(distinct >= 1, "reader never observed a committed round");
    let _ = std::fs::remove_file(&path);
}

/// Long soak (ignored; CI runs it non-blocking): four committer threads
/// hammer group commits over disjoint page sets while one snapshot reader
/// per writer checks isolation and a checkpointer truncates the log under
/// all of them. Afterwards the final images must be in the page file, the
/// truncated log must replay nothing, and the group-commit counter must
/// show committers actually shared fsyncs (the E13 economics).
#[test]
#[ignore]
fn wal_soak_concurrent_commit_checkpoint_snapshot() {
    const WRITERS: u32 = 4;
    const PAGES: u32 = 4; // per writer
    const ROUNDS: u32 = 2_000;
    let pids = |w: u32| (1..=PAGES).map(move |i| w * PAGES + i);

    let path = tmplog("soak");
    let _ = std::fs::remove_file(&path);
    let disk = Arc::new(DiskManager::open_memory());
    let wal = Arc::new(Wal::open(&path, None, WalConfig::default()).unwrap());

    // Round 0 committed up front so every snapshot has a full version set.
    for w in 0..WRITERS {
        for pid in pids(w) {
            wal.append_page(PageId(pid), &image(pid, 0)).unwrap();
        }
    }
    let seq0 = wal.commit_stage().unwrap();
    wal.make_durable(seq0).unwrap();

    // A commit frame seals *every* pending append, so concurrent writers
    // serialize stage+commit (as the buffer pool does) and overlap only in
    // `make_durable` — which is exactly where group commit amortizes.
    let stage = Arc::new(std::sync::Mutex::new(()));
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let (wal, stage) = (Arc::clone(&wal), Arc::clone(&stage));
            std::thread::spawn(move || {
                for round in 1..=ROUNDS {
                    let seq = {
                        let _g = stage.lock().unwrap();
                        for pid in pids(w) {
                            wal.append_page(PageId(pid), &image(pid, round)).unwrap();
                        }
                        wal.commit_stage().unwrap()
                    };
                    wal.make_durable(seq).unwrap();
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let (wal, disk) = (Arc::clone(&wal), Arc::clone(&disk));
            std::thread::spawn(move || {
                let mut buf = Box::new([0u8; PAGE_SIZE]);
                loop {
                    let snap = wal.snapshot(Arc::clone(&disk));
                    let mut rounds = Vec::with_capacity(PAGES as usize);
                    for pid in pids(w) {
                        snap.read_page(PageId(pid), &mut buf).unwrap();
                        assert_eq!(u64::from_le_bytes(buf[..8].try_into().unwrap()), pid as u64);
                        rounds.push(u64::from_le_bytes(buf[8..16].try_into().unwrap()));
                    }
                    assert!(
                        rounds.iter().all(|&r| r == rounds[0]),
                        "writer {w}'s batch tore under soak: {rounds:?}"
                    );
                    if rounds[0] >= ROUNDS as u64 {
                        break;
                    }
                }
            })
        })
        .collect();
    let checkpointer = {
        let (wal, disk) = (Arc::clone(&wal), Arc::clone(&disk));
        let stage = Arc::clone(&stage);
        std::thread::spawn(move || {
            while Arc::strong_count(&wal) > 2 {
                {
                    // Checkpoint seals pending appends too, so it joins the
                    // same stage critical section the writers use.
                    let _g = stage.lock().unwrap();
                    wal.checkpoint_into(&disk).unwrap();
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        })
    };
    for t in writers {
        t.join().unwrap();
    }
    for t in readers {
        t.join().unwrap();
    }
    checkpointer.join().unwrap();

    wal.checkpoint_into(&disk).unwrap();
    assert_eq!(wal.bytes(), 0, "final checkpoint left records in the log");
    let stats = wal.stats();
    assert!(
        stats.group_commits.get() > 0,
        "concurrent committers never shared an fsync"
    );
    assert!(
        stats.fsyncs.get() < stats.appends.get(),
        "fsyncs ({}) should be amortized below appends ({})",
        stats.fsyncs.get(),
        stats.appends.get()
    );
    for w in 0..WRITERS {
        for pid in pids(w) {
            let got = read(&disk, pid).expect("page written back");
            assert_eq!(
                &got[..],
                &image(pid, ROUNDS)[..],
                "page {pid} missing its final round after soak"
            );
        }
    }
    drop(wal);
    let (_, replayed) = replay_fresh(&path);
    assert_eq!(replayed, 0, "truncated log replayed records after soak");
    let _ = std::fs::remove_file(&path);
}
