//! Buffer pool with pin/unpin and LRU eviction.
//!
//! The paper's trigger cache "checks to see if the trigger is in memory, and
//! if it is not, it brings it in from the disk-based trigger catalog" — the
//! same discipline a buffer pool applies to pages. This pool backs every
//! heap and B+tree; the trigger cache in the engine crate mirrors its
//! pin/unpin protocol at trigger granularity.
//!
//! Concurrency model: a pool-wide mutex guards the page table and replacement
//! state; page *contents* are under a per-frame `RwLock`, so readers of
//! different (or the same) pages proceed in parallel once pinned. Eviction
//! only considers frames with a zero pin count, which cannot regain a pin
//! concurrently because pins are only taken under the pool mutex.

use crate::disk::{DiskManager, PageId, PAGE_SIZE};
use crate::wal::Wal;
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use tman_common::fxhash::FxHashMap;
use tman_common::stats::StorageStats;
use tman_common::{Result, TmanError};

struct FrameCell {
    pid: PageId,
    pin: AtomicU32,
    dirty: AtomicBool,
    data: RwLock<Box<[u8; PAGE_SIZE]>>,
}

struct FrameSlot {
    cell: Arc<FrameCell>,
    last_used: u64,
}

struct PoolInner {
    map: FxHashMap<PageId, usize>,
    frames: Vec<Option<FrameSlot>>,
    tick: u64,
}

/// Fixed-capacity page cache over a [`DiskManager`].
///
/// With a [`Wal`] attached ([`with_wal`](Self::with_wal)), flushes append
/// redo records to the log instead of writing the page file; the page file
/// is only written at checkpoint, from records that are already durable —
/// the WAL invariant. Without one, flushes write the page file directly
/// (memory-backed stores and legacy dual-slot files).
pub struct BufferPool {
    disk: Arc<DiskManager>,
    inner: Mutex<PoolInner>,
    stats: StorageStats,
    wal: Option<Arc<Wal>>,
}

impl BufferPool {
    /// Create a pool with room for `capacity` pages (minimum 4 so B+tree
    /// splits, which pin up to three pages plus the meta page, always fit).
    pub fn new(disk: Arc<DiskManager>, capacity: usize) -> BufferPool {
        Self::build(disk, capacity, None)
    }

    /// Create a pool whose flushes go through the write-ahead log. The
    /// caller must have replayed the log into `disk` already.
    pub fn with_wal(disk: Arc<DiskManager>, capacity: usize, wal: Arc<Wal>) -> BufferPool {
        Self::build(disk, capacity, Some(wal))
    }

    fn build(disk: Arc<DiskManager>, capacity: usize, wal: Option<Arc<Wal>>) -> BufferPool {
        let capacity = capacity.max(4);
        BufferPool {
            disk,
            inner: Mutex::new(PoolInner {
                map: FxHashMap::default(),
                frames: (0..capacity).map(|_| None).collect(),
                tick: 0,
            }),
            stats: StorageStats::default(),
            wal,
        }
    }

    /// Pool hit/miss/eviction counters (physical I/O is on
    /// [`DiskManager::stats`]).
    pub fn stats(&self) -> &StorageStats {
        &self.stats
    }

    /// The underlying disk manager.
    pub fn disk(&self) -> &Arc<DiskManager> {
        &self.disk
    }

    /// The attached write-ahead log, if any.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    /// Pin page `pid`, reading it from disk if necessary.
    pub fn fetch(&self, pid: PageId) -> Result<PageGuard> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(&idx) = inner.map.get(&pid) {
            let slot = inner.frames[idx].as_mut().expect("mapped frame exists");
            slot.last_used = tick;
            slot.cell.pin.fetch_add(1, Ordering::Relaxed);
            self.stats.pool_hits.bump();
            return Ok(PageGuard {
                cell: slot.cell.clone(),
            });
        }
        self.stats.pool_misses.bump();
        let idx = self.find_victim(&mut inner)?;
        // Load the page while still holding the pool lock: simple, and a
        // concurrent fetch of the same page will hit the map afterwards.
        // With a WAL, the log's newest image wins: the page file only holds
        // checkpointed (older) data.
        let mut data = Box::new([0u8; PAGE_SIZE]);
        match self.wal.as_ref().and_then(|w| w.latest_image(pid)) {
            Some(img) => data.copy_from_slice(&img[..]),
            None => self.disk.read_page(pid, &mut data)?,
        }
        let cell = Arc::new(FrameCell {
            pid,
            pin: AtomicU32::new(1),
            dirty: AtomicBool::new(false),
            data: RwLock::new(data),
        });
        inner.frames[idx] = Some(FrameSlot {
            cell: cell.clone(),
            last_used: tick,
        });
        inner.map.insert(pid, idx);
        Ok(PageGuard { cell })
    }

    /// Allocate a fresh page on disk and pin it.
    pub fn allocate(&self) -> Result<(PageId, PageGuard)> {
        let pid = self.disk.allocate()?;
        let guard = self.fetch(pid)?;
        Ok((pid, guard))
    }

    /// Write all dirty resident pages back: to the log (sealed by one
    /// commit frame, so the whole set becomes durable atomically) when a
    /// WAL is attached, else straight to the page file.
    pub fn flush_all(&self) -> Result<()> {
        {
            let inner = self.inner.lock();
            for slot in inner.frames.iter().flatten() {
                self.flush_cell(&slot.cell)?;
            }
        }
        if let Some(wal) = &self.wal {
            wal.commit_stage()?;
        }
        Ok(())
    }

    /// Group-commit barrier: flush every dirty page, then make the batch
    /// durable with one sync. Callers batch many logical writes between
    /// calls so the sync cost is amortized across all of them; with a WAL
    /// attached, concurrent callers additionally piggyback on each other's
    /// fsync ([`Wal::make_durable`]), and the log auto-checkpoints once it
    /// outgrows its configured size.
    pub fn sync(&self) -> Result<()> {
        self.flush_all()?;
        match &self.wal {
            None => self.disk.sync(),
            Some(wal) => {
                let seq = wal.commit_stage()?;
                wal.make_durable(seq)?;
                if wal.needs_checkpoint() {
                    wal.checkpoint_into(&self.disk)?;
                }
                Ok(())
            }
        }
    }

    /// Write attempts per page before a flush gives up on transient I/O
    /// errors.
    const FLUSH_ATTEMPTS: u32 = 3;

    fn flush_cell(&self, cell: &FrameCell) -> Result<()> {
        if cell.dirty.swap(false, Ordering::AcqRel) {
            let data = cell.data.read();
            let mut last = None;
            for attempt in 0..Self::FLUSH_ATTEMPTS {
                let res = match &self.wal {
                    Some(wal) => wal.append_page(cell.pid, &data),
                    None => self.disk.write_page(cell.pid, &data),
                };
                match res {
                    Ok(()) => return Ok(()),
                    Err(e @ TmanError::Io(_)) => {
                        last = Some(e);
                        if attempt + 1 < Self::FLUSH_ATTEMPTS {
                            self.stats.io_retries.bump();
                            std::thread::sleep(std::time::Duration::from_micros(50 << attempt));
                        }
                    }
                    Err(e) => {
                        // Non-I/O failures are not transient: re-mark dirty
                        // so a later flush retries, and propagate.
                        cell.dirty.store(true, Ordering::Release);
                        return Err(e);
                    }
                }
            }
            // Out of attempts: the page is still only in memory. Keep it
            // dirty so checkpoints keep trying rather than silently losing
            // the data.
            cell.dirty.store(true, Ordering::Release);
            return Err(last.expect("loop ran at least once"));
        }
        Ok(())
    }

    /// Pick a frame index to (re)use: an empty slot, else the unpinned LRU
    /// frame (flushing it if dirty).
    fn find_victim(&self, inner: &mut PoolInner) -> Result<usize> {
        if let Some(idx) = inner.frames.iter().position(Option::is_none) {
            return Ok(idx);
        }
        let victim = inner
            .frames
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                let s = s.as_ref().unwrap();
                (s.cell.pin.load(Ordering::Relaxed) == 0).then_some((i, s.last_used))
            })
            .min_by_key(|&(_, t)| t)
            .map(|(i, _)| i);
        let Some(idx) = victim else {
            return Err(TmanError::Storage(
                "buffer pool exhausted: all frames pinned".into(),
            ));
        };
        let slot = inner.frames[idx].take().expect("victim frame exists");
        if let Err(e) = self.flush_cell(&slot.cell) {
            // Put the victim back: dropping it here would silently lose the
            // dirty page the flush just failed to write.
            let pid = slot.cell.pid;
            inner.frames[idx] = Some(slot);
            inner.map.insert(pid, idx);
            return Err(e);
        }
        inner.map.remove(&slot.cell.pid);
        self.stats.evictions.bump();
        Ok(idx)
    }
}

/// A pinned page. Dropping the guard unpins it. Obtain the bytes through
/// [`read`](PageGuard::read) / [`write`](PageGuard::write); `write` marks
/// the page dirty.
pub struct PageGuard {
    cell: Arc<FrameCell>,
}

impl PageGuard {
    /// The pinned page's id.
    pub fn page_id(&self) -> PageId {
        self.cell.pid
    }

    /// Shared access to the page bytes.
    pub fn read(&self) -> RwLockReadGuard<'_, Box<[u8; PAGE_SIZE]>> {
        self.cell.data.read()
    }

    /// Exclusive access; marks the page dirty.
    pub fn write(&self) -> RwLockWriteGuard<'_, Box<[u8; PAGE_SIZE]>> {
        self.cell.dirty.store(true, Ordering::Release);
        self.cell.data.write()
    }
}

impl Drop for PageGuard {
    fn drop(&mut self) {
        self.cell.pin.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(Arc::new(DiskManager::open_memory()), cap)
    }

    #[test]
    fn fetch_hits_after_miss() {
        let p = pool(4);
        let (pid, g) = p.allocate().unwrap();
        drop(g);
        let _g1 = p.fetch(pid).unwrap();
        let _g2 = p.fetch(pid).unwrap();
        assert_eq!(p.stats().pool_misses.get(), 1); // allocate's fetch
        assert_eq!(p.stats().pool_hits.get(), 2);
    }

    #[test]
    fn writes_survive_eviction() {
        let p = pool(4);
        let (pid, g) = p.allocate().unwrap();
        g.write()[100] = 0xEE;
        drop(g);
        // Thrash the pool to force eviction of pid.
        let mut pids = vec![];
        for _ in 0..8 {
            let (q, g) = p.allocate().unwrap();
            pids.push(q);
            drop(g);
        }
        assert!(p.stats().evictions.get() > 0);
        let g = p.fetch(pid).unwrap();
        assert_eq!(g.read()[100], 0xEE);
    }

    #[test]
    fn all_pinned_errors_out() {
        let p = pool(4);
        let mut guards = vec![];
        for _ in 0..4 {
            guards.push(p.allocate().unwrap().1);
        }
        assert!(p.allocate().is_err());
        guards.pop();
        assert!(p.allocate().is_ok());
    }

    #[test]
    fn lru_prefers_oldest_unpinned() {
        let p = pool(4);
        let mut pids = vec![];
        for _ in 0..4 {
            let (pid, g) = p.allocate().unwrap();
            pids.push(pid);
            drop(g);
        }
        // Touch pids[0] so pids[1] becomes LRU.
        drop(p.fetch(pids[0]).unwrap());
        let before = p.stats().evictions.get();
        let (_new, g) = p.allocate().unwrap();
        drop(g);
        assert_eq!(p.stats().evictions.get(), before + 1);
        // pids[0] should still be resident (fetch = hit).
        let hits_before = p.stats().pool_hits.get();
        drop(p.fetch(pids[0]).unwrap());
        assert_eq!(p.stats().pool_hits.get(), hits_before + 1);
        // pids[1] was evicted (fetch = miss).
        let misses_before = p.stats().pool_misses.get();
        drop(p.fetch(pids[1]).unwrap());
        assert_eq!(p.stats().pool_misses.get(), misses_before + 1);
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let p = Arc::new(pool(16));
        let (pid, g) = p.allocate().unwrap();
        drop(g);
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let p = p.clone();
                std::thread::spawn(move || {
                    for i in 0..500u32 {
                        let g = p.fetch(pid).unwrap();
                        if (t + i) % 3 == 0 {
                            let mut w = g.write();
                            let v = u32::from_le_bytes(w[0..4].try_into().unwrap());
                            w[0..4].copy_from_slice(&(v + 1).to_le_bytes());
                        } else {
                            let _ = g.read()[0];
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let g = p.fetch(pid).unwrap();
        let v = u32::from_le_bytes(g.read()[0..4].try_into().unwrap());
        // Writers used the exclusive lock, so no increments were lost.
        let expected: u32 = (0..8u32)
            .map(|t| (0..500u32).filter(|i| (t + i) % 3 == 0).count() as u32)
            .sum();
        assert_eq!(v, expected);
    }

    #[test]
    fn flush_retry_exhaustion_keeps_page_dirty() {
        use crate::fault::{FaultConfig, FaultPlan};
        let path = std::env::temp_dir().join(format!("tman_buf_retry_{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let plan = FaultPlan::new(FaultConfig {
            seed: 21,
            transient_per_mille: 1000,
            ..Default::default()
        });
        let disk = Arc::new(DiskManager::open_file_with(&path, Some(plan.clone())).unwrap());
        let p = BufferPool::new(disk.clone(), 4);
        let (pid, g) = p.allocate().unwrap();
        g.write()[5] = 0x5A;
        drop(g);
        plan.arm();
        let err = p.flush_all().unwrap_err();
        assert_eq!(err.kind(), "io");
        // Two sleeps between three attempts, and the page stayed dirty.
        assert_eq!(p.stats().io_retries.get(), 2);
        plan.disarm();
        p.flush_all().unwrap();
        let mut raw = [0u8; PAGE_SIZE];
        disk.read_page(pid, &mut raw).unwrap();
        assert_eq!(raw[5], 0x5A, "page reached disk once faults cleared");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failed_eviction_flush_does_not_lose_the_page() {
        use crate::fault::{FaultConfig, FaultPlan};
        let path = std::env::temp_dir().join(format!("tman_buf_evict_{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let plan = FaultPlan::new(FaultConfig {
            seed: 22,
            transient_per_mille: 1000,
            ..Default::default()
        });
        let disk = Arc::new(DiskManager::open_file_with(&path, Some(plan.clone())).unwrap());
        let p = BufferPool::new(disk.clone(), 4);
        let (pid, g) = p.allocate().unwrap();
        g.write()[0] = 0x77;
        drop(g);
        // Fill the remaining frames so the next allocate must evict pid.
        let mut extra = vec![];
        for _ in 0..3 {
            extra.push(p.allocate().unwrap().0);
        }
        plan.arm();
        assert!(p.allocate().is_err(), "eviction flush fails under faults");
        plan.disarm();
        // The dirty page must still be resident and intact.
        let g = p.fetch(pid).unwrap();
        assert_eq!(g.read()[0], 0x77);
        drop(g);
        p.flush_all().unwrap();
        let mut raw = [0u8; PAGE_SIZE];
        disk.read_page(pid, &mut raw).unwrap();
        assert_eq!(raw[0], 0x77);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flush_all_persists_dirty_pages() {
        let disk = Arc::new(DiskManager::open_memory());
        let p = BufferPool::new(disk.clone(), 4);
        let (pid, g) = p.allocate().unwrap();
        g.write()[9] = 42;
        drop(g);
        p.flush_all().unwrap();
        let mut raw = [0u8; PAGE_SIZE];
        disk.read_page(pid, &mut raw).unwrap();
        assert_eq!(raw[9], 42);
    }
}
