//! Disk-backed B+tree over memcmp-comparable byte keys.
//!
//! This is the index behind the paper's "indexed database table" constant-set
//! organization and the "clustered index on [const1, ... constK]" (§5.1).
//!
//! Entries are stored as `kv = key_bytes ++ value_be8` and compared as the
//! `(key, value)` pair (see [`BTree::cmp_kv`] — plain byte comparison of
//! the concatenation would mis-order keys that prefix each other).
//! Embedding the value makes every entry unique (values are record ids),
//! which gives clean duplicate-key support: `lookup` is a range scan.
//!
//! Simplifications relative to a production tree (documented in DESIGN.md):
//! nodes are rewritten wholesale on modification (simple, still O(log n)
//! I/O), deletes never rebalance (underflowed nodes are allowed; empty
//! leaves are skipped by scans), and there is a single writer at a time per
//! tree (enforced by an internal mutex — the engine's catalogs serialize
//! DDL anyway).

use crate::buffer::BufferPool;
use crate::disk::{PageId, PAGE_SIZE};
use parking_lot::Mutex;
use std::sync::Arc;
use tman_common::{Result, TmanError};

const MAGIC: &[u8; 4] = b"BTRE";
const LEAF: u8 = 0;
const INTERNAL: u8 = 1;
const HDR: usize = 7; // type u8, count u16, link u32

/// Maximum encoded key length accepted (keeps ≥3 entries per node).
pub const MAX_KEY: usize = 1024;

#[derive(Debug, Clone)]
struct Node {
    kind: u8,
    /// Leaf: next-leaf link. Internal: leftmost child.
    link: PageId,
    /// Leaf: kv entries. Internal: (separator kv, right child) pairs.
    entries: Vec<(Vec<u8>, u32)>,
}

impl Node {
    fn leaf() -> Node {
        Node {
            kind: LEAF,
            link: PageId::NULL,
            entries: Vec::new(),
        }
    }

    fn bytes_used(&self) -> usize {
        let per_entry_overhead = if self.kind == LEAF { 2 } else { 2 + 4 };
        HDR + self
            .entries
            .iter()
            .map(|(kv, _)| kv.len() + per_entry_overhead)
            .sum::<usize>()
    }

    fn fits(&self) -> bool {
        self.bytes_used() <= PAGE_SIZE
    }

    fn write_to(&self, buf: &mut [u8; PAGE_SIZE]) {
        buf[0] = self.kind;
        buf[1..3].copy_from_slice(&(self.entries.len() as u16).to_le_bytes());
        buf[3..7].copy_from_slice(&self.link.0.to_le_bytes());
        let mut off = HDR;
        for (kv, child) in &self.entries {
            buf[off..off + 2].copy_from_slice(&(kv.len() as u16).to_le_bytes());
            off += 2;
            buf[off..off + kv.len()].copy_from_slice(kv);
            off += kv.len();
            if self.kind == INTERNAL {
                buf[off..off + 4].copy_from_slice(&child.to_le_bytes());
                off += 4;
            }
        }
    }

    fn read_from(buf: &[u8; PAGE_SIZE]) -> Result<Node> {
        let kind = buf[0];
        if kind != LEAF && kind != INTERNAL {
            return Err(TmanError::Corrupt(format!("bad btree node kind {kind}")));
        }
        let count = u16::from_le_bytes(buf[1..3].try_into().unwrap()) as usize;
        let link = PageId(u32::from_le_bytes(buf[3..7].try_into().unwrap()));
        let mut entries = Vec::with_capacity(count.min(PAGE_SIZE / 2));
        let mut off = HDR;
        // Every length field comes off disk: bounds-check rather than trust,
        // so a page that is not really a btree node surfaces as a
        // recoverable `Corrupt` instead of a slice panic.
        for _ in 0..count {
            if off + 2 > PAGE_SIZE {
                return Err(TmanError::Corrupt("btree entry count overruns page".into()));
            }
            let len = u16::from_le_bytes(buf[off..off + 2].try_into().unwrap()) as usize;
            off += 2;
            let trailing = if kind == INTERNAL { 4 } else { 0 };
            if len < 8 || off + len + trailing > PAGE_SIZE {
                return Err(TmanError::Corrupt(format!(
                    "btree entry length {len} overruns page"
                )));
            }
            let kv = buf[off..off + len].to_vec();
            off += len;
            let child = if kind == INTERNAL {
                let c = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap());
                off += 4;
                c
            } else {
                0
            };
            entries.push((kv, child));
        }
        Ok(Node {
            kind,
            link,
            entries,
        })
    }
}

/// A persistent ordered map from byte keys to `u64` values, duplicates
/// allowed (distinct values under the same key).
pub struct BTree {
    pool: Arc<BufferPool>,
    meta: PageId,
    write_lock: Mutex<()>,
}

impl BTree {
    /// Create an empty tree (meta page + empty root leaf).
    pub fn create(pool: Arc<BufferPool>) -> Result<BTree> {
        let (meta_pid, meta) = pool.allocate()?;
        let (root_pid, root) = pool.allocate()?;
        Node::leaf().write_to(&mut root.write());
        {
            let mut m = meta.write();
            m[0..4].copy_from_slice(MAGIC);
            m[4..8].copy_from_slice(&root_pid.0.to_le_bytes());
        }
        Ok(BTree {
            pool,
            meta: meta_pid,
            write_lock: Mutex::new(()),
        })
    }

    /// Open an existing tree by meta page.
    pub fn open(pool: Arc<BufferPool>, meta: PageId) -> Result<BTree> {
        let g = pool.fetch(meta)?;
        if &g.read()[0..4] != MAGIC {
            return Err(TmanError::Storage(format!(
                "page {} is not a btree meta page",
                meta.0
            )));
        }
        drop(g);
        Ok(BTree {
            pool,
            meta,
            write_lock: Mutex::new(()),
        })
    }

    /// The meta page id (stable identity for the directory).
    pub fn meta_page(&self) -> PageId {
        self.meta
    }

    /// Crash-recovery revalidation: make the tree at `meta` structurally
    /// openable again. A quarantined (zeroed) meta page gets its magic and
    /// a fresh empty root leaf back; an unreadable or out-of-bounds root is
    /// replaced by a fresh empty leaf. Returns `true` when anything was
    /// rebuilt — the caller is then expected to backfill the index from its
    /// source of truth.
    pub fn repair(pool: &Arc<BufferPool>, meta: PageId) -> Result<bool> {
        let fresh_root = |pool: &Arc<BufferPool>| -> Result<PageId> {
            let (pid, g) = pool.allocate()?;
            Node::leaf().write_to(&mut g.write());
            Ok(pid)
        };
        let g = pool.fetch(meta)?;
        let magic_ok = &g.read()[0..4] == MAGIC;
        if !magic_ok {
            let root = fresh_root(pool)?;
            let mut m = g.write();
            m[0..4].copy_from_slice(MAGIC);
            m[4..8].copy_from_slice(&root.0.to_le_bytes());
            return Ok(true);
        }
        let root = PageId(u32::from_le_bytes(g.read()[4..8].try_into().unwrap()));
        drop(g);
        let root_ok = !root.is_null()
            && root.0 < pool.disk().num_pages()
            && pool
                .fetch(root)
                .and_then(|rg| Node::read_from(&rg.read()).map(|_| ()))
                .is_ok();
        if !root_ok {
            let new_root = fresh_root(pool)?;
            let mg = pool.fetch(meta)?;
            mg.write()[4..8].copy_from_slice(&new_root.0.to_le_bytes());
            return Ok(true);
        }
        Ok(false)
    }

    fn root(&self) -> Result<PageId> {
        let g = self.pool.fetch(self.meta)?;
        let r = g.read();
        Ok(PageId(u32::from_le_bytes(r[4..8].try_into().unwrap())))
    }

    fn set_root(&self, pid: PageId) -> Result<()> {
        let g = self.pool.fetch(self.meta)?;
        g.write()[4..8].copy_from_slice(&pid.0.to_le_bytes());
        Ok(())
    }

    fn load(&self, pid: PageId) -> Result<Node> {
        let g = self.pool.fetch(pid)?;
        let r = g.read();
        Node::read_from(&r)
    }

    fn store(&self, pid: PageId, node: &Node) -> Result<()> {
        let g = self.pool.fetch(pid)?;
        node.write_to(&mut g.write());
        Ok(())
    }

    /// Compare two stored entries as `(key, value)` pairs. Plain byte
    /// comparison of the concatenated form would be wrong when one key is
    /// a proper prefix of another (the value suffix would leak into the
    /// key comparison) — keyenc-encoded keys are prefix-free, but the tree
    /// accepts arbitrary byte keys, so split and compare properly.
    fn cmp_kv(a: &[u8], b: &[u8]) -> std::cmp::Ordering {
        let (ka, va) = Self::split_kv(a);
        let (kb, vb) = Self::split_kv(b);
        ka.cmp(kb).then(va.cmp(&vb))
    }

    fn make_kv(key: &[u8], value: u64) -> Vec<u8> {
        let mut kv = Vec::with_capacity(key.len() + 8);
        kv.extend_from_slice(key);
        kv.extend_from_slice(&value.to_be_bytes());
        kv
    }

    fn split_kv(kv: &[u8]) -> (&[u8], u64) {
        let at = kv.len() - 8;
        (&kv[..at], u64::from_be_bytes(kv[at..].try_into().unwrap()))
    }

    /// Child index to descend into for `kv`: the rightmost child whose
    /// separator is `<= kv`, or the leftmost child when all are greater.
    fn child_for(node: &Node, kv: &[u8]) -> (usize, PageId) {
        let idx = node
            .entries
            .partition_point(|(sep, _)| Self::cmp_kv(sep, kv) != std::cmp::Ordering::Greater);
        if idx == 0 {
            (0, node.link)
        } else {
            (idx, PageId(node.entries[idx - 1].1))
        }
    }

    /// Descend to the leaf where `kv` belongs, recording the path of
    /// internal pages visited.
    fn descend(&self, kv: &[u8]) -> Result<(Vec<PageId>, PageId)> {
        let mut path = Vec::new();
        let mut pid = self.root()?;
        loop {
            let node = self.load(pid)?;
            if node.kind == LEAF {
                return Ok((path, pid));
            }
            path.push(pid);
            pid = Self::child_for(&node, kv).1;
        }
    }

    /// Insert `(key, value)`. Duplicate keys are fine; inserting the exact
    /// same `(key, value)` pair twice is idempotent.
    pub fn insert(&self, key: &[u8], value: u64) -> Result<()> {
        if key.len() > MAX_KEY {
            return Err(TmanError::Storage(format!(
                "index key of {} bytes exceeds max {MAX_KEY}",
                key.len()
            )));
        }
        let _w = self.write_lock.lock();
        let kv = Self::make_kv(key, value);
        let (path, leaf_pid) = self.descend(&kv)?;
        let mut node = self.load(leaf_pid)?;
        let pos = node
            .entries
            .partition_point(|(e, _)| Self::cmp_kv(e, &kv) == std::cmp::Ordering::Less);
        if node
            .entries
            .get(pos)
            .map(|(e, _)| e == &kv)
            .unwrap_or(false)
        {
            return Ok(()); // exact duplicate
        }
        node.entries.insert(pos, (kv, 0));
        if node.fits() {
            return self.store(leaf_pid, &node);
        }
        self.split_and_propagate(path, leaf_pid, node)
    }

    fn split_and_propagate(&self, mut path: Vec<PageId>, pid: PageId, node: Node) -> Result<()> {
        // Split `node` (oversized, in memory) into itself + a new right
        // sibling; then insert the separator into the parent, recursing if
        // the parent overflows too.
        let mid = node.entries.len() / 2;
        let mut left = node.clone();
        let right_entries = left.entries.split_off(mid);
        let (right_pid, right_guard) = self.pool.allocate()?;
        let mut right = Node {
            kind: node.kind,
            link: PageId::NULL,
            entries: right_entries,
        };
        let sep = right.entries[0].0.clone();
        if node.kind == LEAF {
            right.link = left.link;
            left.link = right_pid;
        } else {
            // Internal split: the separator moves *up*; its child becomes
            // the right node's leftmost child.
            let (sep_kv, sep_child) = right.entries.remove(0);
            right.link = PageId(sep_child);
            debug_assert_eq!(sep_kv, sep);
        }
        right.write_to(&mut right_guard.write());
        drop(right_guard);
        self.store(pid, &left)?;

        match path.pop() {
            None => {
                // Split the root: make a new root above.
                let (new_root_pid, g) = self.pool.allocate()?;
                let new_root = Node {
                    kind: INTERNAL,
                    link: pid,
                    entries: vec![(sep, right_pid.0)],
                };
                new_root.write_to(&mut g.write());
                drop(g);
                self.set_root(new_root_pid)
            }
            Some(parent_pid) => {
                let mut parent = self.load(parent_pid)?;
                let pos = parent
                    .entries
                    .partition_point(|(e, _)| Self::cmp_kv(e, &sep) == std::cmp::Ordering::Less);
                parent.entries.insert(pos, (sep, right_pid.0));
                if parent.fits() {
                    self.store(parent_pid, &parent)
                } else {
                    self.split_and_propagate(path, parent_pid, parent)
                }
            }
        }
    }

    /// Remove `(key, value)`. Returns true if it was present.
    pub fn delete(&self, key: &[u8], value: u64) -> Result<bool> {
        let _w = self.write_lock.lock();
        let kv = Self::make_kv(key, value);
        let (_, leaf_pid) = self.descend(&kv)?;
        let mut node = self.load(leaf_pid)?;
        let pos = node
            .entries
            .partition_point(|(e, _)| Self::cmp_kv(e, &kv) == std::cmp::Ordering::Less);
        if node
            .entries
            .get(pos)
            .map(|(e, _)| e == &kv)
            .unwrap_or(false)
        {
            node.entries.remove(pos);
            self.store(leaf_pid, &node)?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// All values stored under exactly `key`.
    pub fn lookup(&self, key: &[u8]) -> Result<Vec<u64>> {
        let mut out = Vec::new();
        // The prefix range can include longer keys that extend `key` when
        // raw (non-keyenc) byte keys are used, so filter for exact equality.
        self.scan_range(key, &crate::keyenc::prefix_upper_bound(key), |k, v| {
            if k == key {
                out.push(v);
            }
            Ok(true)
        })?;
        Ok(out)
    }

    /// Visit entries with `lo <= key < hi` in order. `f` returns false to
    /// stop. Keys passed to `f` have the value suffix stripped.
    pub fn scan_range(
        &self,
        lo: &[u8],
        hi: &[u8],
        mut f: impl FnMut(&[u8], u64) -> Result<bool>,
    ) -> Result<()> {
        let lo_kv = Self::make_kv(lo, 0);
        let (_, mut leaf_pid) = self.descend(&lo_kv)?;
        loop {
            let node = self.load(leaf_pid)?;
            for (kv, _) in &node.entries {
                let (key, value) = Self::split_kv(kv);
                if Self::cmp_kv(kv, &lo_kv) == std::cmp::Ordering::Less {
                    continue;
                }
                if key >= hi {
                    return Ok(());
                }
                if !f(key, value)? {
                    return Ok(());
                }
            }
            if node.link.is_null() {
                return Ok(());
            }
            leaf_pid = node.link;
        }
    }

    /// Visit every entry in key order.
    pub fn scan_all(&self, f: impl FnMut(&[u8], u64) -> Result<bool>) -> Result<()> {
        self.scan_range(&[], &[0xFF; MAX_KEY + 1], f)
    }

    /// Total number of entries (full scan; tests only).
    pub fn count(&self) -> Result<usize> {
        let mut n = 0;
        self.scan_all(|_, _| {
            n += 1;
            Ok(true)
        })?;
        Ok(n)
    }

    /// Tree height (1 = just a root leaf).
    pub fn height(&self) -> Result<usize> {
        let mut h = 1;
        let mut pid = self.root()?;
        loop {
            let node = self.load(pid)?;
            if node.kind == LEAF {
                return Ok(h);
            }
            h += 1;
            pid = node.link;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskManager;
    use rand::prelude::*;

    fn tree(pool_pages: usize) -> BTree {
        let pool = Arc::new(BufferPool::new(
            Arc::new(DiskManager::open_memory()),
            pool_pages,
        ));
        BTree::create(pool).unwrap()
    }

    #[test]
    fn insert_lookup_delete() {
        let t = tree(64);
        t.insert(b"apple", 1).unwrap();
        t.insert(b"banana", 2).unwrap();
        t.insert(b"apple", 3).unwrap(); // duplicate key, new value
        assert_eq!(t.lookup(b"apple").unwrap(), vec![1, 3]);
        assert_eq!(t.lookup(b"banana").unwrap(), vec![2]);
        assert_eq!(t.lookup(b"cherry").unwrap(), Vec::<u64>::new());
        assert!(t.delete(b"apple", 1).unwrap());
        assert!(!t.delete(b"apple", 1).unwrap());
        assert_eq!(t.lookup(b"apple").unwrap(), vec![3]);
    }

    #[test]
    fn idempotent_duplicate_insert() {
        let t = tree(64);
        t.insert(b"k", 9).unwrap();
        t.insert(b"k", 9).unwrap();
        assert_eq!(t.lookup(b"k").unwrap(), vec![9]);
        assert_eq!(t.count().unwrap(), 1);
    }

    #[test]
    fn many_inserts_split_and_stay_sorted() {
        let t = tree(512);
        let mut keys: Vec<u32> = (0..5000).collect();
        keys.shuffle(&mut StdRng::seed_from_u64(42));
        for &k in &keys {
            t.insert(&k.to_be_bytes(), k as u64).unwrap();
        }
        assert!(t.height().unwrap() >= 2, "tree should have split");
        assert_eq!(t.count().unwrap(), 5000);
        // In-order scan yields sorted keys.
        let mut prev: Option<Vec<u8>> = None;
        t.scan_all(|k, v| {
            if let Some(p) = &prev {
                assert!(p.as_slice() <= k);
            }
            assert_eq!(u32::from_be_bytes(k.try_into().unwrap()) as u64, v);
            prev = Some(k.to_vec());
            Ok(true)
        })
        .unwrap();
        // Point lookups all work.
        for k in (0..5000u32).step_by(37) {
            assert_eq!(t.lookup(&k.to_be_bytes()).unwrap(), vec![k as u64]);
        }
    }

    #[test]
    fn range_scan_bounds() {
        let t = tree(128);
        for k in 0..100u32 {
            t.insert(&k.to_be_bytes(), k as u64).unwrap();
        }
        let mut got = vec![];
        t.scan_range(&10u32.to_be_bytes(), &20u32.to_be_bytes(), |_, v| {
            got.push(v);
            Ok(true)
        })
        .unwrap();
        assert_eq!(got, (10..20).collect::<Vec<u64>>());
        // Early stop.
        let mut n = 0;
        t.scan_range(&0u32.to_be_bytes(), &100u32.to_be_bytes(), |_, _| {
            n += 1;
            Ok(n < 5)
        })
        .unwrap();
        assert_eq!(n, 5);
    }

    #[test]
    fn deletes_through_splits() {
        let t = tree(256);
        for k in 0..2000u32 {
            t.insert(&k.to_be_bytes(), k as u64).unwrap();
        }
        for k in (0..2000u32).step_by(2) {
            assert!(t.delete(&k.to_be_bytes(), k as u64).unwrap());
        }
        assert_eq!(t.count().unwrap(), 1000);
        for k in 0..2000u32 {
            let want = if k % 2 == 1 { vec![k as u64] } else { vec![] };
            assert_eq!(t.lookup(&k.to_be_bytes()).unwrap(), want, "key {k}");
        }
    }

    #[test]
    fn variable_length_keys() {
        let t = tree(256);
        let mut rng = StdRng::seed_from_u64(7);
        let mut entries = vec![];
        for i in 0..800u64 {
            let len = rng.gen_range(0..200);
            let key: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            t.insert(&key, i).unwrap();
            entries.push((key, i));
        }
        for (key, v) in &entries {
            assert!(t.lookup(key).unwrap().contains(v));
        }
    }

    #[test]
    fn oversized_key_rejected() {
        let t = tree(64);
        assert!(t.insert(&vec![0u8; MAX_KEY + 1], 1).is_err());
        assert!(t.insert(&vec![0u8; MAX_KEY], 1).is_ok());
    }

    #[test]
    fn duplicate_heavy_keys_span_leaves() {
        // One key with enough values to span multiple leaves exercises the
        // cross-leaf prefix scan.
        let t = tree(512);
        for v in 0..3000u64 {
            t.insert(b"hot", v).unwrap();
        }
        let vals = t.lookup(b"hot").unwrap();
        assert_eq!(vals.len(), 3000);
        assert_eq!(vals, (0..3000).collect::<Vec<u64>>());
    }

    #[test]
    fn survives_small_buffer_pool() {
        // Pool far smaller than the tree forces eviction during operations.
        let t = tree(8);
        for k in 0..3000u32 {
            t.insert(&k.to_be_bytes(), k as u64).unwrap();
        }
        for k in (0..3000u32).step_by(100) {
            assert_eq!(t.lookup(&k.to_be_bytes()).unwrap(), vec![k as u64]);
        }
        assert!(t.pool.stats().evictions.get() > 0);
    }

    #[test]
    fn persistence_across_reopen() {
        let path = std::env::temp_dir().join(format!("tman_btree_{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let meta;
        {
            let pool = Arc::new(BufferPool::new(
                Arc::new(DiskManager::open_file(&path).unwrap()),
                32,
            ));
            let t = BTree::create(pool.clone()).unwrap();
            meta = t.meta_page();
            for k in 0..500u32 {
                t.insert(&k.to_be_bytes(), k as u64).unwrap();
            }
            pool.flush_all().unwrap();
        }
        {
            let pool = Arc::new(BufferPool::new(
                Arc::new(DiskManager::open_file(&path).unwrap()),
                32,
            ));
            let t = BTree::open(pool, meta).unwrap();
            assert_eq!(t.count().unwrap(), 500);
            assert_eq!(t.lookup(&123u32.to_be_bytes()).unwrap(), vec![123]);
        }
        let _ = std::fs::remove_file(&path);
    }
}
