//! Deterministic storage fault injection.
//!
//! A [`FaultPlan`] wraps the file backend of a [`crate::DiskManager`] and
//! injects failures into `write_page` from a pinned RNG, so every failure
//! schedule is replayable from its seed. Five fault kinds are modeled:
//!
//! * **Torn write** — a prefix of the physical slot reaches disk, then the
//!   write returns an I/O error (an interrupted `write(2)`). The previous
//!   version of the page survives in the other slot.
//! * **Short write** — like a torn write but the tear lands in the final
//!   eighth of the slot (the kernel accepted most of the buffer).
//! * **Dropped sync** — the write reports success but nothing reaches the
//!   platter (a lying `fsync`). The only fault that lies; the page silently
//!   stays at its previous durable version.
//! * **Transient error** — nothing is written and an I/O error is returned;
//!   retrying succeeds. Exercises the buffer pool's bounded retry path.
//! * **Crash** — at the Nth armed write, a prefix of the slot is written and
//!   the disk *freezes*: every subsequent read, write, or allocate returns
//!   an I/O error until the store is reopened. This simulates pulling the
//!   plug without killing the test process.
//!
//! Decisions are drawn under the disk manager's file lock, so a
//! single-threaded workload replays bit-identically. The plan only applies
//! to the file backend; the in-memory backend never faults.
//!
//! Since the write-ahead log landed, the same plan covers **log appends**
//! (each WAL frame write draws a [`decide_write`](FaultPlan::decide_write)
//! over the frame length, so torn/short/dropped/crash faults land on the
//! log, not just on page writes) and **fsyncs**
//! ([`decide_sync`](FaultPlan::decide_sync): a sync counts toward the
//! crash point and can fail transiently). Recovery-time replay writes go
//! through `write_page` and therefore draw from the same schedule when a
//! test arms the plan across a reopen.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Which failure a write decision produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Prefix written, error returned.
    TornWrite,
    /// Most of the slot written, error returned.
    ShortWrite,
    /// Success reported, nothing written.
    DroppedSync,
    /// Nothing written, error returned; retry succeeds.
    TransientError,
    /// Prefix written, then the disk freezes until reopen.
    Crash,
}

/// The action the disk manager must take for one `write_page` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteFault {
    /// Fault category.
    pub kind: FaultKind,
    /// Bytes of the physical slot to actually write before failing
    /// (ignored for [`FaultKind::DroppedSync`] / [`FaultKind::TransientError`]).
    pub tear_at: usize,
}

/// Seeded fault schedule. Per-mille rates are per armed `write_page` call.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// RNG seed; the whole schedule is a pure function of it.
    pub seed: u64,
    /// Freeze the disk at the Nth armed write (1-based), if set.
    pub crash_after_writes: Option<u64>,
    /// Torn-write probability, in 1/1000 per write.
    pub torn_per_mille: u32,
    /// Short-write probability.
    pub short_per_mille: u32,
    /// Dropped-sync probability.
    pub dropped_sync_per_mille: u32,
    /// Transient-error probability.
    pub transient_per_mille: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            crash_after_writes: None,
            torn_per_mille: 0,
            short_per_mille: 0,
            dropped_sync_per_mille: 0,
            transient_per_mille: 0,
        }
    }
}

// SplitMix64: tiny, statistically fine for schedules, and keeps this crate
// free of an RNG dependency.
#[derive(Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

#[derive(Debug)]
struct Inner {
    config: FaultConfig,
    rng: Mutex<SplitMix64>,
    armed: AtomicBool,
    crashed: AtomicBool,
    writes_seen: AtomicU64,
    torn: AtomicU64,
    short: AtomicU64,
    dropped: AtomicU64,
    transient: AtomicU64,
    crashes: AtomicU64,
}

/// Shared handle to a fault schedule. Cloning shares state, so the harness
/// keeps one handle while the engine's disk manager holds another.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    inner: Arc<Inner>,
}

impl FaultPlan {
    /// Build a plan from a config. Plans start *disarmed*: no faults fire
    /// until [`arm`](Self::arm) is called, so tests can run setup phases
    /// (schema creation, checkpoints) on a reliable disk.
    pub fn new(config: FaultConfig) -> FaultPlan {
        let seed = config.seed;
        FaultPlan {
            inner: Arc::new(Inner {
                config,
                rng: Mutex::new(SplitMix64(seed)),
                armed: AtomicBool::new(false),
                crashed: AtomicBool::new(false),
                writes_seen: AtomicU64::new(0),
                torn: AtomicU64::new(0),
                short: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                transient: AtomicU64::new(0),
                crashes: AtomicU64::new(0),
            }),
        }
    }

    /// Start injecting faults.
    pub fn arm(&self) {
        self.inner.armed.store(true, Ordering::SeqCst);
    }

    /// Stop injecting faults (counters and crash state are kept).
    pub fn disarm(&self) {
        self.inner.armed.store(false, Ordering::SeqCst);
    }

    /// Whether faults are currently being injected.
    pub fn is_armed(&self) -> bool {
        self.inner.armed.load(Ordering::SeqCst)
    }

    /// Whether a crash point fired and froze the disk.
    pub fn crashed(&self) -> bool {
        self.inner.crashed.load(Ordering::SeqCst)
    }

    /// Clear the frozen state (the harness calls this before reopening the
    /// store, standing in for a process restart).
    pub fn reset_crash(&self) {
        self.inner.crashed.store(false, Ordering::SeqCst);
    }

    /// Armed writes observed so far.
    pub fn writes_seen(&self) -> u64 {
        self.inner.writes_seen.load(Ordering::SeqCst)
    }

    /// Faults injected so far, by kind.
    pub fn count(&self, kind: FaultKind) -> u64 {
        let c = match kind {
            FaultKind::TornWrite => &self.inner.torn,
            FaultKind::ShortWrite => &self.inner.short,
            FaultKind::DroppedSync => &self.inner.dropped,
            FaultKind::TransientError => &self.inner.transient,
            FaultKind::Crash => &self.inner.crashes,
        };
        c.load(Ordering::SeqCst)
    }

    /// Total faults injected so far.
    pub fn injected_total(&self) -> u64 {
        [
            FaultKind::TornWrite,
            FaultKind::ShortWrite,
            FaultKind::DroppedSync,
            FaultKind::TransientError,
            FaultKind::Crash,
        ]
        .iter()
        .map(|&k| self.count(k))
        .sum()
    }

    /// True while the disk is frozen by a crash point.
    pub fn frozen(&self) -> bool {
        self.crashed()
    }

    /// Decide the fate of one `write_page` call over a physical slot of
    /// `phys_len` bytes. Must be called under the disk manager's file lock
    /// so the RNG stream (and therefore the schedule) is deterministic.
    pub fn decide_write(&self, phys_len: usize) -> Option<WriteFault> {
        if !self.is_armed() || self.crashed() {
            return None;
        }
        let n = self.inner.writes_seen.fetch_add(1, Ordering::SeqCst) + 1;
        let mut rng = self.inner.rng.lock();
        if let Some(at) = self.inner.config.crash_after_writes {
            if n >= at {
                self.inner.crashed.store(true, Ordering::SeqCst);
                self.inner.crashes.fetch_add(1, Ordering::SeqCst);
                let tear_at = rng.below(phys_len as u64) as usize;
                return Some(WriteFault {
                    kind: FaultKind::Crash,
                    tear_at,
                });
            }
        }
        let roll = rng.below(1000) as u32;
        let c = &self.inner.config;
        let mut edge = c.torn_per_mille;
        if roll < edge {
            self.inner.torn.fetch_add(1, Ordering::SeqCst);
            let tear_at = rng.below(phys_len as u64) as usize;
            return Some(WriteFault {
                kind: FaultKind::TornWrite,
                tear_at,
            });
        }
        edge += c.short_per_mille;
        if roll < edge {
            self.inner.short.fetch_add(1, Ordering::SeqCst);
            // A short write got most of the buffer down: tear in the last
            // eighth of the slot.
            let window = (phys_len / 8).max(1);
            let tear_at = phys_len - 1 - rng.below(window as u64) as usize;
            return Some(WriteFault {
                kind: FaultKind::ShortWrite,
                tear_at,
            });
        }
        edge += c.dropped_sync_per_mille;
        if roll < edge {
            self.inner.dropped.fetch_add(1, Ordering::SeqCst);
            return Some(WriteFault {
                kind: FaultKind::DroppedSync,
                tear_at: 0,
            });
        }
        edge += c.transient_per_mille;
        if roll < edge {
            self.inner.transient.fetch_add(1, Ordering::SeqCst);
            return Some(WriteFault {
                kind: FaultKind::TransientError,
                tear_at: 0,
            });
        }
        None
    }

    /// Decide the fate of one durability sync (`fdatasync` of the WAL or
    /// page file). Syncs count toward the crash point like writes — a
    /// crash can land *between* an append and the fsync that would have
    /// made it durable — and can fail transiently (retry succeeds). Torn,
    /// short, and dropped faults carry no data here and never fire.
    pub fn decide_sync(&self) -> Option<FaultKind> {
        if !self.is_armed() || self.crashed() {
            return None;
        }
        let n = self.inner.writes_seen.fetch_add(1, Ordering::SeqCst) + 1;
        let mut rng = self.inner.rng.lock();
        if let Some(at) = self.inner.config.crash_after_writes {
            if n >= at {
                self.inner.crashed.store(true, Ordering::SeqCst);
                self.inner.crashes.fetch_add(1, Ordering::SeqCst);
                return Some(FaultKind::Crash);
            }
        }
        let roll = rng.below(1000) as u32;
        if roll < self.inner.config.transient_per_mille {
            self.inner.transient.fetch_add(1, Ordering::SeqCst);
            return Some(FaultKind::TransientError);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(plan: &FaultPlan, n: usize) -> Vec<Option<WriteFault>> {
        (0..n).map(|_| plan.decide_write(4112)).collect()
    }

    #[test]
    fn disarmed_plan_never_faults() {
        let plan = FaultPlan::new(FaultConfig {
            seed: 1,
            torn_per_mille: 1000,
            ..Default::default()
        });
        assert!(drain(&plan, 100).iter().all(Option::is_none));
        assert_eq!(plan.writes_seen(), 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = FaultConfig {
            seed: 42,
            torn_per_mille: 100,
            short_per_mille: 50,
            dropped_sync_per_mille: 30,
            transient_per_mille: 120,
            ..Default::default()
        };
        let a = FaultPlan::new(cfg.clone());
        let b = FaultPlan::new(cfg);
        a.arm();
        b.arm();
        assert_eq!(drain(&a, 500), drain(&b, 500));
        assert!(a.injected_total() > 0, "rates high enough to fire");
        assert_eq!(a.injected_total(), b.injected_total());
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            let p = FaultPlan::new(FaultConfig {
                seed,
                torn_per_mille: 200,
                ..Default::default()
            });
            p.arm();
            drain(&p, 300)
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn crash_freezes_at_nth_write() {
        let plan = FaultPlan::new(FaultConfig {
            seed: 7,
            crash_after_writes: Some(5),
            ..Default::default()
        });
        plan.arm();
        for i in 1..=4u64 {
            assert_eq!(plan.decide_write(4112), None, "write {i} clean");
        }
        let f = plan.decide_write(4112).expect("5th write crashes");
        assert_eq!(f.kind, FaultKind::Crash);
        assert!(f.tear_at < 4112);
        assert!(plan.crashed());
        // Frozen: no further decisions are drawn.
        assert_eq!(plan.decide_write(4112), None);
        assert_eq!(plan.count(FaultKind::Crash), 1);
        plan.reset_crash();
        assert!(!plan.crashed());
    }

    #[test]
    fn short_write_tears_late() {
        let plan = FaultPlan::new(FaultConfig {
            seed: 3,
            short_per_mille: 1000,
            ..Default::default()
        });
        plan.arm();
        for _ in 0..50 {
            let f = plan.decide_write(4096).expect("always short");
            assert_eq!(f.kind, FaultKind::ShortWrite);
            assert!(f.tear_at >= 4096 - 512, "tear_at {} too early", f.tear_at);
            assert!(f.tear_at < 4096);
        }
    }

    #[test]
    fn clones_share_state() {
        let plan = FaultPlan::new(FaultConfig {
            seed: 9,
            transient_per_mille: 1000,
            ..Default::default()
        });
        let other = plan.clone();
        plan.arm();
        assert!(other.is_armed());
        other.decide_write(4112);
        assert_eq!(plan.count(FaultKind::TransientError), 1);
    }
}
