//! Write-ahead log: redo records, group commit, recovery replay,
//! checkpoints, and snapshot reads.
//!
//! # Why a log
//!
//! The dual-slot page format survived torn writes by writing every page
//! twice and never overwriting the live copy. That buys crash safety per
//! page but not *ordering* across pages: an evicted dirty page could reach
//! the file before a logically earlier page, so a crash could persist a
//! queue-ack page whose covering delivery-log append was still in memory
//! (the wire tier's old "lost fire" gap). The WAL inverts the discipline:
//!
//! * Dirty pages are **never** written to the page file by the pool.
//!   Flushes append redo records (page images or sub-page deltas) here.
//! * A **commit frame** seals everything appended since the previous one.
//!   Recovery replays exactly the committed prefix; an uncommitted tail —
//!   including every eviction since the last commit — is discarded whole.
//! * The page file is only written at **checkpoint**, from sealed frames
//!   that are already durable. That *is* the WAL invariant ("no dirty page
//!   write before its log records are durable") — by construction rather
//!   than by a flag on each page.
//!
//! Durability therefore advances atomically at commit boundaries: after a
//! crash the store is some committed prefix, never an interleaving of
//! individual page writes. The ack-before-append gap closes because the
//! ack page and the delivery-log page are sealed by the same commit frame.
//!
//! # Group commit
//!
//! [`Wal::make_durable`] is the paper-motivated amortization point (§4.3's
//! batched update processing): one `fdatasync` covers every commit sealed
//! before it, and concurrent committers piggyback on whichever thread
//! currently has the sync in flight instead of issuing their own. The
//! `group_commits / fsyncs` ratio in [`WalStats`] is the measured win.
//!
//! # Frame format
//!
//! ```text
//! header:  "TMANWAL1" ‖ page_size u32 LE ‖ zero padding      (32 bytes)
//! frame:   [ len u32 LE ][ body ][ crc u64 LE ]
//! body:    kind u8 ‖ pid u32 LE ‖ seq u64 LE ‖ payload
//!          kind 1 = full page image   (payload: PAGE_SIZE bytes)
//!          kind 2 = delta             (payload: run list, see below)
//!          kind 3 = commit            (payload: empty, seq = commit seq)
//! ```
//!
//! `crc` chains: it hashes the *previous* frame's crc along with `len` and
//! `body`, so stale bytes left over from a torn append can never parse as
//! a valid continuation. The scan stops at the first invalid frame; the
//! committed range ends at the last valid commit frame before that.
//!
//! The **first** record for a page in each log generation is always a full
//! image — replay never reads the page file, so a torn checkpoint write
//! cannot poison a delta base. Later records for the same page may be
//! delta runs (`count u16`, then `off u16 ‖ len u16 ‖ bytes` per run)
//! against the previous record's resulting image.
//!
//! # Snapshot reads
//!
//! The in-memory page-version history that backs replay doubles as an
//! MVCC-ish read path: a [`Snapshot`] pins the current sealed commit seq
//! and reads the newest sealed version at-or-below it, falling back to the
//! page file (which only ever holds checkpointed, i.e. older, data — the
//! checkpoint stashes a pre-image when an active snapshot still needs
//! one). Pending frames are invisible, so a reader opened mid-group-commit
//! never observes a torn multi-page update, and never blocks behind the
//! committers' fsync.

use crate::disk::{DiskManager, PageId, PAGE_SIZE};
use crate::fault::{FaultKind, FaultPlan};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use tman_common::fxhash::FxHashMap;
use tman_common::stats::WalStats;
use tman_common::{Result, TmanError};

/// Log header: magic + page size, padded so frames start aligned-ish.
const WAL_HEADER: u64 = 32;
const WAL_MAGIC: [u8; 8] = *b"TMANWAL1";

const K_IMAGE: u8 = 1;
const K_DELTA: u8 = 2;
const K_COMMIT: u8 = 3;

/// Frame body overhead: kind + pid + seq.
const BODY_HEADER: usize = 13;

/// Seq tag for frames appended but not yet sealed by a commit.
const PENDING: u64 = u64::MAX;

/// Largest legal frame body; anything bigger terminates the scan.
const MAX_BODY: usize = BODY_HEADER + PAGE_SIZE;

type PageImage = Arc<[u8; PAGE_SIZE]>;

/// Tuning knobs for the log.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Auto-checkpoint once the log grows past this many bytes (the
    /// explicit [`crate::Storage::checkpoint`] always checkpoints).
    pub checkpoint_bytes: u64,
}

impl Default for WalConfig {
    fn default() -> WalConfig {
        WalConfig {
            checkpoint_bytes: 1 << 20,
        }
    }
}

struct WalCore {
    file: File,
    append_off: u64,
    prev_crc: u64,
    /// Per-page version history, oldest first. Sealed entries carry their
    /// commit seq; at most one trailing [`PENDING`] entry per page.
    index: FxHashMap<u32, Vec<(u64, PageImage)>>,
    /// Pages with a pending entry awaiting the next commit frame.
    pending: Vec<u32>,
    next_seq: u64,
    /// Highest commit seq sealed (commit frame written).
    sealed_seq: u64,
    /// Bytes appended since the last checkpoint/truncation.
    bytes: u64,
    /// Pages that already have a full image in this log generation —
    /// eligible for delta encoding.
    logged_this_gen: HashSet<u32>,
}

struct SyncState {
    /// Highest commit seq covered by a completed fsync.
    durable_seq: u64,
    /// A thread currently has an fsync in flight; others piggyback.
    syncing: bool,
}

/// The write-ahead log attached to a file-backed store.
pub struct Wal {
    core: Mutex<WalCore>,
    sync_state: StdMutex<SyncState>,
    sync_cond: Condvar,
    /// Cloned handle so fsync never contends with appends on the core lock.
    sync_file: File,
    /// Active snapshot seqs → refcount; checkpoint pruning consults this.
    snaps: Mutex<BTreeMap<u64, usize>>,
    /// Committed images scanned at open, consumed by [`replay_into`](Self::replay_into).
    recovered: Mutex<Option<(Vec<(PageId, Box<[u8; PAGE_SIZE]>)>, u64)>>,
    stats: WalStats,
    plan: Option<FaultPlan>,
    cfg: WalConfig,
}

fn chain_crc(prev: u64, len: u32, body: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ prev;
    for &b in len.to_le_bytes().iter().chain(body.iter()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn encode_body(kind: u8, pid: PageId, seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut b = Vec::with_capacity(BODY_HEADER + payload.len());
    b.push(kind);
    b.extend_from_slice(&pid.0.to_le_bytes());
    b.extend_from_slice(&seq.to_le_bytes());
    b.extend_from_slice(payload);
    b
}

/// Diff `new` against `base` into a run list, or `None` when a full image
/// is the better (or only safe) encoding. Runs closer than 8 bytes merge.
fn diff_runs(base: &[u8; PAGE_SIZE], new: &[u8; PAGE_SIZE]) -> Option<Vec<u8>> {
    const MERGE_GAP: usize = 8;
    let mut runs: Vec<(usize, usize)> = Vec::new();
    let mut total = 2usize;
    let mut i = 0;
    while i < PAGE_SIZE {
        if base[i] == new[i] {
            i += 1;
            continue;
        }
        let start = i;
        let mut last_diff = i;
        i += 1;
        while i < PAGE_SIZE && i - last_diff <= MERGE_GAP {
            if base[i] != new[i] {
                last_diff = i;
            }
            i += 1;
        }
        let len = last_diff + 1 - start;
        total += 4 + len;
        if total >= PAGE_SIZE / 2 {
            return None; // not worth it; full image is simpler and safer
        }
        runs.push((start, len));
    }
    let mut payload = Vec::with_capacity(total);
    payload.extend_from_slice(&(runs.len() as u16).to_le_bytes());
    for (off, len) in runs {
        payload.extend_from_slice(&(off as u16).to_le_bytes());
        payload.extend_from_slice(&(len as u16).to_le_bytes());
        payload.extend_from_slice(&new[off..off + len]);
    }
    Some(payload)
}

/// Apply a delta run list to `img`; `false` on malformed payload.
fn apply_runs(img: &mut [u8; PAGE_SIZE], payload: &[u8]) -> bool {
    if payload.len() < 2 {
        return false;
    }
    let count = u16::from_le_bytes(payload[0..2].try_into().unwrap()) as usize;
    let mut cur = 2usize;
    for _ in 0..count {
        if cur + 4 > payload.len() {
            return false;
        }
        let off = u16::from_le_bytes(payload[cur..cur + 2].try_into().unwrap()) as usize;
        let len = u16::from_le_bytes(payload[cur + 2..cur + 4].try_into().unwrap()) as usize;
        cur += 4;
        if off + len > PAGE_SIZE || cur + len > payload.len() {
            return false;
        }
        img[off..off + len].copy_from_slice(&payload[cur..cur + len]);
        cur += len;
    }
    cur == payload.len()
}

struct ScanFrame {
    kind: u8,
    pid: u32,
    payload: Vec<u8>,
}

/// Parse the log tail: valid frames in order, the committed prefix length
/// (frames up to and including the last valid commit), and the last commit
/// seq. Stops at the first frame that fails the length or chained-crc
/// check — everything after a torn append is unreachable garbage.
fn scan_frames(buf: &[u8]) -> (Vec<ScanFrame>, usize, u64) {
    let mut frames = Vec::new();
    let mut committed_upto = 0usize;
    let mut last_seq = 0u64;
    let mut prev_crc = 0u64;
    let mut off = 0usize;
    loop {
        if off + 4 > buf.len() {
            break;
        }
        let len = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()) as usize;
        if !(BODY_HEADER..=MAX_BODY).contains(&len) || off + 4 + len + 8 > buf.len() {
            break;
        }
        let body = &buf[off + 4..off + 4 + len];
        let stored = u64::from_le_bytes(buf[off + 4 + len..off + 4 + len + 8].try_into().unwrap());
        let crc = chain_crc(prev_crc, len as u32, body);
        if crc != stored {
            break;
        }
        prev_crc = crc;
        let kind = body[0];
        let pid = u32::from_le_bytes(body[1..5].try_into().unwrap());
        let seq = u64::from_le_bytes(body[5..13].try_into().unwrap());
        frames.push(ScanFrame {
            kind,
            pid,
            payload: body[BODY_HEADER..].to_vec(),
        });
        off += 4 + len + 8;
        if kind == K_COMMIT {
            committed_upto = frames.len();
            last_seq = seq;
        }
    }
    (frames, committed_upto, last_seq)
}

impl Wal {
    /// Open (or create) the log at `path` and scan it. Committed records
    /// found by the scan are held until [`replay_into`](Self::replay_into)
    /// applies them; the caller must replay before appending.
    pub fn open(path: &Path, plan: Option<FaultPlan>, cfg: WalConfig) -> Result<Wal> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        let mut header_ok = false;
        if len >= WAL_HEADER {
            let mut magic = [0u8; 8];
            file.seek(SeekFrom::Start(0))?;
            file.read_exact(&mut magic)?;
            header_ok = magic == WAL_MAGIC;
        }
        if !header_ok {
            // Fresh (or unrecognizable) log: stamp a clean header. An
            // unrecognizable header means there is no usable redo data.
            file.set_len(0)?;
            let mut h = [0u8; WAL_HEADER as usize];
            h[..8].copy_from_slice(&WAL_MAGIC);
            h[8..12].copy_from_slice(&(PAGE_SIZE as u32).to_le_bytes());
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&h)?;
            file.sync_data()?;
        }
        // Scan the tail for committed redo records.
        file.seek(SeekFrom::Start(WAL_HEADER))?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let (frames, committed_upto, last_seq) = scan_frames(&buf);
        let mut working: FxHashMap<u32, Box<[u8; PAGE_SIZE]>> = FxHashMap::default();
        let mut records = 0u64;
        for f in &frames[..committed_upto] {
            match f.kind {
                K_IMAGE => {
                    if f.payload.len() == PAGE_SIZE {
                        let mut img = Box::new([0u8; PAGE_SIZE]);
                        img.copy_from_slice(&f.payload);
                        working.insert(f.pid, img);
                        records += 1;
                    }
                }
                K_DELTA => {
                    // A delta without a base in this scan means its base
                    // image was lost to a dropped write: skip the page
                    // (dropped-write semantics) rather than guess.
                    if let Some(img) = working.get_mut(&f.pid) {
                        if apply_runs(img, &f.payload) {
                            records += 1;
                        }
                    }
                }
                _ => {}
            }
        }
        let mut images: Vec<(PageId, Box<[u8; PAGE_SIZE]>)> = working
            .into_iter()
            .map(|(p, img)| (PageId(p), img))
            .collect();
        images.sort_by_key(|(p, _)| *p);
        let sync_file = file.try_clone()?;
        Ok(Wal {
            core: Mutex::new(WalCore {
                file,
                append_off: WAL_HEADER,
                prev_crc: 0,
                index: FxHashMap::default(),
                pending: Vec::new(),
                next_seq: last_seq + 1,
                sealed_seq: last_seq,
                bytes: 0,
                logged_this_gen: HashSet::new(),
            }),
            sync_state: StdMutex::new(SyncState {
                durable_seq: last_seq,
                syncing: false,
            }),
            sync_cond: Condvar::new(),
            sync_file,
            snaps: Mutex::new(BTreeMap::new()),
            recovered: Mutex::new(Some((images, records))),
            stats: WalStats::default(),
            plan,
            cfg,
        })
    }

    /// Counters for this log.
    pub fn stats(&self) -> &WalStats {
        &self.stats
    }

    /// Bytes appended since the last checkpoint.
    pub fn bytes(&self) -> u64 {
        self.core.lock().bytes
    }

    /// Highest sealed commit seq.
    pub fn sealed_seq(&self) -> u64 {
        self.core.lock().sealed_seq
    }

    /// True once the log has outgrown [`WalConfig::checkpoint_bytes`].
    pub fn needs_checkpoint(&self) -> bool {
        let core = self.core.lock();
        core.bytes >= self.cfg.checkpoint_bytes
    }

    /// Write the committed images found at open into the page file, sync
    /// it, and truncate the log. Idempotent: replaying the same log twice
    /// rewrites the same images. Returns the number of records applied.
    pub fn replay_into(&self, disk: &DiskManager) -> Result<u64> {
        let Some((images, records)) = self.recovered.lock().take() else {
            return Ok(0);
        };
        for (pid, img) in &images {
            while disk.num_pages() <= pid.0 {
                disk.allocate()?;
            }
            let mut last = None;
            for _ in 0..3 {
                match disk.write_page(*pid, img) {
                    Ok(()) => {
                        last = None;
                        break;
                    }
                    Err(e) => last = Some(e),
                }
            }
            if let Some(e) = last {
                return Err(e);
            }
        }
        if !images.is_empty() {
            disk.sync()?;
        }
        self.stats.replayed_records.add(records);
        self.truncate_log(&mut self.core.lock())?;
        Ok(records)
    }

    /// Write one frame at the append offset, drawing a fault decision.
    /// `Ok(true)` = frame is on disk; `Ok(false)` = a dropped-sync fault
    /// silently lost it (offset and crc chain unchanged, so the log stays
    /// scannable); `Err` = nothing usable was appended (a torn prefix may
    /// exist, but the next append overwrites it and the chained crc keeps
    /// it unreachable).
    fn write_frame(&self, core: &mut WalCore, body: &[u8]) -> Result<bool> {
        if self.plan.as_ref().is_some_and(|p| p.frozen()) {
            return Err(TmanError::Io("simulated crash: disk frozen".into()));
        }
        let len = body.len() as u32;
        let crc = chain_crc(core.prev_crc, len, body);
        let mut frame = Vec::with_capacity(body.len() + 12);
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(body);
        frame.extend_from_slice(&crc.to_le_bytes());
        let fault = self.plan.as_ref().and_then(|p| p.decide_write(frame.len()));
        match fault {
            None => {
                core.file.seek(SeekFrom::Start(core.append_off))?;
                core.file.write_all(&frame)?;
                core.append_off += frame.len() as u64;
                core.prev_crc = crc;
                core.bytes += frame.len() as u64;
                self.stats.bytes.add(frame.len() as u64);
                Ok(true)
            }
            Some(f) => match f.kind {
                FaultKind::DroppedSync => Ok(false),
                FaultKind::TransientError => {
                    Err(TmanError::Io("injected transient log append error".into()))
                }
                FaultKind::TornWrite | FaultKind::ShortWrite | FaultKind::Crash => {
                    let tear = f.tear_at.min(frame.len());
                    core.file.seek(SeekFrom::Start(core.append_off))?;
                    core.file.write_all(&frame[..tear])?;
                    Err(TmanError::Io(format!(
                        "injected torn log append at byte {tear}"
                    )))
                }
            },
        }
    }

    /// Append a redo record for `pid`. The image also becomes the page's
    /// newest (pending) version in the in-memory index, so pool misses and
    /// later snapshots read it without touching the page file.
    pub fn append_page(&self, pid: PageId, data: &[u8; PAGE_SIZE]) -> Result<()> {
        let mut core = self.core.lock();
        let delta = if core.logged_this_gen.contains(&pid.0) {
            core.index
                .get(&pid.0)
                .and_then(|v| v.last())
                .and_then(|(_, base)| diff_runs(base, data))
        } else {
            None
        };
        let body = match &delta {
            Some(runs) => encode_body(K_DELTA, pid, 0, runs),
            None => encode_body(K_IMAGE, pid, 0, data),
        };
        let written = self.write_frame(&mut core, &body)?;
        if written {
            self.stats.appends.bump();
            core.logged_this_gen.insert(pid.0);
        } else {
            // Dropped write: the on-disk log no longer matches the index
            // for this page, so the next append must re-seed a full image.
            core.logged_this_gen.remove(&pid.0);
        }
        let img: PageImage = Arc::new(*data);
        let versions = core.index.entry(pid.0).or_default();
        match versions.last_mut() {
            Some(e) if e.0 == PENDING => e.1 = img,
            _ => {
                versions.push((PENDING, img));
                core.pending.push(pid.0);
            }
        }
        Ok(())
    }

    /// Seal everything appended since the last commit frame. Returns the
    /// sealed seq (unchanged if nothing was pending). Does **not** fsync —
    /// pair with [`make_durable`](Self::make_durable).
    pub fn commit_stage(&self) -> Result<u64> {
        let mut core = self.core.lock();
        self.commit_stage_locked(&mut core)
    }

    fn commit_stage_locked(&self, core: &mut WalCore) -> Result<u64> {
        if core.pending.is_empty() {
            return Ok(core.sealed_seq);
        }
        let seq = core.next_seq;
        let body = encode_body(K_COMMIT, PageId(0), seq, &[]);
        // A dropped-sync here is a lying commit: sealed in memory, missing
        // on disk — replay discards the batch, which is exactly what the
        // fault means. Torn/transient leave everything pending for retry.
        self.write_frame(core, &body)?;
        core.next_seq += 1;
        core.sealed_seq = seq;
        let pending = std::mem::take(&mut core.pending);
        let snaps = self.snaps.lock();
        for pid in pending {
            if let Some(versions) = core.index.get_mut(&pid) {
                if let Some(last) = versions.last_mut() {
                    if last.0 == PENDING {
                        last.0 = seq;
                    }
                }
                let keep = keep_mask(versions, &snaps, true);
                let mut it = keep.into_iter();
                versions.retain(|_| it.next().unwrap());
            }
        }
        Ok(seq)
    }

    /// Block until commit `target_seq` is covered by an fsync. One thread
    /// syncs; concurrent callers piggyback on its barrier (the group
    /// commit). Records the wait in `group_commit_ns` either way.
    pub fn make_durable(&self, target_seq: u64) -> Result<()> {
        let start = std::time::Instant::now();
        let mut was_syncer = false;
        let mut ss = self.sync_state.lock().expect("sync_state poisoned");
        loop {
            if ss.durable_seq >= target_seq {
                drop(ss);
                self.stats
                    .group_commit_ns
                    .record(start.elapsed().as_nanos() as u64);
                if !was_syncer && target_seq > 0 {
                    self.stats.group_commits.bump();
                }
                return Ok(());
            }
            if !ss.syncing {
                ss.syncing = true;
                was_syncer = true;
                drop(ss);
                let cover = self.core.lock().sealed_seq;
                let res = self.fsync_log();
                ss = self.sync_state.lock().expect("sync_state poisoned");
                ss.syncing = false;
                if let Err(e) = res {
                    self.sync_cond.notify_all();
                    return Err(e);
                }
                if ss.durable_seq < cover {
                    ss.durable_seq = cover;
                }
                self.sync_cond.notify_all();
            } else {
                ss = self.sync_cond.wait(ss).expect("sync_state poisoned");
            }
        }
    }

    /// One real fsync of the log file, through the fault plan.
    fn fsync_log(&self) -> Result<()> {
        if self.plan.as_ref().is_some_and(|p| p.frozen()) {
            return Err(TmanError::Io("simulated crash: disk frozen".into()));
        }
        match self.plan.as_ref().and_then(|p| p.decide_sync()) {
            None => {}
            Some(FaultKind::TransientError) => {
                return Err(TmanError::Io("injected transient log fsync error".into()));
            }
            Some(_) => {
                return Err(TmanError::Io("simulated crash: disk frozen".into()));
            }
        }
        self.sync_file.sync_data()?;
        self.stats.fsyncs.bump();
        Ok(())
    }

    /// Newest logged image of `pid` (pending included), for pool misses:
    /// the log index is always at least as new as the page file.
    pub fn latest_image(&self, pid: PageId) -> Option<PageImage> {
        self.core
            .lock()
            .index
            .get(&pid.0)
            .and_then(|v| v.last())
            .map(|(_, img)| img.clone())
    }

    /// Pin the current sealed seq for consistent reads. `disk` is the
    /// page-file fallback for pages with no logged version.
    pub fn snapshot(self: &Arc<Self>, disk: Arc<DiskManager>) -> Snapshot {
        // Register under the core lock (core → snaps, the same order the
        // commit and checkpoint pruners use): a commit sneaking between
        // reading `sealed_seq` and registering could otherwise prune the
        // very versions this snapshot pins.
        let core = self.core.lock();
        let seq = core.sealed_seq;
        *self.snaps.lock().entry(seq).or_insert(0) += 1;
        drop(core);
        Snapshot {
            wal: self.clone(),
            disk,
            seq,
        }
    }

    fn truncate_log(&self, core: &mut WalCore) -> Result<()> {
        if core.file.metadata()?.len() > WAL_HEADER {
            core.file.set_len(WAL_HEADER)?;
            core.file.sync_data()?;
        }
        core.append_off = WAL_HEADER;
        core.prev_crc = 0;
        core.bytes = 0;
        core.logged_this_gen.clear();
        Ok(())
    }

    /// Checkpoint: seal and fsync anything still pending, write each
    /// page's newest sealed image into the page file (stashing pre-images
    /// active snapshots still need), sync it, and truncate the log. Holds
    /// the core lock throughout, so no append can race the truncation.
    ///
    /// Page-file writes happen strictly after the covering log records are
    /// durable — the WAL invariant, enforced here and only here because
    /// this is the only place the pool's data reaches the page file.
    pub fn checkpoint_into(&self, disk: &DiskManager) -> Result<()> {
        let mut core = self.core.lock();
        if core.bytes == 0 && core.pending.is_empty() {
            return Ok(()); // nothing since the last checkpoint
        }
        self.commit_stage_locked(&mut core)?;
        // Log durability before any page-file write.
        {
            let durable = self
                .sync_state
                .lock()
                .expect("sync_state poisoned")
                .durable_seq;
            if durable < core.sealed_seq {
                self.fsync_log()?;
                let mut ss = self.sync_state.lock().expect("sync_state poisoned");
                if ss.durable_seq < core.sealed_seq {
                    ss.durable_seq = core.sealed_seq;
                }
                self.sync_cond.notify_all();
            }
        }
        let snaps = self.snaps.lock();
        let mut pids: Vec<u32> = core.index.keys().copied().collect();
        pids.sort_unstable();
        for pid in pids {
            let versions = core.index.get(&pid).expect("indexed page");
            let Some((newest_seq, newest_img)) = versions
                .iter()
                .rev()
                .find(|(s, _)| *s != PENDING)
                .map(|(s, i)| (*s, i.clone()))
            else {
                continue;
            };
            // Decide retention and pre-image stashing *before* mutating,
            // so an aborted write-back leaves the index intact.
            let mut keep = keep_mask(versions, &snaps, false);
            let oldest_kept = versions
                .iter()
                .zip(keep.iter())
                .find(|(_, k)| **k)
                .map(|((s, _), _)| *s);
            let stash = match snaps.keys().next() {
                Some(&min_s) if min_s < newest_seq && oldest_kept.map_or(true, |s| s > min_s) => {
                    // Some snapshot predates every retained version: it
                    // reads the page file, which this write-back is about
                    // to overwrite. Capture the pre-image at seq 0 (below
                    // every real commit seq) first.
                    if pid < disk.num_pages() {
                        let mut pre = Box::new([0u8; PAGE_SIZE]);
                        disk.read_page(PageId(pid), &mut pre).ok().map(|_| pre)
                    } else {
                        None
                    }
                }
                _ => None,
            };
            if stash.is_some() {
                // A stash at seq 0 shadows the page-file fallback for
                // *newer* pins too (read_page picks the newest indexed
                // version ≤ pin), so the image this write-back puts in the
                // page file must stay indexed alongside it — otherwise a
                // snapshot pinned at `newest_seq` would match the stash and
                // read the pre-image.
                if let Some(ni) = versions.iter().rposition(|(s, _)| *s != PENDING) {
                    keep[ni] = true;
                }
            }
            while disk.num_pages() <= pid {
                disk.allocate()?;
            }
            let mut last = None;
            for _ in 0..3 {
                match disk.write_page(PageId(pid), &newest_img) {
                    Ok(()) => {
                        last = None;
                        break;
                    }
                    Err(e) => last = Some(e),
                }
            }
            if let Some(e) = last {
                return Err(e); // abort: log untouched, index untouched
            }
            let versions = core.index.get_mut(&pid).expect("indexed page");
            let mut it = keep.into_iter();
            versions.retain(|_| it.next().unwrap());
            if let Some(pre) = stash {
                versions.insert(0, (0, Arc::new(*pre)));
            }
        }
        drop(snaps);
        core.index.retain(|_, v| !v.is_empty());
        disk.sync()?;
        self.truncate_log(&mut core)?;
        self.stats.checkpoints.bump();
        Ok(())
    }
}

/// Which versions of one page to retain. A sealed version is needed when
/// some active snapshot sits between it and its successor; pending entries
/// are always kept. `seal` mode keeps the newest sealed version
/// unconditionally (the page file does not have it yet); checkpoint mode
/// keeps it only when an older version is also retained — otherwise the
/// just-written page file serves every newer reader, and dropping it is
/// what lets the history shrink to nothing when no snapshots are active.
fn keep_mask(versions: &[(u64, PageImage)], snaps: &BTreeMap<u64, usize>, seal: bool) -> Vec<bool> {
    let n = versions.len();
    let mut keep = vec![false; n];
    let newest = (0..n).rev().find(|&i| versions[i].0 != PENDING);
    for i in 0..n {
        if versions[i].0 == PENDING {
            keep[i] = true;
            continue;
        }
        if Some(i) == newest {
            continue;
        }
        let succ = versions[i + 1..]
            .iter()
            .map(|e| e.0)
            .find(|&s| s != PENDING)
            .unwrap_or(u64::MAX);
        if snaps.range(versions[i].0..succ).next().is_some() {
            keep[i] = true;
        }
    }
    if let Some(ni) = newest {
        // Without this, a *new* snapshot would read a retained older
        // version as "newest ≤ seq" and miss the current page content.
        keep[ni] = seal || keep.iter().take(ni).any(|&k| k);
    }
    keep
}

/// A consistent read view pinned at one sealed commit seq. Readers never
/// see pending (uncommitted) frames and never block behind group commit.
/// Dropping the snapshot releases its version pins.
pub struct Snapshot {
    wal: Arc<Wal>,
    disk: Arc<DiskManager>,
    seq: u64,
}

impl Snapshot {
    /// The sealed commit seq this view is pinned at.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Read `pid` as of this snapshot: the newest sealed version at or
    /// below the pinned seq, else the page file (which checkpoints keep
    /// valid for us via pre-image stashing).
    pub fn read_page(&self, pid: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
        let core = self.wal.core.lock();
        if let Some(versions) = core.index.get(&pid.0) {
            if let Some((_, img)) = versions
                .iter()
                .rev()
                .find(|(s, _)| *s != PENDING && *s <= self.seq)
            {
                buf.copy_from_slice(&img[..]);
                return Ok(());
            }
        }
        // Fallback under the core lock so a concurrent checkpoint cannot
        // overwrite the page between the decision and the read.
        self.disk.read_page(pid, buf)
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        let mut snaps = self.wal.snaps.lock();
        if let Some(c) = snaps.get_mut(&self.seq) {
            *c -= 1;
            if *c == 0 {
                snaps.remove(&self.seq);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tman_wal_{tag}_{}.wal", std::process::id()))
    }

    fn db_tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tman_wal_{tag}_{}.db", std::process::id()))
    }

    fn page(fill: u8) -> [u8; PAGE_SIZE] {
        [fill; PAGE_SIZE]
    }

    fn open_wal(path: &Path, plan: Option<FaultPlan>) -> Wal {
        let w = Wal::open(path, plan, WalConfig::default()).unwrap();
        // Tests that don't exercise replay still need the open-scan state
        // consumed before appending.
        let disk = DiskManager::open_memory();
        w.replay_into(&disk).unwrap();
        w
    }

    #[test]
    fn committed_records_replay_byte_exact() {
        let (wp, dp) = (tmp("replay"), db_tmp("replay"));
        let _ = std::fs::remove_file(&wp);
        let _ = std::fs::remove_file(&dp);
        let disk = DiskManager::open_file(&dp).unwrap();
        let p1 = disk.allocate().unwrap();
        let p2 = disk.allocate().unwrap();
        {
            let wal = open_wal(&wp, None);
            wal.append_page(p1, &page(0x11)).unwrap();
            wal.append_page(p2, &page(0x22)).unwrap();
            let seq = wal.commit_stage().unwrap();
            wal.make_durable(seq).unwrap();
            // Page file untouched so far: that's the whole point.
            let mut buf = [0u8; PAGE_SIZE];
            disk.read_page(p1, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 0));
        }
        // "Crash": reopen the log and replay into the page file.
        let wal = Wal::open(&wp, None, WalConfig::default()).unwrap();
        let replayed = wal.replay_into(&disk).unwrap();
        assert_eq!(replayed, 2);
        assert_eq!(wal.stats().replayed_records.get(), 2);
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(p1, &mut buf).unwrap();
        assert_eq!(buf, page(0x11));
        disk.read_page(p2, &mut buf).unwrap();
        assert_eq!(buf, page(0x22));
        // Replay truncated the log: a second open replays nothing.
        let wal2 = Wal::open(&wp, None, WalConfig::default()).unwrap();
        assert_eq!(wal2.replay_into(&disk).unwrap(), 0);
        let _ = std::fs::remove_file(&wp);
        let _ = std::fs::remove_file(&dp);
    }

    #[test]
    fn uncommitted_tail_is_discarded() {
        let (wp, dp) = (tmp("tail"), db_tmp("tail"));
        let _ = std::fs::remove_file(&wp);
        let _ = std::fs::remove_file(&dp);
        let disk = DiskManager::open_file(&dp).unwrap();
        let p1 = disk.allocate().unwrap();
        let p2 = disk.allocate().unwrap();
        {
            let wal = open_wal(&wp, None);
            wal.append_page(p1, &page(0x33)).unwrap();
            let seq = wal.commit_stage().unwrap();
            wal.make_durable(seq).unwrap();
            wal.append_page(p2, &page(0x44)).unwrap(); // never committed
        }
        let wal = Wal::open(&wp, None, WalConfig::default()).unwrap();
        assert_eq!(wal.replay_into(&disk).unwrap(), 1);
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(p1, &mut buf).unwrap();
        assert_eq!(buf, page(0x33));
        disk.read_page(p2, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0), "uncommitted append discarded");
        let _ = std::fs::remove_file(&wp);
        let _ = std::fs::remove_file(&dp);
    }

    #[test]
    fn delta_encoding_roundtrips() {
        let (wp, dp) = (tmp("delta"), db_tmp("delta"));
        let _ = std::fs::remove_file(&wp);
        let _ = std::fs::remove_file(&dp);
        let disk = DiskManager::open_file(&dp).unwrap();
        let p = disk.allocate().unwrap();
        let bytes_after_full;
        {
            let wal = open_wal(&wp, None);
            let mut img = page(0x55);
            wal.append_page(p, &img).unwrap();
            bytes_after_full = wal.bytes();
            // Small change: second frame should be a delta, much smaller.
            img[100] = 0xAA;
            img[3000] = 0xBB;
            wal.append_page(p, &img).unwrap();
            let delta_bytes = wal.bytes() - bytes_after_full;
            assert!(
                delta_bytes < 200,
                "expected a sub-page delta frame, got {delta_bytes} bytes"
            );
            let seq = wal.commit_stage().unwrap();
            wal.make_durable(seq).unwrap();
        }
        let wal = Wal::open(&wp, None, WalConfig::default()).unwrap();
        assert_eq!(wal.replay_into(&disk).unwrap(), 2);
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(p, &mut buf).unwrap();
        let mut want = page(0x55);
        want[100] = 0xAA;
        want[3000] = 0xBB;
        assert_eq!(buf, want, "image + delta replayed byte-exact");
        let _ = std::fs::remove_file(&wp);
        let _ = std::fs::remove_file(&dp);
    }

    #[test]
    fn torn_append_is_overwritten_by_retry() {
        let (wp, dp) = (tmp("torn"), db_tmp("torn"));
        let _ = std::fs::remove_file(&wp);
        let _ = std::fs::remove_file(&dp);
        let disk = DiskManager::open_file(&dp).unwrap();
        let p = disk.allocate().unwrap();
        let plan = FaultPlan::new(FaultConfig {
            seed: 7,
            torn_per_mille: 1000,
            ..Default::default()
        });
        {
            let wal = open_wal(&wp, Some(plan.clone()));
            plan.arm();
            assert!(wal.append_page(p, &page(0x66)).is_err(), "torn append");
            plan.disarm();
            wal.append_page(p, &page(0x77)).unwrap(); // overwrites the tear
            let seq = wal.commit_stage().unwrap();
            wal.make_durable(seq).unwrap();
        }
        let wal = Wal::open(&wp, None, WalConfig::default()).unwrap();
        assert_eq!(wal.replay_into(&disk).unwrap(), 1);
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(p, &mut buf).unwrap();
        assert_eq!(buf, page(0x77));
        let _ = std::fs::remove_file(&wp);
        let _ = std::fs::remove_file(&dp);
    }

    #[test]
    fn checkpoint_writes_back_and_truncates() {
        let (wp, dp) = (tmp("ckpt"), db_tmp("ckpt"));
        let _ = std::fs::remove_file(&wp);
        let _ = std::fs::remove_file(&dp);
        let disk = DiskManager::open_file(&dp).unwrap();
        let p = disk.allocate().unwrap();
        let wal = open_wal(&wp, None);
        wal.append_page(p, &page(0x88)).unwrap();
        let seq = wal.commit_stage().unwrap();
        wal.make_durable(seq).unwrap();
        wal.checkpoint_into(&disk).unwrap();
        assert_eq!(wal.stats().checkpoints.get(), 1);
        assert_eq!(wal.bytes(), 0);
        assert_eq!(
            std::fs::metadata(&wp).unwrap().len(),
            WAL_HEADER,
            "log truncated to header"
        );
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(p, &mut buf).unwrap();
        assert_eq!(buf, page(0x88), "checkpoint wrote the page back");
        // Nothing new: a second checkpoint is a no-op.
        wal.checkpoint_into(&disk).unwrap();
        assert_eq!(wal.stats().checkpoints.get(), 1);
        let _ = std::fs::remove_file(&wp);
        let _ = std::fs::remove_file(&dp);
    }

    #[test]
    fn checkpoint_seals_pending_appends_first() {
        let (wp, dp) = (tmp("ckpt_pend"), db_tmp("ckpt_pend"));
        let _ = std::fs::remove_file(&wp);
        let _ = std::fs::remove_file(&dp);
        let disk = DiskManager::open_file(&dp).unwrap();
        let p = disk.allocate().unwrap();
        let wal = open_wal(&wp, None);
        wal.append_page(p, &page(0x99)).unwrap(); // pending, no commit
        wal.checkpoint_into(&disk).unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(p, &mut buf).unwrap();
        assert_eq!(buf, page(0x99));
        let _ = std::fs::remove_file(&wp);
        let _ = std::fs::remove_file(&dp);
    }

    #[test]
    fn group_commit_amortizes_fsyncs() {
        let (wp, dp) = (tmp("group"), db_tmp("group"));
        let _ = std::fs::remove_file(&wp);
        let _ = std::fs::remove_file(&dp);
        let disk = Arc::new(DiskManager::open_file(&dp).unwrap());
        let wal = Arc::new(open_wal(&wp, None));
        let mut pids = Vec::new();
        for _ in 0..8 {
            pids.push(disk.allocate().unwrap());
        }
        let threads: Vec<_> = pids
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                let wal = wal.clone();
                std::thread::spawn(move || {
                    for round in 0..20u8 {
                        wal.append_page(p, &page(i as u8 ^ round)).unwrap();
                        let seq = wal.commit_stage().unwrap();
                        wal.make_durable(seq).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let commits = 8 * 20u64;
        let fsyncs = wal.stats().fsyncs.get();
        assert!(fsyncs >= 1);
        assert!(
            fsyncs + wal.stats().group_commits.get() >= commits,
            "every commit either synced or piggybacked"
        );
        assert_eq!(wal.stats().group_commit_ns.count(), commits);
        let _ = std::fs::remove_file(&wp);
        let _ = std::fs::remove_file(&dp);
    }

    #[test]
    fn snapshot_ignores_pending_and_later_commits() {
        let (wp, dp) = (tmp("snap"), db_tmp("snap"));
        let _ = std::fs::remove_file(&wp);
        let _ = std::fs::remove_file(&dp);
        let disk = Arc::new(DiskManager::open_file(&dp).unwrap());
        let wal = Arc::new(open_wal(&wp, None));
        let p = disk.allocate().unwrap();
        wal.append_page(p, &page(0x10)).unwrap();
        let seq = wal.commit_stage().unwrap();
        wal.make_durable(seq).unwrap();
        let snap = wal.snapshot(disk.clone());
        // A pending (uncommitted) append is invisible to the snapshot…
        wal.append_page(p, &page(0x20)).unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        snap.read_page(p, &mut buf).unwrap();
        assert_eq!(buf, page(0x10));
        // …and so is the next sealed commit.
        let seq = wal.commit_stage().unwrap();
        wal.make_durable(seq).unwrap();
        snap.read_page(p, &mut buf).unwrap();
        assert_eq!(buf, page(0x10));
        // A fresh snapshot sees the new commit.
        let snap2 = wal.snapshot(disk.clone());
        snap2.read_page(p, &mut buf).unwrap();
        assert_eq!(buf, page(0x20));
        let _ = std::fs::remove_file(&wp);
        let _ = std::fs::remove_file(&dp);
    }

    #[test]
    fn snapshot_survives_checkpoint_via_stash() {
        let (wp, dp) = (tmp("snap_ckpt"), db_tmp("snap_ckpt"));
        let _ = std::fs::remove_file(&wp);
        let _ = std::fs::remove_file(&dp);
        let disk = Arc::new(DiskManager::open_file(&dp).unwrap());
        let wal = Arc::new(open_wal(&wp, None));
        let p = disk.allocate().unwrap();
        // Commit v1, checkpoint it into the page file, prune history.
        wal.append_page(p, &page(0x31)).unwrap();
        let seq = wal.commit_stage().unwrap();
        wal.make_durable(seq).unwrap();
        wal.checkpoint_into(&disk).unwrap();
        // Snapshot now reads v1 from the page file (no logged versions).
        let snap = wal.snapshot(disk.clone());
        // Commit v2 and checkpoint again: the write-back must stash the
        // v1 pre-image for the live snapshot before overwriting.
        wal.append_page(p, &page(0x32)).unwrap();
        let seq = wal.commit_stage().unwrap();
        wal.make_durable(seq).unwrap();
        wal.checkpoint_into(&disk).unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(p, &mut buf).unwrap();
        assert_eq!(buf, page(0x32), "page file has v2");
        snap.read_page(p, &mut buf).unwrap();
        assert_eq!(buf, page(0x31), "snapshot still reads v1");
        drop(snap);
        // With the snapshot gone the next checkpoint clears the stash.
        wal.append_page(p, &page(0x33)).unwrap();
        let seq = wal.commit_stage().unwrap();
        wal.make_durable(seq).unwrap();
        wal.checkpoint_into(&disk).unwrap();
        assert!(wal.latest_image(p).is_none(), "history fully pruned");
        let _ = std::fs::remove_file(&wp);
        let _ = std::fs::remove_file(&dp);
    }

    #[test]
    fn dropped_commit_frame_loses_batch_cleanly() {
        let (wp, dp) = (tmp("dropc"), db_tmp("dropc"));
        let _ = std::fs::remove_file(&wp);
        let _ = std::fs::remove_file(&dp);
        let disk = DiskManager::open_file(&dp).unwrap();
        let p = disk.allocate().unwrap();
        let plan = FaultPlan::new(FaultConfig {
            seed: 3,
            dropped_sync_per_mille: 1000,
            ..Default::default()
        });
        {
            let wal = open_wal(&wp, Some(plan.clone()));
            wal.append_page(p, &page(0x41)).unwrap();
            plan.arm();
            // Commit frame silently dropped: sealed in memory, gone on disk.
            let seq = wal.commit_stage().unwrap();
            plan.disarm();
            wal.make_durable(seq).unwrap();
        }
        let wal = Wal::open(&wp, None, WalConfig::default()).unwrap();
        assert_eq!(wal.replay_into(&disk).unwrap(), 0, "lying commit lost");
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(p, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        let _ = std::fs::remove_file(&wp);
        let _ = std::fs::remove_file(&dp);
    }

    #[test]
    fn diff_runs_apply_runs_roundtrip() {
        let base = page(0x00);
        let mut new = base;
        new[0] = 1;
        new[5] = 2; // merges with run at 0 (gap < 8)
        new[2000] = 3;
        new[PAGE_SIZE - 1] = 4;
        let payload = diff_runs(&base, &new).expect("small diff encodes");
        let mut img = base;
        assert!(apply_runs(&mut img, &payload));
        assert_eq!(img, new);
        // Identical pages: empty run list still roundtrips.
        let payload = diff_runs(&new, &new).unwrap();
        let mut img = new;
        assert!(apply_runs(&mut img, &payload));
        assert_eq!(img, new);
        // A mostly-different page refuses delta encoding.
        assert!(diff_runs(&page(0x00), &page(0xFF)).is_none());
    }
}
