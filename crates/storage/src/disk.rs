//! Page-granular disk manager.
//!
//! Two backends behind one type: a real file (durability tests, persistence
//! experiments) and an in-memory vector (fast unit tests, benches that only
//! care about page-count accounting). Both count physical reads/writes into
//! [`StorageStats`] so experiments can report I/O.

use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use tman_common::stats::StorageStats;
use tman_common::{Result, TmanError};

/// Fixed page size (bytes). 4 KiB matches the paper's era and keeps the
/// trigger-cache arithmetic in §5.1 ("a trigger description takes 4K bytes")
/// directly comparable.
pub const PAGE_SIZE: usize = 4096;

/// Physical page number within a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Sentinel "no page" value (page 0 is the directory superblock, so it
    /// can double as the null link in page chains).
    pub const NULL: PageId = PageId(0);

    /// True if this is the null sentinel.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

enum Backend {
    File(Mutex<File>),
    Memory(Mutex<Vec<Box<[u8; PAGE_SIZE]>>>),
}

/// Allocates, reads and writes fixed-size pages.
pub struct DiskManager {
    backend: Backend,
    num_pages: Mutex<u32>,
    stats: StorageStats,
}

impl DiskManager {
    /// Open or create a file-backed store. A fresh store gets page 0
    /// (zero-filled) allocated as the directory superblock.
    pub fn open_file(path: &Path) -> Result<DiskManager> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false) // reopening an existing store must keep it
            .open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(TmanError::Storage(format!(
                "store file length {len} is not page aligned"
            )));
        }
        let dm = DiskManager {
            backend: Backend::File(Mutex::new(file)),
            num_pages: Mutex::new((len / PAGE_SIZE as u64) as u32),
            stats: StorageStats::default(),
        };
        dm.ensure_superblock()?;
        Ok(dm)
    }

    /// Create an in-memory store.
    pub fn open_memory() -> DiskManager {
        let dm = DiskManager {
            backend: Backend::Memory(Mutex::new(Vec::new())),
            num_pages: Mutex::new(0),
            stats: StorageStats::default(),
        };
        dm.ensure_superblock().expect("memory superblock");
        dm
    }

    fn ensure_superblock(&self) -> Result<()> {
        let n = self.num_pages.lock();
        if *n == 0 {
            drop(n);
            let pid = self.allocate()?;
            debug_assert_eq!(pid, PageId(0));
        } else {
            drop(n);
        }
        Ok(())
    }

    /// I/O counters for this store.
    pub fn stats(&self) -> &StorageStats {
        &self.stats
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> u32 {
        *self.num_pages.lock()
    }

    /// Allocate a fresh zero-filled page at the end of the store.
    pub fn allocate(&self) -> Result<PageId> {
        let mut n = self.num_pages.lock();
        let pid = PageId(*n);
        *n += 1;
        match &self.backend {
            Backend::Memory(pages) => {
                pages.lock().push(Box::new([0u8; PAGE_SIZE]));
            }
            Backend::File(file) => {
                let mut f = file.lock();
                f.seek(SeekFrom::Start(pid.0 as u64 * PAGE_SIZE as u64))?;
                f.write_all(&[0u8; PAGE_SIZE])?;
            }
        }
        Ok(pid)
    }

    /// Read page `pid` into `buf`.
    pub fn read_page(&self, pid: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
        self.check_bounds(pid)?;
        self.stats.page_reads.bump();
        match &self.backend {
            Backend::Memory(pages) => {
                buf.copy_from_slice(&pages.lock()[pid.0 as usize][..]);
            }
            Backend::File(file) => {
                let mut f = file.lock();
                f.seek(SeekFrom::Start(pid.0 as u64 * PAGE_SIZE as u64))?;
                f.read_exact(buf)?;
            }
        }
        Ok(())
    }

    /// Write `buf` to page `pid`.
    pub fn write_page(&self, pid: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()> {
        self.check_bounds(pid)?;
        self.stats.page_writes.bump();
        match &self.backend {
            Backend::Memory(pages) => {
                pages.lock()[pid.0 as usize].copy_from_slice(buf);
            }
            Backend::File(file) => {
                let mut f = file.lock();
                f.seek(SeekFrom::Start(pid.0 as u64 * PAGE_SIZE as u64))?;
                f.write_all(buf)?;
            }
        }
        Ok(())
    }

    fn check_bounds(&self, pid: PageId) -> Result<()> {
        if pid.0 >= *self.num_pages.lock() {
            return Err(TmanError::Storage(format!(
                "page {} out of bounds ({} pages)",
                pid.0,
                self.num_pages()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_allocate_read_write() {
        let dm = DiskManager::open_memory();
        assert_eq!(dm.num_pages(), 1); // superblock
        let p = dm.allocate().unwrap();
        assert_eq!(p, PageId(1));
        let mut buf = [0u8; PAGE_SIZE];
        buf[0] = 0xAB;
        buf[PAGE_SIZE - 1] = 0xCD;
        dm.write_page(p, &buf).unwrap();
        let mut back = [0u8; PAGE_SIZE];
        dm.read_page(p, &mut back).unwrap();
        assert_eq!(buf[..], back[..]);
    }

    #[test]
    fn out_of_bounds_is_error() {
        let dm = DiskManager::open_memory();
        let mut buf = [0u8; PAGE_SIZE];
        assert!(dm.read_page(PageId(99), &mut buf).is_err());
        assert!(dm.write_page(PageId(99), &buf).is_err());
    }

    #[test]
    fn io_counters_count() {
        let dm = DiskManager::open_memory();
        let p = dm.allocate().unwrap();
        let buf = [0u8; PAGE_SIZE];
        dm.write_page(p, &buf).unwrap();
        let mut rb = [0u8; PAGE_SIZE];
        dm.read_page(p, &mut rb).unwrap();
        dm.read_page(p, &mut rb).unwrap();
        assert_eq!(dm.stats().page_writes.get(), 1);
        assert_eq!(dm.stats().page_reads.get(), 2);
    }

    #[test]
    fn file_backend_persists() {
        let path = std::env::temp_dir().join(format!("tman_disk_{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let p;
        {
            let dm = DiskManager::open_file(&path).unwrap();
            p = dm.allocate().unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            buf[7] = 77;
            dm.write_page(p, &buf).unwrap();
        }
        {
            let dm = DiskManager::open_file(&path).unwrap();
            assert_eq!(dm.num_pages(), 2);
            let mut buf = [0u8; PAGE_SIZE];
            dm.read_page(p, &mut buf).unwrap();
            assert_eq!(buf[7], 77);
        }
        let _ = std::fs::remove_file(&path);
    }
}
