//! Page-granular disk manager.
//!
//! Two backends behind one type: a real file (durability tests, persistence
//! experiments) and an in-memory vector (fast unit tests, benches that only
//! care about page-count accounting). Both count physical reads/writes into
//! [`StorageStats`] so experiments can report I/O.
//!
//! # On-disk format (file backend)
//!
//! Each logical 4 KiB page owns **two physical slots** of
//! `PAGE_SIZE + 16` bytes, laid out back to back:
//!
//! ```text
//! slot = [ data: 4096 ][ version: u64 LE ][ fnv1a64(data ‖ version): u64 LE ]
//! offset(pid, s) = (pid * 2 + s) * PHYS_PAGE
//! ```
//!
//! Writes ping-pong: a `write_page` goes to the *inactive* slot with
//! `version + 1` and only flips the in-memory slot map after the full slot
//! hits the file. A torn or failed write therefore never destroys the last
//! successfully written version — the partner slot still holds it. Reads
//! verify the checksum and expected version, falling back to the partner
//! slot; if both slots are invalid the page is truly lost and reads return
//! [`TmanError::Corrupt`].
//!
//! [`DiskManager::open_file_with`] runs a **scavenge pass**: it rebuilds the
//! slot map by picking the highest-version valid slot of every page and
//! *quarantines* pages with no valid slot (rewriting them as zeroed pages —
//! a zeroed slotted page scans as empty — and recording them in the
//! [`RecoveryReport`] so higher layers can rebuild derived state).
//!
//! An optional [`FaultPlan`] injects deterministic write failures; see
//! [`crate::fault`]. The in-memory backend has neither checksums nor faults.

use crate::fault::{FaultKind, FaultPlan};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use tman_common::stats::StorageStats;
use tman_common::{Result, TmanError};

/// Fixed page size (bytes). 4 KiB matches the paper's era and keeps the
/// trigger-cache arithmetic in §5.1 ("a trigger description takes 4K bytes")
/// directly comparable.
pub const PAGE_SIZE: usize = 4096;

/// Version + checksum trailer appended to each physical slot.
const TRAILER: usize = 16;

/// Physical slot size in the backing file.
pub const PHYS_PAGE: usize = PAGE_SIZE + TRAILER;

/// Physical page number within a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Sentinel "no page" value (page 0 is the directory superblock, so it
    /// can double as the null link in page chains).
    pub const NULL: PageId = PageId(0);

    /// True if this is the null sentinel.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

/// What the open-time scavenge pass found and repaired.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Pages with no valid slot, rewritten as zeroed (empty) pages.
    pub quarantined: Vec<PageId>,
    /// Slots holding torn garbage (nonzero bytes, bad checksum) whose
    /// partner slot was still valid — evidence of an interrupted write that
    /// the ping-pong format absorbed.
    pub salvaged_slots: u64,
}

impl RecoveryReport {
    /// True when the store did not shut down cleanly: derived state (heap
    /// chains, index trees) should be revalidated.
    pub fn recovered(&self) -> bool {
        !self.quarantined.is_empty() || self.salvaged_slots > 0
    }
}

/// Which slot currently holds the live version of a page.
#[derive(Debug, Clone, Copy)]
struct PageMeta {
    version: u64,
    slot: u8,
}

struct FileState {
    file: File,
    meta: Vec<PageMeta>,
}

enum Backend {
    File(Mutex<FileState>),
    Memory(Mutex<Vec<Box<[u8; PAGE_SIZE]>>>),
}

/// Allocates, reads and writes fixed-size pages.
pub struct DiskManager {
    backend: Backend,
    num_pages: Mutex<u32>,
    stats: StorageStats,
    plan: Option<FaultPlan>,
    recovery: RecoveryReport,
}

fn fnv1a64(data: &[u8], version: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data.iter().chain(version.to_le_bytes().iter()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn slot_offset(pid: PageId, slot: u8) -> u64 {
    (pid.0 as u64 * 2 + slot as u64) * PHYS_PAGE as u64
}

/// Build the physical image of a slot: data + version + checksum.
fn encode_slot(data: &[u8; PAGE_SIZE], version: u64) -> [u8; PHYS_PAGE] {
    let mut phys = [0u8; PHYS_PAGE];
    phys[..PAGE_SIZE].copy_from_slice(data);
    phys[PAGE_SIZE..PAGE_SIZE + 8].copy_from_slice(&version.to_le_bytes());
    phys[PAGE_SIZE + 8..].copy_from_slice(&fnv1a64(data, version).to_le_bytes());
    phys
}

/// Parse a physical slot; `Some((version, data))` only if the checksum
/// verifies and the version is nonzero (all-zero regions never validate).
fn decode_slot(phys: &[u8; PHYS_PAGE]) -> Option<(u64, &[u8])> {
    let version = u64::from_le_bytes(phys[PAGE_SIZE..PAGE_SIZE + 8].try_into().unwrap());
    if version == 0 {
        return None;
    }
    let stored = u64::from_le_bytes(phys[PAGE_SIZE + 8..].try_into().unwrap());
    if fnv1a64(&phys[..PAGE_SIZE], version) != stored {
        return None;
    }
    Some((version, &phys[..PAGE_SIZE]))
}

fn read_slot(file: &mut File, pid: PageId, slot: u8) -> Option<[u8; PHYS_PAGE]> {
    let mut buf = [0u8; PHYS_PAGE];
    file.seek(SeekFrom::Start(slot_offset(pid, slot))).ok()?;
    file.read_exact(&mut buf).ok()?;
    Some(buf)
}

impl DiskManager {
    /// Open or create a file-backed store. A fresh store gets page 0
    /// (zero-filled) allocated as the directory superblock.
    pub fn open_file(path: &Path) -> Result<DiskManager> {
        Self::open_file_with(path, None)
    }

    /// Open a file-backed store with an optional fault-injection plan
    /// (test builds). Runs the scavenge pass over every page pair and
    /// records its findings in [`recovery_report`](Self::recovery_report).
    pub fn open_file_with(path: &Path, plan: Option<FaultPlan>) -> Result<DiskManager> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false) // reopening an existing store must keep it
            .open(path)?;
        let stats = StorageStats::default();
        let (meta, recovery, num_pages) = Self::scavenge(&mut file, &stats)?;
        let dm = DiskManager {
            backend: Backend::File(Mutex::new(FileState { file, meta })),
            num_pages: Mutex::new(num_pages),
            stats,
            plan,
            recovery,
        };
        dm.ensure_superblock()?;
        Ok(dm)
    }

    /// Recovery/scavenge: rebuild the live-slot map, quarantine pages with
    /// no valid copy. A page exists if any byte of its slot pair does —
    /// a crash mid-extend still yields a (quarantined, empty) page.
    fn scavenge(
        file: &mut File,
        stats: &StorageStats,
    ) -> Result<(Vec<PageMeta>, RecoveryReport, u32)> {
        let len = file.metadata()?.len();
        let pair = 2 * PHYS_PAGE as u64;
        let num_pages = len.div_ceil(pair) as u32;
        let mut meta = Vec::with_capacity(num_pages as usize);
        let mut report = RecoveryReport::default();
        for p in 0..num_pages {
            let pid = PageId(p);
            let slots = [read_slot(file, pid, 0), read_slot(file, pid, 1)];
            let decoded = [
                slots[0].as_ref().and_then(|s| decode_slot(s)),
                slots[1].as_ref().and_then(|s| decode_slot(s)),
            ];
            let live = match (&decoded[0], &decoded[1]) {
                (Some((v0, _)), Some((v1, _))) => Some(if v0 >= v1 { 0u8 } else { 1u8 }),
                (Some(_), None) => Some(0),
                (None, Some(_)) => Some(1),
                (None, None) => None,
            };
            match live {
                Some(s) => {
                    let version = decoded[s as usize].as_ref().unwrap().0;
                    meta.push(PageMeta { version, slot: s });
                    // A dead partner slot containing nonzero bytes is a torn
                    // write the format absorbed (never-written slots are
                    // all zeros).
                    let other = (1 - s) as usize;
                    if decoded[other].is_none()
                        && slots[other]
                            .map(|b| b.iter().any(|&x| x != 0))
                            .unwrap_or(false)
                    {
                        report.salvaged_slots += 1;
                    }
                }
                None => {
                    // Neither slot survived: quarantine as an empty page.
                    // A zeroed slotted page reads as "no slots", so scans
                    // above this layer safely see nothing.
                    let phys = encode_slot(&[0u8; PAGE_SIZE], 1);
                    file.seek(SeekFrom::Start(slot_offset(pid, 0)))?;
                    file.write_all(&phys)?;
                    file.write_all(&[0u8; PHYS_PAGE])?;
                    meta.push(PageMeta {
                        version: 1,
                        slot: 0,
                    });
                    report.quarantined.push(pid);
                    stats.quarantined_pages.bump();
                }
            }
        }
        Ok((meta, report, num_pages))
    }

    /// Create an in-memory store.
    pub fn open_memory() -> DiskManager {
        let dm = DiskManager {
            backend: Backend::Memory(Mutex::new(Vec::new())),
            num_pages: Mutex::new(0),
            stats: StorageStats::default(),
            plan: None,
            recovery: RecoveryReport::default(),
        };
        dm.ensure_superblock().expect("memory superblock");
        dm
    }

    fn ensure_superblock(&self) -> Result<()> {
        let n = self.num_pages.lock();
        if *n == 0 {
            drop(n);
            let pid = self.allocate()?;
            debug_assert_eq!(pid, PageId(0));
        } else {
            drop(n);
        }
        Ok(())
    }

    /// I/O counters for this store.
    pub fn stats(&self) -> &StorageStats {
        &self.stats
    }

    /// The fault plan attached at open, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.plan.as_ref()
    }

    /// What the open-time scavenge pass found (empty report for the memory
    /// backend and clean files).
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> u32 {
        *self.num_pages.lock()
    }

    fn frozen_check(&self) -> Result<()> {
        if self.plan.as_ref().is_some_and(|p| p.frozen()) {
            return Err(TmanError::Io("simulated crash: disk frozen".into()));
        }
        Ok(())
    }

    /// Force previously written pages to stable storage: `fdatasync` on
    /// the file backend, a counted no-op in memory. Group commit calls
    /// this once per batch; [`StorageStats::syncs`] counts every call so
    /// experiments can report syncs-per-token.
    pub fn sync(&self) -> Result<()> {
        self.frozen_check()?;
        self.stats.syncs.bump();
        if let Backend::File(state) = &self.backend {
            state.lock().file.sync_data()?;
        }
        Ok(())
    }

    /// Allocate a fresh zero-filled page at the end of the store.
    pub fn allocate(&self) -> Result<PageId> {
        self.frozen_check()?;
        let mut n = self.num_pages.lock();
        let pid = PageId(*n);
        match &self.backend {
            Backend::Memory(pages) => {
                pages.lock().push(Box::new([0u8; PAGE_SIZE]));
            }
            Backend::File(state) => {
                let mut st = state.lock();
                // Write a valid zeroed slot 0 and a dense (invalid) slot 1
                // so later slot reads never cross EOF.
                let phys = encode_slot(&[0u8; PAGE_SIZE], 1);
                st.file.seek(SeekFrom::Start(slot_offset(pid, 0)))?;
                st.file.write_all(&phys)?;
                st.file.write_all(&[0u8; PHYS_PAGE])?;
                st.meta.push(PageMeta {
                    version: 1,
                    slot: 0,
                });
            }
        }
        *n += 1;
        Ok(pid)
    }

    /// Read page `pid` into `buf`. On the file backend the live slot's
    /// checksum and version are verified, with fallback to the partner
    /// slot; both invalid is a [`TmanError::Corrupt`].
    pub fn read_page(&self, pid: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
        self.check_bounds(pid)?;
        self.frozen_check()?;
        self.stats.page_reads.bump();
        match &self.backend {
            Backend::Memory(pages) => {
                buf.copy_from_slice(&pages.lock()[pid.0 as usize][..]);
            }
            Backend::File(state) => {
                let mut st = state.lock();
                let m = st.meta[pid.0 as usize];
                if let Some(phys) = read_slot(&mut st.file, pid, m.slot) {
                    if let Some((version, data)) = decode_slot(&phys) {
                        if version == m.version {
                            buf.copy_from_slice(data);
                            return Ok(());
                        }
                    }
                }
                // Live slot failed validation: salvage from the partner.
                self.stats.checksum_failures.bump();
                let other = 1 - m.slot;
                let salvage = read_slot(&mut st.file, pid, other)
                    .as_ref()
                    .and_then(|p| decode_slot(p).map(|(v, d)| (v, d.to_vec())));
                match salvage {
                    Some((version, data)) => {
                        st.meta[pid.0 as usize] = PageMeta {
                            version,
                            slot: other,
                        };
                        buf.copy_from_slice(&data);
                    }
                    None => {
                        return Err(TmanError::Corrupt(format!(
                            "page {} lost: both slots fail checksum",
                            pid.0
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Write `buf` to page `pid`. On the file backend the write goes to the
    /// inactive slot with a bumped version; the slot map only flips once the
    /// full slot is on disk, so a failed write never clobbers the previous
    /// version.
    pub fn write_page(&self, pid: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()> {
        self.check_bounds(pid)?;
        self.frozen_check()?;
        self.stats.page_writes.bump();
        match &self.backend {
            Backend::Memory(pages) => {
                pages.lock()[pid.0 as usize].copy_from_slice(buf);
            }
            Backend::File(state) => {
                let mut st = state.lock();
                let m = st.meta[pid.0 as usize];
                let target = 1 - m.slot;
                let version = m.version + 1;
                let phys = encode_slot(buf, version);
                let off = slot_offset(pid, target);
                // Fault decision is drawn under the file lock so the RNG
                // stream is deterministic for a given workload.
                let fault = self.plan.as_ref().and_then(|p| p.decide_write(PHYS_PAGE));
                match fault {
                    None => {
                        st.file.seek(SeekFrom::Start(off))?;
                        st.file.write_all(&phys)?;
                        st.meta[pid.0 as usize] = PageMeta {
                            version,
                            slot: target,
                        };
                    }
                    Some(f) => {
                        self.stats.faults_injected.bump();
                        match f.kind {
                            FaultKind::DroppedSync => {
                                // Lying success: nothing reaches disk, the
                                // slot map stays on the previous version.
                            }
                            FaultKind::TransientError => {
                                return Err(TmanError::Io("injected transient write error".into()));
                            }
                            FaultKind::TornWrite | FaultKind::ShortWrite => {
                                st.file.seek(SeekFrom::Start(off))?;
                                st.file.write_all(&phys[..f.tear_at])?;
                                return Err(TmanError::Io(format!(
                                    "injected torn write at byte {} of page {}",
                                    f.tear_at, pid.0
                                )));
                            }
                            FaultKind::Crash => {
                                st.file.seek(SeekFrom::Start(off))?;
                                st.file.write_all(&phys[..f.tear_at])?;
                                return Err(TmanError::Io(format!(
                                    "simulated crash during write of page {}",
                                    pid.0
                                )));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn check_bounds(&self, pid: PageId) -> Result<()> {
        if pid.0 >= *self.num_pages.lock() {
            return Err(TmanError::Storage(format!(
                "page {} out of bounds ({} pages)",
                pid.0,
                self.num_pages()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tman_disk_{tag}_{}.db", std::process::id()))
    }

    #[test]
    fn memory_allocate_read_write() {
        let dm = DiskManager::open_memory();
        assert_eq!(dm.num_pages(), 1); // superblock
        let p = dm.allocate().unwrap();
        assert_eq!(p, PageId(1));
        let mut buf = [0u8; PAGE_SIZE];
        buf[0] = 0xAB;
        buf[PAGE_SIZE - 1] = 0xCD;
        dm.write_page(p, &buf).unwrap();
        let mut back = [0u8; PAGE_SIZE];
        dm.read_page(p, &mut back).unwrap();
        assert_eq!(buf[..], back[..]);
    }

    #[test]
    fn out_of_bounds_is_error() {
        let dm = DiskManager::open_memory();
        let mut buf = [0u8; PAGE_SIZE];
        assert!(dm.read_page(PageId(99), &mut buf).is_err());
        assert!(dm.write_page(PageId(99), &buf).is_err());
    }

    #[test]
    fn io_counters_count() {
        let dm = DiskManager::open_memory();
        let p = dm.allocate().unwrap();
        let buf = [0u8; PAGE_SIZE];
        dm.write_page(p, &buf).unwrap();
        let mut rb = [0u8; PAGE_SIZE];
        dm.read_page(p, &mut rb).unwrap();
        dm.read_page(p, &mut rb).unwrap();
        assert_eq!(dm.stats().page_writes.get(), 1);
        assert_eq!(dm.stats().page_reads.get(), 2);
    }

    #[test]
    fn file_backend_persists() {
        let path = tmp("persist");
        let _ = std::fs::remove_file(&path);
        let p;
        {
            let dm = DiskManager::open_file(&path).unwrap();
            p = dm.allocate().unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            buf[7] = 77;
            dm.write_page(p, &buf).unwrap();
        }
        {
            let dm = DiskManager::open_file(&path).unwrap();
            assert_eq!(dm.num_pages(), 2);
            assert!(!dm.recovery_report().recovered(), "clean reopen");
            let mut buf = [0u8; PAGE_SIZE];
            dm.read_page(p, &mut buf).unwrap();
            assert_eq!(buf[7], 77);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn repeated_writes_ping_pong_and_survive_reopen() {
        let path = tmp("pingpong");
        let _ = std::fs::remove_file(&path);
        let p;
        {
            let dm = DiskManager::open_file(&path).unwrap();
            p = dm.allocate().unwrap();
            for i in 0..9u8 {
                let mut buf = [0u8; PAGE_SIZE];
                buf[0] = i;
                dm.write_page(p, &buf).unwrap();
            }
        }
        {
            let dm = DiskManager::open_file(&path).unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            dm.read_page(p, &mut buf).unwrap();
            assert_eq!(buf[0], 8, "highest version wins at scavenge");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_write_preserves_previous_version() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let plan = FaultPlan::new(FaultConfig {
            seed: 11,
            torn_per_mille: 1000,
            ..Default::default()
        });
        let dm = DiskManager::open_file_with(&path, Some(plan.clone())).unwrap();
        let p = dm.allocate().unwrap();
        let mut old = [0u8; PAGE_SIZE];
        old[0] = 1;
        dm.write_page(p, &old).unwrap(); // disarmed: clean
        plan.arm();
        let mut new = [0u8; PAGE_SIZE];
        new[0] = 2;
        let err = dm.write_page(p, &new).unwrap_err();
        assert_eq!(err.kind(), "io");
        let mut back = [0u8; PAGE_SIZE];
        dm.read_page(p, &mut back).unwrap();
        assert_eq!(back[0], 1, "previous version intact after torn write");
        assert_eq!(dm.stats().faults_injected.get(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dropped_sync_silently_loses_the_write() {
        let path = tmp("dropped");
        let _ = std::fs::remove_file(&path);
        let plan = FaultPlan::new(FaultConfig {
            seed: 5,
            dropped_sync_per_mille: 1000,
            ..Default::default()
        });
        let dm = DiskManager::open_file_with(&path, Some(plan.clone())).unwrap();
        let p = dm.allocate().unwrap();
        let mut old = [0u8; PAGE_SIZE];
        old[0] = 7;
        dm.write_page(p, &old).unwrap();
        plan.arm();
        let mut new = [0u8; PAGE_SIZE];
        new[0] = 9;
        dm.write_page(p, &new).unwrap(); // lies
        let mut back = [0u8; PAGE_SIZE];
        dm.read_page(p, &mut back).unwrap();
        assert_eq!(back[0], 7, "dropped sync kept the old version");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn transient_error_succeeds_on_retry() {
        let path = tmp("transient");
        let _ = std::fs::remove_file(&path);
        let plan = FaultPlan::new(FaultConfig {
            seed: 2,
            transient_per_mille: 500,
            ..Default::default()
        });
        let dm = DiskManager::open_file_with(&path, Some(plan.clone())).unwrap();
        let p = dm.allocate().unwrap();
        plan.arm();
        let mut buf = [0u8; PAGE_SIZE];
        buf[3] = 3;
        // At 50% rate a bounded retry loop always gets through eventually.
        let mut attempts = 0;
        loop {
            attempts += 1;
            match dm.write_page(p, &buf) {
                Ok(()) => break,
                Err(e) => assert_eq!(e.kind(), "io"),
            }
            assert!(attempts < 100, "retry never succeeded");
        }
        let mut back = [0u8; PAGE_SIZE];
        dm.read_page(p, &mut back).unwrap();
        assert_eq!(back[3], 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crash_freezes_io_until_reopen() {
        let path = tmp("crash");
        let _ = std::fs::remove_file(&path);
        let plan = FaultPlan::new(FaultConfig {
            seed: 13,
            crash_after_writes: Some(2),
            ..Default::default()
        });
        let p;
        {
            let dm = DiskManager::open_file_with(&path, Some(plan.clone())).unwrap();
            p = dm.allocate().unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            buf[0] = 1;
            dm.write_page(p, &buf).unwrap();
            plan.arm();
            buf[0] = 2;
            dm.write_page(p, &buf).unwrap(); // armed write 1: clean
            buf[0] = 3;
            assert!(dm.write_page(p, &buf).is_err(), "write 2 crashes");
            assert!(plan.crashed());
            // Frozen disk: everything errors now.
            let mut rb = [0u8; PAGE_SIZE];
            assert!(dm.read_page(p, &mut rb).is_err());
            assert!(dm.allocate().is_err());
        }
        plan.reset_crash();
        plan.disarm();
        {
            let dm = DiskManager::open_file_with(&path, Some(plan.clone())).unwrap();
            let mut rb = [0u8; PAGE_SIZE];
            dm.read_page(p, &mut rb).unwrap();
            assert_eq!(rb[0], 2, "last durable version recovered");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn scavenge_quarantines_doubly_torn_page() {
        let path = tmp("quarantine");
        let _ = std::fs::remove_file(&path);
        let p;
        {
            let dm = DiskManager::open_file(&path).unwrap();
            p = dm.allocate().unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            buf[0] = 0xEE;
            dm.write_page(p, &buf).unwrap();
            dm.write_page(p, &buf).unwrap(); // both slots now hold versions
        }
        // Corrupt both physical slots of page p on disk.
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f = OpenOptions::new().write(true).open(&path).unwrap();
            for slot in 0..2u8 {
                f.seek(SeekFrom::Start(slot_offset(p, slot) + 100)).unwrap();
                f.write_all(&[0xFF; 8]).unwrap();
            }
        }
        {
            let dm = DiskManager::open_file(&path).unwrap();
            let report = dm.recovery_report();
            assert!(report.recovered());
            assert_eq!(report.quarantined, vec![p]);
            assert_eq!(dm.stats().quarantined_pages.get(), 1);
            // Quarantined page reads as zeros, not garbage.
            let mut rb = [0u8; PAGE_SIZE];
            dm.read_page(p, &mut rb).unwrap();
            assert!(rb.iter().all(|&b| b == 0));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn scavenge_salvages_single_torn_slot() {
        let path = tmp("salvage");
        let _ = std::fs::remove_file(&path);
        let p;
        {
            let dm = DiskManager::open_file(&path).unwrap();
            p = dm.allocate().unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            buf[0] = 0x42;
            dm.write_page(p, &buf).unwrap();
            buf[0] = 0x43;
            dm.write_page(p, &buf).unwrap(); // live is now the newer slot
        }
        // Tear the *live* (higher-version) slot; the partner must win.
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f = OpenOptions::new().write(true).open(&path).unwrap();
            // Second write landed in slot 1 (first write used slot 1? no:
            // allocate seeds slot 0 v1, write1 -> slot 1 v2, write2 -> slot 0 v3).
            f.seek(SeekFrom::Start(slot_offset(p, 0) + 50)).unwrap();
            f.write_all(&[0xAA; 16]).unwrap();
        }
        {
            let dm = DiskManager::open_file(&path).unwrap();
            let report = dm.recovery_report();
            assert!(report.quarantined.is_empty());
            assert!(report.salvaged_slots >= 1);
            assert!(report.recovered());
            let mut rb = [0u8; PAGE_SIZE];
            dm.read_page(p, &mut rb).unwrap();
            assert_eq!(rb[0], 0x42, "previous version salvaged");
        }
        let _ = std::fs::remove_file(&path);
    }
}
