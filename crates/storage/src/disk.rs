//! Page-granular disk manager.
//!
//! Two backends behind one type: a real file (durability tests, persistence
//! experiments) and an in-memory vector (fast unit tests, benches that only
//! care about page-count accounting). Both count physical reads/writes into
//! [`StorageStats`] so experiments can report I/O.
//!
//! # On-disk format (file backend)
//!
//! The current **single-slot** format (v2) starts with a `PHYS_PAGE`-sized
//! header block whose first bytes are the magic `TMANPG2\0`; each logical
//! 4 KiB page then owns one physical slot:
//!
//! ```text
//! slot = [ data: 4096 ][ version: u64 LE ][ fnv1a64(data ‖ version): u64 LE ]
//! offset(pid) = (pid + 1) * PHYS_PAGE
//! ```
//!
//! Writes go in place. A torn write destroys the page's only copy — safe
//! because every [`crate::Storage`] pairs this format with the write-ahead
//! log ([`crate::wal`]): a page is only written back once its covering log
//! records are durable, so recovery replays the log over any torn page.
//! The freed partner slot is the WAL's budget — the old **dual-slot**
//! ping-pong format (v1, no header; two slots per page at
//! `offset(pid, s) = (pid*2 + s) * PHYS_PAGE`) wrote every page twice to
//! survive tears without a log. v1 files are migrated to v2 at open time
//! (copy to a temp file, fsync, atomic rename); the legacy read/write path
//! is kept behind [`DiskManager::open_file_dual_slot`] as the migration
//! source and for its regression tests.
//!
//! [`DiskManager::open_file_with`] runs a **scavenge pass**: it validates
//! every page's checksum and *quarantines* invalid pages (rewriting them as
//! zeroed pages — a zeroed slotted page scans as empty — and recording them
//! in the [`RecoveryReport`] so higher layers can rebuild derived state).
//! Under the WAL, a torn checkpoint write is replayed over *before* it can
//! be mistaken for damage, so quarantine only fires for pages the log no
//! longer covers.
//!
//! An optional [`FaultPlan`] injects deterministic write failures; see
//! [`crate::fault`]. The in-memory backend has neither checksums nor faults.

use crate::fault::{FaultKind, FaultPlan};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use tman_common::stats::StorageStats;
use tman_common::{Result, TmanError};

/// Fixed page size (bytes). 4 KiB matches the paper's era and keeps the
/// trigger-cache arithmetic in §5.1 ("a trigger description takes 4K bytes")
/// directly comparable.
pub const PAGE_SIZE: usize = 4096;

/// Version + checksum trailer appended to each physical slot.
const TRAILER: usize = 16;

/// Physical slot size in the backing file.
pub const PHYS_PAGE: usize = PAGE_SIZE + TRAILER;

/// Magic prefix of the v2 (single-slot) header block.
const MAGIC_V2: [u8; 8] = *b"TMANPG2\0";

/// Physical page number within a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Sentinel "no page" value (page 0 is the directory superblock, so it
    /// can double as the null link in page chains).
    pub const NULL: PageId = PageId(0);

    /// True if this is the null sentinel.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

/// What the open-time scavenge pass found and repaired.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Pages with no valid copy, rewritten as zeroed (empty) pages.
    pub quarantined: Vec<PageId>,
    /// Slots holding torn garbage (nonzero bytes, bad checksum) whose
    /// partner slot was still valid — evidence of an interrupted write that
    /// the dual-slot format absorbed. Only produced by v1 stores (and the
    /// migration pass over them); the single-slot format has no partner.
    pub salvaged_slots: u64,
    /// The store was a dual-slot (v1) file rewritten into the single-slot
    /// format at open. Not crash damage by itself.
    pub migrated_dual_slot: bool,
}

impl RecoveryReport {
    /// True when the store did not shut down cleanly: derived state (heap
    /// chains, index trees) should be revalidated.
    pub fn recovered(&self) -> bool {
        !self.quarantined.is_empty() || self.salvaged_slots > 0
    }
}

/// On-disk layout of the file backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    /// v1: two ping-pong slots per page, no header.
    DualSlot,
    /// v2: header block + one slot per page (WAL-protected stores).
    SingleSlot,
}

/// Which slot currently holds the live version of a page (`slot` is always
/// 0 in the single-slot format).
#[derive(Debug, Clone, Copy)]
struct PageMeta {
    version: u64,
    slot: u8,
}

struct FileState {
    file: File,
    meta: Vec<PageMeta>,
    format: Format,
}

enum Backend {
    File(Mutex<FileState>),
    Memory(Mutex<Vec<Box<[u8; PAGE_SIZE]>>>),
}

/// Allocates, reads and writes fixed-size pages.
pub struct DiskManager {
    backend: Backend,
    num_pages: Mutex<u32>,
    stats: StorageStats,
    plan: Option<FaultPlan>,
    recovery: RecoveryReport,
}

pub(crate) fn fnv1a64(data: &[u8], version: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data.iter().chain(version.to_le_bytes().iter()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn slot_offset_v1(pid: PageId, slot: u8) -> u64 {
    (pid.0 as u64 * 2 + slot as u64) * PHYS_PAGE as u64
}

fn page_offset_v2(pid: PageId) -> u64 {
    (pid.0 as u64 + 1) * PHYS_PAGE as u64
}

fn slot_offset(fmt: Format, pid: PageId, slot: u8) -> u64 {
    match fmt {
        Format::DualSlot => slot_offset_v1(pid, slot),
        Format::SingleSlot => page_offset_v2(pid),
    }
}

/// Build the physical image of a slot: data + version + checksum.
fn encode_slot(data: &[u8; PAGE_SIZE], version: u64) -> [u8; PHYS_PAGE] {
    let mut phys = [0u8; PHYS_PAGE];
    phys[..PAGE_SIZE].copy_from_slice(data);
    phys[PAGE_SIZE..PAGE_SIZE + 8].copy_from_slice(&version.to_le_bytes());
    phys[PAGE_SIZE + 8..].copy_from_slice(&fnv1a64(data, version).to_le_bytes());
    phys
}

/// Parse a physical slot; `Some((version, data))` only if the checksum
/// verifies and the version is nonzero (all-zero regions never validate).
fn decode_slot(phys: &[u8; PHYS_PAGE]) -> Option<(u64, &[u8])> {
    let version = u64::from_le_bytes(phys[PAGE_SIZE..PAGE_SIZE + 8].try_into().unwrap());
    if version == 0 {
        return None;
    }
    let stored = u64::from_le_bytes(phys[PAGE_SIZE + 8..].try_into().unwrap());
    if fnv1a64(&phys[..PAGE_SIZE], version) != stored {
        return None;
    }
    Some((version, &phys[..PAGE_SIZE]))
}

fn read_slot_at(file: &mut File, off: u64) -> Option<[u8; PHYS_PAGE]> {
    let mut buf = [0u8; PHYS_PAGE];
    file.seek(SeekFrom::Start(off)).ok()?;
    file.read_exact(&mut buf).ok()?;
    Some(buf)
}

/// The v2 header block: magic + zero padding out to one physical page, so
/// page offsets stay slot-aligned.
fn header_block() -> [u8; PHYS_PAGE] {
    let mut h = [0u8; PHYS_PAGE];
    h[..8].copy_from_slice(&MAGIC_V2);
    h
}

impl DiskManager {
    /// Open or create a file-backed store in the current (single-slot)
    /// format, migrating dual-slot files in place. A fresh store gets page
    /// 0 (zero-filled) allocated as the directory superblock.
    pub fn open_file(path: &Path) -> Result<DiskManager> {
        Self::open_file_with(path, None)
    }

    /// Open a file-backed store with an optional fault-injection plan
    /// (test builds). Detects the on-disk format: v2 files are scavenged
    /// in place, v1 (dual-slot) files are first rewritten into v2 via a
    /// temp file and atomic rename. Scavenge findings land in
    /// [`recovery_report`](Self::recovery_report).
    pub fn open_file_with(path: &Path, plan: Option<FaultPlan>) -> Result<DiskManager> {
        let mut file = Self::open_raw(path)?;
        let stats = StorageStats::default();
        let len = file.metadata()?.len();
        let mut migrated = false;
        let mut carried = RecoveryReport::default();
        if len == 0 {
            // Fresh store: stamp the v2 header before anything else.
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&header_block())?;
            file.sync_data()?;
        } else if !Self::is_v2(&mut file) {
            carried = Self::migrate_dual_slot(path, &mut file, &stats)?;
            migrated = true;
            file = Self::open_raw(path)?;
        }
        let (meta, mut recovery, num_pages) = Self::scavenge_v2(&mut file, &stats)?;
        if migrated {
            recovery.quarantined = carried.quarantined;
            recovery.salvaged_slots = carried.salvaged_slots;
            recovery.migrated_dual_slot = true;
        }
        let dm = DiskManager {
            backend: Backend::File(Mutex::new(FileState {
                file,
                meta,
                format: Format::SingleSlot,
            })),
            num_pages: Mutex::new(num_pages),
            stats,
            plan,
            recovery,
        };
        dm.ensure_superblock()?;
        Ok(dm)
    }

    /// Open a file-backed store in the legacy dual-slot format. Kept as
    /// the migration source and for the ping-pong regression tests; new
    /// stores should use [`open_file_with`](Self::open_file_with) (WAL +
    /// single slot).
    pub fn open_file_dual_slot(path: &Path, plan: Option<FaultPlan>) -> Result<DiskManager> {
        let mut file = Self::open_raw(path)?;
        let stats = StorageStats::default();
        let (meta, recovery, num_pages) = Self::scavenge_v1(&mut file, &stats)?;
        let dm = DiskManager {
            backend: Backend::File(Mutex::new(FileState {
                file,
                meta,
                format: Format::DualSlot,
            })),
            num_pages: Mutex::new(num_pages),
            stats,
            plan,
            recovery,
        };
        dm.ensure_superblock()?;
        Ok(dm)
    }

    fn open_raw(path: &Path) -> Result<File> {
        Ok(OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false) // reopening an existing store must keep it
            .open(path)?)
    }

    /// A nonempty file is v2 iff it leads with the magic. (A v1 file leads
    /// with page 0's raw data; the magic colliding with real page content
    /// is a 2^-64 accident.)
    fn is_v2(file: &mut File) -> bool {
        let mut magic = [0u8; 8];
        file.seek(SeekFrom::Start(0)).is_ok()
            && file.read_exact(&mut magic).is_ok()
            && magic == MAGIC_V2
    }

    /// Rewrite a v1 (dual-slot) file into v2 through a temp file + atomic
    /// rename, carrying each page's live version across. Crash-safe: until
    /// the rename lands the original v1 file is untouched (apart from v1
    /// scavenge quarantine rewrites, which are idempotent).
    fn migrate_dual_slot(
        path: &Path,
        file: &mut File,
        stats: &StorageStats,
    ) -> Result<RecoveryReport> {
        let (meta, report, num_pages) = Self::scavenge_v1(file, stats)?;
        let tmp = path.with_extension("migrate-tmp");
        let mut out = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        out.write_all(&header_block())?;
        let mut data = [0u8; PAGE_SIZE];
        for p in 0..num_pages {
            let pid = PageId(p);
            let m = meta[p as usize];
            let phys = read_slot_at(file, slot_offset_v1(pid, m.slot)).ok_or_else(|| {
                TmanError::Io(format!("migration: short read of page {} live slot", p))
            })?;
            match decode_slot(&phys) {
                Some((version, bytes)) => {
                    data.copy_from_slice(bytes);
                    out.write_all(&encode_slot(&data, version))?;
                }
                None => {
                    // Scavenge already quarantined this page; keep it as a
                    // valid zeroed page in the new file.
                    out.write_all(&encode_slot(&[0u8; PAGE_SIZE], 1))?;
                }
            }
        }
        out.sync_data()?;
        drop(out);
        std::fs::rename(&tmp, path)?;
        Ok(report)
    }

    /// v1 recovery/scavenge: rebuild the live-slot map, quarantine pages
    /// with no valid copy. A page exists if any byte of its slot pair does
    /// — a crash mid-extend still yields a (quarantined, empty) page.
    fn scavenge_v1(
        file: &mut File,
        stats: &StorageStats,
    ) -> Result<(Vec<PageMeta>, RecoveryReport, u32)> {
        let len = file.metadata()?.len();
        let pair = 2 * PHYS_PAGE as u64;
        let num_pages = len.div_ceil(pair) as u32;
        let mut meta = Vec::with_capacity(num_pages as usize);
        let mut report = RecoveryReport::default();
        for p in 0..num_pages {
            let pid = PageId(p);
            let slots = [
                read_slot_at(file, slot_offset_v1(pid, 0)),
                read_slot_at(file, slot_offset_v1(pid, 1)),
            ];
            let decoded = [
                slots[0].as_ref().and_then(|s| decode_slot(s)),
                slots[1].as_ref().and_then(|s| decode_slot(s)),
            ];
            let live = match (&decoded[0], &decoded[1]) {
                (Some((v0, _)), Some((v1, _))) => Some(if v0 >= v1 { 0u8 } else { 1u8 }),
                (Some(_), None) => Some(0),
                (None, Some(_)) => Some(1),
                (None, None) => None,
            };
            match live {
                Some(s) => {
                    let version = decoded[s as usize].as_ref().unwrap().0;
                    meta.push(PageMeta { version, slot: s });
                    // A dead partner slot containing nonzero bytes is a torn
                    // write the format absorbed (never-written slots are
                    // all zeros).
                    let other = (1 - s) as usize;
                    if decoded[other].is_none()
                        && slots[other]
                            .map(|b| b.iter().any(|&x| x != 0))
                            .unwrap_or(false)
                    {
                        report.salvaged_slots += 1;
                    }
                }
                None => {
                    // Neither slot survived: quarantine as an empty page.
                    // A zeroed slotted page reads as "no slots", so scans
                    // above this layer safely see nothing.
                    let phys = encode_slot(&[0u8; PAGE_SIZE], 1);
                    file.seek(SeekFrom::Start(slot_offset_v1(pid, 0)))?;
                    file.write_all(&phys)?;
                    file.write_all(&[0u8; PHYS_PAGE])?;
                    meta.push(PageMeta {
                        version: 1,
                        slot: 0,
                    });
                    report.quarantined.push(pid);
                    stats.quarantined_pages.bump();
                }
            }
        }
        Ok((meta, report, num_pages))
    }

    /// v2 recovery/scavenge: validate every page's single slot, quarantine
    /// invalid ones. Runs before WAL replay; a page the log still covers
    /// gets rewritten by replay right after, so a quarantine here is only
    /// *damage* when no committed redo record supersedes it.
    fn scavenge_v2(
        file: &mut File,
        stats: &StorageStats,
    ) -> Result<(Vec<PageMeta>, RecoveryReport, u32)> {
        let len = file.metadata()?.len();
        let body = len.saturating_sub(PHYS_PAGE as u64);
        let num_pages = body.div_ceil(PHYS_PAGE as u64) as u32;
        // Re-stamp the header: a partially created store (crash between
        // create and first allocate) must still lead with the magic.
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&header_block())?;
        let mut meta = Vec::with_capacity(num_pages as usize);
        let mut report = RecoveryReport::default();
        for p in 0..num_pages {
            let pid = PageId(p);
            let decoded =
                read_slot_at(file, page_offset_v2(pid)).and_then(|s| decode_slot(&s).map(|d| d.0));
            match decoded {
                Some(version) => meta.push(PageMeta { version, slot: 0 }),
                None => {
                    let phys = encode_slot(&[0u8; PAGE_SIZE], 1);
                    file.seek(SeekFrom::Start(page_offset_v2(pid)))?;
                    file.write_all(&phys)?;
                    meta.push(PageMeta {
                        version: 1,
                        slot: 0,
                    });
                    report.quarantined.push(pid);
                    stats.quarantined_pages.bump();
                }
            }
        }
        Ok((meta, report, num_pages))
    }

    /// Create an in-memory store.
    pub fn open_memory() -> DiskManager {
        let dm = DiskManager {
            backend: Backend::Memory(Mutex::new(Vec::new())),
            num_pages: Mutex::new(0),
            stats: StorageStats::default(),
            plan: None,
            recovery: RecoveryReport::default(),
        };
        dm.ensure_superblock().expect("memory superblock");
        dm
    }

    fn ensure_superblock(&self) -> Result<()> {
        let n = self.num_pages.lock();
        if *n == 0 {
            drop(n);
            let pid = self.allocate()?;
            debug_assert_eq!(pid, PageId(0));
        } else {
            drop(n);
        }
        Ok(())
    }

    /// I/O counters for this store.
    pub fn stats(&self) -> &StorageStats {
        &self.stats
    }

    /// The fault plan attached at open, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.plan.as_ref()
    }

    /// What the open-time scavenge pass found (empty report for the memory
    /// backend and clean files).
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> u32 {
        *self.num_pages.lock()
    }

    fn frozen_check(&self) -> Result<()> {
        if self.plan.as_ref().is_some_and(|p| p.frozen()) {
            return Err(TmanError::Io("simulated crash: disk frozen".into()));
        }
        Ok(())
    }

    /// Force previously written pages to stable storage: `fdatasync` on
    /// the file backend, a counted no-op in memory. Checkpoints call this
    /// once per write-back pass; [`StorageStats::syncs`] counts every call
    /// so experiments can report syncs-per-token. Draws a
    /// [`FaultPlan::decide_sync`] decision: a sync can be the crash point
    /// or fail transiently.
    pub fn sync(&self) -> Result<()> {
        self.frozen_check()?;
        match self.plan.as_ref().and_then(|p| p.decide_sync()) {
            None => {}
            Some(FaultKind::TransientError) => {
                self.stats.faults_injected.bump();
                return Err(TmanError::Io("injected transient sync error".into()));
            }
            Some(_) => {
                // Crash: the freeze flag is already set; report it like any
                // other frozen-disk operation.
                self.stats.faults_injected.bump();
                return Err(TmanError::Io("simulated crash: disk frozen".into()));
            }
        }
        self.stats.syncs.bump();
        if let Backend::File(state) = &self.backend {
            state.lock().file.sync_data()?;
        }
        Ok(())
    }

    /// Allocate a fresh zero-filled page at the end of the store.
    pub fn allocate(&self) -> Result<PageId> {
        self.frozen_check()?;
        let mut n = self.num_pages.lock();
        let pid = PageId(*n);
        match &self.backend {
            Backend::Memory(pages) => {
                pages.lock().push(Box::new([0u8; PAGE_SIZE]));
            }
            Backend::File(state) => {
                let mut st = state.lock();
                let fmt = st.format;
                let phys = encode_slot(&[0u8; PAGE_SIZE], 1);
                st.file.seek(SeekFrom::Start(slot_offset(fmt, pid, 0)))?;
                st.file.write_all(&phys)?;
                if fmt == Format::DualSlot {
                    // Dense (invalid) slot 1 so later slot reads never
                    // cross EOF.
                    st.file.write_all(&[0u8; PHYS_PAGE])?;
                }
                st.meta.push(PageMeta {
                    version: 1,
                    slot: 0,
                });
            }
        }
        *n += 1;
        Ok(pid)
    }

    /// Read page `pid` into `buf`. On the file backend the slot's checksum
    /// and version are verified; the dual-slot format falls back to the
    /// partner slot, the single-slot format (whose safety net is the WAL)
    /// reports [`TmanError::Corrupt`] directly.
    pub fn read_page(&self, pid: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
        self.check_bounds(pid)?;
        self.frozen_check()?;
        self.stats.page_reads.bump();
        match &self.backend {
            Backend::Memory(pages) => {
                buf.copy_from_slice(&pages.lock()[pid.0 as usize][..]);
            }
            Backend::File(state) => {
                let mut st = state.lock();
                let m = st.meta[pid.0 as usize];
                let off = slot_offset(st.format, pid, m.slot);
                if let Some(phys) = read_slot_at(&mut st.file, off) {
                    if let Some((version, data)) = decode_slot(&phys) {
                        if version == m.version {
                            buf.copy_from_slice(data);
                            return Ok(());
                        }
                    }
                }
                self.stats.checksum_failures.bump();
                if st.format == Format::SingleSlot {
                    return Err(TmanError::Corrupt(format!(
                        "page {} lost: slot fails checksum",
                        pid.0
                    )));
                }
                // Dual slot: salvage from the partner.
                let other = 1 - m.slot;
                let fmt = st.format;
                let salvage = read_slot_at(&mut st.file, slot_offset(fmt, pid, other))
                    .as_ref()
                    .and_then(|p| decode_slot(p).map(|(v, d)| (v, d.to_vec())));
                match salvage {
                    Some((version, data)) => {
                        st.meta[pid.0 as usize] = PageMeta {
                            version,
                            slot: other,
                        };
                        buf.copy_from_slice(&data);
                    }
                    None => {
                        return Err(TmanError::Corrupt(format!(
                            "page {} lost: both slots fail checksum",
                            pid.0
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Write `buf` to page `pid`. The dual-slot format writes the inactive
    /// slot and flips the map only once the full slot is on disk; the
    /// single-slot format writes in place (the WAL holds the covering redo
    /// record, so a torn write is recoverable by replay).
    pub fn write_page(&self, pid: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()> {
        self.check_bounds(pid)?;
        self.frozen_check()?;
        self.stats.page_writes.bump();
        match &self.backend {
            Backend::Memory(pages) => {
                pages.lock()[pid.0 as usize].copy_from_slice(buf);
            }
            Backend::File(state) => {
                let mut st = state.lock();
                let m = st.meta[pid.0 as usize];
                let target = match st.format {
                    Format::DualSlot => 1 - m.slot,
                    Format::SingleSlot => 0,
                };
                let version = m.version + 1;
                let phys = encode_slot(buf, version);
                let off = slot_offset(st.format, pid, target);
                // Fault decision is drawn under the file lock so the RNG
                // stream is deterministic for a given workload.
                let fault = self.plan.as_ref().and_then(|p| p.decide_write(PHYS_PAGE));
                match fault {
                    None => {
                        st.file.seek(SeekFrom::Start(off))?;
                        st.file.write_all(&phys)?;
                        st.meta[pid.0 as usize] = PageMeta {
                            version,
                            slot: target,
                        };
                    }
                    Some(f) => {
                        self.stats.faults_injected.bump();
                        match f.kind {
                            FaultKind::DroppedSync => {
                                // Lying success: nothing reaches disk, the
                                // slot map stays on the previous version.
                            }
                            FaultKind::TransientError => {
                                return Err(TmanError::Io("injected transient write error".into()));
                            }
                            FaultKind::TornWrite | FaultKind::ShortWrite => {
                                st.file.seek(SeekFrom::Start(off))?;
                                st.file.write_all(&phys[..f.tear_at])?;
                                return Err(TmanError::Io(format!(
                                    "injected torn write at byte {} of page {}",
                                    f.tear_at, pid.0
                                )));
                            }
                            FaultKind::Crash => {
                                st.file.seek(SeekFrom::Start(off))?;
                                st.file.write_all(&phys[..f.tear_at])?;
                                return Err(TmanError::Io(format!(
                                    "simulated crash during write of page {}",
                                    pid.0
                                )));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn check_bounds(&self, pid: PageId) -> Result<()> {
        if pid.0 >= *self.num_pages.lock() {
            return Err(TmanError::Storage(format!(
                "page {} out of bounds ({} pages)",
                pid.0,
                self.num_pages()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tman_disk_{tag}_{}.db", std::process::id()))
    }

    #[test]
    fn memory_allocate_read_write() {
        let dm = DiskManager::open_memory();
        assert_eq!(dm.num_pages(), 1); // superblock
        let p = dm.allocate().unwrap();
        assert_eq!(p, PageId(1));
        let mut buf = [0u8; PAGE_SIZE];
        buf[0] = 0xAB;
        buf[PAGE_SIZE - 1] = 0xCD;
        dm.write_page(p, &buf).unwrap();
        let mut back = [0u8; PAGE_SIZE];
        dm.read_page(p, &mut back).unwrap();
        assert_eq!(buf[..], back[..]);
    }

    #[test]
    fn out_of_bounds_is_error() {
        let dm = DiskManager::open_memory();
        let mut buf = [0u8; PAGE_SIZE];
        assert!(dm.read_page(PageId(99), &mut buf).is_err());
        assert!(dm.write_page(PageId(99), &buf).is_err());
    }

    #[test]
    fn io_counters_count() {
        let dm = DiskManager::open_memory();
        let p = dm.allocate().unwrap();
        let buf = [0u8; PAGE_SIZE];
        dm.write_page(p, &buf).unwrap();
        let mut rb = [0u8; PAGE_SIZE];
        dm.read_page(p, &mut rb).unwrap();
        dm.read_page(p, &mut rb).unwrap();
        assert_eq!(dm.stats().page_writes.get(), 1);
        assert_eq!(dm.stats().page_reads.get(), 2);
    }

    #[test]
    fn file_backend_persists() {
        let path = tmp("persist");
        let _ = std::fs::remove_file(&path);
        let p;
        {
            let dm = DiskManager::open_file(&path).unwrap();
            p = dm.allocate().unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            buf[7] = 77;
            dm.write_page(p, &buf).unwrap();
        }
        {
            let dm = DiskManager::open_file(&path).unwrap();
            assert_eq!(dm.num_pages(), 2);
            assert!(!dm.recovery_report().recovered(), "clean reopen");
            assert!(!dm.recovery_report().migrated_dual_slot);
            let mut buf = [0u8; PAGE_SIZE];
            dm.read_page(p, &mut buf).unwrap();
            assert_eq!(buf[7], 77);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn v2_file_leads_with_magic() {
        let path = tmp("magic");
        let _ = std::fs::remove_file(&path);
        {
            let dm = DiskManager::open_file(&path).unwrap();
            dm.allocate().unwrap();
        }
        let mut f = std::fs::File::open(&path).unwrap();
        let mut magic = [0u8; 8];
        f.read_exact(&mut magic).unwrap();
        assert_eq!(&magic, b"TMANPG2\0");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn repeated_writes_survive_reopen() {
        let path = tmp("rewrite");
        let _ = std::fs::remove_file(&path);
        let p;
        {
            let dm = DiskManager::open_file(&path).unwrap();
            p = dm.allocate().unwrap();
            for i in 0..9u8 {
                let mut buf = [0u8; PAGE_SIZE];
                buf[0] = i;
                dm.write_page(p, &buf).unwrap();
            }
        }
        {
            let dm = DiskManager::open_file(&path).unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            dm.read_page(p, &mut buf).unwrap();
            assert_eq!(buf[0], 8, "in-place write keeps the newest version");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dual_slot_torn_write_preserves_previous_version() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let plan = FaultPlan::new(FaultConfig {
            seed: 11,
            torn_per_mille: 1000,
            ..Default::default()
        });
        let dm = DiskManager::open_file_dual_slot(&path, Some(plan.clone())).unwrap();
        let p = dm.allocate().unwrap();
        let mut old = [0u8; PAGE_SIZE];
        old[0] = 1;
        dm.write_page(p, &old).unwrap(); // disarmed: clean
        plan.arm();
        let mut new = [0u8; PAGE_SIZE];
        new[0] = 2;
        let err = dm.write_page(p, &new).unwrap_err();
        assert_eq!(err.kind(), "io");
        let mut back = [0u8; PAGE_SIZE];
        dm.read_page(p, &mut back).unwrap();
        assert_eq!(back[0], 1, "previous version intact after torn write");
        assert_eq!(dm.stats().faults_injected.get(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn single_slot_torn_write_is_detected_at_reopen() {
        // Without a partner slot a torn write loses the page — the WAL is
        // the safety net at the Storage level. What the format itself must
        // guarantee: the damage is *detected* (checksum), never served.
        let path = tmp("torn2");
        let _ = std::fs::remove_file(&path);
        let plan = FaultPlan::new(FaultConfig {
            seed: 11,
            torn_per_mille: 1000,
            ..Default::default()
        });
        let p;
        {
            let dm = DiskManager::open_file_with(&path, Some(plan.clone())).unwrap();
            p = dm.allocate().unwrap();
            let mut old = [0u8; PAGE_SIZE];
            old[0] = 1;
            dm.write_page(p, &old).unwrap(); // disarmed: clean
            plan.arm();
            let mut new = [0u8; PAGE_SIZE];
            new[0] = 2;
            assert!(dm.write_page(p, &new).is_err());
        }
        plan.disarm();
        {
            let dm = DiskManager::open_file_with(&path, Some(plan)).unwrap();
            assert_eq!(dm.recovery_report().quarantined, vec![p]);
            let mut back = [0u8; PAGE_SIZE];
            dm.read_page(p, &mut back).unwrap();
            assert!(back.iter().all(|&b| b == 0), "quarantined page reads zero");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dropped_sync_silently_loses_the_write() {
        let path = tmp("dropped");
        let _ = std::fs::remove_file(&path);
        let plan = FaultPlan::new(FaultConfig {
            seed: 5,
            dropped_sync_per_mille: 1000,
            ..Default::default()
        });
        let dm = DiskManager::open_file_with(&path, Some(plan.clone())).unwrap();
        let p = dm.allocate().unwrap();
        let mut old = [0u8; PAGE_SIZE];
        old[0] = 7;
        dm.write_page(p, &old).unwrap();
        plan.arm();
        let mut new = [0u8; PAGE_SIZE];
        new[0] = 9;
        dm.write_page(p, &new).unwrap(); // lies
        plan.disarm();
        let mut back = [0u8; PAGE_SIZE];
        dm.read_page(p, &mut back).unwrap();
        assert_eq!(back[0], 7, "dropped sync kept the old version");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn transient_error_succeeds_on_retry() {
        let path = tmp("transient");
        let _ = std::fs::remove_file(&path);
        let plan = FaultPlan::new(FaultConfig {
            seed: 2,
            transient_per_mille: 500,
            ..Default::default()
        });
        let dm = DiskManager::open_file_with(&path, Some(plan.clone())).unwrap();
        let p = dm.allocate().unwrap();
        plan.arm();
        let mut buf = [0u8; PAGE_SIZE];
        buf[3] = 3;
        // At 50% rate a bounded retry loop always gets through eventually.
        let mut attempts = 0;
        loop {
            attempts += 1;
            match dm.write_page(p, &buf) {
                Ok(()) => break,
                Err(e) => assert_eq!(e.kind(), "io"),
            }
            assert!(attempts < 100, "retry never succeeded");
        }
        plan.disarm();
        let mut back = [0u8; PAGE_SIZE];
        dm.read_page(p, &mut back).unwrap();
        assert_eq!(back[3], 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dual_slot_crash_freezes_io_until_reopen() {
        let path = tmp("crash");
        let _ = std::fs::remove_file(&path);
        let plan = FaultPlan::new(FaultConfig {
            seed: 13,
            crash_after_writes: Some(2),
            ..Default::default()
        });
        let p;
        {
            let dm = DiskManager::open_file_dual_slot(&path, Some(plan.clone())).unwrap();
            p = dm.allocate().unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            buf[0] = 1;
            dm.write_page(p, &buf).unwrap();
            plan.arm();
            buf[0] = 2;
            dm.write_page(p, &buf).unwrap(); // armed write 1: clean
            buf[0] = 3;
            assert!(dm.write_page(p, &buf).is_err(), "write 2 crashes");
            assert!(plan.crashed());
            // Frozen disk: everything errors now.
            let mut rb = [0u8; PAGE_SIZE];
            assert!(dm.read_page(p, &mut rb).is_err());
            assert!(dm.allocate().is_err());
        }
        plan.reset_crash();
        plan.disarm();
        {
            let dm = DiskManager::open_file_dual_slot(&path, Some(plan.clone())).unwrap();
            let mut rb = [0u8; PAGE_SIZE];
            dm.read_page(p, &mut rb).unwrap();
            assert_eq!(rb[0], 2, "last durable version recovered");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn scavenge_quarantines_torn_v2_page() {
        let path = tmp("quarantine");
        let _ = std::fs::remove_file(&path);
        let p;
        {
            let dm = DiskManager::open_file(&path).unwrap();
            p = dm.allocate().unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            buf[0] = 0xEE;
            dm.write_page(p, &buf).unwrap();
        }
        // Corrupt the page's single slot on disk.
        {
            let mut f = OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(page_offset_v2(p) + 100)).unwrap();
            f.write_all(&[0xFF; 8]).unwrap();
        }
        {
            let dm = DiskManager::open_file(&path).unwrap();
            let report = dm.recovery_report();
            assert!(report.recovered());
            assert_eq!(report.quarantined, vec![p]);
            assert_eq!(dm.stats().quarantined_pages.get(), 1);
            // Quarantined page reads as zeros, not garbage.
            let mut rb = [0u8; PAGE_SIZE];
            dm.read_page(p, &mut rb).unwrap();
            assert!(rb.iter().all(|&b| b == 0));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dual_slot_scavenge_salvages_single_torn_slot() {
        let path = tmp("salvage");
        let _ = std::fs::remove_file(&path);
        let p;
        {
            let dm = DiskManager::open_file_dual_slot(&path, None).unwrap();
            p = dm.allocate().unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            buf[0] = 0x42;
            dm.write_page(p, &buf).unwrap();
            buf[0] = 0x43;
            dm.write_page(p, &buf).unwrap(); // live is now the newer slot
        }
        // Tear the *live* (higher-version) slot; the partner must win.
        // (allocate seeds slot 0 v1, write1 -> slot 1 v2, write2 -> slot 0 v3)
        {
            let mut f = OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(slot_offset_v1(p, 0) + 50)).unwrap();
            f.write_all(&[0xAA; 16]).unwrap();
        }
        {
            let dm = DiskManager::open_file_dual_slot(&path, None).unwrap();
            let report = dm.recovery_report();
            assert!(report.quarantined.is_empty());
            assert!(report.salvaged_slots >= 1);
            assert!(report.recovered());
            let mut rb = [0u8; PAGE_SIZE];
            dm.read_page(p, &mut rb).unwrap();
            assert_eq!(rb[0], 0x42, "previous version salvaged");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dual_slot_file_migrates_to_single_slot_on_open() {
        let path = tmp("migrate");
        let _ = std::fs::remove_file(&path);
        let mut pids = vec![];
        {
            let dm = DiskManager::open_file_dual_slot(&path, None).unwrap();
            for i in 0..6u8 {
                let p = dm.allocate().unwrap();
                let mut buf = [0u8; PAGE_SIZE];
                buf[0] = 0xA0 + i;
                buf[PAGE_SIZE - 1] = i;
                dm.write_page(p, &buf).unwrap();
                if i % 2 == 0 {
                    buf[1] = 0x5C; // exercise the ping-pong before migrating
                    dm.write_page(p, &buf).unwrap();
                }
                pids.push(p);
            }
        }
        let v1_len = std::fs::metadata(&path).unwrap().len();
        {
            let dm = DiskManager::open_file(&path).unwrap();
            let report = dm.recovery_report();
            assert!(report.migrated_dual_slot, "open rewrote the v1 file");
            assert!(!report.recovered(), "clean migration is not damage");
            for (i, &p) in pids.iter().enumerate() {
                let mut rb = [0u8; PAGE_SIZE];
                dm.read_page(p, &mut rb).unwrap();
                assert_eq!(rb[0], 0xA0 + i as u8);
                assert_eq!(rb[PAGE_SIZE - 1], i as u8);
                assert_eq!(rb[1], if i % 2 == 0 { 0x5C } else { 0 });
            }
            // And new writes land in the new format.
            let mut buf = [0u8; PAGE_SIZE];
            buf[9] = 9;
            dm.write_page(pids[0], &buf).unwrap();
        }
        let v2_len = std::fs::metadata(&path).unwrap().len();
        assert!(
            v2_len < v1_len,
            "single slot + header beats two slots: {v2_len} vs {v1_len}"
        );
        {
            let dm = DiskManager::open_file(&path).unwrap();
            assert!(!dm.recovery_report().migrated_dual_slot, "migrates once");
            let mut rb = [0u8; PAGE_SIZE];
            dm.read_page(pids[0], &mut rb).unwrap();
            assert_eq!(rb[9], 9);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn migration_carries_quarantine_over() {
        let path = tmp("migrate_q");
        let _ = std::fs::remove_file(&path);
        let p;
        {
            let dm = DiskManager::open_file_dual_slot(&path, None).unwrap();
            p = dm.allocate().unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            buf[0] = 0xEE;
            dm.write_page(p, &buf).unwrap();
            dm.write_page(p, &buf).unwrap(); // both slots hold versions
        }
        // Corrupt both v1 slots, then open in the current format.
        {
            let mut f = OpenOptions::new().write(true).open(&path).unwrap();
            for slot in 0..2u8 {
                f.seek(SeekFrom::Start(slot_offset_v1(p, slot) + 100))
                    .unwrap();
                f.write_all(&[0xFF; 8]).unwrap();
            }
        }
        {
            let dm = DiskManager::open_file(&path).unwrap();
            let report = dm.recovery_report();
            assert!(report.migrated_dual_slot);
            assert!(report.recovered());
            assert_eq!(report.quarantined, vec![p]);
            let mut rb = [0u8; PAGE_SIZE];
            dm.read_page(p, &mut rb).unwrap();
            assert!(rb.iter().all(|&b| b == 0));
        }
        let _ = std::fs::remove_file(&path);
    }
}
