//! `tman-storage` — the disk substrate under TriggerMan.
//!
//! The paper hosts its catalogs, constant tables and update-descriptor queue
//! in Informix. This crate is the from-scratch replacement: a page-based
//! storage engine with
//!
//! * a [`disk::DiskManager`] (file-backed or in-memory) with I/O accounting,
//! * fixed 4 KiB [`page`]s with a slotted-record layout,
//! * a [`buffer::BufferPool`] with pin/unpin and LRU eviction — the model
//!   for the paper's *trigger cache* ("analogous to the pin operation in a
//!   traditional buffer pool", §5.4),
//! * [`heap::HeapFile`]s for table rows,
//! * a [`btree::BTree`] over memcmp-comparable encoded keys ([`keyenc`]) —
//!   the "clustered index on \[const1, ... constK\]" of §5.1,
//! * a persistent object [`dir::Directory`] mapping names to roots.
//!
//! Everything above this crate (SQL executor, catalogs, constant tables)
//! talks only to these abstractions, so the disk-vs-memory tradeoffs the
//! paper discusses (§5.2) are measurable via [`tman_common::stats`].

pub mod btree;
pub mod buffer;
pub mod dir;
pub mod disk;
pub mod fault;
pub mod heap;
pub mod keyenc;
pub mod page;

pub use btree::BTree;
pub use buffer::{BufferPool, PageGuard};
pub use dir::{Directory, ObjectKind};
pub use disk::{DiskManager, PageId, RecoveryReport, PAGE_SIZE};
pub use fault::{FaultConfig, FaultKind, FaultPlan};
pub use heap::{HeapFile, RecordId};

use std::path::Path;
use std::sync::Arc;
use tman_common::Result;

/// A storage instance: one disk file (or memory region), one buffer pool,
/// one object directory. The unit the SQL layer builds a database on.
pub struct Storage {
    pool: Arc<BufferPool>,
    dir: Directory,
}

impl Storage {
    /// Open (or create) a file-backed store with the given buffer-pool
    /// capacity in pages.
    pub fn open_file(path: &Path, pool_pages: usize) -> Result<Storage> {
        Self::open_file_with(path, pool_pages, None)
    }

    /// Open a file-backed store with an optional fault-injection plan.
    /// When the open-time scavenge pass finds crash damage, derived state
    /// (heap chains, index roots, directory links) is revalidated and
    /// repaired before the store is handed out.
    pub fn open_file_with(
        path: &Path,
        pool_pages: usize,
        faults: Option<FaultPlan>,
    ) -> Result<Storage> {
        let disk = Arc::new(DiskManager::open_file_with(path, faults)?);
        let recovered = disk.recovery_report().recovered();
        let storage = Self::with_disk(disk, pool_pages)?;
        if recovered {
            storage.repair_derived_state()?;
        }
        Ok(storage)
    }

    /// True when the open-time scavenge pass found and absorbed crash
    /// damage (torn slots or quarantined pages). Higher layers use this to
    /// decide whether to rebuild derived structures such as SQL indexes.
    pub fn was_recovered(&self) -> bool {
        self.pool.disk().recovery_report().recovered()
    }

    /// Revalidate every object reachable from the directory after a crash:
    /// prune entries whose meta page never reached disk, re-seat heaps and
    /// trees whose meta pages were quarantined, fix heap chains, and reset
    /// unreadable index roots to empty leaves.
    fn repair_derived_state(&self) -> Result<()> {
        let num_pages = self.pool.disk().num_pages();
        self.dir.repair(num_pages)?;
        for entry in self.dir.list()? {
            match entry.kind {
                ObjectKind::Heap => match HeapFile::open(self.pool.clone(), entry.root) {
                    Ok(heap) => {
                        heap.repair()?;
                    }
                    Err(_) => {
                        HeapFile::reformat(self.pool.clone(), entry.root)?;
                    }
                },
                ObjectKind::BTree => {
                    BTree::repair(&self.pool, entry.root)?;
                }
            }
        }
        Ok(())
    }

    /// Create a volatile in-memory store (tests and benches).
    pub fn open_memory(pool_pages: usize) -> Storage {
        let disk = Arc::new(DiskManager::open_memory());
        Self::with_disk(disk, pool_pages).expect("memory store cannot fail to open")
    }

    fn with_disk(disk: Arc<DiskManager>, pool_pages: usize) -> Result<Storage> {
        let pool = Arc::new(BufferPool::new(disk, pool_pages));
        let dir = Directory::open(pool.clone())?;
        Ok(Storage { pool, dir })
    }

    /// The shared buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The object directory.
    pub fn dir(&self) -> &Directory {
        &self.dir
    }

    /// Create a new heap file registered under `name`.
    pub fn create_heap(&self, name: &str) -> Result<HeapFile> {
        let heap = HeapFile::create(self.pool.clone())?;
        self.dir.create(name, ObjectKind::Heap, heap.meta_page())?;
        Ok(heap)
    }

    /// Open an existing heap file by name.
    pub fn open_heap(&self, name: &str) -> Result<HeapFile> {
        let entry = self.dir.get(name)?;
        if entry.kind != ObjectKind::Heap {
            return Err(tman_common::TmanError::Storage(format!(
                "'{name}' is not a heap"
            )));
        }
        HeapFile::open(self.pool.clone(), entry.root)
    }

    /// Create a new B+tree registered under `name`.
    pub fn create_btree(&self, name: &str) -> Result<BTree> {
        let tree = BTree::create(self.pool.clone())?;
        self.dir.create(name, ObjectKind::BTree, tree.meta_page())?;
        Ok(tree)
    }

    /// Open an existing B+tree by name.
    pub fn open_btree(&self, name: &str) -> Result<BTree> {
        let entry = self.dir.get(name)?;
        if entry.kind != ObjectKind::BTree {
            return Err(tman_common::TmanError::Storage(format!(
                "'{name}' is not a btree"
            )));
        }
        BTree::open(self.pool.clone(), entry.root)
    }

    /// Remove a directory entry (pages are leaked — no free-space reuse in
    /// this reproduction; documented in DESIGN.md).
    pub fn drop_object(&self, name: &str) -> Result<()> {
        self.dir.remove(name)
    }

    /// Flush all dirty pages to the backing disk.
    pub fn checkpoint(&self) -> Result<()> {
        self.pool.flush_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_open_heap_roundtrip() {
        let s = Storage::open_memory(64);
        let h = s.create_heap("t1").unwrap();
        let rid = h.insert(b"hello").unwrap();
        let h2 = s.open_heap("t1").unwrap();
        assert_eq!(h2.get(rid).unwrap(), b"hello".to_vec());
        assert!(s.open_heap("missing").is_err());
    }

    #[test]
    fn file_backed_reopen_preserves_objects() {
        let path = std::env::temp_dir().join(format!("tman_store_{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let rid;
        {
            let s = Storage::open_file(&path, 16).unwrap();
            let h = s.create_heap("persist").unwrap();
            rid = h.insert(b"durable").unwrap();
            s.checkpoint().unwrap();
        }
        {
            let s = Storage::open_file(&path, 16).unwrap();
            let h = s.open_heap("persist").unwrap();
            assert_eq!(h.get(rid).unwrap(), b"durable".to_vec());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wrong_kind_is_error() {
        let s = Storage::open_memory(64);
        s.create_heap("h").unwrap();
        assert!(s.open_btree("h").is_err());
    }
}
