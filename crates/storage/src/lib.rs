//! `tman-storage` — the disk substrate under TriggerMan.
//!
//! The paper hosts its catalogs, constant tables and update-descriptor queue
//! in Informix. This crate is the from-scratch replacement: a page-based
//! storage engine with
//!
//! * a [`disk::DiskManager`] (file-backed or in-memory) with I/O accounting,
//! * fixed 4 KiB [`page`]s with a slotted-record layout,
//! * a [`buffer::BufferPool`] with pin/unpin and LRU eviction — the model
//!   for the paper's *trigger cache* ("analogous to the pin operation in a
//!   traditional buffer pool", §5.4),
//! * [`heap::HeapFile`]s for table rows,
//! * a [`btree::BTree`] over memcmp-comparable encoded keys ([`keyenc`]) —
//!   the "clustered index on \[const1, ... constK\]" of §5.1,
//! * a persistent object [`dir::Directory`] mapping names to roots.
//!
//! Everything above this crate (SQL executor, catalogs, constant tables)
//! talks only to these abstractions, so the disk-vs-memory tradeoffs the
//! paper discusses (§5.2) are measurable via [`tman_common::stats`].

pub mod btree;
pub mod buffer;
pub mod dir;
pub mod disk;
pub mod fault;
pub mod heap;
pub mod keyenc;
pub mod page;
pub mod wal;

pub use btree::BTree;
pub use buffer::{BufferPool, PageGuard};
pub use dir::{Directory, ObjectKind};
pub use disk::{DiskManager, PageId, RecoveryReport, PAGE_SIZE};
pub use fault::{FaultConfig, FaultKind, FaultPlan};
pub use heap::{HeapFile, RecordId};
pub use wal::{Snapshot, Wal, WalConfig};

use std::path::Path;
use std::sync::Arc;
use tman_common::Result;

/// A storage instance: one disk file (or memory region), one buffer pool,
/// one object directory. File-backed stores also carry a write-ahead log
/// (`<path>.wal`) that is replayed at open and truncated at checkpoint.
/// The unit the SQL layer builds a database on.
pub struct Storage {
    pool: Arc<BufferPool>,
    dir: Directory,
    wal_replayed: u64,
}

impl Storage {
    /// Open (or create) a file-backed store with the given buffer-pool
    /// capacity in pages.
    pub fn open_file(path: &Path, pool_pages: usize) -> Result<Storage> {
        Self::open_file_with(path, pool_pages, None)
    }

    /// Open a file-backed store with an optional fault-injection plan.
    pub fn open_file_with(
        path: &Path,
        pool_pages: usize,
        faults: Option<FaultPlan>,
    ) -> Result<Storage> {
        Self::open_file_opts(path, pool_pages, faults, WalConfig::default())
    }

    /// Open a file-backed store with a fault plan and WAL tuning. Recovery
    /// order: the page file is scavenged (and migrated from the dual-slot
    /// format if needed), then the log's committed tail is replayed over
    /// it; if either pass changed anything, derived state (heap chains,
    /// index roots, directory links) is revalidated and repaired before
    /// the store is handed out.
    pub fn open_file_opts(
        path: &Path,
        pool_pages: usize,
        faults: Option<FaultPlan>,
        wal_cfg: WalConfig,
    ) -> Result<Storage> {
        let disk = Arc::new(DiskManager::open_file_with(path, faults.clone())?);
        let mut wal_path = path.as_os_str().to_owned();
        wal_path.push(".wal");
        let wal = Arc::new(Wal::open(Path::new(&wal_path), faults, wal_cfg)?);
        let replayed = wal.replay_into(&disk)?;
        let recovered = disk.recovery_report().recovered() || replayed > 0;
        let pool = Arc::new(BufferPool::with_wal(disk, pool_pages, wal));
        let dir = Directory::open(pool.clone())?;
        let storage = Storage {
            pool,
            dir,
            wal_replayed: replayed,
        };
        if recovered {
            storage.repair_derived_state()?;
        }
        Ok(storage)
    }

    /// True when opening required recovery work: the scavenge pass found
    /// crash damage (torn slots or quarantined pages) or the WAL replayed
    /// committed records the page file was missing. Higher layers use this
    /// to decide whether to rebuild derived structures such as SQL indexes.
    pub fn was_recovered(&self) -> bool {
        self.pool.disk().recovery_report().recovered() || self.wal_replayed > 0
    }

    /// Committed WAL records replayed into the page file at open (0 after
    /// a clean shutdown, whose checkpoint leaves the log empty).
    pub fn wal_replayed(&self) -> u64 {
        self.wal_replayed
    }

    /// Revalidate every object reachable from the directory after a crash:
    /// prune entries whose meta page never reached disk, re-seat heaps and
    /// trees whose meta pages were quarantined, fix heap chains, and reset
    /// unreadable index roots to empty leaves.
    fn repair_derived_state(&self) -> Result<()> {
        let num_pages = self.pool.disk().num_pages();
        self.dir.repair(num_pages)?;
        for entry in self.dir.list()? {
            match entry.kind {
                ObjectKind::Heap => match HeapFile::open(self.pool.clone(), entry.root) {
                    Ok(heap) => {
                        heap.repair()?;
                    }
                    Err(_) => {
                        HeapFile::reformat(self.pool.clone(), entry.root)?;
                    }
                },
                ObjectKind::BTree => {
                    BTree::repair(&self.pool, entry.root)?;
                }
            }
        }
        Ok(())
    }

    /// Create a volatile in-memory store (tests and benches).
    pub fn open_memory(pool_pages: usize) -> Storage {
        let disk = Arc::new(DiskManager::open_memory());
        Self::with_disk(disk, pool_pages).expect("memory store cannot fail to open")
    }

    fn with_disk(disk: Arc<DiskManager>, pool_pages: usize) -> Result<Storage> {
        let pool = Arc::new(BufferPool::new(disk, pool_pages));
        let dir = Directory::open(pool.clone())?;
        Ok(Storage {
            pool,
            dir,
            wal_replayed: 0,
        })
    }

    /// The shared buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The object directory.
    pub fn dir(&self) -> &Directory {
        &self.dir
    }

    /// Create a new heap file registered under `name`.
    pub fn create_heap(&self, name: &str) -> Result<HeapFile> {
        let heap = HeapFile::create(self.pool.clone())?;
        self.dir.create(name, ObjectKind::Heap, heap.meta_page())?;
        Ok(heap)
    }

    /// Open an existing heap file by name.
    pub fn open_heap(&self, name: &str) -> Result<HeapFile> {
        let entry = self.dir.get(name)?;
        if entry.kind != ObjectKind::Heap {
            return Err(tman_common::TmanError::Storage(format!(
                "'{name}' is not a heap"
            )));
        }
        HeapFile::open(self.pool.clone(), entry.root)
    }

    /// Create a new B+tree registered under `name`.
    pub fn create_btree(&self, name: &str) -> Result<BTree> {
        let tree = BTree::create(self.pool.clone())?;
        self.dir.create(name, ObjectKind::BTree, tree.meta_page())?;
        Ok(tree)
    }

    /// Open an existing B+tree by name.
    pub fn open_btree(&self, name: &str) -> Result<BTree> {
        let entry = self.dir.get(name)?;
        if entry.kind != ObjectKind::BTree {
            return Err(tman_common::TmanError::Storage(format!(
                "'{name}' is not a btree"
            )));
        }
        BTree::open(self.pool.clone(), entry.root)
    }

    /// Remove a directory entry (pages are leaked — no free-space reuse in
    /// this reproduction; documented in DESIGN.md).
    pub fn drop_object(&self, name: &str) -> Result<()> {
        self.dir.remove(name)
    }

    /// Durability barrier. On a WAL-backed store: flush dirty pages to the
    /// log, group-commit them durable, then checkpoint (write the sealed
    /// images into the page file and truncate the log). On a memory store:
    /// flush dirty pages to the simulated disk.
    pub fn checkpoint(&self) -> Result<()> {
        match self.pool.wal() {
            None => self.pool.flush_all(),
            Some(wal) => {
                self.pool.sync()?;
                wal.checkpoint_into(self.pool.disk())
            }
        }
    }

    /// A consistent read view pinned at the current sealed commit seq;
    /// requires a WAL-backed (file) store. See [`wal::Snapshot`].
    pub fn snapshot(&self) -> Result<Snapshot> {
        let wal = self.pool.wal().ok_or_else(|| {
            tman_common::TmanError::Storage("snapshot reads require a WAL-backed store".into())
        })?;
        Ok(wal.snapshot(self.pool.disk().clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_open_heap_roundtrip() {
        let s = Storage::open_memory(64);
        let h = s.create_heap("t1").unwrap();
        let rid = h.insert(b"hello").unwrap();
        let h2 = s.open_heap("t1").unwrap();
        assert_eq!(h2.get(rid).unwrap(), b"hello".to_vec());
        assert!(s.open_heap("missing").is_err());
    }

    #[test]
    fn file_backed_reopen_preserves_objects() {
        let path = std::env::temp_dir().join(format!("tman_store_{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let rid;
        {
            let s = Storage::open_file(&path, 16).unwrap();
            let h = s.create_heap("persist").unwrap();
            rid = h.insert(b"durable").unwrap();
            s.checkpoint().unwrap();
        }
        {
            let s = Storage::open_file(&path, 16).unwrap();
            let h = s.open_heap("persist").unwrap();
            assert_eq!(h.get(rid).unwrap(), b"durable".to_vec());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wrong_kind_is_error() {
        let s = Storage::open_memory(64);
        s.create_heap("h").unwrap();
        assert!(s.open_btree("h").is_err());
    }

    #[test]
    fn wal_replay_recovers_synced_but_uncheckpointed_data() {
        let path = std::env::temp_dir().join(format!("tman_store_wal_{}.db", std::process::id()));
        let wal_path = {
            let mut p = path.as_os_str().to_owned();
            p.push(".wal");
            std::path::PathBuf::from(p)
        };
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&wal_path);
        let rid;
        {
            let s = Storage::open_file(&path, 16).unwrap();
            let h = s.create_heap("q").unwrap();
            rid = h.insert(b"committed").unwrap();
            // Durability barrier, but *no* checkpoint: the page file never
            // sees this data — only the log does.
            s.pool().sync().unwrap();
            assert!(s.pool().wal().unwrap().bytes() > 0);
        } // unclean shutdown: no checkpoint
        {
            let s = Storage::open_file(&path, 16).unwrap();
            assert!(s.was_recovered(), "replay counts as recovery");
            assert!(s.wal_replayed() > 0);
            let h = s.open_heap("q").unwrap();
            assert_eq!(h.get(rid).unwrap(), b"committed".to_vec());
            // Replay truncated the log; a third open is clean.
        }
        {
            let s = Storage::open_file(&path, 16).unwrap();
            assert!(!s.was_recovered());
            assert_eq!(s.wal_replayed(), 0);
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&wal_path);
    }

    #[test]
    fn checkpoint_truncates_wal_and_persists_via_page_file() {
        let path = std::env::temp_dir().join(format!("tman_store_ckpt_{}.db", std::process::id()));
        let wal_path = {
            let mut p = path.as_os_str().to_owned();
            p.push(".wal");
            std::path::PathBuf::from(p)
        };
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&wal_path);
        let rid;
        {
            let s = Storage::open_file(&path, 16).unwrap();
            let h = s.create_heap("t").unwrap();
            rid = h.insert(b"checkpointed").unwrap();
            s.checkpoint().unwrap();
            let wal = s.pool().wal().unwrap();
            assert_eq!(wal.bytes(), 0, "checkpoint truncated the log");
            assert_eq!(wal.stats().checkpoints.get(), 1);
        }
        {
            let s = Storage::open_file(&path, 16).unwrap();
            assert!(!s.was_recovered(), "clean shutdown needs no replay");
            let h = s.open_heap("t").unwrap();
            assert_eq!(h.get(rid).unwrap(), b"checkpointed".to_vec());
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&wal_path);
    }

    #[test]
    fn snapshot_requires_wal_backed_store() {
        let s = Storage::open_memory(16);
        assert!(s.snapshot().is_err());
    }
}
