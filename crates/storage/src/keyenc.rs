//! Order-preserving (memcmp-comparable) key encoding.
//!
//! The B+tree compares keys as raw bytes. This module encodes a composite
//! `[Value]` key into a byte string whose lexicographic order equals
//! [`Value::total_cmp`] order column by column:
//!
//! ```text
//! Null              0x01
//! Int / Float       0x02 <8 bytes: IEEE-754 bits, sign-flipped, big-endian>
//! Str               0x03 <escaped bytes> 0x00 0x00
//! ```
//!
//! * Numerics are unified as `f64` so `Int(1)` and `Float(1.0)` encode
//!   identically, matching `Value` equality. Integers beyond 2^53 lose
//!   precision in the *index*; the SQL executor re-verifies predicates on
//!   fetched rows, so this affects performance only, never correctness.
//! * String bytes `0x00` are escaped as `0x00 0x01`; the terminator
//!   `0x00 0x00` then sorts before any continuation, giving correct
//!   prefix ordering ("a" < "ab").
//! * No encoding is a proper prefix of another, so composite keys may be
//!   concatenated and still compare correctly.

use tman_common::{Result, TmanError, Value};

const TAG_NULL: u8 = 0x01;
const TAG_NUM: u8 = 0x02;
const TAG_STR: u8 = 0x03;

/// Encode one value, appending to `out`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Int(i) => encode_num(*i as f64, out),
        Value::Float(f) => encode_num(*f, out),
        Value::Str(s) => {
            out.push(TAG_STR);
            for &b in s.as_bytes() {
                if b == 0x00 {
                    out.extend_from_slice(&[0x00, 0x01]);
                } else {
                    out.push(b);
                }
            }
            out.extend_from_slice(&[0x00, 0x00]);
        }
    }
}

fn encode_num(f: f64, out: &mut Vec<u8>) {
    out.push(TAG_NUM);
    let bits = f.to_bits();
    // Standard IEEE total-order transform: negative numbers flip all bits,
    // non-negative flip only the sign bit.
    let ordered = if bits & (1 << 63) != 0 {
        !bits
    } else {
        bits ^ (1 << 63)
    };
    out.extend_from_slice(&ordered.to_be_bytes());
}

/// Encode a composite key.
pub fn encode_key(values: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 10);
    for v in values {
        encode_value(v, &mut out);
    }
    out
}

/// Decode a composite key (inverse of [`encode_key`]; numerics come back as
/// `Float` since ints and floats share an encoding).
pub fn decode_key(buf: &[u8]) -> Result<Vec<Value>> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < buf.len() {
        match buf[i] {
            TAG_NULL => {
                out.push(Value::Null);
                i += 1;
            }
            TAG_NUM => {
                if i + 9 > buf.len() {
                    return Err(TmanError::Storage("truncated numeric key".into()));
                }
                let ordered = u64::from_be_bytes(buf[i + 1..i + 9].try_into().unwrap());
                let bits = if ordered & (1 << 63) != 0 {
                    ordered ^ (1 << 63)
                } else {
                    !ordered
                };
                out.push(Value::Float(f64::from_bits(bits)));
                i += 9;
            }
            TAG_STR => {
                i += 1;
                let mut s = Vec::new();
                loop {
                    if i >= buf.len() {
                        return Err(TmanError::Storage("unterminated string key".into()));
                    }
                    if buf[i] == 0x00 {
                        if i + 1 >= buf.len() {
                            return Err(TmanError::Storage("truncated string escape".into()));
                        }
                        match buf[i + 1] {
                            0x00 => {
                                i += 2;
                                break;
                            }
                            0x01 => {
                                s.push(0x00);
                                i += 2;
                            }
                            b => {
                                return Err(TmanError::Storage(format!("bad string escape {b:#x}")))
                            }
                        }
                    } else {
                        s.push(buf[i]);
                        i += 1;
                    }
                }
                out.push(Value::Str(String::from_utf8(s).map_err(|e| {
                    TmanError::Storage(format!("invalid utf8 in key: {e}"))
                })?));
            }
            t => return Err(TmanError::Storage(format!("unknown key tag {t:#x}"))),
        }
    }
    Ok(out)
}

/// Upper bound for a prefix scan: every key starting with `prefix` compares
/// `< prefix ++ [0xFF]` because all tag bytes are `< 0xFF`.
pub fn prefix_upper_bound(prefix: &[u8]) -> Vec<u8> {
    let mut hi = prefix.to_vec();
    hi.push(0xFF);
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::cmp::Ordering;

    fn cmp_vals(a: &[Value], b: &[Value]) -> Ordering {
        for (x, y) in a.iter().zip(b.iter()) {
            match x.total_cmp(y) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        a.len().cmp(&b.len())
    }

    #[test]
    fn basic_orderings() {
        let cases = [
            (vec![Value::Int(1)], vec![Value::Int(2)]),
            (vec![Value::Int(-5)], vec![Value::Int(-4)]),
            (vec![Value::Float(-0.5)], vec![Value::Int(0)]),
            (vec![Value::Null], vec![Value::Int(i64::MIN)]),
            (vec![Value::str("a")], vec![Value::str("ab")]),
            (vec![Value::str("a\u{0}b")], vec![Value::str("a\u{0}c")]),
            (vec![Value::Int(9)], vec![Value::str("")]),
            (
                vec![Value::Int(1), Value::str("z")],
                vec![Value::Int(2), Value::str("a")],
            ),
        ];
        for (lo, hi) in cases {
            assert!(
                encode_key(&lo) < encode_key(&hi),
                "expected {lo:?} < {hi:?} in encoding"
            );
        }
    }

    #[test]
    fn int_float_equal_encodings() {
        assert_eq!(
            encode_key(&[Value::Int(42)]),
            encode_key(&[Value::Float(42.0)])
        );
    }

    #[test]
    fn decode_roundtrips_structure() {
        let key = vec![Value::Null, Value::Int(7), Value::str("x\u{0}y")];
        let dec = decode_key(&encode_key(&key)).unwrap();
        assert_eq!(dec.len(), 3);
        assert_eq!(dec[0], Value::Null);
        assert_eq!(dec[1], Value::Float(7.0)); // numerics decode as float
        assert_eq!(dec[2], Value::str("x\u{0}y"));
    }

    #[test]
    fn prefix_upper_bound_covers_extensions() {
        let p = encode_key(&[Value::Int(5)]);
        let full = encode_key(&[Value::Int(5), Value::str("anything")]);
        assert!(full > p);
        assert!(full < prefix_upper_bound(&p));
        let other = encode_key(&[Value::Int(6)]);
        assert!(other > prefix_upper_bound(&p));
    }

    #[test]
    fn no_encoding_is_prefix_of_another_single_column() {
        let vals = [
            Value::Null,
            Value::Int(0),
            Value::Int(1),
            Value::Float(0.5),
            Value::str(""),
            Value::str("a"),
            Value::str("aa"),
        ];
        for a in &vals {
            for b in &vals {
                if a != b {
                    let ea = encode_key(std::slice::from_ref(a));
                    let eb = encode_key(std::slice::from_ref(b));
                    assert!(!eb.starts_with(&ea), "{a:?} encoding prefixes {b:?}");
                }
            }
        }
    }

    fn any_scalar() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            // Stay within f64-exact integer range: the documented encoding
            // unifies numerics as f64.
            (-(1i64 << 53)..(1i64 << 53)).prop_map(Value::Int),
            any::<f64>()
                .prop_filter("no NaN in keys", |f| !f.is_nan())
                .prop_map(Value::Float),
            "[a-z\u{0}]{0,12}".prop_map(Value::str),
        ]
    }

    proptest! {
        #[test]
        fn prop_order_preserved(
            a in proptest::collection::vec(any_scalar(), 1..4),
            b in proptest::collection::vec(any_scalar(), 1..4),
        ) {
            // Compare only same-arity keys: composite keys in one index
            // always have the same column count.
            if a.len() == b.len() {
                let byte_ord = encode_key(&a).cmp(&encode_key(&b));
                prop_assert_eq!(byte_ord, cmp_vals(&a, &b));
            }
        }

        #[test]
        fn prop_roundtrip_values(a in proptest::collection::vec(any_scalar(), 0..5)) {
            let dec = decode_key(&encode_key(&a)).unwrap();
            prop_assert_eq!(dec.len(), a.len());
            for (orig, back) in a.iter().zip(&dec) {
                prop_assert_eq!(orig.total_cmp(back), Ordering::Equal);
            }
        }
    }
}
